// Table 2: classification accuracy of the IRG classifier vs CBA vs SVM on
// the five datasets, with the paper's train/test split sizes and
// entropy-minimized discretization (§4.2). A stratified 5-fold
// cross-validation of the IRG classifier rides along, with the folds
// fanned out across a work-stealing thread pool (--threads); fold results
// are collected in fold order so every pool size reports the same
// accuracies.
//
// Expected shape: the IRG classifier has the best (or near-best) average
// accuracy; no classifier wins on every dataset. Absolute numbers differ
// from the paper because the datasets are synthetic stand-ins.
//
// Every measurement is also appended to BENCH_table2_classifiers.json.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "classify/cba.h"
#include "classify/evaluation.h"
#include "classify/irg_classifier.h"
#include "classify/svm.h"
#include "dataset/discretize.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace farmer;

// One cross-validation fold of the IRG classifier: entropy-MDL cuts are
// fitted on the train fold only, then the classifier is trained and
// scored on the held-out fold. Pure function of its arguments, so folds
// can run concurrently on pool workers.
double IrgFoldAccuracy(const ExpressionMatrix& matrix, const Split& split,
                       double timeout_seconds) {
  ExpressionMatrix train_m = matrix.SelectRows(split.train);
  ExpressionMatrix test_m = matrix.SelectRows(split.test);
  Discretization disc = Discretization::FitEntropyMdl(train_m);
  BinaryDataset train = disc.Apply(train_m);
  BinaryDataset test = disc.Apply(test_m);

  IrgClassifierOptions iopts;
  iopts.min_support_fraction = 0.7;
  iopts.min_confidence = 0.8;
  iopts.max_seconds_per_class = timeout_seconds;
  IrgClassifier irg = IrgClassifier::Train(train, iopts);

  std::vector<ClassLabel> truth, pred;
  for (RowId r = 0; r < test.num_rows(); ++r) {
    truth.push_back(test.label(r));
    pred.push_back(irg.Predict(test.row(r)));
  }
  return Accuracy(truth, pred);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  PrintBenchHeader("Table 2: classification accuracy (IRG / CBA / SVM)",
                   config);
  JsonWriter json("table2_classifiers");
  constexpr std::size_t kFolds = 5;
  // One pool shared by all datasets; null means folds run inline.
  std::unique_ptr<ThreadPool> pool;
  if (config.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(config.num_threads);
  }

  std::printf("%-5s %8s %7s | %8s %8s %8s | %9s %7s\n", "data", "#train",
              "#test", "IRG", "CBA", "SVM", "IRG-5cv", "cv(s)");
  double sum_irg = 0, sum_cba = 0, sum_svm = 0, sum_cv = 0;
  std::size_t count = 0;
  for (const std::string& name : PaperDatasetNames()) {
    if (!config.WantsDataset(name)) continue;
    BenchDataset ds = MakeBenchDataset(name, config.column_scale);
    const TrainTestSizes sizes = PaperSplitSizes(name);
    Split split = StratifiedSplit(ds.matrix.labels(), sizes.train, 17);
    ExpressionMatrix train_m = ds.matrix.SelectRows(split.train);
    ExpressionMatrix test_m = ds.matrix.SelectRows(split.test);
    // The paper's test folds were collected independently of the training
    // cohorts (most dramatically for BC); reproduce that batch shift.
    ApplyBatchEffect(&test_m, PaperBatchSigma(name), /*seed=*/name[0]);

    // Entropy-MDL discretization fitted on the training fold only (the
    // paper's protocol for the classification experiments).
    Discretization disc = Discretization::FitEntropyMdl(train_m);
    BinaryDataset train = disc.Apply(train_m);
    BinaryDataset test = disc.Apply(test_m);

    std::vector<ClassLabel> truth;
    for (RowId r = 0; r < test.num_rows(); ++r) {
      truth.push_back(test.label(r));
    }

    // IRG classifier: minsup 0.7 * class size, minconf 0.8 (paper).
    IrgClassifierOptions iopts;
    iopts.min_support_fraction = 0.7;
    iopts.min_confidence = 0.8;
    iopts.max_seconds_per_class = config.timeout_seconds;
    IrgClassifier irg = IrgClassifier::Train(train, iopts);
    std::vector<ClassLabel> irg_pred;
    for (RowId r = 0; r < test.num_rows(); ++r) {
      irg_pred.push_back(irg.Predict(test.row(r)));
    }

    // CBA from FARMER-materialized rules (the paper's workaround: CBA's
    // own rule generator does not terminate on microarray data).
    std::vector<ClassRule> rules = GenerateRulesWithFarmer(
        train, 0.7, 0.8, config.timeout_seconds);
    CbaClassifier cba = CbaClassifier::Train(train, std::move(rules));
    std::vector<ClassLabel> cba_pred;
    for (RowId r = 0; r < test.num_rows(); ++r) {
      cba_pred.push_back(cba.Predict(test.row(r)));
    }

    // Linear SVM on the continuous expression values. The paper ran
    // SVM-light with default settings, i.e. on raw (unstandardized)
    // intensities — faithfully reproduced here; see svm.h for the
    // standardized variant a practitioner would actually want.
    SvmOptions svm_opts;
    svm_opts.standardize = false;
    svm_opts.c = 0.0;  // SVM-light default C.

    LinearSvm svm = LinearSvm::Train(train_m, 1, svm_opts);
    std::vector<ClassLabel> svm_pred;
    for (std::size_t r = 0; r < test_m.num_rows(); ++r) {
      svm_pred.push_back(svm.Predict(test_m.row_data(r)));
    }

    const double acc_irg = Accuracy(truth, irg_pred);
    const double acc_cba = Accuracy(truth, cba_pred);
    const double acc_svm = Accuracy(truth, svm_pred);

    // Stratified 5-fold CV of the IRG classifier on the un-shifted matrix;
    // folds evaluate concurrently on the shared pool.
    Stopwatch cv_watch;
    CrossValidationResult cv = CrossValidate(
        ds.matrix.labels(), kFolds, /*seed=*/17,
        [&ds, &config](const Split& fold_split, std::size_t) {
          return IrgFoldAccuracy(ds.matrix, fold_split,
                                 config.timeout_seconds);
        },
        pool.get());
    const double cv_seconds = cv_watch.ElapsedSeconds();

    sum_irg += acc_irg;
    sum_cba += acc_cba;
    sum_svm += acc_svm;
    sum_cv += cv.mean_accuracy;
    ++count;
    std::printf("%-5s %8zu %7zu | %7.2f%% %7.2f%% %7.2f%% | %8.2f%% %7.2f\n",
                name.c_str(), split.train.size(), split.test.size(),
                100 * acc_irg, 100 * acc_cba, 100 * acc_svm,
                100 * cv.mean_accuracy, cv_seconds);
    std::fflush(stdout);

    JsonRecord record;
    record.Str("bench", "table2_classifiers")
        .Str("dataset", name)
        .Num("column_scale", config.column_scale)
        .Int("train_rows", static_cast<long long>(split.train.size()))
        .Int("test_rows", static_cast<long long>(split.test.size()))
        .Num("irg_accuracy", acc_irg)
        .Num("cba_accuracy", acc_cba)
        .Num("svm_accuracy", acc_svm)
        .Int("cv_folds", static_cast<long long>(kFolds))
        .Int("cv_threads", static_cast<long long>(config.num_threads))
        .Num("cv_mean_accuracy", cv.mean_accuracy)
        .Num("cv_seconds", cv_seconds);
    for (std::size_t f = 0; f < cv.fold_accuracies.size(); ++f) {
      record.Num("cv_fold" + std::to_string(f), cv.fold_accuracies[f]);
    }
    json.Add(record);
    json.Flush();
  }
  const double dn = static_cast<double>(count);
  std::printf("%-5s %8s %7s | %7.2f%% %7.2f%% %7.2f%% | %8.2f%%\n", "avg",
              "", "", 100 * sum_irg / dn, 100 * sum_cba / dn,
              100 * sum_svm / dn, 100 * sum_cv / dn);
  std::printf("\npaper reference (Table 2): IRG 83.03%% avg vs CBA 77.33%% "
              "vs SVM 76.66%%; no classifier wins everywhere\n");
  std::printf("json: %s\n", json.path().c_str());
  return 0;
}
