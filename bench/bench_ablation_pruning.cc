// Ablation of FARMER's three pruning strategies (§3.2) — not a paper
// figure, but the design-choice study DESIGN.md calls out: the same
// results must come back with any pruning disabled, at a measurable cost
// in enumeration nodes and time.
//
// Disabling Pruning 1 or 2 switches the miner into its exact-recount mode,
// whose blow-up is exponential in rows; the ablation therefore runs on a
// deliberately small synthetic dataset, with TIMEOUT as an admissible
// (and telling) outcome.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/farmer.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  PrintBenchHeader("Ablation: pruning strategies 1/2/3", config);

  SyntheticSpec spec;
  spec.name = "ablation";
  spec.num_rows = 22;
  spec.num_genes = 120;
  spec.num_class1 = 11;
  spec.num_clusters = 4;
  spec.seed = 31;
  ExpressionMatrix matrix = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(matrix, 5).Apply(matrix);

  struct Config {
    const char* label;
    bool p1, p2, p3;
  };
  const std::vector<Config> configs = {
      {"all prunings", true, true, true},
      {"no pruning 1 (row absorption)", false, true, true},
      {"no pruning 2 (back scan)", true, false, true},
      {"no pruning 3 (measure bounds)", true, true, false},
      {"no pruning at all", false, false, false},
  };

  std::printf("dataset: %zu rows x %zu items, minsup=3, minconf=0.8\n\n",
              ds.num_rows(), ds.num_items());
  std::printf("%-32s %12s %10s %8s\n", "configuration", "nodes", "time(s)",
              "#IRGs");
  for (const Config& c : configs) {
    MinerOptions opts;
    opts.consequent = 1;
    opts.min_support = 3;
    opts.min_confidence = 0.8;
    opts.mine_lower_bounds = false;
    opts.enable_pruning1 = c.p1;
    opts.enable_pruning2 = c.p2;
    opts.enable_pruning3 = c.p3;
    opts.deadline = Deadline::After(config.timeout_seconds);
    FarmerResult r = MineFarmer(ds, opts);
    std::printf("%-32s %12zu %10s %8zu%s\n", c.label,
                r.stats.nodes_visited,
                FmtSeconds(r.stats.mine_seconds, r.stats.timed_out).c_str(),
                r.groups.size(), r.stats.timed_out ? "(partial)" : "");
    std::fflush(stdout);
  }

  std::printf("\nper-strategy pruning counters with everything enabled:\n");
  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 3;
  opts.min_confidence = 0.8;
  opts.mine_lower_bounds = false;
  FarmerResult r = MineFarmer(ds, opts);
  std::printf("  back-scan prunes (P2):    %zu\n",
              r.stats.pruned_by_backscan);
  std::printf("  support-bound prunes:     %zu\n",
              r.stats.pruned_by_support);
  std::printf("  confidence-bound prunes:  %zu\n",
              r.stats.pruned_by_confidence);
  std::printf("  rows absorbed (P1):       %zu\n", r.stats.rows_absorbed);
  return 0;
}
