#ifndef FARMER_BENCH_BENCH_JSON_H_
#define FARMER_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define FARMER_BENCH_HAS_RUSAGE 1
#endif

#include "util/simd/simd.h"

namespace farmer {
namespace bench {

/// One benchmark measurement: a flat bag of string/number fields rendered
/// as a JSON object. Shared by all bench binaries so their outputs have a
/// uniform machine-readable shape.
class JsonRecord {
 public:
  JsonRecord& Str(const std::string& key, const std::string& value) {
    fields_.push_back('"' + Escape(key) + "\": \"" + Escape(value) + '"');
    return *this;
  }

  JsonRecord& Num(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.push_back('"' + Escape(key) + "\": " + buf);
    return *this;
  }

  JsonRecord& Int(const std::string& key, long long value) {
    fields_.push_back('"' + Escape(key) + "\": " + std::to_string(value));
    return *this;
  }

  JsonRecord& Bool(const std::string& key, bool value) {
    fields_.push_back('"' + Escape(key) + "\": " +
                      (value ? "true" : "false"));
    return *this;
  }

  /// Embeds `json` verbatim as the value of `key` — for pre-rendered
  /// sub-objects such as MinerStats::ToJson(). The caller guarantees
  /// `json` is well-formed.
  JsonRecord& Raw(const std::string& key, const std::string& json) {
    fields_.push_back('"' + Escape(key) + "\": " + json);
    return *this;
  }

  std::string Render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += fields_[i];
    }
    out += "}";
    return out;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<std::string> fields_;
};

/// Collects JsonRecords and writes them as a JSON array to
/// `BENCH_<name>.json` in the working directory when the writer goes out
/// of scope (or on an explicit Flush).
class JsonWriter {
 public:
  /// `name` is the bench name, e.g. "fig10_minsup" -> BENCH_fig10_minsup.json.
  explicit JsonWriter(const std::string& name)
      : path_("BENCH_" + name + ".json") {}

  ~JsonWriter() { Flush(); }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  /// Appends the record plus process resource telemetry (peak RSS and
  /// cumulative user/system CPU time from getrusage) and the active
  /// SIMD kernel tier, so every entry of a BENCH_*.json file carries
  /// memory and ISA context for free.
  void Add(const JsonRecord& record) {
    JsonRecord r = record;
    AppendResourceTelemetry(&r);
    records_.push_back(r.Render());
  }

  const std::string& path() const { return path_; }

  /// Writes all records collected so far; safe to call repeatedly (each
  /// call rewrites the whole file, so a crashed run still leaves valid
  /// JSON from the last flush).
  void Flush() {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return;
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", records_[i].c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
  }

 private:
  static void AppendResourceTelemetry(JsonRecord* r) {
    r->Str("simd_level", simd::LevelName(simd::ActiveLevel()));
#ifdef FARMER_BENCH_HAS_RUSAGE
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0) return;
#if defined(__APPLE__)
    const long long peak_kb = ru.ru_maxrss / 1024;  // Reported in bytes.
#else
    const long long peak_kb = ru.ru_maxrss;  // Reported in KiB.
#endif
    const auto tv_seconds = [](const timeval& tv) {
      return static_cast<double>(tv.tv_sec) + 1e-6 * tv.tv_usec;
    };
    r->Int("peak_rss_kb", peak_kb);
    r->Num("cpu_user_s", tv_seconds(ru.ru_utime));
    r->Num("cpu_sys_s", tv_seconds(ru.ru_stime));
#else
    (void)r;
#endif
  }

  std::string path_;
  std::vector<std::string> records_;
};

}  // namespace bench
}  // namespace farmer

#endif  // FARMER_BENCH_BENCH_JSON_H_
