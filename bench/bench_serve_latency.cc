// Latency/throughput benchmark of the rule-group query server: an
// in-process Server on an ephemeral loopback port, driven by 1, 4 and
// 16 concurrent client connections. Each client count is measured twice:
//
//   cold  — the response cache is cleared and every request has a unique
//           canonical key, so every query runs the full engine + render
//           path;
//   warm  — the same clients replay a fixed 8-query working set that was
//           primed beforehand, so requests are served from the LRU cache.
//
// Reports p50/p99 round-trip latency and aggregate throughput per phase,
// plus the server-side cache hit/miss deltas. The run fails (exit 1) if
// any warm p50 is not strictly below its cold p50 — the cache must be
// observably faster than the engine, or it is dead weight.
//
// Every measurement is appended to BENCH_serve_latency.json.
//
// Extra knobs (on top of bench_common's):
//   --count <n>   total requests per phase (default 400, min 200)
//   --port <p>    drive an already-running server on 127.0.0.1:<p>
//                 instead of an in-process one (single mixed phase, no
//                 cache assertions — for CI smoke against farmer_serve)

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "core/farmer.h"
#include "serve/index.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/timer.h"

namespace farmer {
namespace bench {
namespace {

using serve::RuleGroupIndex;
using serve::RuleGroupSnapshot;
using serve::Server;

/// A blocking loopback client for one connection.
class Client {
 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  /// Sends one request line and reads one response line. Returns false
  /// on any socket error or EOF.
  bool RoundTrip(const std::string& request, std::string* response) {
    std::string line = request + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *response = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string ItemsJson(const ItemVector& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(items[i]);
  }
  return out + "]";
}

/// The mixed query workload. `uniq` feeds every variable field, so two
/// distinct values always produce distinct canonical keys (the cold
/// phase relies on this to defeat the cache).
std::string MakeQuery(std::size_t uniq, const BinaryDataset& dataset) {
  switch (uniq % 5) {
    case 0:
      return "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":" +
             std::to_string(1 + uniq) + ",\"limit\":5000}";
    case 1:
      return "{\"op\":\"topk\",\"metric\":\"chi_square\",\"k\":" +
             std::to_string(1 + uniq) + ",\"limit\":5000}";
    case 2:
      return "{\"op\":\"filter\",\"minsup\":" + std::to_string(uniq / 100) +
             ",\"minconf\":0." + std::to_string(10 + uniq % 89) +
             ",\"limit\":5000}";
    case 3:
      return "{\"op\":\"contains\",\"items\":[" +
             std::to_string(uniq % dataset.num_items()) +
             "],\"limit\":" + std::to_string(100 + uniq) + "}";
    default:
      return "{\"op\":\"cover\",\"items\":" +
             ItemsJson(dataset.row(uniq % dataset.num_rows())) +
             ",\"limit\":" + std::to_string(100 + uniq) + "}";
  }
}

struct PhaseResult {
  std::vector<double> latencies;  // Seconds per round trip.
  double wall_seconds = 0.0;
  std::size_t requests = 0;
  std::size_t failures = 0;
};

/// Runs `clients` concurrent connections, each issuing `per_client`
/// requests. `query_of(client, i)` names the request; every round trip
/// is timed individually.
template <typename QueryFn>
PhaseResult RunPhase(int port, std::size_t clients, std::size_t per_client,
                     QueryFn query_of) {
  PhaseResult result;
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::size_t> failures(clients, 0);
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect(port)) {
        failures[c] = per_client;
        return;
      }
      std::string response;
      lat[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        Stopwatch sw;
        if (!client.RoundTrip(query_of(c, i), &response) ||
            response.find("\"ok\":true") == std::string::npos) {
          ++failures[c];
          continue;
        }
        lat[c].push_back(sw.ElapsedSeconds());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds = wall.ElapsedSeconds();
  for (std::size_t c = 0; c < clients; ++c) {
    result.latencies.insert(result.latencies.end(), lat[c].begin(),
                            lat[c].end());
    result.failures += failures[c];
  }
  result.requests = result.latencies.size();
  std::sort(result.latencies.begin(), result.latencies.end());
  return result;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * sorted.size()));
  return sorted[i];
}

}  // namespace
}  // namespace bench
}  // namespace farmer

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  std::size_t count = 400;
  int external_port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
      count = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      external_port = std::atoi(argv[++i]);
    }
  }
  count = std::max<std::size_t>(count, 200);
  PrintBenchHeader("Query-server latency: cold vs warm cache at 1/4/16 "
                   "clients", config);
  JsonWriter json("serve_latency");

  // The served store: the Fig. 10 BC workload's rule groups.
  BenchDataset ds = MakeBenchDataset("BC", config.column_scale);
  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 5;
  FarmerResult mined = MineFarmer(ds.binary, opts);
  std::printf("store: %zu rule groups from %s (%zu rows x %zu items)\n\n",
              mined.groups.size(), ds.name.c_str(),
              static_cast<std::size_t>(ds.binary.num_rows()),
              static_cast<std::size_t>(ds.binary.num_items()));

  std::unique_ptr<Server> server;
  int port = external_port;
  if (external_port == 0) {
    RuleGroupSnapshot snapshot;
    snapshot.num_rows = ds.binary.num_rows();
    snapshot.groups = std::move(mined.groups);
    snapshot.params = serve::SnapshotParams::FromMinerOptions(opts);
    snapshot.fingerprint = serve::SnapshotFingerprint::FromDataset(ds.binary);
    Server::Options server_options;
    server_options.num_workers = 8;
    server_options.max_connections = 64;
    server = std::make_unique<Server>(RuleGroupIndex(std::move(snapshot)),
                                      server_options);
    const Status started = server->Start();
    if (!started.ok()) {
      std::printf("server failed to start: %s\n", started.ToString().c_str());
      return 1;
    }
    port = server->port();
  }
  std::printf("%6s %6s | %9s %9s %9s | %8s | %6s %6s\n", "phase", "conns",
              "p50(us)", "p99(us)", "qps", "requests", "hits", "miss");

  bool cache_regression = false;
  for (std::size_t clients : {std::size_t{1}, std::size_t{4},
                              std::size_t{16}}) {
    const std::size_t per_client = std::max<std::size_t>(count / clients, 8);

    struct Phase {
      const char* name;
      PhaseResult result;
      std::uint64_t hits = 0;
      std::uint64_t misses = 0;
    };
    std::vector<Phase> phases;

    if (external_port == 0) {
      // Cold: unique canonical keys, nothing reusable in the cache.
      server->cache().Clear();
      const std::uint64_t h0 = server->cache().hits();
      const std::uint64_t m0 = server->cache().misses();
      PhaseResult cold = RunPhase(
          port, clients, per_client, [&](std::size_t c, std::size_t i) {
            return MakeQuery(1 + c * per_client + i, ds.binary);
          });
      phases.push_back({"cold", std::move(cold), server->cache().hits() - h0,
                        server->cache().misses() - m0});

      // Warm: a fixed 8-query working set, primed before timing.
      server->cache().Clear();
      {
        Client primer;
        if (!primer.Connect(port)) return 1;
        std::string response;
        for (std::size_t i = 0; i < 8; ++i) {
          if (!primer.RoundTrip(MakeQuery(i, ds.binary), &response)) return 1;
        }
      }
      const std::uint64_t h1 = server->cache().hits();
      const std::uint64_t m1 = server->cache().misses();
      PhaseResult warm = RunPhase(
          port, clients, per_client, [&](std::size_t, std::size_t i) {
            return MakeQuery(i % 8, ds.binary);
          });
      phases.push_back({"warm", std::move(warm), server->cache().hits() - h1,
                        server->cache().misses() - m1});
    } else {
      PhaseResult mixed = RunPhase(
          port, clients, per_client, [&](std::size_t c, std::size_t i) {
            return MakeQuery(c * per_client + i, ds.binary);
          });
      phases.push_back({"mixed", std::move(mixed), 0, 0});
    }

    double cold_p50 = 0.0;
    for (const Phase& phase : phases) {
      const double p50 = Percentile(phase.result.latencies, 0.50);
      const double p99 = Percentile(phase.result.latencies, 0.99);
      const double qps = phase.result.wall_seconds > 0.0
                             ? phase.result.requests /
                                   phase.result.wall_seconds
                             : 0.0;
      if (std::strcmp(phase.name, "cold") == 0) cold_p50 = p50;
      if (std::strcmp(phase.name, "warm") == 0 && p50 >= cold_p50) {
        cache_regression = true;
      }
      std::printf("%6s %6zu | %9.1f %9.1f %9.0f | %8zu | %6llu %6llu%s\n",
                  phase.name, clients, p50 * 1e6, p99 * 1e6, qps,
                  phase.result.requests,
                  static_cast<unsigned long long>(phase.hits),
                  static_cast<unsigned long long>(phase.misses),
                  phase.result.failures > 0 ? " (FAILURES)" : "");
      std::fflush(stdout);
      if (phase.result.failures > 0) {
        std::printf("%zu requests failed\n", phase.result.failures);
        return 1;
      }
      json.Add(JsonRecord()
                   .Str("bench", "serve_latency")
                   .Str("phase", phase.name)
                   .Int("clients", static_cast<long long>(clients))
                   .Int("requests",
                        static_cast<long long>(phase.result.requests))
                   .Num("p50_us", p50 * 1e6)
                   .Num("p99_us", p99 * 1e6)
                   .Num("qps", qps)
                   .Num("wall_s", phase.result.wall_seconds)
                   .Int("cache_hits", static_cast<long long>(phase.hits))
                   .Int("cache_misses",
                        static_cast<long long>(phase.misses)));
      json.Flush();
    }
  }

  if (server != nullptr) server->Shutdown();
  if (cache_regression) {
    std::printf("\nCACHE REGRESSION: warm p50 is not below cold p50\n");
    return 1;
  }
  std::printf("\njson: %s\n", json.path().c_str());
  return 0;
}
