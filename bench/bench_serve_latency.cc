// Latency/throughput benchmark of the rule-group query server: an
// in-process Server on an ephemeral loopback port, driven by 1, 4 and
// 16 concurrent client connections. Three measurement groups:
//
//   cold/warm   — JSON line protocol, one request in flight per
//                 connection. cold clears the cache and gives every
//                 request a unique canonical key (full engine + render
//                 path); warm replays a primed 8-query working set from
//                 the LRU cache.
//   pipelined   — FQP1 binary framing with a sliding window of
//                 requests in flight per connection, over the warm
//                 working set. Reports qps and p50/p99 per
//                 (clients, pipeline depth); latency is measured from
//                 submit (frame written) to response receipt.
//   swap storm  — 16 pipelined clients drive mixed queries while the
//                 snapshot is hot-swapped several times mid-storm.
//                 Every request must still succeed and the snapshot
//                 version must end where the swap count says.
//
// Gates (exit 1):
//   * any request failure in any phase;
//   * warm p50 not strictly below cold p50 (the cache must beat the
//     engine or it is dead weight);
//   * no pipelined configuration at 16 clients beats the thread-per-
//     connection baseline warm p99 (PR 5 measured ~72 ms at 16
//     clients; see ROADMAP.md). Submit-to-response latency grows with
//     the window (Little's law: in_flight/qps), so the gate takes the
//     best depth rather than punishing deep windows for queueing.
//
// Every measurement is appended to BENCH_serve_latency.json.
//
// Extra knobs (on top of bench_common's):
//   --count <n>   total requests per phase (default 400, min 200)
//   --port <p>    drive an already-running server on 127.0.0.1:<p>
//                 instead of an in-process one (single mixed phase, no
//                 cache assertions — for CI smoke against farmer_serve)
//   --telemetry   attach a metrics registry to the in-process server
//                 (per-op histograms, per-shard gauges — the full
//                 instrumented path), for A/B runs against the default
//                 telemetry-off configuration

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "core/farmer.h"
#include "obs/metrics.h"
#include "serve/index.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/status.h"
#include "util/timer.h"

namespace farmer {
namespace bench {
namespace {

using serve::RuleGroupIndex;
using serve::RuleGroupSnapshot;
using serve::Server;

// The PR 5 thread-per-connection server's warm p99 at 16 clients on
// this workload (BENCH_serve_latency.json before the epoll rewrite;
// quoted in ROADMAP.md). The pipelined event loop must beat it.
constexpr double kBaselineWarmP99Us = 72000.0;

/// A blocking loopback client for one connection.
class Client {
 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return false;
    }
    // Pipelining keeps unacked data in flight, so Nagle would hold
    // every window top-up hostage to the peer's delayed ACK.
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool SendAll(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Sends one request line and reads one response line. Returns false
  /// on any socket error or EOF.
  bool RoundTrip(const std::string& request, std::string* response) {
    if (!SendAll(request + "\n")) return false;
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *response = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[65536];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Reads one FQP1 response frame. Returns false on socket error/EOF
  /// or an undecodable frame.
  bool RecvFrame(serve::FrameStatus* status, std::uint64_t* req_id,
                 std::string* json) {
    while (true) {
      if (buffer_.size() >= 4) {
        std::uint32_t len = 0;
        std::memcpy(&len, buffer_.data(), sizeof(len));
        if (buffer_.size() >= 4 + static_cast<std::size_t>(len)) {
          const Status decoded = serve::DecodeResponseFrame(
              std::string_view(buffer_.data() + 4, len), status, req_id,
              json);
          buffer_.erase(0, 4 + static_cast<std::size_t>(len));
          return decoded.ok();
        }
      }
      char chunk[65536];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string ItemsJson(const ItemVector& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(items[i]);
  }
  return out + "]";
}

/// The mixed query workload. `uniq` feeds every variable field, so two
/// distinct values always produce distinct canonical keys (the cold
/// phase relies on this to defeat the cache).
std::string MakeQuery(std::size_t uniq, const BinaryDataset& dataset) {
  switch (uniq % 5) {
    case 0:
      return "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":" +
             std::to_string(1 + uniq) + ",\"limit\":5000}";
    case 1:
      return "{\"op\":\"topk\",\"metric\":\"chi_square\",\"k\":" +
             std::to_string(1 + uniq) + ",\"limit\":5000}";
    case 2:
      return "{\"op\":\"filter\",\"minsup\":" + std::to_string(uniq / 100) +
             ",\"minconf\":0." + std::to_string(10 + uniq % 89) +
             ",\"limit\":5000}";
    case 3:
      return "{\"op\":\"contains\",\"items\":[" +
             std::to_string(uniq % dataset.num_items()) +
             "],\"limit\":" + std::to_string(100 + uniq) + "}";
    default:
      return "{\"op\":\"cover\",\"items\":" +
             ItemsJson(dataset.row(uniq % dataset.num_rows())) +
             ",\"limit\":" + std::to_string(100 + uniq) + "}";
  }
}

struct PhaseResult {
  std::vector<double> latencies;  // Seconds per round trip.
  double wall_seconds = 0.0;
  std::size_t requests = 0;
  std::size_t failures = 0;
};

void Collect(PhaseResult* result, std::vector<std::vector<double>>& lat,
             const std::vector<std::size_t>& failures) {
  for (std::size_t c = 0; c < lat.size(); ++c) {
    result->latencies.insert(result->latencies.end(), lat[c].begin(),
                             lat[c].end());
    result->failures += failures[c];
  }
  result->requests = result->latencies.size();
  std::sort(result->latencies.begin(), result->latencies.end());
}

/// Runs `clients` concurrent connections, each issuing `per_client`
/// requests one at a time over the JSON line protocol. `query_of(c, i)`
/// names the request; every round trip is timed individually.
template <typename QueryFn>
PhaseResult RunPhase(int port, std::size_t clients, std::size_t per_client,
                     QueryFn query_of) {
  PhaseResult result;
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::size_t> failures(clients, 0);
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect(port)) {
        failures[c] = per_client;
        return;
      }
      std::string response;
      lat[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        Stopwatch sw;
        if (!client.RoundTrip(query_of(c, i), &response) ||
            response.find("\"ok\":true") == std::string::npos) {
          ++failures[c];
          continue;
        }
        lat[c].push_back(sw.ElapsedSeconds());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds = wall.ElapsedSeconds();
  Collect(&result, lat, failures);
  return result;
}

/// Runs `clients` connections speaking FQP1, each keeping up to `depth`
/// requests in flight. Latency is submit-to-response: the clock starts
/// when the frame is written into a burst, not when its turn comes.
template <typename QueryFn>
PhaseResult RunPipelinedPhase(int port, std::size_t clients,
                              std::size_t per_client, std::size_t depth,
                              QueryFn query_of) {
  PhaseResult result;
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::size_t> failures(clients, 0);
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect(port) ||
          !client.SendAll(std::string(serve::kBinaryPreamble,
                                      serve::kBinaryPreambleSize))) {
        failures[c] = per_client;
        return;
      }
      // Encode the whole request schedule up front so encoding cost is
      // not on the measured path.
      std::vector<std::string> wire(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        serve::QueryRequest parsed;
        if (!serve::ParseRequest(query_of(c, i), &parsed).ok()) {
          failures[c] = per_client;
          return;
        }
        parsed.bin_id = i + 1;
        wire[i] = serve::EncodeBinaryRequest(parsed);
      }
      std::vector<double> send_at(per_client, 0.0);
      lat[c].reserve(per_client);
      Stopwatch clock;
      std::size_t next_send = 0;
      std::size_t next_recv = 0;
      while (next_recv < per_client) {
        if (next_send < per_client && next_send - next_recv < depth) {
          std::string burst;
          const std::size_t until = std::min(per_client, next_recv + depth);
          const double now = clock.ElapsedSeconds();
          while (next_send < until) {
            send_at[next_send] = now;
            burst += wire[next_send++];
          }
          if (!client.SendAll(burst)) {
            failures[c] += per_client - next_recv;
            return;
          }
        }
        serve::FrameStatus status;
        std::uint64_t req_id = 0;
        std::string json;
        if (!client.RecvFrame(&status, &req_id, &json)) {
          failures[c] += per_client - next_recv;
          return;
        }
        if (status != serve::FrameStatus::kOk ||
            req_id != next_recv + 1) {
          ++failures[c];
        } else {
          lat[c].push_back(clock.ElapsedSeconds() - send_at[next_recv]);
        }
        ++next_recv;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds = wall.ElapsedSeconds();
  Collect(&result, lat, failures);
  return result;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * sorted.size()));
  return sorted[i];
}

struct PhaseRow {
  const char* name;
  std::size_t clients;
  std::size_t depth;  // 1 = serial (no pipelining).
  PhaseResult result;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Prints one result row and appends it to the JSON log. Returns the
/// phase p99 in microseconds.
double Report(JsonWriter& json, const PhaseRow& row) {
  const double p50 = Percentile(row.result.latencies, 0.50);
  const double p99 = Percentile(row.result.latencies, 0.99);
  const double qps = row.result.wall_seconds > 0.0
                         ? row.result.requests / row.result.wall_seconds
                         : 0.0;
  std::printf("%10s %6zu %6zu | %9.1f %9.1f %9.0f | %8zu | %6llu %6llu%s\n",
              row.name, row.clients, row.depth, p50 * 1e6, p99 * 1e6, qps,
              row.result.requests,
              static_cast<unsigned long long>(row.hits),
              static_cast<unsigned long long>(row.misses),
              row.result.failures > 0 ? " (FAILURES)" : "");
  std::fflush(stdout);
  json.Add(JsonRecord()
               .Str("bench", "serve_latency")
               .Str("phase", row.name)
               .Int("clients", static_cast<long long>(row.clients))
               .Int("pipeline", static_cast<long long>(row.depth))
               .Int("requests", static_cast<long long>(row.result.requests))
               .Num("p50_us", p50 * 1e6)
               .Num("p99_us", p99 * 1e6)
               .Num("qps", qps)
               .Num("wall_s", row.result.wall_seconds)
               .Int("cache_hits", static_cast<long long>(row.hits))
               .Int("cache_misses", static_cast<long long>(row.misses)));
  json.Flush();
  return p99 * 1e6;
}

}  // namespace
}  // namespace bench
}  // namespace farmer

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  std::size_t count = 400;
  int external_port = 0;
  bool telemetry = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
      count = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      external_port = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--telemetry") == 0) telemetry = true;
  }
  count = std::max<std::size_t>(count, 200);
  PrintBenchHeader("Query-server latency: cold/warm serial JSON and "
                   "pipelined FQP1 at 1/4/16 clients", config);
  JsonWriter json("serve_latency");

  // The served store: the Fig. 10 BC workload's rule groups.
  BenchDataset ds = MakeBenchDataset("BC", config.column_scale);
  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 5;
  FarmerResult mined = MineFarmer(ds.binary, opts);
  std::printf("store: %zu rule groups from %s (%zu rows x %zu items)\n\n",
              mined.groups.size(), ds.name.c_str(),
              static_cast<std::size_t>(ds.binary.num_rows()),
              static_cast<std::size_t>(ds.binary.num_items()));

  std::unique_ptr<Server> server;
  RuleGroupSnapshot swap_source;  // Copy kept for hot-swap storms.
  int port = external_port;
  obs::MetricsRegistry metrics;
  Server::Options server_options;
  server_options.num_shards = 4;
  server_options.max_connections = 64;
  if (telemetry) {
    server_options.metrics = &metrics;
    std::printf("telemetry: metrics registry attached\n");
  }
  if (external_port == 0) {
    RuleGroupSnapshot snapshot;
    snapshot.num_rows = ds.binary.num_rows();
    snapshot.groups = std::move(mined.groups);
    snapshot.params = serve::SnapshotParams::FromMinerOptions(opts);
    snapshot.fingerprint = serve::SnapshotFingerprint::FromDataset(ds.binary);
    swap_source = snapshot;
    server = std::make_unique<Server>(
        RuleGroupIndex(std::move(snapshot), server_options.num_shards),
        server_options);
    const Status started = server->Start();
    if (!started.ok()) {
      std::printf("server failed to start: %s\n", started.ToString().c_str());
      return 1;
    }
    port = server->port();
  }
  std::printf("%10s %6s %6s | %9s %9s %9s | %8s | %6s %6s\n", "phase",
              "conns", "pipe", "p50(us)", "p99(us)", "qps", "requests",
              "hits", "miss");

  // Primes the 8-query warm working set over one connection.
  const auto prime_warm = [&]() -> bool {
    server->cache().Clear();
    Client primer;
    if (!primer.Connect(port)) return false;
    std::string response;
    for (std::size_t i = 0; i < 8; ++i) {
      if (!primer.RoundTrip(MakeQuery(i, ds.binary), &response)) return false;
    }
    return true;
  };

  bool cache_regression = false;
  std::size_t total_failures = 0;
  double warm_serial_qps_16 = 0.0;
  double pipelined_qps_16 = 0.0;
  double best_pipelined_p99_us_16 = 0.0;

  // --- Serial JSON: cold vs warm (or a single mixed phase when driving
  // an external server). ---
  for (std::size_t clients : {std::size_t{1}, std::size_t{4},
                              std::size_t{16}}) {
    const std::size_t per_client = std::max<std::size_t>(count / clients, 8);
    std::vector<PhaseRow> rows;

    if (external_port == 0) {
      // Cold: unique canonical keys, nothing reusable in the cache.
      server->cache().Clear();
      const std::uint64_t h0 = server->cache().hits();
      const std::uint64_t m0 = server->cache().misses();
      PhaseResult cold = RunPhase(
          port, clients, per_client, [&](std::size_t c, std::size_t i) {
            return MakeQuery(1 + c * per_client + i, ds.binary);
          });
      rows.push_back({"cold", clients, 1, std::move(cold),
                      server->cache().hits() - h0,
                      server->cache().misses() - m0});

      // Warm: a fixed 8-query working set, primed before timing.
      if (!prime_warm()) return 1;
      const std::uint64_t h1 = server->cache().hits();
      const std::uint64_t m1 = server->cache().misses();
      PhaseResult warm = RunPhase(
          port, clients, per_client, [&](std::size_t, std::size_t i) {
            return MakeQuery(i % 8, ds.binary);
          });
      rows.push_back({"warm", clients, 1, std::move(warm),
                      server->cache().hits() - h1,
                      server->cache().misses() - m1});
    } else {
      PhaseResult mixed = RunPhase(
          port, clients, per_client, [&](std::size_t c, std::size_t i) {
            return MakeQuery(c * per_client + i, ds.binary);
          });
      rows.push_back({"mixed", clients, 1, std::move(mixed), 0, 0});
    }

    double cold_p50 = 0.0;
    for (PhaseRow& row : rows) {
      const double p50 = Percentile(row.result.latencies, 0.50);
      if (std::strcmp(row.name, "cold") == 0) cold_p50 = p50;
      if (std::strcmp(row.name, "warm") == 0) {
        if (p50 >= cold_p50) cache_regression = true;
        if (clients == 16 && row.result.wall_seconds > 0.0) {
          warm_serial_qps_16 =
              row.result.requests / row.result.wall_seconds;
        }
      }
      Report(json, row);
      total_failures += row.result.failures;
    }
  }

  if (external_port == 0) {
    // --- Pipelined FQP1 over the warm working set. ---
    std::printf("\n");
    for (const auto& combo :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 16}, {4, 16}, {16, 8}, {16, 16}}) {
      const std::size_t clients = combo.first;
      const std::size_t depth = combo.second;
      // Longer runs than the serial phases: the first window is all
      // queueing transient, so give steady state room to dominate.
      const std::size_t per_client =
          std::max<std::size_t>(2 * count / clients, 32);
      if (!prime_warm()) return 1;
      const std::uint64_t h0 = server->cache().hits();
      const std::uint64_t m0 = server->cache().misses();
      PhaseResult warm = RunPipelinedPhase(
          port, clients, per_client, depth,
          [&](std::size_t, std::size_t i) {
            return MakeQuery(i % 8, ds.binary);
          });
      PhaseRow row{"pipelined", clients, depth, std::move(warm),
                   server->cache().hits() - h0,
                   server->cache().misses() - m0};
      const double p99_us = Report(json, row);
      total_failures += row.result.failures;
      if (clients == 16) {
        if (row.result.wall_seconds > 0.0) {
          pipelined_qps_16 =
              std::max(pipelined_qps_16,
                       row.result.requests / row.result.wall_seconds);
        }
        if (best_pipelined_p99_us_16 == 0.0 ||
            p99_us < best_pipelined_p99_us_16) {
          best_pipelined_p99_us_16 = p99_us;
        }
      }
    }

    // --- Hot-swap storm: 16 pipelined clients, mixed queries, the
    // snapshot swapped mid-flight. Zero failures allowed. ---
    std::printf("\n");
    const std::uint64_t version_before = server->snapshot_version();
    constexpr int kSwaps = 5;
    std::atomic<bool> storm_done{false};
    std::thread swapper([&] {
      for (int s = 0; s < kSwaps; ++s) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        server->InstallIndex(RuleGroupIndex(RuleGroupSnapshot(swap_source),
                                            server_options.num_shards));
        if (storm_done.load()) break;
      }
    });
    const std::size_t per_client = std::max<std::size_t>(count / 16, 8);
    PhaseResult storm = RunPipelinedPhase(
        port, 16, per_client, 16, [&](std::size_t c, std::size_t i) {
          return MakeQuery(c * per_client + i, ds.binary);
        });
    storm_done.store(true);
    swapper.join();
    PhaseRow row{"swapstorm", 16, 16, std::move(storm), 0, 0};
    Report(json, row);
    total_failures += row.result.failures;
    if (server->snapshot_version() <= version_before) {
      std::printf("\nSWAP FAILURE: snapshot version did not advance "
                  "(still %llu)\n",
                  static_cast<unsigned long long>(server->snapshot_version()));
      return 1;
    }
  }

  if (server != nullptr) server->Shutdown();
  if (total_failures > 0) {
    std::printf("\n%zu requests failed\n", total_failures);
    return 1;
  }
  if (cache_regression) {
    std::printf("\nCACHE REGRESSION: warm p50 is not below cold p50\n");
    return 1;
  }
  if (best_pipelined_p99_us_16 > 0.0 &&
      best_pipelined_p99_us_16 >= kBaselineWarmP99Us) {
    std::printf("\nP99 REGRESSION: no pipelined configuration at 16 "
                "clients beat the %.0f us thread-per-connection baseline "
                "(best %.1f us)\n",
                kBaselineWarmP99Us, best_pipelined_p99_us_16);
    return 1;
  }
  if (warm_serial_qps_16 > 0.0 && pipelined_qps_16 > 0.0) {
    std::printf("\npipelined speedup at 16 clients: %.1fx over serial "
                "warm (%0.f vs %0.f qps)\n",
                pipelined_qps_16 / warm_serial_qps_16, pipelined_qps_16,
                warm_serial_qps_16);
  }
  std::printf("json: %s\n", json.path().c_str());
  return 0;
}
