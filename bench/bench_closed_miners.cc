// Supplementary: the row-enumeration family's substrate claim (CARPENTER,
// KDD 2003 — the predecessor FARMER generalizes, reference [17]): frequent
// closed itemset mining by row enumeration vs the column-enumeration
// closed miners CHARM and CLOSET+ on the five microarray datasets.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/charm.h"
#include "baselines/closet.h"
#include "baselines/cobbler.h"
#include "bench/bench_common.h"
#include "core/carpenter.h"
#include "dataset/dataset.h"

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  PrintBenchHeader(
      "Closed itemset mining: CARPENTER (row enum) vs CHARM vs CLOSET+",
      config);

  std::printf("%-5s %7s | %12s %10s %10s %11s | %9s\n", "data", "minsup",
              "CARPENTER(s)", "CHARM(s)", "CLOSET+(s)", "COBBLER(s)",
              "#closed");
  for (const std::string& name : PaperDatasetNames()) {
    if (!config.WantsDataset(name)) continue;
    BenchDataset ds = MakeBenchDataset(name, config.column_scale);
    const std::size_t n = ds.binary.num_rows();
    // Items cover ~n/10 rows; sweep down from that. (Lower supports blow
    // up the closed-set count on every miner; the per-run limit is the
    // guard either way.)
    std::vector<std::size_t> sweep = {std::max<std::size_t>(4, n / 10),
                                      std::max<std::size_t>(4, n / 13)};
    sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
    for (std::size_t minsup : sweep) {
      CarpenterOptions copts;
      copts.min_support = minsup;
      copts.deadline = Deadline::After(config.timeout_seconds);
      copts.max_closed = 500000;
      CarpenterResult carpenter = MineCarpenter(ds.binary, copts);

      CharmOptions chopts;
      chopts.min_support = minsup;
      chopts.deadline = Deadline::After(config.timeout_seconds);
      chopts.max_closed = 500000;
      CharmResult charm = MineCharm(ds.binary, chopts);

      ClosetOptions clopts;
      clopts.min_support = minsup;
      clopts.deadline = Deadline::After(config.timeout_seconds);
      clopts.max_closed = 500000;
      ClosetResult closet = MineCloset(ds.binary, clopts);

      CobblerOptions cbopts;
      cbopts.min_support = minsup;
      cbopts.deadline = Deadline::After(config.timeout_seconds);
      cbopts.max_closed = 500000;
      CobblerResult cobbler = MineCobbler(ds.binary, cbopts);

      std::printf("%-5s %7zu | %12s %10s %10s %11s | %9zu%s\n",
                  name.c_str(), minsup,
                  FmtSeconds(carpenter.seconds, carpenter.timed_out,
                             carpenter.overflowed)
                      .c_str(),
                  FmtSeconds(charm.seconds, charm.timed_out,
                             charm.overflowed)
                      .c_str(),
                  FmtSeconds(closet.seconds, closet.timed_out,
                             closet.overflowed)
                      .c_str(),
                  FmtSeconds(cobbler.seconds, cobbler.timed_out,
                             cobbler.overflowed)
                      .c_str(),
                  carpenter.closed.size(),
                  carpenter.timed_out || carpenter.overflowed
                      ? "(partial)"
                      : "");
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // COBBLER's home turf (SSDBM'04): tables both tall and wide. Replicate
  // the CT rows to stretch the row dimension while keeping the columns.
  std::printf("tall-and-wide (CT rows replicated; COBBLER's regime):\n");
  std::printf("%-6s %7s %7s | %12s %10s %11s\n", "factor", "#rows",
              "minsup", "CARPENTER(s)", "CHARM(s)", "COBBLER(s)");
  if (config.WantsDataset("CT")) {
    BenchDataset ct = MakeBenchDataset("CT", config.column_scale);
    for (std::size_t factor : {2u, 6u, 12u}) {
      BinaryDataset wide = ReplicateRows(ct.binary, factor);
      const std::size_t minsup = std::max<std::size_t>(4, wide.num_rows() / 12);

      CarpenterOptions copts;
      copts.min_support = minsup;
      copts.deadline = Deadline::After(config.timeout_seconds);
      copts.max_closed = 500000;
      CarpenterResult carpenter = MineCarpenter(wide, copts);

      CharmOptions chopts;
      chopts.min_support = minsup;
      chopts.deadline = Deadline::After(config.timeout_seconds);
      chopts.max_closed = 500000;
      CharmResult charm = MineCharm(wide, chopts);

      CobblerOptions cbopts;
      cbopts.min_support = minsup;
      cbopts.deadline = Deadline::After(config.timeout_seconds);
      cbopts.max_closed = 500000;
      CobblerResult cobbler = MineCobbler(wide, cbopts);

      std::printf("%-6zu %7zu %7zu | %12s %10s %11s\n", factor,
                  wide.num_rows(), minsup,
                  FmtSeconds(carpenter.seconds, carpenter.timed_out,
                             carpenter.overflowed)
                      .c_str(),
                  FmtSeconds(charm.seconds, charm.timed_out,
                             charm.overflowed)
                      .c_str(),
                  FmtSeconds(cobbler.seconds, cobbler.timed_out,
                             cobbler.overflowed)
                      .c_str());
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  std::printf("reference (CARPENTER, KDD'03 / this paper §5): row "
              "enumeration dominates column enumeration for closed "
              "pattern mining on long biological datasets; the paper also "
              "reports CHARM beating CLOSET+ on microarray data\n");
  return 0;
}
