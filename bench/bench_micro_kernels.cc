// Micro benchmarks of the library's hot kernels: bitset algebra,
// chi-square bounds, tidset intersection, and a full small FARMER run.
// The word-parallel miner kernels (AndCount / AndCountPrefix /
// IntersectsAllOf) are benchmarked against the sorted-vector +
// binary_search loops they replaced, and a SIMD sweep times every
// kernel under each supported instruction-set tier (scalar / sse42 /
// avx2 / avx512) with speedups against the scalar tier.
//
// Results are also written to BENCH_micro_kernels.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "core/farmer.h"
#include "core/measures.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"
#include "dataset/transpose.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "util/simd/simd.h"

namespace {

using namespace farmer;

// A random (bitset, sorted vector) pair over the same positions, the two
// representations the old and new kernels consume.
struct DualSet {
  Bitset bits;
  std::vector<std::size_t> sorted;
};

DualSet MakeDualSet(std::size_t bits, double density, Rng& rng) {
  DualSet d;
  d.bits.Resize(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(density)) {
      d.bits.Set(i);
      d.sorted.push_back(i);
    }
  }
  return d;
}

void BM_BitsetIntersectCount(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Bitset a(bits), b(bits);
  Rng rng(1);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(0.5)) a.Set(i);
    if (rng.NextBool(0.5)) b.Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IntersectCount(b));
  }
}
BENCHMARK(BM_BitsetIntersectCount)->Arg(128)->Arg(1024)->Arg(8192);

void BM_BitsetSupersetCheck(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Bitset small(bits), big(bits);
  Rng rng(2);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(0.3)) {
      small.Set(i);
      big.Set(i);
    } else if (rng.NextBool(0.3)) {
      big.Set(i);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.IsSubsetOf(big));
  }
}
BENCHMARK(BM_BitsetSupersetCheck)->Arg(128)->Arg(1024);

void BM_ChiSquareUpperBound(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    const std::size_t n = 100, m = 46;
    const std::size_t y = rng.NextBelow(m + 1);
    const std::size_t x = y + rng.NextBelow(n - m + 1);
    benchmark::DoNotOptimize(ChiSquareUpperBound(x, y, n, m));
  }
}
BENCHMARK(BM_ChiSquareUpperBound);

void BM_TransposeBuild(benchmark::State& state) {
  SyntheticSpec spec;
  spec.num_rows = 60;
  spec.num_genes = static_cast<std::size_t>(state.range(0));
  spec.num_class1 = 30;
  spec.seed = 4;
  ExpressionMatrix m = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(m, 10).Apply(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransposedTable::Build(ds));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.num_genes));
}
BENCHMARK(BM_TransposeBuild)->Arg(200)->Arg(800);

void BM_FarmerSmallRun(benchmark::State& state) {
  SyntheticSpec spec;
  spec.num_rows = 40;
  spec.num_genes = static_cast<std::size_t>(state.range(0));
  spec.num_class1 = 20;
  spec.seed = 5;
  ExpressionMatrix m = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(m, 10).Apply(m);
  MinerOptions opts;
  opts.min_support = 10;
  opts.min_confidence = 0.9;
  opts.mine_lower_bounds = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineFarmer(ds, opts));
  }
}
BENCHMARK(BM_FarmerSmallRun)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

// --- New word-parallel kernels vs the binary_search loops they replaced.

// Old: count |a ∩ b| by walking a's sorted list and binary-searching b's.
void BM_AndCount_BinarySearch(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  DualSet a = MakeDualSet(bits, 0.4, rng);
  DualSet b = MakeDualSet(bits, 0.4, rng);
  for (auto _ : state) {
    std::size_t count = 0;
    for (std::size_t pos : a.sorted) {
      if (std::binary_search(b.sorted.begin(), b.sorted.end(), pos)) ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_AndCount_BinarySearch)->Arg(128)->Arg(1024)->Arg(8192);

// New: one popcount pass over the words.
void BM_AndCount_Bitset(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  DualSet a = MakeDualSet(bits, 0.4, rng);
  DualSet b = MakeDualSet(bits, 0.4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.bits.AndCount(b.bits));
  }
}
BENCHMARK(BM_AndCount_Bitset)->Arg(128)->Arg(1024)->Arg(8192);

// Old: count class-C members of a tuple's candidate list by walking the
// sorted candidates, binary-searching the tuple, stopping at the class
// boundary.
void BM_AndCountPrefix_BinarySearch(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const std::size_t m = bits / 2;
  Rng rng(12);
  DualSet tuple = MakeDualSet(bits, 0.5, rng);
  DualSet cand = MakeDualSet(bits, 0.5, rng);
  for (auto _ : state) {
    std::size_t count = 0;
    for (std::size_t pos : cand.sorted) {
      if (pos >= m) break;
      if (std::binary_search(tuple.sorted.begin(), tuple.sorted.end(),
                             pos)) {
        ++count;
      }
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_AndCountPrefix_BinarySearch)->Arg(128)->Arg(1024)->Arg(8192);

// New: masked popcount over the prefix words.
void BM_AndCountPrefix_Bitset(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const std::size_t m = bits / 2;
  Rng rng(12);
  DualSet tuple = MakeDualSet(bits, 0.5, rng);
  DualSet cand = MakeDualSet(bits, 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuple.bits.AndCountPrefix(cand.bits, m));
  }
}
BENCHMARK(BM_AndCountPrefix_Bitset)->Arg(128)->Arg(1024)->Arg(8192);

// Old back scan inner loop: for each probe row, binary-search every
// tuple's sorted list; report the first row found in all of them.
void BM_IntersectsAllOf_BinarySearch(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const std::size_t num_tuples = 16;
  Rng rng(13);
  DualSet probe = MakeDualSet(bits, 0.3, rng);
  std::vector<DualSet> tuples;
  for (std::size_t t = 0; t < num_tuples; ++t) {
    tuples.push_back(MakeDualSet(bits, 0.8, rng));
  }
  for (auto _ : state) {
    bool found = false;
    for (std::size_t pos : probe.sorted) {
      bool in_all = true;
      for (const DualSet& t : tuples) {
        if (!std::binary_search(t.sorted.begin(), t.sorted.end(), pos)) {
          in_all = false;
          break;
        }
      }
      if (in_all) {
        found = true;
        break;
      }
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_IntersectsAllOf_BinarySearch)->Arg(128)->Arg(1024);

// New: running word-parallel intersection with early exit.
void BM_IntersectsAllOf_Bitset(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const std::size_t num_tuples = 16;
  Rng rng(13);
  DualSet probe = MakeDualSet(bits, 0.3, rng);
  std::vector<DualSet> tuples;
  for (std::size_t t = 0; t < num_tuples; ++t) {
    tuples.push_back(MakeDualSet(bits, 0.8, rng));
  }
  std::vector<const Bitset*> ptrs;
  for (const DualSet& t : tuples) ptrs.push_back(&t.bits);
  Bitset scratch(bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probe.bits.IntersectsAllOf(ptrs.data(), ptrs.size(), &scratch));
  }
}
BENCHMARK(BM_IntersectsAllOf_Bitset)->Arg(128)->Arg(1024);

// --- Per-(kernel, SIMD tier) sweep ----------------------------------
//
// Forces each supported kernel tier in turn and times the dispatching
// Bitset entry points on 8192-bit sets, emitting one JSON row per
// (kernel, level) with the speedup against the scalar tier. Two
// conditions exit nonzero: a forced level that silently fell back to
// another tier (the dispatcher must refuse unsupported levels, never
// degrade quietly), and a widest vector tier that fails to reach 1.5x
// over scalar on AndCount / AndCountPrefix. A host with no vector tier
// prints a skip for the speedup gate instead of failing.

constexpr std::size_t kSweepBits = 8192;

// Median of 5 timed repetitions, iteration count calibrated so each
// repetition runs for at least ~5 ms.
template <typename Body>
double MedianNsPerOp(Body&& body) {
  using Clock = std::chrono::steady_clock;
  const auto seconds_for = [&](std::size_t iters) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) body();
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  std::size_t iters = 64;
  while (seconds_for(iters) < 5e-3 && iters < (std::size_t{1} << 26)) {
    iters *= 4;
  }
  std::vector<double> reps;
  for (int r = 0; r < 5; ++r) {
    reps.push_back(seconds_for(iters) * 1e9 / static_cast<double>(iters));
  }
  std::sort(reps.begin(), reps.end());
  return reps[2];
}

int RunSimdLevelSweep(farmer::bench::JsonWriter* json) {
  Rng rng(21);
  Bitset a(kSweepBits), b(kSweepBits);
  for (std::size_t i = 0; i < kSweepBits; ++i) {
    if (rng.NextBool(0.5)) a.Set(i);
    if (rng.NextBool(0.5)) b.Set(i);
  }
  Bitset out(kSweepBits), acc(kSweepBits);
  std::size_t sink = 0;

  struct SweepKernel {
    const char* name;
    std::function<void()> run;
  };
  const std::vector<SweepKernel> kernels = {
      {"AndCount", [&] { sink += a.AndCount(b); }},
      {"AndCountPrefix",
       [&] { sink += a.AndCountPrefix(b, kSweepBits / 2); }},
      {"Count", [&] { sink += a.Count(); }},
      {"AndInto", [&] { Bitset::AndInto(a, b, &out); }},
      {"OrAnd", [&] { acc.OrAnd(a, b); }},
  };

  const simd::Level prior = simd::ActiveLevel();
  std::map<std::string, double> scalar_ns;
  std::map<std::string, double> widest_speedup;
  simd::Level widest = simd::Level::kScalar;
  int rc = 0;

  for (int l = 0; l < simd::kNumLevels && rc == 0; ++l) {
    const auto level = static_cast<simd::Level>(l);
    if (!simd::LevelSupported(level)) {
      std::printf("simd sweep: %-6s unsupported here, skipped\n",
                  simd::LevelName(level));
      continue;
    }
    if (!simd::ForceLevel(level) || simd::ActiveLevel() != level) {
      std::fprintf(stderr,
                   "simd sweep: forcing %s silently fell back to %s\n",
                   simd::LevelName(level),
                   simd::LevelName(simd::ActiveLevel()));
      rc = 1;
      break;
    }
    widest = level;
    for (const SweepKernel& k : kernels) {
      const double ns = MedianNsPerOp(k.run);
      if (level == simd::Level::kScalar) scalar_ns[k.name] = ns;
      const double speedup = scalar_ns.count(k.name) != 0 && ns > 0.0
                                 ? scalar_ns[k.name] / ns
                                 : 0.0;
      widest_speedup[k.name] = speedup;
      std::printf("simd sweep: %-14s %-6s %8.1f ns/op  %5.2fx vs scalar\n",
                  k.name, simd::LevelName(level), ns, speedup);
      // JsonWriter::Add also stamps the row with the active level as
      // "simd_level"; "level" is kept explicit so the row is
      // self-describing even if the telemetry fields change.
      json->Add(farmer::bench::JsonRecord()
                    .Str("bench", "micro_kernels")
                    .Str("name", std::string("SimdSweep/") + k.name)
                    .Str("level", simd::LevelName(level))
                    .Num("ns_per_op", ns)
                    .Num("speedup_vs_scalar", speedup)
                    .Int("bits", static_cast<long long>(kSweepBits)));
    }
  }
  benchmark::DoNotOptimize(sink);

  if (rc == 0) {
    if (widest == simd::Level::kScalar) {
      std::printf(
          "simd sweep: no vector tier on this host; 1.5x gate skipped\n");
    } else {
      for (const char* name : {"AndCount", "AndCountPrefix"}) {
        const double speedup = widest_speedup[name];
        if (speedup < 1.5) {
          std::fprintf(stderr,
                       "simd sweep: %s at %s reached only %.2fx vs scalar "
                       "(need >= 1.5x)\n",
                       name, simd::LevelName(widest), speedup);
          rc = 1;
        }
      }
    }
  }

  if (!simd::ForceLevel(prior)) rc = 1;
  json->Flush();
  return rc;
}

// Reporter that mirrors the console output into BENCH_micro_kernels.json.
class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonMirrorReporter(farmer::bench::JsonWriter* json)
      : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      json_->Add(farmer::bench::JsonRecord()
                     .Str("bench", "micro_kernels")
                     .Str("name", run.benchmark_name())
                     .Num("seconds",
                          run.iterations > 0
                              ? run.real_accumulated_time / run.iterations
                              : 0.0)
                     .Int("iterations",
                          static_cast<long long>(run.iterations))
                     .Int("threads", static_cast<long long>(run.threads)));
    }
    json_->Flush();
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  farmer::bench::JsonWriter* json_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  farmer::bench::JsonWriter json("micro_kernels");
  const int sweep_rc = RunSimdLevelSweep(&json);
  JsonMirrorReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  std::printf("json: %s\n", json.path().c_str());
  return sweep_rc;
}
