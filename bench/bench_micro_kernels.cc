// Micro benchmarks of the library's hot kernels: bitset algebra,
// chi-square bounds, tidset intersection, and a full small FARMER run.
// The word-parallel miner kernels (AndCount / AndCountPrefix /
// IntersectsAllOf) are benchmarked against the sorted-vector +
// binary_search loops they replaced.
//
// Results are also written to BENCH_micro_kernels.json.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "core/farmer.h"
#include "core/measures.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"
#include "dataset/transpose.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace {

using namespace farmer;

// A random (bitset, sorted vector) pair over the same positions, the two
// representations the old and new kernels consume.
struct DualSet {
  Bitset bits;
  std::vector<std::size_t> sorted;
};

DualSet MakeDualSet(std::size_t bits, double density, Rng& rng) {
  DualSet d;
  d.bits.Resize(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(density)) {
      d.bits.Set(i);
      d.sorted.push_back(i);
    }
  }
  return d;
}

void BM_BitsetIntersectCount(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Bitset a(bits), b(bits);
  Rng rng(1);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(0.5)) a.Set(i);
    if (rng.NextBool(0.5)) b.Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IntersectCount(b));
  }
}
BENCHMARK(BM_BitsetIntersectCount)->Arg(128)->Arg(1024)->Arg(8192);

void BM_BitsetSupersetCheck(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Bitset small(bits), big(bits);
  Rng rng(2);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(0.3)) {
      small.Set(i);
      big.Set(i);
    } else if (rng.NextBool(0.3)) {
      big.Set(i);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.IsSubsetOf(big));
  }
}
BENCHMARK(BM_BitsetSupersetCheck)->Arg(128)->Arg(1024);

void BM_ChiSquareUpperBound(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    const std::size_t n = 100, m = 46;
    const std::size_t y = rng.NextBelow(m + 1);
    const std::size_t x = y + rng.NextBelow(n - m + 1);
    benchmark::DoNotOptimize(ChiSquareUpperBound(x, y, n, m));
  }
}
BENCHMARK(BM_ChiSquareUpperBound);

void BM_TransposeBuild(benchmark::State& state) {
  SyntheticSpec spec;
  spec.num_rows = 60;
  spec.num_genes = static_cast<std::size_t>(state.range(0));
  spec.num_class1 = 30;
  spec.seed = 4;
  ExpressionMatrix m = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(m, 10).Apply(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransposedTable::Build(ds));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.num_genes));
}
BENCHMARK(BM_TransposeBuild)->Arg(200)->Arg(800);

void BM_FarmerSmallRun(benchmark::State& state) {
  SyntheticSpec spec;
  spec.num_rows = 40;
  spec.num_genes = static_cast<std::size_t>(state.range(0));
  spec.num_class1 = 20;
  spec.seed = 5;
  ExpressionMatrix m = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(m, 10).Apply(m);
  MinerOptions opts;
  opts.min_support = 10;
  opts.min_confidence = 0.9;
  opts.mine_lower_bounds = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineFarmer(ds, opts));
  }
}
BENCHMARK(BM_FarmerSmallRun)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

// --- New word-parallel kernels vs the binary_search loops they replaced.

// Old: count |a ∩ b| by walking a's sorted list and binary-searching b's.
void BM_AndCount_BinarySearch(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  DualSet a = MakeDualSet(bits, 0.4, rng);
  DualSet b = MakeDualSet(bits, 0.4, rng);
  for (auto _ : state) {
    std::size_t count = 0;
    for (std::size_t pos : a.sorted) {
      if (std::binary_search(b.sorted.begin(), b.sorted.end(), pos)) ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_AndCount_BinarySearch)->Arg(128)->Arg(1024)->Arg(8192);

// New: one popcount pass over the words.
void BM_AndCount_Bitset(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  DualSet a = MakeDualSet(bits, 0.4, rng);
  DualSet b = MakeDualSet(bits, 0.4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.bits.AndCount(b.bits));
  }
}
BENCHMARK(BM_AndCount_Bitset)->Arg(128)->Arg(1024)->Arg(8192);

// Old: count class-C members of a tuple's candidate list by walking the
// sorted candidates, binary-searching the tuple, stopping at the class
// boundary.
void BM_AndCountPrefix_BinarySearch(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const std::size_t m = bits / 2;
  Rng rng(12);
  DualSet tuple = MakeDualSet(bits, 0.5, rng);
  DualSet cand = MakeDualSet(bits, 0.5, rng);
  for (auto _ : state) {
    std::size_t count = 0;
    for (std::size_t pos : cand.sorted) {
      if (pos >= m) break;
      if (std::binary_search(tuple.sorted.begin(), tuple.sorted.end(),
                             pos)) {
        ++count;
      }
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_AndCountPrefix_BinarySearch)->Arg(128)->Arg(1024)->Arg(8192);

// New: masked popcount over the prefix words.
void BM_AndCountPrefix_Bitset(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const std::size_t m = bits / 2;
  Rng rng(12);
  DualSet tuple = MakeDualSet(bits, 0.5, rng);
  DualSet cand = MakeDualSet(bits, 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuple.bits.AndCountPrefix(cand.bits, m));
  }
}
BENCHMARK(BM_AndCountPrefix_Bitset)->Arg(128)->Arg(1024)->Arg(8192);

// Old back scan inner loop: for each probe row, binary-search every
// tuple's sorted list; report the first row found in all of them.
void BM_IntersectsAllOf_BinarySearch(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const std::size_t num_tuples = 16;
  Rng rng(13);
  DualSet probe = MakeDualSet(bits, 0.3, rng);
  std::vector<DualSet> tuples;
  for (std::size_t t = 0; t < num_tuples; ++t) {
    tuples.push_back(MakeDualSet(bits, 0.8, rng));
  }
  for (auto _ : state) {
    bool found = false;
    for (std::size_t pos : probe.sorted) {
      bool in_all = true;
      for (const DualSet& t : tuples) {
        if (!std::binary_search(t.sorted.begin(), t.sorted.end(), pos)) {
          in_all = false;
          break;
        }
      }
      if (in_all) {
        found = true;
        break;
      }
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_IntersectsAllOf_BinarySearch)->Arg(128)->Arg(1024);

// New: running word-parallel intersection with early exit.
void BM_IntersectsAllOf_Bitset(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const std::size_t num_tuples = 16;
  Rng rng(13);
  DualSet probe = MakeDualSet(bits, 0.3, rng);
  std::vector<DualSet> tuples;
  for (std::size_t t = 0; t < num_tuples; ++t) {
    tuples.push_back(MakeDualSet(bits, 0.8, rng));
  }
  std::vector<const Bitset*> ptrs;
  for (const DualSet& t : tuples) ptrs.push_back(&t.bits);
  Bitset scratch(bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probe.bits.IntersectsAllOf(ptrs.data(), ptrs.size(), &scratch));
  }
}
BENCHMARK(BM_IntersectsAllOf_Bitset)->Arg(128)->Arg(1024);

// Reporter that mirrors the console output into BENCH_micro_kernels.json.
class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonMirrorReporter(farmer::bench::JsonWriter* json)
      : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      json_->Add(farmer::bench::JsonRecord()
                     .Str("bench", "micro_kernels")
                     .Str("name", run.benchmark_name())
                     .Num("seconds",
                          run.iterations > 0
                              ? run.real_accumulated_time / run.iterations
                              : 0.0)
                     .Int("iterations",
                          static_cast<long long>(run.iterations))
                     .Int("threads", static_cast<long long>(run.threads)));
    }
    json_->Flush();
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  farmer::bench::JsonWriter* json_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  farmer::bench::JsonWriter json("micro_kernels");
  JsonMirrorReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  std::printf("json: %s\n", json.path().c_str());
  return 0;
}
