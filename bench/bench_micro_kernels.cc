// Micro benchmarks of the library's hot kernels: bitset algebra,
// chi-square bounds, tidset intersection, and a full small FARMER run.

#include <benchmark/benchmark.h>

#include "core/farmer.h"
#include "core/measures.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"
#include "dataset/transpose.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace {

using namespace farmer;

void BM_BitsetIntersectCount(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Bitset a(bits), b(bits);
  Rng rng(1);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(0.5)) a.Set(i);
    if (rng.NextBool(0.5)) b.Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IntersectCount(b));
  }
}
BENCHMARK(BM_BitsetIntersectCount)->Arg(128)->Arg(1024)->Arg(8192);

void BM_BitsetSupersetCheck(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  Bitset small(bits), big(bits);
  Rng rng(2);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(0.3)) {
      small.Set(i);
      big.Set(i);
    } else if (rng.NextBool(0.3)) {
      big.Set(i);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.IsSubsetOf(big));
  }
}
BENCHMARK(BM_BitsetSupersetCheck)->Arg(128)->Arg(1024);

void BM_ChiSquareUpperBound(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    const std::size_t n = 100, m = 46;
    const std::size_t y = rng.NextBelow(m + 1);
    const std::size_t x = y + rng.NextBelow(n - m + 1);
    benchmark::DoNotOptimize(ChiSquareUpperBound(x, y, n, m));
  }
}
BENCHMARK(BM_ChiSquareUpperBound);

void BM_TransposeBuild(benchmark::State& state) {
  SyntheticSpec spec;
  spec.num_rows = 60;
  spec.num_genes = static_cast<std::size_t>(state.range(0));
  spec.num_class1 = 30;
  spec.seed = 4;
  ExpressionMatrix m = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(m, 10).Apply(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransposedTable::Build(ds));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.num_genes));
}
BENCHMARK(BM_TransposeBuild)->Arg(200)->Arg(800);

void BM_FarmerSmallRun(benchmark::State& state) {
  SyntheticSpec spec;
  spec.num_rows = 40;
  spec.num_genes = static_cast<std::size_t>(state.range(0));
  spec.num_class1 = 20;
  spec.seed = 5;
  ExpressionMatrix m = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(m, 10).Apply(m);
  MinerOptions opts;
  opts.min_support = 10;
  opts.min_confidence = 0.9;
  opts.mine_lower_bounds = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineFarmer(ds, opts));
  }
}
BENCHMARK(BM_FarmerSmallRun)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
