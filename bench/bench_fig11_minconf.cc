// Figure 11: runtime vs minimum confidence at minsup = 1, with the
// chi-square constraint off (minchi = 0) and on (minchi = 10) — §4.1.2 and
// §4.1.3 — plus the IRG counts (panel f).
//
// Expected shape: runtime falls as minconf rises (confidence pruning
// works); the minchi = 10 series sits below the minchi = 0 series
// (chi-square pruning adds on top); the competitors cannot run at
// minsup = 1 at all (the paper reports >1 day / out of memory), which the
// harness reports as TIMEOUT.

#include <cstdio>
#include <vector>

#include "baselines/charm.h"
#include "baselines/columne.h"
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "core/farmer.h"

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  PrintBenchHeader(
      "Figure 11: runtime vs minconf at minsup=1, minchi in {0, 10}",
      config);
  JsonWriter json("fig11_minconf");

  const std::vector<double> minconfs = {0.5, 0.7, 0.8, 0.85, 0.9, 0.99};
  std::printf("%-5s %8s | %12s %9s | %12s %9s\n", "data", "minconf",
              "chi=0 t(s)", "#IRGs", "chi=10 t(s)", "#IRGs");
  for (const std::string& name : PaperDatasetNames()) {
    if (!config.WantsDataset(name)) continue;
    BenchDataset ds = MakeBenchDataset(name, config.column_scale);
    for (double minconf : minconfs) {
      std::string cells[2];
      std::size_t counts[2] = {0, 0};
      bool partial[2] = {false, false};
      const double minchis[2] = {0.0, 10.0};
      for (int variant = 0; variant < 2; ++variant) {
        MinerOptions opts;
        opts.consequent = 1;
        opts.min_support = 1;
        opts.min_confidence = minconf;
        opts.min_chi_square = minchis[variant];
        opts.mine_lower_bounds = true;
        opts.deadline = Deadline::After(config.timeout_seconds);
        FarmerResult r = MineFarmer(ds.binary, opts);
        const double seconds =
            r.stats.mine_seconds + r.stats.lower_bound_seconds;
        cells[variant] = FmtSeconds(seconds, r.stats.timed_out);
        counts[variant] = r.groups.size();
        partial[variant] = r.stats.timed_out;
        json.Add(JsonRecord()
                     .Str("bench", "fig11_minconf")
                     .Str("algorithm", "FARMER")
                     .Str("dataset", name)
                     .Num("column_scale", config.column_scale)
                     .Int("minsup", 1)
                     .Num("minconf", minconf)
                     .Num("minchi", minchis[variant])
                     .Int("threads", 1)
                     .Num("seconds", seconds)
                     .Int("nodes_visited",
                          static_cast<long long>(r.stats.nodes_visited))
                     .Int("groups", static_cast<long long>(r.groups.size()))
                     .Bool("timed_out", r.stats.timed_out));
        json.Flush();
      }
      std::printf("%-5s %8.2f | %12s %8zu%s | %12s %8zu%s\n", name.c_str(),
                  minconf, cells[0].c_str(), counts[0],
                  partial[0] ? "*" : " ", cells[1].c_str(), counts[1],
                  partial[1] ? "*" : " ");
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // One competitor datapoint per dataset documents the paper's "ColumnE
  // needs more than a day, CHARM runs out of memory at minsup=1" claim.
  std::printf("competitors at minsup=1 (single run per dataset):\n");
  std::printf("%-5s %12s %12s\n", "data", "ColumnE(s)", "CHARM(s)");
  for (const std::string& name : PaperDatasetNames()) {
    if (!config.WantsDataset(name)) continue;
    BenchDataset ds = MakeBenchDataset(name, config.column_scale);
    ColumnEOptions copts;
    copts.min_support = 1;
    copts.min_confidence = 0.9;
    copts.deadline = Deadline::After(config.timeout_seconds);
    copts.max_rules = 500000;
    ColumnEResult columne = MineColumnE(ds.binary, copts);
    CharmOptions chopts;
    chopts.min_support = 1;
    chopts.deadline = Deadline::After(config.timeout_seconds);
    chopts.max_closed = 500000;
    CharmResult charm = MineCharm(ds.binary, chopts);
    json.Add(JsonRecord()
                 .Str("bench", "fig11_minconf")
                 .Str("algorithm", "ColumnE")
                 .Str("dataset", name)
                 .Num("column_scale", config.column_scale)
                 .Int("minsup", 1)
                 .Num("minconf", 0.9)
                 .Int("threads", 1)
                 .Num("seconds", columne.seconds)
                 .Bool("timed_out", columne.timed_out || columne.overflowed));
    json.Add(JsonRecord()
                 .Str("bench", "fig11_minconf")
                 .Str("algorithm", "CHARM")
                 .Str("dataset", name)
                 .Num("column_scale", config.column_scale)
                 .Int("minsup", 1)
                 .Int("threads", 1)
                 .Num("seconds", charm.seconds)
                 .Bool("timed_out", charm.timed_out || charm.overflowed));
    json.Flush();
    std::printf("%-5s %12s %12s\n", name.c_str(),
                FmtSeconds(columne.seconds, columne.timed_out,
                           columne.overflowed)
                    .c_str(),
                FmtSeconds(charm.seconds, charm.timed_out, charm.overflowed)
                    .c_str());
    std::fflush(stdout);
  }
  std::printf("\npaper reference: runtime decreases with minconf; little "
              "change between 85%% and 99%% (most IRGs have 100%% "
              "confidence); minchi=10 gives up to an order of magnitude "
              "further saving except on LC\n");
  std::printf("json: %s\n", json.path().c_str());
  return 0;
}
