// §4.1 row-scaling experiment: the paper notes (full data in its technical
// report) that FARMER still beats the column-enumeration miners when each
// dataset is replicated 5-10x in rows. Replication multiplies every
// support, so the absolute minimum support scales with the factor.

#include <cstdio>
#include <vector>

#include "baselines/charm.h"
#include "baselines/columne.h"
#include "bench/bench_common.h"
#include "core/farmer.h"
#include "dataset/dataset.h"

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  PrintBenchHeader("Row scaling: replicated datasets (paper §4.1)", config);

  // BC has the most columns — the regime where column enumeration is
  // supposed to stay hopeless even as the row count grows.
  BenchDataset base = MakeBenchDataset("BC", config.column_scale);
  std::vector<std::size_t> item_class1(base.binary.num_items(), 0);
  for (RowId r = 0; r < base.binary.num_rows(); ++r) {
    if (base.binary.label(r) != 1) continue;
    for (ItemId i : base.binary.row(r)) ++item_class1[i];
  }
  // Half the best single-item class cover: satisfiable but non-trivial.
  const std::size_t base_minsup = std::max<std::size_t>(
      3, *std::max_element(item_class1.begin(), item_class1.end()) / 2);

  std::printf("%-6s %7s %8s | %10s %10s %10s\n", "factor", "#rows",
              "minsup", "FARMER(s)", "ColumnE(s)", "CHARM(s)");
  for (std::size_t factor : {1u, 2u, 5u, 10u}) {
    BinaryDataset replicated = ReplicateRows(base.binary, factor);
    const std::size_t minsup = base_minsup * factor;

    MinerOptions fopts;
    fopts.consequent = 1;
    fopts.min_support = minsup;
    fopts.mine_lower_bounds = true;
    fopts.deadline = Deadline::After(config.timeout_seconds);
    FarmerResult farmer_result = MineFarmer(replicated, fopts);

    ColumnEOptions copts;
    copts.min_support = minsup;
    copts.deadline = Deadline::After(config.timeout_seconds);
    copts.max_rules = 500000;
    ColumnEResult columne = MineColumnE(replicated, copts);

    CharmOptions chopts;
    chopts.min_support = minsup;
    chopts.deadline = Deadline::After(config.timeout_seconds);
    chopts.max_closed = 500000;
    CharmResult charm = MineCharm(replicated, chopts);

    std::printf("%-6zu %7zu %8zu | %10s %10s %10s\n", factor,
                replicated.num_rows(), minsup,
                FmtSeconds(farmer_result.stats.mine_seconds +
                               farmer_result.stats.lower_bound_seconds,
                           farmer_result.stats.timed_out)
                    .c_str(),
                FmtSeconds(columne.seconds, columne.timed_out,
                           columne.overflowed)
                    .c_str(),
                FmtSeconds(charm.seconds, charm.timed_out,
                           charm.overflowed)
                    .c_str());
    std::fflush(stdout);
  }
  std::printf("\npaper reference: FARMER still outperforms the column "
              "miners at 5-10x replication, though its own runtime grows "
              "with the larger row-enumeration space\n");
  return 0;
}
