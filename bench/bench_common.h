#ifndef FARMER_BENCH_BENCH_COMMON_H_
#define FARMER_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the table/figure reproduction benches.
//
// Every bench accepts:
//   --full                    paper-scale column counts (slow)
//   --threads <n>             worker threads for parallel sections
//   FARMER_BENCH_SCALE=<f>    explicit column scale (default 0.05)
//   FARMER_BENCH_TIMEOUT=<s>  per-run time limit in seconds (default 20)
//   FARMER_BENCH_THREADS=<n>  same as --threads (flag wins)
//
// Runs that exceed the limit print TIMEOUT, mirroring how the paper
// reports competitors that "did not run to completion".

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "dataset/dataset.h"
#include "dataset/discretize.h"
#include "dataset/expression_matrix.h"
#include "dataset/synthetic.h"
#include "util/timer.h"

namespace farmer {
namespace bench {

struct BenchConfig {
  double column_scale = 0.05;
  double timeout_seconds = 15.0;
  /// When non-empty, only this dataset is benched (--data <name>).
  std::string only_dataset;
  /// Worker threads for benches with parallel sections (fold fan-out,
  /// multi-threaded mining). Defaults to the hardware concurrency.
  std::size_t num_threads =
      std::max(1u, std::thread::hardware_concurrency());

  bool WantsDataset(const std::string& name) const {
    return only_dataset.empty() || only_dataset == name;
  }
};

inline BenchConfig ParseBenchConfig(int argc, char** argv) {
  BenchConfig config;
  if (const char* scale = std::getenv("FARMER_BENCH_SCALE")) {
    config.column_scale = std::atof(scale);
  }
  if (const char* full = std::getenv("FARMER_BENCH_FULL");
      full != nullptr && full[0] == '1') {
    config.column_scale = 1.0;
  }
  if (const char* timeout = std::getenv("FARMER_BENCH_TIMEOUT")) {
    config.timeout_seconds = std::atof(timeout);
  }
  if (const char* threads = std::getenv("FARMER_BENCH_THREADS")) {
    config.num_threads = static_cast<std::size_t>(std::atoll(threads));
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) config.column_scale = 1.0;
    if (std::strcmp(argv[i], "--data") == 0 && i + 1 < argc) {
      config.only_dataset = argv[++i];
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      config.num_threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
  }
  if (config.num_threads == 0) config.num_threads = 1;
  if (config.column_scale <= 0.0) config.column_scale = 0.05;
  return config;
}

/// One benchmark dataset: the synthetic microarray matrix plus its
/// equal-depth discretization (10 buckets, the paper's setting), with
/// the build-phase breakdown so benches can report setup cost.
struct BenchDataset {
  std::string name;
  ExpressionMatrix matrix;
  BinaryDataset binary;
  double generate_seconds = 0.0;    // Synthetic-matrix generation.
  double discretize_seconds = 0.0;  // Fit + apply of the bucketing.
};

inline BenchDataset MakeBenchDataset(const std::string& name, double scale,
                                     int buckets = 10) {
  BenchDataset out;
  out.name = name;
  SyntheticSpec spec = PaperDatasetSpec(name, scale);
  Stopwatch sw;
  out.matrix = GenerateSynthetic(spec);
  out.generate_seconds = sw.ElapsedSeconds();
  sw.Restart();
  Discretization disc = Discretization::FitEqualDepth(out.matrix, buckets);
  out.binary = disc.Apply(out.matrix);
  out.discretize_seconds = sw.ElapsedSeconds();
  return out;
}

/// "0.123" or "TIMEOUT"/"CAP" for runs that were cut short.
inline std::string FmtSeconds(double seconds, bool timed_out,
                              bool overflowed = false) {
  if (timed_out) return "TIMEOUT";
  if (overflowed) return "CAP";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

inline void PrintBenchHeader(const char* title, const BenchConfig& config) {
  std::printf("== %s ==\n", title);
  std::printf("column scale %.3g (use --full or FARMER_BENCH_SCALE for "
              "paper-size columns); per-run limit %.0fs\n\n",
              config.column_scale, config.timeout_seconds);
}

}  // namespace bench
}  // namespace farmer

#endif  // FARMER_BENCH_BENCH_COMMON_H_
