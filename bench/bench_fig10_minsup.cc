// Figure 10: runtime vs minimum support — FARMER vs ColumnE vs CHARM on
// the five datasets (panels a–e), plus the number of IRGs per setting
// (panel f). minconf = minchi = 0, equal-depth 10-bucket discretization,
// exactly as in §4.1.1. FARMER's time includes lower-bound mining.
//
// Expected shape (the paper's result): FARMER finishes in seconds while
// the column-enumeration competitors blow past the time limit at low
// minimum supports; the gap widens as minsup decreases.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "baselines/charm.h"
#include "baselines/columne.h"
#include "bench/bench_common.h"
#include "core/farmer.h"

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  PrintBenchHeader(
      "Figure 10: runtime vs minsup (FARMER / ColumnE / CHARM) "
      "and IRG counts", config);

  std::printf("%-5s %7s | %10s %10s %10s | %9s\n", "data", "minsup",
              "FARMER(s)", "ColumnE(s)", "CHARM(s)", "#IRGs");
  for (const std::string& name : PaperDatasetNames()) {
    if (!config.WantsDataset(name)) continue;
    BenchDataset ds = MakeBenchDataset(name, config.column_scale);

    // Data-driven sweep mirroring the paper's small absolute supports: no
    // rule can exceed the best single item's class-1 cover, so sweep
    // down from that cap.
    std::vector<std::size_t> item_class1(ds.binary.num_items(), 0);
    for (RowId r = 0; r < ds.binary.num_rows(); ++r) {
      if (ds.binary.label(r) != 1) continue;
      for (ItemId i : ds.binary.row(r)) ++item_class1[i];
    }
    const std::size_t cap = *std::max_element(item_class1.begin(),
                                              item_class1.end());
    std::set<std::size_t, std::greater<>> sweep;
    sweep.insert(std::max<std::size_t>(3, cap));
    sweep.insert(std::max<std::size_t>(3, cap * 3 / 4));
    sweep.insert(std::max<std::size_t>(3, cap / 2));
    sweep.insert(std::max<std::size_t>(3, cap / 4));

    for (std::size_t minsup : sweep) {
      MinerOptions fopts;
      fopts.consequent = 1;
      fopts.min_support = minsup;
      fopts.mine_lower_bounds = true;
      fopts.deadline = Deadline::After(config.timeout_seconds);
      FarmerResult farmer_result = MineFarmer(ds.binary, fopts);
      const double farmer_s = farmer_result.stats.mine_seconds +
                              farmer_result.stats.lower_bound_seconds;

      ColumnEOptions copts;
      copts.consequent = 1;
      copts.min_support = minsup;
      copts.deadline = Deadline::After(config.timeout_seconds);
      copts.max_rules = 500000;
      ColumnEResult columne = MineColumnE(ds.binary, copts);

      CharmOptions chopts;
      chopts.min_support = minsup;
      chopts.deadline = Deadline::After(config.timeout_seconds);
      chopts.max_closed = 500000;
      CharmResult charm = MineCharm(ds.binary, chopts);

      std::printf("%-5s %7zu | %10s %10s %10s | %9zu%s\n", name.c_str(),
                  minsup,
                  FmtSeconds(farmer_s, farmer_result.stats.timed_out)
                      .c_str(),
                  FmtSeconds(columne.seconds, columne.timed_out,
                             columne.overflowed)
                      .c_str(),
                  FmtSeconds(charm.seconds, charm.timed_out,
                             charm.overflowed)
                      .c_str(),
                  farmer_result.groups.size(),
                  farmer_result.stats.timed_out ? "(partial)" : "");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("paper reference: FARMER is 2-3 orders of magnitude faster; "
              "CHARM exhausts memory on BC/LC; IRG count grows sharply as "
              "minsup falls (Fig. 10f)\n");
  return 0;
}
