// Figure 10: runtime vs minimum support — FARMER vs ColumnE vs CHARM on
// the five datasets (panels a–e), plus the number of IRGs per setting
// (panel f). minconf = minchi = 0, equal-depth 10-bucket discretization,
// exactly as in §4.1.1. FARMER's time includes lower-bound mining; it is
// run at 1 and 4 threads to record the work-stealing parallel speedup.
//
// Expected shape (the paper's result): FARMER finishes in seconds while
// the column-enumeration competitors blow past the time limit at low
// minimum supports; the gap widens as minsup decreases.
//
// Every measurement is also appended to BENCH_fig10_minsup.json.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "baselines/charm.h"
#include "baselines/columne.h"
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "core/farmer.h"

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  PrintBenchHeader(
      "Figure 10: runtime vs minsup (FARMER x1/x4 / ColumnE / CHARM) "
      "and IRG counts", config);
  JsonWriter json("fig10_minsup");

  std::printf("%-5s %7s | %10s %10s %10s %10s | %9s\n", "data", "minsup",
              "FARMER(s)", "FARMERx4", "ColumnE(s)", "CHARM(s)", "#IRGs");
  for (const std::string& name : PaperDatasetNames()) {
    if (!config.WantsDataset(name)) continue;
    BenchDataset ds = MakeBenchDataset(name, config.column_scale);

    // Data-driven sweep mirroring the paper's small absolute supports: no
    // rule can exceed the best single item's class-1 cover, so sweep
    // down from that cap.
    std::vector<std::size_t> item_class1(ds.binary.num_items(), 0);
    for (RowId r = 0; r < ds.binary.num_rows(); ++r) {
      if (ds.binary.label(r) != 1) continue;
      for (ItemId i : ds.binary.row(r)) ++item_class1[i];
    }
    const std::size_t cap = *std::max_element(item_class1.begin(),
                                              item_class1.end());
    std::set<std::size_t, std::greater<>> sweep;
    sweep.insert(std::max<std::size_t>(3, cap));
    sweep.insert(std::max<std::size_t>(3, cap * 3 / 4));
    sweep.insert(std::max<std::size_t>(3, cap / 2));
    sweep.insert(std::max<std::size_t>(3, cap / 4));

    for (std::size_t minsup : sweep) {
      double farmer_s[2] = {0.0, 0.0};
      bool farmer_partial[2] = {false, false};
      std::size_t farmer_groups = 0;
      const std::size_t thread_counts[2] = {1, 4};
      for (int t = 0; t < 2; ++t) {
        MinerOptions fopts;
        fopts.consequent = 1;
        fopts.min_support = minsup;
        fopts.mine_lower_bounds = true;
        fopts.num_threads = thread_counts[t];
        fopts.deadline = Deadline::After(config.timeout_seconds);
        FarmerResult r = MineFarmer(ds.binary, fopts);
        farmer_s[t] = r.stats.mine_seconds + r.stats.lower_bound_seconds;
        farmer_partial[t] = r.stats.timed_out;
        if (t == 0) farmer_groups = r.groups.size();
        json.Add(JsonRecord()
                     .Str("bench", "fig10_minsup")
                     .Str("algorithm", "FARMER")
                     .Str("dataset", name)
                     .Num("column_scale", config.column_scale)
                     .Num("dataset_build_s",
                          ds.generate_seconds + ds.discretize_seconds)
                     .Int("minsup", static_cast<long long>(minsup))
                     .Int("threads",
                          static_cast<long long>(thread_counts[t]))
                     .Num("seconds", farmer_s[t])
                     .Int("groups", static_cast<long long>(r.groups.size()))
                     .Raw("stats", r.stats.ToJson()));
        json.Flush();
      }

      ColumnEOptions copts;
      copts.consequent = 1;
      copts.min_support = minsup;
      copts.deadline = Deadline::After(config.timeout_seconds);
      copts.max_rules = 500000;
      ColumnEResult columne = MineColumnE(ds.binary, copts);
      json.Add(JsonRecord()
                   .Str("bench", "fig10_minsup")
                   .Str("algorithm", "ColumnE")
                   .Str("dataset", name)
                   .Num("column_scale", config.column_scale)
                   .Int("minsup", static_cast<long long>(minsup))
                   .Int("threads", 1)
                   .Num("seconds", columne.seconds)
                   .Bool("timed_out", columne.timed_out || columne.overflowed));

      CharmOptions chopts;
      chopts.min_support = minsup;
      chopts.deadline = Deadline::After(config.timeout_seconds);
      chopts.max_closed = 500000;
      CharmResult charm = MineCharm(ds.binary, chopts);
      json.Add(JsonRecord()
                   .Str("bench", "fig10_minsup")
                   .Str("algorithm", "CHARM")
                   .Str("dataset", name)
                   .Num("column_scale", config.column_scale)
                   .Int("minsup", static_cast<long long>(minsup))
                   .Int("threads", 1)
                   .Num("seconds", charm.seconds)
                   .Bool("timed_out", charm.timed_out || charm.overflowed));
      json.Flush();

      std::printf("%-5s %7zu | %10s %10s %10s %10s | %9zu%s\n", name.c_str(),
                  minsup,
                  FmtSeconds(farmer_s[0], farmer_partial[0]).c_str(),
                  FmtSeconds(farmer_s[1], farmer_partial[1]).c_str(),
                  FmtSeconds(columne.seconds, columne.timed_out,
                             columne.overflowed)
                      .c_str(),
                  FmtSeconds(charm.seconds, charm.timed_out,
                             charm.overflowed)
                      .c_str(),
                  farmer_groups,
                  farmer_partial[0] ? "(partial)" : "");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("paper reference: FARMER is 2-3 orders of magnitude faster; "
              "CHARM exhausts memory on BC/LC; IRG count grows sharply as "
              "minsup falls (Fig. 10f)\n");
  std::printf("json: %s\n", json.path().c_str());
  return 0;
}
