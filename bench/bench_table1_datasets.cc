// Table 1: characteristics of the five microarray datasets.
//
// Prints the paper's columns (#row, #col, class labels, #rows of class 1)
// for the synthetic stand-ins, plus the discretization statistics the
// mining benches operate on. Paper-scale columns are reproduced exactly
// with --full; the default uses scaled-down columns (see DESIGN.md §3).

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  PrintBenchHeader("Table 1: microarray dataset characteristics", config);

  std::printf("%-5s %6s %8s %8s %10s %12s %10s\n", "name", "#row", "#col",
              "#class1", "paper#col", "#items(10bk)", "avg|row|");
  struct PaperCols {
    const char* name;
    std::size_t cols;
  };
  for (const std::string& name : PaperDatasetNames()) {
    BenchDataset ds = MakeBenchDataset(name, config.column_scale);
    const std::size_t paper_cols =
        PaperDatasetSpec(name, 1.0).num_genes;
    std::printf("%-5s %6zu %8zu %8zu %10zu %12zu %10.1f\n", ds.name.c_str(),
                ds.matrix.num_rows(), ds.matrix.num_genes(),
                ds.matrix.CountLabel(1), paper_cols,
                ds.binary.num_items(), ds.binary.AverageRowLength());
  }
  std::printf("\npaper reference (Table 1): BC 97x24481 (46 class-1), "
              "LC 181x12533 (31), CT 62x2000 (40), PC 136x12600 (52), "
              "ALL 72x7129 (47)\n");
  return 0;
}
