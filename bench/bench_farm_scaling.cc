// Worker scaling of the distributed mining farm: the Figure-10 BC
// workload mined by a real Coordinator and 1, 2 and 4 Worker instances
// talking FMP1 over localhost. Reports farm wall seconds (plan + mine +
// merge + MineLB), speedup over the in-process single-thread run,
// lease/re-lease counts, and the merged group count. The farm result is
// checked bit-identical to MineFarmer() on every sweep point — the
// farm's whole reason to exist is scaling *without* giving up the
// single-process answer.
//
// Expected shape: the farm tracks in-process thread scaling minus the
// wire overhead (hello, per-lease grant/upload, CRC); on one machine
// that overhead is microseconds per lease, so the curve should be close
// to bench_thread_scaling's for the same workload.
//
// Every measurement is also appended to BENCH_farm_scaling.json.
//
// Extra knobs (on top of bench_common's):
//   --minsup <n>   minimum support (default 5)
//   --quick        tiny workload for CI smoke runs (scale 0.02, no
//                  lower bounds) — exercises the sweep, not the speedup

#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "core/farmer.h"
#include "farm/coordinator.h"
#include "farm/worker.h"
#include "util/timer.h"

namespace {

using namespace farmer;

// Field-by-field bit-identity; returns false and reports on mismatch.
bool IdenticalGroups(const FarmerResult& want, const FarmerResult& got) {
  if (want.groups.size() != got.groups.size()) {
    std::printf("DETERMINISM VIOLATION: %zu farm groups vs %zu single\n",
                got.groups.size(), want.groups.size());
    return false;
  }
  for (std::size_t i = 0; i < want.groups.size(); ++i) {
    const RuleGroup& a = want.groups[i];
    const RuleGroup& b = got.groups[i];
    if (a.antecedent != b.antecedent || !(a.rows == b.rows) ||
        a.support_pos != b.support_pos || a.support_neg != b.support_neg ||
        a.confidence != b.confidence || a.chi_square != b.chi_square ||
        a.lower_bounds != b.lower_bounds) {
      std::printf("DETERMINISM VIOLATION: group %zu differs\n", i);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  std::size_t minsup = 5;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--minsup") == 0 && i + 1 < argc) {
      minsup = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (quick) config.column_scale = 0.02;
  const std::string name =
      config.only_dataset.empty() ? "BC" : config.only_dataset;
  PrintBenchHeader("Farm scaling: coordinator + N local workers over "
                   "FMP1 on the Fig. 10 BC workload", config);
  JsonWriter json("farm_scaling");

  BenchDataset ds = MakeBenchDataset(name, config.column_scale);

  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = minsup;
  opts.mine_lower_bounds = !quick;

  // The reference: in-process single-thread run, also the speedup base.
  Stopwatch sw;
  const FarmerResult single = MineFarmer(ds.binary, opts);
  const double base_seconds = sw.ElapsedSeconds();

  std::printf("dataset %s: %zu rows x %zu items, minsup %zu%s\n",
              name.c_str(), static_cast<std::size_t>(ds.binary.num_rows()),
              static_cast<std::size_t>(ds.binary.num_items()), minsup,
              quick ? " (quick)" : "");
  std::printf("single-process baseline: %s, %zu groups\n\n",
              FmtSeconds(base_seconds, single.stats.timed_out).c_str(),
              single.groups.size());
  std::printf("%7s | %9s %8s | %7s %9s %9s | %7s\n", "workers", "wall(s)",
              "speedup", "leases", "re-lease", "nodes/s", "#IRGs");

  for (const int workers : {1, 2, 4}) {
    farm::Coordinator coordinator(ds.binary, opts,
                                  farm::Coordinator::Options{});
    sw.Restart();
    if (!coordinator.Start().ok()) {
      std::printf("coordinator failed to start\n");
      return 1;
    }
    std::vector<std::unique_ptr<farm::Worker>> fleet;
    std::vector<std::thread> threads;
    for (int w = 0; w < workers; ++w) {
      farm::Worker::Options wopts;
      wopts.port = coordinator.port();
      wopts.name = "bench-w" + std::to_string(w);
      wopts.no_work_poll_s = 0.005;
      fleet.push_back(
          std::make_unique<farm::Worker>(ds.binary, opts, wopts));
    }
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&fleet, w] { (void)fleet[w]->Run(); });
    }
    for (std::thread& t : threads) t.join();
    if (!coordinator.WaitForCompletion(config.timeout_seconds)) {
      std::printf("farm timed out at %d workers\n", workers);
      return 1;
    }
    const FarmerResult farm = coordinator.Finalize();
    const double seconds = sw.ElapsedSeconds();
    if (!IdenticalGroups(single, farm)) return 1;

    const farm::Coordinator::Stats stats = coordinator.stats();
    const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
    const double nodes_per_sec =
        seconds > 0.0 ? static_cast<double>(farm.stats.nodes_visited) /
                            seconds
                      : 0.0;
    std::printf("%7d | %9s %7.2fx | %7llu %9llu %9.0f | %7zu\n", workers,
                FmtSeconds(seconds, farm.stats.timed_out).c_str(), speedup,
                static_cast<unsigned long long>(stats.leases_granted),
                static_cast<unsigned long long>(stats.releases),
                nodes_per_sec, farm.groups.size());
    std::fflush(stdout);

    json.Add(JsonRecord()
                 .Str("bench", "farm_scaling")
                 .Str("dataset", name)
                 .Num("column_scale", config.column_scale)
                 .Int("minsup", static_cast<long long>(minsup))
                 .Int("workers", workers)
                 .Num("seconds", seconds)
                 .Num("speedup", speedup)
                 .Num("nodes_per_sec", nodes_per_sec)
                 .Int("leases",
                      static_cast<long long>(stats.leases_granted))
                 .Int("releases", static_cast<long long>(stats.releases))
                 .Bool("identical", true)
                 .Int("groups", static_cast<long long>(farm.groups.size()))
                 .Raw("stats", farm.stats.ToJson()));
    json.Flush();
  }
  std::printf("\nfarm results are bit-identical to the single-process run "
              "at every worker count; speedup is relative to that run on "
              "this machine (%u hardware threads)\n",
              std::thread::hardware_concurrency());
  std::printf("json: %s\n", json.path().c_str());
  return 0;
}
