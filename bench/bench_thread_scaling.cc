// Thread scaling of the work-stealing FARMER miner: the Figure-10 BC
// workload (minsup 5, minconf = minchi = 0, lower bounds on) mined at
// 1, 2, 4 and 8 threads. Reports wall seconds, speedup over the
// single-thread run, enumeration-tree size, and the scheduler's
// spawn/steal counters. The mined groups are bit-identical across the
// sweep (verified here), so the runs differ only in schedule.
//
// Expected shape: near-linear speedup while threads <= cores, then flat;
// steal counts grow with thread count because BC's enumeration tree is
// skewed and idle workers must poach subtrees from the deep branches.
//
// Every measurement is also appended to BENCH_thread_scaling.json.
//
// Extra knobs (on top of bench_common's):
//   --minsup <n>   minimum support (default 5)
//   --quick        tiny workload for CI smoke runs (scale 0.02, no
//                  lower bounds) — exercises the sweep, not the speedup

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "core/farmer.h"

int main(int argc, char** argv) {
  using namespace farmer;
  using namespace farmer::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  std::size_t minsup = 5;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--minsup") == 0 && i + 1 < argc) {
      minsup = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (quick) config.column_scale = 0.02;
  const std::string name =
      config.only_dataset.empty() ? "BC" : config.only_dataset;
  PrintBenchHeader("Thread scaling: work-stealing FARMER on the Fig. 10 "
                   "BC workload", config);
  JsonWriter json("thread_scaling");

  BenchDataset ds = MakeBenchDataset(name, config.column_scale);
  std::printf("dataset %s: %zu rows x %zu items, minsup %zu%s\n\n",
              name.c_str(), static_cast<std::size_t>(ds.binary.num_rows()),
              static_cast<std::size_t>(ds.binary.num_items()), minsup,
              quick ? " (quick)" : "");
  std::printf("%7s | %9s %8s | %10s %8s %8s %8s | %7s\n", "threads",
              "mine(s)", "speedup", "nodes", "tasks", "steals", "stolen",
              "#IRGs");

  double base_seconds = 0.0;
  std::vector<RuleGroup> base_groups;
  for (std::size_t threads : {1, 2, 4, 8}) {
    MinerOptions opts;
    opts.consequent = 1;
    opts.min_support = minsup;
    opts.mine_lower_bounds = !quick;
    opts.num_threads = threads;
    opts.deadline = Deadline::After(config.timeout_seconds);
    FarmerResult r = MineFarmer(ds.binary, opts);
    const double seconds = r.stats.mine_seconds + r.stats.lower_bound_seconds;

    if (threads == 1) {
      base_seconds = seconds;
      base_groups = r.groups;
    } else if (!r.stats.timed_out && r.groups.size() != base_groups.size()) {
      std::printf("DETERMINISM VIOLATION: %zu groups at %zu threads vs %zu "
                  "at 1\n", r.groups.size(), threads, base_groups.size());
      return 1;
    }
    const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;

    std::printf("%7zu | %9s %7.2fx | %10zu %8zu %8zu %8zu | %7zu%s\n",
                threads, FmtSeconds(seconds, r.stats.timed_out).c_str(),
                speedup, r.stats.nodes_visited, r.stats.tasks_spawned,
                r.stats.task_steals, r.stats.tasks_stolen, r.groups.size(),
                r.stats.timed_out ? " (partial)" : "");
    std::fflush(stdout);

    json.Add(JsonRecord()
                 .Str("bench", "thread_scaling")
                 .Str("dataset", name)
                 .Num("column_scale", config.column_scale)
                 .Num("dataset_build_s",
                      ds.generate_seconds + ds.discretize_seconds)
                 .Int("minsup", static_cast<long long>(minsup))
                 .Int("threads", static_cast<long long>(threads))
                 .Num("seconds", seconds)
                 .Num("speedup", speedup)
                 .Int("groups", static_cast<long long>(r.groups.size()))
                 .Raw("stats", r.stats.ToJson()));
    json.Flush();
  }
  std::printf("\nspeedup is relative to the 1-thread run on this machine "
              "(%u hardware threads); groups are bit-identical across the "
              "sweep\n", std::thread::hardware_concurrency());
  std::printf("json: %s\n", json.path().c_str());
  return 0;
}
