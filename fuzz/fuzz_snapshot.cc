/// Fuzz harness for the rule-group snapshot parser.
///
/// Feeds arbitrary bytes to LoadSnapshotFromBuffer. The parser must
/// either reject the input with InvalidArgument or produce a snapshot
/// that (a) re-serializes to exactly the input bytes — the format is
/// canonical, so parse and serialize are inverse bijections on the set
/// of valid buffers — and (b) is safe to hand to RuleGroupIndex and
/// query. Any crash, hang, or round-trip mismatch is a bug.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "serve/index.h"
#include "serve/snapshot.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  farmer::serve::RuleGroupSnapshot snapshot;
  const farmer::Status status =
      farmer::serve::LoadSnapshotFromBuffer(input, "fuzz", &snapshot);
  if (!status.ok()) {
    // Rejections must be graceful and typed: never IoError or a crash.
    if (!status.IsInvalidArgument()) __builtin_trap();
    return 0;
  }

  // Accepted buffers must re-serialize byte-identically.
  const std::string reserialized =
      farmer::serve::SerializeSnapshot(snapshot);
  if (reserialized != input) __builtin_trap();

  // Accepted snapshots must be safe to index and query.
  farmer::serve::RuleGroupIndex index(std::move(snapshot));
  (void)index.TopKByConfidence(3);
  (void)index.TopKByChiSquare(3);
  (void)index.Filter(1, 0.5, 8);
  (void)index.AntecedentContains({0, 2}, 8);
  (void)index.RowCover({1, 3, 5}, 8);
  return 0;
}
