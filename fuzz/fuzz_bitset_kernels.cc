/// Fuzz harness for the SIMD bitset kernels.
///
/// Decodes the input bytes into a pair of bitsets plus a prefix limit,
/// then forces every kernel tier compiled into this binary and usable
/// on this host (scalar, sse42, avx2, avx512) in turn and cross-checks
/// each word-parallel Bitset entry point against the bit-by-bit ref::
/// oracle and against the scalar tier's answer. The tiers must be
/// observationally identical; any divergence — including one only
/// visible in tail words or at odd prefix limits — is a bug.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitset.h"
#include "util/bitset_ref.h"
#include "util/simd/simd.h"

namespace {

using farmer::Bitset;

struct KernelResults {
  std::size_t count;
  std::size_t count_prefix;
  std::size_t and_count;
  std::size_t and_count_prefix;
  bool none;
  bool intersects;
  bool is_subset_of;
  bool intersects_all_of;
  Bitset and_into;
  Bitset and_not_into;
  Bitset or_and;
  Bitset and_inplace;
  Bitset or_inplace;
  Bitset and_not_inplace;

  bool operator==(const KernelResults& o) const {
    return count == o.count && count_prefix == o.count_prefix &&
           and_count == o.and_count &&
           and_count_prefix == o.and_count_prefix && none == o.none &&
           intersects == o.intersects && is_subset_of == o.is_subset_of &&
           intersects_all_of == o.intersects_all_of &&
           and_into == o.and_into && and_not_into == o.and_not_into &&
           or_and == o.or_and && and_inplace == o.and_inplace &&
           or_inplace == o.or_inplace &&
           and_not_inplace == o.and_not_inplace;
  }
};

// Runs every dispatching Bitset entry point on (a, b, c, pos_limit)
// under the currently active kernel table; c is the accumulator base
// for OrAnd.
KernelResults RunKernels(const Bitset& a, const Bitset& b, const Bitset& c,
                         std::size_t pos_limit) {
  KernelResults r;
  r.count = a.Count();
  r.count_prefix = a.CountPrefix(pos_limit);
  r.and_count = a.AndCount(b);
  r.and_count_prefix = a.AndCountPrefix(b, pos_limit);
  r.none = a.None();
  r.intersects = a.Intersects(b);
  r.is_subset_of = a.IsSubsetOf(b);

  const Bitset* sets[2] = {&b, &a};
  Bitset scratch(a.size());
  r.intersects_all_of = a.IntersectsAllOf(sets, 2, &scratch);

  Bitset::AndInto(a, b, &r.and_into);
  Bitset::AndNotInto(a, b, &r.and_not_into);
  r.or_and = c;
  r.or_and.OrAnd(a, b);
  r.and_inplace = a;
  r.and_inplace &= b;
  r.or_inplace = a;
  r.or_inplace |= b;
  r.and_not_inplace = a;
  r.and_not_inplace -= b;
  return r;
}

// The same answers recomputed bit by bit through the ref:: oracle (plus
// trivial loops for the predicates the oracle does not cover).
KernelResults RunOracle(const Bitset& a, const Bitset& b, const Bitset& c,
                        std::size_t pos_limit) {
  KernelResults r;
  r.count = farmer::ref::AndCount(a, a);
  r.count_prefix = farmer::ref::CountPrefix(a, pos_limit);
  r.and_count = farmer::ref::AndCount(a, b);
  r.and_count_prefix = farmer::ref::AndCountPrefix(a, b, pos_limit);
  r.none = true;
  r.intersects = false;
  r.is_subset_of = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.Test(i)) r.none = false;
    if (a.Test(i) && b.Test(i)) r.intersects = true;
    if (a.Test(i) && !b.Test(i)) r.is_subset_of = false;
  }
  const Bitset* sets[2] = {&b, &a};
  r.intersects_all_of = farmer::ref::IntersectsAllOf(a, sets, 2);
  r.and_into = farmer::ref::AndInto(a, b);
  r.and_not_into = farmer::ref::AndNotInto(a, b);
  r.or_and = farmer::ref::OrAnd(c, a, b);
  r.and_inplace = farmer::ref::AndInto(a, b);
  r.or_inplace = farmer::ref::OrAnd(a, b, b);
  r.and_not_inplace = farmer::ref::AndNotInto(a, b);
  return r;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 5) return 0;

  // Bytes 0-1 pick the size (1..1500 bits: single-word, multi-word, and
  // non-multiple-of-512 tails all reachable), bytes 2-3 the prefix limit
  // (may exceed the size to exercise clamping), the rest fill the two
  // sets — wrapping, so every input byte shapes both.
  const std::size_t num_bits =
      1 + ((static_cast<std::size_t>(data[0]) |
            (static_cast<std::size_t>(data[1]) << 8)) %
           1500);
  const std::size_t pos_limit = (static_cast<std::size_t>(data[2]) |
                                 (static_cast<std::size_t>(data[3]) << 8)) %
                                (num_bits + 64);
  const std::uint8_t* fill = data + 4;
  const std::size_t fill_size = size - 4;

  Bitset a(num_bits), b(num_bits), c(num_bits);
  for (std::size_t i = 0; i < num_bits; ++i) {
    if ((fill[(i / 8) % fill_size] >> (i % 8)) & 1) a.Set(i);
    const std::size_t j = i + 3 * num_bits;
    if ((fill[(j / 8) % fill_size] >> (j % 8)) & 1) b.Set(i);
    const std::size_t k = i + 6 * num_bits;
    if ((fill[(k / 8) % fill_size] >> (k % 8)) & 1) c.Set(i);
  }

  const farmer::simd::Level prior = farmer::simd::ActiveLevel();
  bool have_scalar = false;
  KernelResults scalar;
  for (int l = 0; l < farmer::simd::kNumLevels; ++l) {
    const auto level = static_cast<farmer::simd::Level>(l);
    if (!farmer::simd::LevelSupported(level)) continue;
    if (!farmer::simd::ForceLevel(level)) __builtin_trap();
    const KernelResults got = RunKernels(a, b, c, pos_limit);
    // Every tier must match the bit-by-bit oracle...
    if (!(got == RunOracle(a, b, c, pos_limit))) __builtin_trap();
    // ...and, transitively redundant but cheap, the scalar tier.
    if (!have_scalar) {
      scalar = got;
      have_scalar = true;
    } else if (!(got == scalar)) {
      __builtin_trap();
    }
  }
  if (!farmer::simd::ForceLevel(prior)) __builtin_trap();
  return 0;
}
