// Fuzz harness for the transaction-file parser. Exercises the #items
// directive, the kMaxTransactionItems allocation cap, duplicate-item
// rejection, and label parsing. Arbitrary bytes must produce Ok or
// InvalidArgument/IoError — never a crash or unbounded allocation.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "dataset/dataset.h"
#include "dataset/io.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  farmer::BinaryDataset dataset;
  farmer::Status status =
      farmer::LoadTransactions(in, "fuzz", &dataset);
  if (status.ok()) {
    // A dataset the parser accepted must also satisfy its own validator.
    farmer::Status valid = dataset.Validate();
    if (!valid.ok()) __builtin_trap();
  }
  return 0;
}
