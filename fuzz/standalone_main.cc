// Standalone driver used when the toolchain lacks libFuzzer (e.g. GCC).
// Runs LLVMFuzzerTestOneInput once per file argument, or over stdin when no
// arguments are given, so corpora can be replayed under any sanitizer:
//
//   ./fuzz_load_transactions fuzz/corpus/fuzz_load_transactions/*
//
// With Clang the same harness links against -fsanitize=fuzzer instead and
// this file is not compiled.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

void RunOne(const std::string& label, const std::string& payload) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(payload.data()),
                         payload.size());
  std::fprintf(stderr, "ok     %s (%zu bytes)\n", label.c_str(),
               payload.size());
}

int RunPath(const std::filesystem::path& path) {
  if (std::filesystem::is_directory(path)) {
    int rc = 0;
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      if (entry.is_regular_file()) rc |= RunPath(entry.path());
    }
    return rc;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  RunOne(path.string(), buf.str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    RunOne("<stdin>", buf.str());
    return 0;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    rc |= RunPath(argv[i]);
  }
  return rc;
}
