/// Fuzz harness for the serve wire protocols: the JSON/binary
/// auto-detector, the FQP1 frame extractor, and the binary request and
/// response codecs.
///
/// The input is treated as the byte stream of one client connection,
/// walked exactly as the server walks it: detect the framing, then cut
/// requests off the buffer one at a time. Every property the server
/// relies on is checked:
///
///   * DetectProtocol is total and matches its spec: kNeedMore only on
///     a strict prefix of the FQP1 or "GET " preambles, kBinary/kHttp
///     only on the exact respective preamble, kJson otherwise.
///   * ExtractFrame never reads past the buffer, never accepts a zero
///     or oversized length, and consumes exactly what it reports.
///   * ParseBinaryRequest rejects with InvalidArgument only, and
///     accepted requests round-trip: EncodeBinaryRequest produces a
///     frame that re-extracts and re-parses to an identical request.
///   * DecodeResponseFrame rejects with InvalidArgument only, and
///     accepted bodies round-trip through EncodeResponseFrame.
///
/// Any crash, hang, out-of-range read, or round-trip mismatch is a bug.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "serve/protocol.h"
#include "util/status.h"

namespace {

using farmer::Status;
namespace serve = farmer::serve;

bool IsPreamblePrefix(std::string_view input) {
  if (input.size() >= serve::kBinaryPreambleSize) return false;
  return std::memcmp(input.data(), serve::kBinaryPreamble, input.size()) ==
         0;
}

bool HasPreamble(std::string_view input) {
  return input.size() >= serve::kBinaryPreambleSize &&
         std::memcmp(input.data(), serve::kBinaryPreamble,
                     serve::kBinaryPreambleSize) == 0;
}

bool IsHttpPrefix(std::string_view input) {
  if (input.size() >= serve::kHttpPreambleSize) return false;
  return std::memcmp(input.data(), serve::kHttpPreamble, input.size()) == 0;
}

bool HasHttpPreamble(std::string_view input) {
  return input.size() >= serve::kHttpPreambleSize &&
         std::memcmp(input.data(), serve::kHttpPreamble,
                     serve::kHttpPreambleSize) == 0;
}

void CheckDetector(std::string_view input) {
  switch (serve::DetectProtocol(input)) {
    case serve::ProtocolDetect::kNeedMore:
      if (!IsPreamblePrefix(input) && !IsHttpPrefix(input)) {
        __builtin_trap();
      }
      break;
    case serve::ProtocolDetect::kBinary:
      if (!HasPreamble(input)) __builtin_trap();
      break;
    case serve::ProtocolDetect::kHttp:
      if (!HasHttpPreamble(input)) __builtin_trap();
      break;
    case serve::ProtocolDetect::kJson:
      if (IsPreamblePrefix(input) || HasPreamble(input) ||
          IsHttpPrefix(input) || HasHttpPreamble(input)) {
        __builtin_trap();
      }
      break;
  }
}

void CheckRequestRoundTrip(std::uint8_t opcode, std::string_view payload) {
  serve::QueryRequest request;
  const Status parsed =
      serve::ParseBinaryRequest(opcode, payload, &request);
  if (!parsed.ok()) {
    if (!parsed.IsInvalidArgument()) __builtin_trap();
    return;
  }
  // Accepted requests re-encode to a frame that parses back to the
  // same request (compared via the deterministic encoding, which
  // covers every field without tripping over NaN comparisons).
  const std::string encoded = serve::EncodeBinaryRequest(request);
  std::size_t consumed = 0;
  std::uint8_t opcode2 = 0;
  std::string_view payload2;
  std::string error;
  if (serve::ExtractFrame(encoded, &consumed, &opcode2, &payload2,
                          &error) != serve::FrameExtract::kComplete) {
    __builtin_trap();
  }
  if (consumed != encoded.size()) __builtin_trap();
  serve::QueryRequest request2;
  if (!serve::ParseBinaryRequest(opcode2, payload2, &request2).ok()) {
    __builtin_trap();
  }
  if (serve::EncodeBinaryRequest(request2) != encoded) __builtin_trap();
}

void WalkBinaryStream(std::string_view buffer) {
  std::size_t pos = serve::kBinaryPreambleSize;
  for (;;) {
    const std::string_view rest = buffer.substr(pos);
    std::size_t consumed = 0;
    std::uint8_t opcode = 0;
    std::string_view payload;
    std::string error;
    switch (serve::ExtractFrame(rest, &consumed, &opcode, &payload,
                                &error)) {
      case serve::FrameExtract::kNeedMore:
        return;
      case serve::FrameExtract::kError:
        // Unfixable framing must explain itself; the server closes.
        if (error.empty()) __builtin_trap();
        return;
      case serve::FrameExtract::kComplete:
        if (consumed < 5 || consumed > rest.size()) __builtin_trap();
        if (payload.size() != consumed - 5) __builtin_trap();
        if (payload.size() > serve::kMaxFramePayload) __builtin_trap();
        // The payload view must alias the buffer, not dangle.
        if (!payload.empty() &&
            (payload.data() < rest.data() ||
             payload.data() + payload.size() >
                 rest.data() + rest.size())) {
          __builtin_trap();
        }
        CheckRequestRoundTrip(opcode, payload);
        pos += consumed;
        break;
    }
  }
}

void WalkJsonStream(std::string_view buffer) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = buffer.find('\n', start);
    if (nl == std::string_view::npos) return;
    std::string line(buffer.substr(start, nl - start));
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    serve::QueryRequest request;
    const Status parsed = serve::ParseRequest(line, &request);
    if (!parsed.ok() && !parsed.IsInvalidArgument()) __builtin_trap();
  }
}

void CheckResponseDecode(std::string_view input) {
  serve::FrameStatus status;
  std::uint64_t req_id = 0;
  std::string json;
  const Status decoded =
      serve::DecodeResponseFrame(input, &status, &req_id, &json);
  if (!decoded.ok()) {
    if (!decoded.IsInvalidArgument()) __builtin_trap();
    return;
  }
  const std::string frame =
      serve::EncodeResponseFrame(status, req_id, json);
  // The frame is the 4-byte length plus the body it was decoded from.
  if (frame.size() != 4 + input.size()) __builtin_trap();
  if (std::string_view(frame).substr(4) != input) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  CheckDetector(input);
  if (HasPreamble(input)) {
    WalkBinaryStream(input);
  } else if (!IsPreamblePrefix(input) && !HasHttpPreamble(input) &&
             !IsHttpPrefix(input)) {
    WalkJsonStream(input);
  }
  CheckResponseDecode(input);
  return 0;
}
