// Fuzz harness for the expression-matrix CSV parser. The contract under
// test: arbitrary bytes must yield either a parsed matrix or an
// InvalidArgument/IoError Status — never a crash, hang, or sanitizer
// report. Runs under ASan/UBSan in CI.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "dataset/expression_matrix.h"
#include "dataset/io.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  farmer::ExpressionMatrix matrix;
  farmer::Status status =
      farmer::LoadExpressionCsv(in, "fuzz", &matrix);
  if (status.ok()) {
    // Touch the parsed result so bogus dimensions would trip ASan.
    volatile double sink = 0.0;
    for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
      for (std::size_t g = 0; g < matrix.num_genes(); ++g) {
        sink = matrix.at(r, g);
      }
    }
    (void)sink;
  }
  return 0;
}
