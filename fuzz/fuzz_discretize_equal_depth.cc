// Fuzz harness for equal-depth discretization. The first input byte picks
// the bucket count (1..32); the rest is parsed as an expression CSV. Every
// successfully parsed matrix must fit and apply without crashing, and the
// resulting dataset must pass Validate(). NaNs, infinities, duplicated
// quantiles, and constant genes all flow through this path.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "dataset/dataset.h"
#include "dataset/discretize.h"
#include "dataset/expression_matrix.h"
#include "dataset/io.h"
#include "util/status.h"

namespace {
// Keeps fit+apply time proportional to the input, not quadratic blow-ups
// from pathological row x gene shapes.
constexpr std::size_t kMaxCells = 1 << 16;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const int buckets = 1 + data[0] % 32;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data + 1), size - 1));
  farmer::ExpressionMatrix matrix;
  if (!farmer::LoadExpressionCsv(in, "fuzz", &matrix).ok()) return 0;
  if (matrix.num_rows() * matrix.num_genes() > kMaxCells) return 0;

  farmer::Discretization disc =
      farmer::Discretization::FitEqualDepth(matrix, buckets);
  farmer::BinaryDataset dataset = disc.Apply(matrix);
  if (!dataset.Validate().ok()) __builtin_trap();
  if (dataset.num_rows() != matrix.num_rows()) __builtin_trap();
  return 0;
}
