// Fuzz harness for Fayyad-Irani entropy-MDL discretization, the recursive
// partitioner with the trickiest arithmetic in the dataset layer (log2 of
// class histograms, boundary-point detection, MDL acceptance). Input is an
// expression CSV; labels come from the parsed matrix. Fit + apply must not
// crash and the result must validate.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "dataset/dataset.h"
#include "dataset/discretize.h"
#include "dataset/expression_matrix.h"
#include "dataset/io.h"
#include "util/status.h"

namespace {
// MDL fitting sorts each gene column; bound total work per input.
constexpr std::size_t kMaxCells = 1 << 14;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  farmer::ExpressionMatrix matrix;
  if (!farmer::LoadExpressionCsv(in, "fuzz", &matrix).ok()) return 0;
  if (matrix.num_rows() * matrix.num_genes() > kMaxCells) return 0;

  farmer::Discretization disc =
      farmer::Discretization::FitEntropyMdl(matrix);
  farmer::BinaryDataset dataset = disc.Apply(matrix);
  if (!dataset.Validate().ok()) __builtin_trap();
  if (dataset.num_rows() != matrix.num_rows()) __builtin_trap();
  return 0;
}
