/// Fuzz harness for the farm wire protocol (FMP1): the preamble
/// detector, the shared frame extractor at the farm's payload cap, and
/// every message codec including the CRC-guarded segment payloads.
///
/// The input is the byte stream of one farm connection. Properties:
///
///   * DetectFarmProtocol is total and matches its spec: kNeedMore only
///     on a strict prefix of "FMP1" or "GET ", kFarm/kHttp only on the
///     exact respective preamble, kUnknown otherwise.
///   * wire::ExtractFrame at kMaxFarmFramePayload never reads past the
///     buffer, never accepts an oversized length, and consumes exactly
///     what it reports.
///   * Every Decode* rejects with InvalidArgument only, and accepted
///     messages re-encode to the byte-identical payload (the codecs are
///     canonical).
///   * DecodeSegments enforces its invariants (ascending in-range rows,
///     support arithmetic) and round-trips through EncodeSegments.
///
/// Any crash, hang, out-of-range read, or round-trip mismatch is a bug.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "farm/protocol.h"
#include "util/status.h"
#include "util/wire.h"

namespace {

using farmer::Status;
namespace farm = farmer::farm;
namespace wire = farmer::wire;

constexpr std::string_view kHttpPreamble = "GET ";

bool IsPrefixOf(std::string_view input, std::string_view preamble) {
  return input.size() < preamble.size() &&
         std::memcmp(input.data(), preamble.data(), input.size()) == 0;
}

bool StartsWith(std::string_view input, std::string_view preamble) {
  return input.size() >= preamble.size() &&
         std::memcmp(input.data(), preamble.data(), preamble.size()) == 0;
}

void CheckDetector(std::string_view input) {
  const std::string_view farm_preamble(farm::kFarmPreamble,
                                       farm::kFarmPreambleSize);
  switch (farm::DetectFarmProtocol(input)) {
    case farm::FarmDetect::kNeedMore:
      if (!IsPrefixOf(input, farm_preamble) &&
          !IsPrefixOf(input, kHttpPreamble)) {
        __builtin_trap();
      }
      break;
    case farm::FarmDetect::kFarm:
      if (!StartsWith(input, farm_preamble)) __builtin_trap();
      break;
    case farm::FarmDetect::kHttp:
      if (!StartsWith(input, kHttpPreamble)) __builtin_trap();
      break;
    case farm::FarmDetect::kUnknown:
      if (IsPrefixOf(input, farm_preamble) ||
          StartsWith(input, farm_preamble) ||
          IsPrefixOf(input, kHttpPreamble) ||
          StartsWith(input, kHttpPreamble)) {
        __builtin_trap();
      }
      break;
  }
}

// Re-extracts the payload of a complete single frame.
std::string_view FramePayload(const std::string& frame) {
  std::size_t consumed = 0;
  std::uint8_t opcode = 0;
  std::string_view payload;
  std::string error;
  if (wire::ExtractFrame(frame, farm::kMaxFarmFramePayload, &consumed,
                         &opcode, &payload,
                         &error) != wire::FrameExtract::kComplete) {
    __builtin_trap();
  }
  if (consumed != frame.size()) __builtin_trap();
  return payload;
}

void CheckStatus(const Status& status) {
  if (!status.ok() && !status.IsInvalidArgument()) __builtin_trap();
}

void CheckSegments(std::string_view payload) {
  std::vector<farmer::MineSegment> segments;
  const Status decoded = farm::DecodeSegments(payload, 300, &segments);
  CheckStatus(decoded);
  if (!decoded.ok()) return;
  if (farm::EncodeSegments(segments) != payload) __builtin_trap();
}

void CheckFrame(std::uint8_t opcode, std::string_view payload) {
  switch (static_cast<farm::FarmOp>(opcode)) {
    case farm::FarmOp::kHello: {
      farm::HelloMsg msg;
      const Status s = farm::DecodeHello(payload, &msg);
      CheckStatus(s);
      if (s.ok() && FramePayload(farm::EncodeHello(msg)) != payload) {
        __builtin_trap();
      }
      break;
    }
    case farm::FarmOp::kHelloAck: {
      farm::HelloAckMsg msg;
      const Status s = farm::DecodeHelloAck(payload, &msg);
      CheckStatus(s);
      if (s.ok() && FramePayload(farm::EncodeHelloAck(msg)) != payload) {
        __builtin_trap();
      }
      break;
    }
    case farm::FarmOp::kLeaseGrant: {
      farm::LeaseGrantMsg msg;
      const Status s = farm::DecodeLeaseGrant(payload, &msg);
      CheckStatus(s);
      if (s.ok() && FramePayload(farm::EncodeLeaseGrant(msg)) != payload) {
        __builtin_trap();
      }
      break;
    }
    case farm::FarmOp::kHeartbeat: {
      farm::HeartbeatMsg msg;
      const Status s = farm::DecodeHeartbeat(payload, &msg);
      CheckStatus(s);
      if (s.ok() && FramePayload(farm::EncodeHeartbeat(msg)) != payload) {
        __builtin_trap();
      }
      break;
    }
    case farm::FarmOp::kResult: {
      farm::ResultMsg msg;
      const Status s = farm::DecodeResult(payload, &msg);
      CheckStatus(s);
      // EncodeResult recomputes the CRC; an accepted payload carried a
      // matching one, so the round-trip must be byte-identical.
      if (s.ok() &&
          FramePayload(farm::EncodeResult(std::move(msg))) != payload) {
        __builtin_trap();
      }
      break;
    }
    case farm::FarmOp::kResultAck: {
      farm::ResultAckMsg msg;
      const Status s = farm::DecodeResultAck(payload, &msg);
      CheckStatus(s);
      if (s.ok() && FramePayload(farm::EncodeResultAck(msg)) != payload) {
        __builtin_trap();
      }
      break;
    }
    case farm::FarmOp::kRevoke: {
      farm::RevokeMsg msg;
      const Status s = farm::DecodeRevoke(payload, &msg);
      CheckStatus(s);
      if (s.ok() && FramePayload(farm::EncodeRevoke(msg)) != payload) {
        __builtin_trap();
      }
      break;
    }
    default:
      break;  // kLeaseRequest/kNoWork/kDone have no payload; rest unknown.
  }
}

void WalkFarmStream(std::string_view buffer) {
  std::size_t pos = farm::kFarmPreambleSize;
  for (;;) {
    const std::string_view rest = buffer.substr(pos);
    std::size_t consumed = 0;
    std::uint8_t opcode = 0;
    std::string_view payload;
    std::string error;
    switch (wire::ExtractFrame(rest, farm::kMaxFarmFramePayload, &consumed,
                               &opcode, &payload, &error)) {
      case wire::FrameExtract::kNeedMore:
        return;
      case wire::FrameExtract::kError:
        if (error.empty()) __builtin_trap();
        return;
      case wire::FrameExtract::kComplete:
        if (consumed < 5 || consumed > rest.size()) __builtin_trap();
        if (payload.size() != consumed - 5) __builtin_trap();
        if (payload.size() > farm::kMaxFarmFramePayload) __builtin_trap();
        // The payload view must alias the buffer, not dangle.
        if (!payload.empty() &&
            (payload.data() < rest.data() ||
             payload.data() + payload.size() > rest.data() + rest.size())) {
          __builtin_trap();
        }
        CheckFrame(opcode, payload);
        CheckSegments(payload);
        pos += consumed;
        break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  CheckDetector(input);
  if (StartsWith(input,
                 std::string_view(farm::kFarmPreamble,
                                  farm::kFarmPreambleSize))) {
    WalkFarmStream(input);
  } else if (!input.empty()) {
    // No preamble: drive the codecs directly — first byte picks the
    // decoder, the rest is its payload.
    CheckFrame(input[0], input.substr(1));
    CheckSegments(input.substr(1));
  }
  return 0;
}
