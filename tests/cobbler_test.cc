#include "baselines/cobbler.h"

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "baselines/charm.h"
#include "core/brute_force.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::MakeDataset;
using testing_util::RandomDataset;

std::set<std::pair<ItemVector, std::size_t>> Canon(
    const std::vector<FrequentClosed>& closed) {
  std::set<std::pair<ItemVector, std::size_t>> out;
  for (const FrequentClosed& c : closed) out.emplace(c.items, c.support);
  return out;
}

std::set<std::pair<ItemVector, std::size_t>> CanonBf(
    const std::vector<ClosedItemset>& closed) {
  std::set<std::pair<ItemVector, std::size_t>> out;
  for (const ClosedItemset& c : closed) out.emplace(c.items, c.rows.Count());
  return out;
}

TEST(CobblerTest, HandComputedExample) {
  BinaryDataset ds =
      MakeDataset({{{0, 1}, 1}, {{0, 1}, 0}, {{0, 2}, 1}});
  CobblerOptions opts;
  CobblerResult r = MineCobbler(ds, opts);
  EXPECT_EQ(Canon(r.closed),
            (std::set<std::pair<ItemVector, std::size_t>>{
                {{0}, 3}, {{0, 1}, 2}, {{0, 2}, 1}}));
}

class CobblerSweepTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, int, CobblerMode>> {};

TEST_P(CobblerSweepTest, MatchesBruteForceInEveryMode) {
  const auto [seed, minsup, mode] = GetParam();
  for (double density : {0.3, 0.6}) {
    BinaryDataset ds = RandomDataset(10, 12, density, seed);
    CobblerOptions opts;
    opts.min_support = static_cast<std::size_t>(minsup);
    opts.mode = mode;
    CobblerResult mined = MineCobbler(ds, opts);
    ASSERT_FALSE(mined.timed_out);
    EXPECT_EQ(Canon(mined.closed),
              CanonBf(BruteForceClosedItemsets(ds, opts.min_support)))
        << "seed=" << seed << " minsup=" << minsup
        << " mode=" << static_cast<int>(mode) << " density=" << density;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatasets, CobblerSweepTest,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 7),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(CobblerMode::kDynamic,
                                         CobblerMode::kColumnOnly,
                                         CobblerMode::kRowOnly)));

TEST(CobblerTest, DynamicSwitchesToRowsOnWideData) {
  // A wide microarray-shaped context should trip the estimator into row
  // enumeration.
  SyntheticSpec spec;
  spec.num_rows = 20;
  spec.num_genes = 120;
  spec.num_class1 = 10;
  spec.num_clusters = 3;
  spec.seed = 4;
  ExpressionMatrix m = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(m, 4).Apply(m);
  CobblerOptions opts;
  opts.min_support = 2;
  CobblerResult r = MineCobbler(ds, opts);
  EXPECT_GT(r.switches_to_rows, 0u);

  // And the result still matches CHARM.
  CharmOptions chopts;
  chopts.min_support = 2;
  CharmResult charm = MineCharm(ds, chopts);
  std::set<std::pair<ItemVector, std::size_t>> charm_canon;
  for (const ClosedItemset& c : charm.closed) {
    charm_canon.emplace(c.items, c.rows.Count());
  }
  EXPECT_EQ(Canon(r.closed), charm_canon);
}

TEST(CobblerTest, ModesAgreeOnMicroarrayShapedData) {
  SyntheticSpec spec;
  spec.num_rows = 18;
  spec.num_genes = 50;
  spec.num_class1 = 9;
  spec.seed = 7;
  ExpressionMatrix m = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(m, 3).Apply(m);
  CobblerOptions a, b, c;
  a.min_support = b.min_support = c.min_support = 3;
  a.mode = CobblerMode::kDynamic;
  b.mode = CobblerMode::kColumnOnly;
  c.mode = CobblerMode::kRowOnly;
  const auto ra = Canon(MineCobbler(ds, a).closed);
  const auto rb = Canon(MineCobbler(ds, b).closed);
  const auto rc = Canon(MineCobbler(ds, c).closed);
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(rb, rc);
  EXPECT_FALSE(ra.empty());
}

TEST(CobblerTest, DeadlineStops) {
  BinaryDataset ds = RandomDataset(16, 40, 0.6, 2);
  CobblerOptions opts;
  opts.deadline = Deadline::After(1e-9);
  EXPECT_TRUE(MineCobbler(ds, opts).timed_out);
}

}  // namespace
}  // namespace farmer
