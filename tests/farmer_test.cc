#include "core/farmer.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/measures.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::MakeDataset;
using testing_util::PaperExampleDataset;
using testing_util::RandomDataset;

// Canonical comparable form of a mining result: row set -> (antecedent,
// supp, supn, conf).
struct GroupKey {
  std::vector<std::size_t> rows;
  ItemVector antecedent;
  std::size_t supp;
  std::size_t supn;

  bool operator<(const GroupKey& other) const {
    return std::tie(rows, antecedent, supp, supn) <
           std::tie(other.rows, other.antecedent, other.supp, other.supn);
  }
  bool operator==(const GroupKey& other) const {
    return rows == other.rows && antecedent == other.antecedent &&
           supp == other.supp && supn == other.supn;
  }
};

std::set<GroupKey> Canon(const std::vector<RuleGroup>& groups) {
  std::set<GroupKey> out;
  for (const RuleGroup& g : groups) {
    out.insert(GroupKey{g.rows.ToVector(), g.antecedent, g.support_pos,
                        g.support_neg});
  }
  return out;
}

TEST(FarmerTest, PaperRunningExampleUpperBounds) {
  // Figure 1/3 and Example 2: the rule group with upper bound
  // {a,e,h} -> C sits at rows {2,3,4} (1-based) with support 2 and
  // confidence 2/3, and its lower bounds are e and h.
  BinaryDataset ds = PaperExampleDataset();
  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 1;
  opts.report_all_rule_groups = true;
  FarmerResult result = MineFarmer(ds, opts);
  ASSERT_FALSE(result.stats.timed_out);

  auto ch = [](char c) { return static_cast<ItemId>(c - 'a'); };
  const ItemVector aeh = {ch('a'), ch('e'), ch('h')};
  bool found = false;
  for (const RuleGroup& g : result.groups) {
    if (g.antecedent == aeh) {
      found = true;
      EXPECT_EQ(g.rows.ToVector(), (std::vector<std::size_t>{1, 2, 3}));
      EXPECT_EQ(g.support_pos, 2u);
      EXPECT_EQ(g.support_neg, 1u);
      EXPECT_NEAR(g.confidence, 2.0 / 3.0, 1e-12);
      // Its lower bounds are e and h (Example 2).
      EXPECT_EQ(testing_util::AsSet(g.lower_bounds),
                testing_util::AsSet({{ch('e')}, {ch('h')}}));
    }
  }
  EXPECT_TRUE(found) << "rule group aeh -> C not reported";

  // With the interestingness filter on, aeh -> C (conf 2/3) is dominated
  // by the more general group a -> C (conf 3/4) and must be dropped
  // (Definition 2.2), while a -> C itself is reported.
  MinerOptions irg_opts = opts;
  irg_opts.report_all_rule_groups = false;
  FarmerResult irgs = MineFarmer(ds, irg_opts);
  bool has_aeh = false, has_a = false;
  for (const RuleGroup& g : irgs.groups) {
    if (g.antecedent == aeh) has_aeh = true;
    if (g.antecedent == ItemVector{ch('a')}) {
      has_a = true;
      EXPECT_NEAR(g.confidence, 0.75, 1e-12);
    }
  }
  EXPECT_FALSE(has_aeh);
  EXPECT_TRUE(has_a);
}

// Self-verification mode: every word-parallel kernel call is cross-checked
// against the scalar references, the store is re-validated, antecedent
// closure and MineLB minimality are proven per group. A contract violation
// aborts the test binary, so a green run *is* the assertion; we also check
// the verified run reports exactly the same groups as the plain run.
TEST(FarmerTest, VerifyInvariantsModeMatchesPlainRun) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    BinaryDataset ds = RandomDataset(12, 20, 0.35, seed);
    MinerOptions opts;
    opts.min_support = 2;
    opts.min_confidence = 0.5;
    FarmerResult plain = MineFarmer(ds, opts);
    opts.verify_invariants = true;
    FarmerResult verified = MineFarmer(ds, opts);
    EXPECT_EQ(Canon(plain.groups), Canon(verified.groups))
        << "seed=" << seed;
    EXPECT_EQ(plain.stats.nodes_visited, verified.stats.nodes_visited);
  }
}

TEST(FarmerTest, VerifyInvariantsCoversOptionVariants) {
  BinaryDataset ds = RandomDataset(12, 18, 0.4, 21);
  MinerOptions base;
  base.min_support = 2;
  base.verify_invariants = true;

  {
    MinerOptions opts = base;
    opts.report_all_rule_groups = true;
    MineFarmer(ds, opts);
  }
  {
    MinerOptions opts = base;
    opts.top_k = 5;
    MineFarmer(ds, opts);
  }
  {
    MinerOptions opts = base;
    opts.min_chi_square = 3.84;
    MineFarmer(ds, opts);
  }
  {
    MinerOptions opts = base;
    opts.mine_lower_bounds = false;
    MineFarmer(ds, opts);
  }
  {
    MinerOptions opts = base;
    opts.store_antecedents = false;
    MineFarmer(ds, opts);
  }
}

TEST(FarmerTest, PaperExampleMatchesBruteForce) {
  BinaryDataset ds = PaperExampleDataset();
  for (std::size_t minsup : {1u, 2u, 3u}) {
    for (double minconf : {0.0, 0.5, 0.9}) {
      MinerOptions opts;
      opts.consequent = 1;
      opts.min_support = minsup;
      opts.min_confidence = minconf;
      FarmerResult mined = MineFarmer(ds, opts);
      std::vector<RuleGroup> expected = BruteForceIRGs(ds, opts);
      EXPECT_EQ(Canon(mined.groups), Canon(expected))
          << "minsup=" << minsup << " minconf=" << minconf;
    }
  }
}

TEST(FarmerTest, EmptyAndDegenerateDatasets) {
  BinaryDataset empty(4);
  MinerOptions opts;
  EXPECT_TRUE(MineFarmer(empty, opts).groups.empty());

  // Single row: one rule group (the full row), confidence 1.
  BinaryDataset one = MakeDataset({{{0, 1, 2}, 1}});
  FarmerResult r = MineFarmer(one, opts);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].antecedent, (ItemVector{0, 1, 2}));
  EXPECT_EQ(r.groups[0].support_pos, 1u);
  EXPECT_DOUBLE_EQ(r.groups[0].confidence, 1.0);

  // All rows the wrong class: nothing satisfies minsup >= 1.
  BinaryDataset wrong = MakeDataset({{{0, 1}, 0}, {{1, 2}, 0}});
  EXPECT_TRUE(MineFarmer(wrong, opts).groups.empty());

  // Rows with empty itemsets are tolerated.
  BinaryDataset with_empty = MakeDataset({{{}, 1}, {{0, 1}, 1}});
  FarmerResult r2 = MineFarmer(with_empty, opts);
  ASSERT_EQ(r2.groups.size(), 1u);
  EXPECT_EQ(r2.groups[0].antecedent, (ItemVector{0, 1}));
}

TEST(FarmerTest, RespectsDeadline) {
  BinaryDataset ds = RandomDataset(14, 40, 0.5, 99);
  MinerOptions opts;
  opts.deadline = Deadline::After(1e-9);  // Expires immediately.
  FarmerResult r = MineFarmer(ds, opts);
  EXPECT_TRUE(r.stats.timed_out);
}

TEST(FarmerTest, ChiSquareConstraintFiltersAndMatchesBruteForce) {
  BinaryDataset ds = RandomDataset(12, 16, 0.4, 4242);
  MinerOptions opts;
  opts.min_support = 2;
  opts.min_chi_square = 2.0;
  FarmerResult mined = MineFarmer(ds, opts);
  std::vector<RuleGroup> expected = BruteForceIRGs(ds, opts);
  EXPECT_EQ(Canon(mined.groups), Canon(expected));
  const std::size_t n = ds.num_rows();
  const std::size_t m = ds.CountLabel(1);
  for (const RuleGroup& g : mined.groups) {
    EXPECT_GE(g.chi_square, 2.0);
    EXPECT_NEAR(g.chi_square,
                ChiSquare(g.antecedent_support(), g.support_pos, n, m),
                1e-9);
  }
}

// Property sweep: FARMER == brute force on random datasets across
// constraint combinations.
struct SweepParam {
  std::uint64_t seed;
  std::size_t rows;
  std::size_t items;
  double density;
  std::size_t minsup;
  double minconf;
  double minchi;
};

class FarmerSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FarmerSweepTest, MatchesBruteForceOracle) {
  const SweepParam p = GetParam();
  BinaryDataset ds = RandomDataset(p.rows, p.items, p.density, p.seed);
  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = p.minsup;
  opts.min_confidence = p.minconf;
  opts.min_chi_square = p.minchi;
  FarmerResult mined = MineFarmer(ds, opts);
  ASSERT_FALSE(mined.stats.timed_out);
  std::vector<RuleGroup> expected = BruteForceIRGs(ds, opts);
  EXPECT_EQ(Canon(mined.groups), Canon(expected))
      << "seed=" << p.seed << " rows=" << p.rows << " items=" << p.items
      << " density=" << p.density << " minsup=" << p.minsup
      << " minconf=" << p.minconf << " minchi=" << p.minchi;
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> params;
  std::uint64_t seed = 1;
  for (std::size_t rows : {5u, 9u, 12u, 14u}) {
    for (double density : {0.15, 0.25, 0.5, 0.75, 0.9}) {
      for (std::size_t minsup : {1u, 2u, 3u}) {
        for (double minconf : {0.0, 0.6}) {
          for (double minchi : {0.0, 1.5}) {
            params.push_back(
                SweepParam{seed++, rows, rows + 6, density, minsup, minconf,
                           minchi});
          }
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(RandomDatasets, FarmerSweepTest,
                         ::testing::ValuesIn(MakeSweep()));

// The ablation toggles must not change the mined result, only the work.
struct AblationParam {
  bool p1, p2, p3;
};
class FarmerAblationTest : public ::testing::TestWithParam<AblationParam> {};

TEST_P(FarmerAblationTest, PruningTogglesPreserveResults) {
  const AblationParam p = GetParam();
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    BinaryDataset ds = RandomDataset(10, 14, 0.45, seed);
    MinerOptions base;
    base.min_support = 2;
    base.min_confidence = 0.5;
    FarmerResult reference = MineFarmer(ds, base);

    MinerOptions toggled = base;
    toggled.enable_pruning1 = p.p1;
    toggled.enable_pruning2 = p.p2;
    toggled.enable_pruning3 = p.p3;
    FarmerResult ablated = MineFarmer(ds, toggled);
    EXPECT_EQ(Canon(reference.groups), Canon(ablated.groups))
        << "p1=" << p.p1 << " p2=" << p.p2 << " p3=" << p.p3
        << " seed=" << seed;
    if (!p.p1 || !p.p2 || !p.p3) {
      EXPECT_GE(ablated.stats.nodes_visited,
                reference.stats.nodes_visited);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Toggles, FarmerAblationTest,
    ::testing::Values(AblationParam{false, true, true},
                      AblationParam{true, false, true},
                      AblationParam{true, true, false},
                      AblationParam{false, false, true},
                      AblationParam{false, false, false}));

TEST(FarmerTest, TopKReturnsBestByConfidenceThenSupport) {
  BinaryDataset ds = RandomDataset(12, 14, 0.5, 7);
  MinerOptions full;
  full.min_support = 1;
  FarmerResult all = MineFarmer(ds, full);

  MinerOptions topk = full;
  topk.top_k = 5;
  FarmerResult top = MineFarmer(ds, topk);
  ASSERT_LE(top.groups.size(), 5u);
  if (all.groups.size() >= 5) {
    ASSERT_EQ(top.groups.size(), 5u);
  }

  // The multiset of (confidence, support) pairs must match the best-k of
  // the full run.
  std::vector<std::pair<double, std::size_t>> expected;
  for (const RuleGroup& g : all.groups) {
    expected.emplace_back(g.confidence, g.support_pos);
  }
  std::sort(expected.begin(), expected.end(),
            [](const auto& a, const auto& b) { return a > b; });
  expected.resize(std::min<std::size_t>(5, expected.size()));
  std::vector<std::pair<double, std::size_t>> got;
  for (const RuleGroup& g : top.groups) {
    got.emplace_back(g.confidence, g.support_pos);
  }
  std::sort(got.begin(), got.end(),
            [](const auto& a, const auto& b) { return a > b; });
  EXPECT_EQ(got, expected);
}

TEST(FarmerTest, ReportAllRuleGroupsMatchesBruteForceGroups) {
  BinaryDataset ds = RandomDataset(10, 12, 0.5, 13);
  MinerOptions opts;
  opts.min_support = 1;
  opts.report_all_rule_groups = true;
  FarmerResult mined = MineFarmer(ds, opts);

  std::vector<RuleGroup> all = BruteForceAllRuleGroups(ds, 1);
  std::vector<RuleGroup> expected;
  for (RuleGroup& g : all) {
    if (g.support_pos >= 1) expected.push_back(std::move(g));
  }
  EXPECT_EQ(Canon(mined.groups), Canon(expected));
}

TEST(FarmerTest, StoreAntecedentsOffStillMinesLowerBounds) {
  BinaryDataset ds = PaperExampleDataset();
  MinerOptions opts;
  opts.store_antecedents = false;
  opts.mine_lower_bounds = true;
  FarmerResult r = MineFarmer(ds, opts);
  ASSERT_FALSE(r.groups.empty());
  for (const RuleGroup& g : r.groups) {
    EXPECT_TRUE(g.antecedent.empty());
    EXPECT_FALSE(g.lower_bounds.empty());
  }
}

TEST(FarmerTest, ExtensionMeasureConstraintsMatchBruteForce) {
  BinaryDataset ds = RandomDataset(11, 13, 0.5, 77);
  MinerOptions opts;
  opts.min_support = 1;
  opts.min_lift = 1.2;
  opts.min_conviction = 1.1;
  opts.min_entropy_gain = 0.05;
  FarmerResult mined = MineFarmer(ds, opts);
  std::vector<RuleGroup> expected = BruteForceIRGs(ds, opts);
  EXPECT_EQ(Canon(mined.groups), Canon(expected));
}

TEST(FarmerTest, GiniAndCorrelationConstraintsMatchBruteForce) {
  for (std::uint64_t seed : {78u, 79u, 80u}) {
    BinaryDataset ds = RandomDataset(11, 13, 0.5, seed);
    MinerOptions opts;
    opts.min_support = 1;
    opts.min_gini_gain = 0.05;
    opts.min_correlation = 0.3;
    FarmerResult mined = MineFarmer(ds, opts);
    std::vector<RuleGroup> expected = BruteForceIRGs(ds, opts);
    EXPECT_EQ(Canon(mined.groups), Canon(expected)) << "seed=" << seed;
  }
}

TEST(FarmerTest, MinedGroupsAreClosedAndSupportsExact) {
  BinaryDataset ds = RandomDataset(13, 18, 0.4, 1234);
  MinerOptions opts;
  opts.min_support = 1;
  FarmerResult mined = MineFarmer(ds, opts);
  for (const RuleGroup& g : mined.groups) {
    const Bitset support = RowSupportSet(ds, g.antecedent);
    EXPECT_EQ(support, g.rows) << "row support set mismatch";
    std::size_t supp = 0, supn = 0;
    support.ForEach([&](std::size_t r) {
      if (ds.label(static_cast<RowId>(r)) == 1) {
        ++supp;
      } else {
        ++supn;
      }
    });
    EXPECT_EQ(supp, g.support_pos);
    EXPECT_EQ(supn, g.support_neg);
  }
}

}  // namespace
}  // namespace farmer
