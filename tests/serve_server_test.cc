#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/farmer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace farmer {
namespace serve {
namespace {

using testing_util::RandomDataset;

RuleGroupIndex MakeIndex(std::uint64_t seed = 41) {
  BinaryDataset ds = RandomDataset(14, 16, 0.45, seed);
  MinerOptions opts;
  opts.min_support = 2;
  FarmerResult mined = MineFarmer(ds, opts);
  RuleGroupSnapshot snapshot;
  snapshot.groups = std::move(mined.groups);
  snapshot.num_rows = ds.num_rows();
  snapshot.params = SnapshotParams::FromMinerOptions(opts);
  snapshot.fingerprint = SnapshotFingerprint::FromDataset(ds);
  return RuleGroupIndex(std::move(snapshot));
}

// A blocking line-oriented test client.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(const std::string& line) { return SendRaw(line + "\n"); }

  // Unframed bytes, for exercising partial-line behavior.
  bool SendRaw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool Recv(std::string* line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string RoundTrip(const std::string& request) {
    if (!Send(request)) return "<send failed>";
    std::string response;
    if (!Recv(&response)) return "<recv failed>";
    return response;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

TEST(ServerTest, ServesQueriesOnEphemeralPort) {
  Server::Options options;
  options.num_workers = 2;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.RoundTrip("{\"op\":\"ping\"}"),
            "{\"ok\":true,\"op\":\"ping\",\"cached\":false}");
  const std::string stats = client.RoundTrip("{\"op\":\"stats\"}");
  EXPECT_NE(stats.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(stats.find("\"groups\":"), std::string::npos);
  const std::string topk = client.RoundTrip(
      "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":3}");
  EXPECT_NE(topk.find("\"op\":\"topk_confidence\""), std::string::npos);
  EXPECT_NE(topk.find("\"cached\":false"), std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, PipelinedRequestsOnOneConnection) {
  Server::Options options;
  options.num_workers = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Send several requests before reading any response.
  ASSERT_TRUE(client.Send("{\"op\":\"ping\",\"id\":\"a\"}"));
  ASSERT_TRUE(client.Send("{\"op\":\"ping\",\"id\":\"b\"}"));
  ASSERT_TRUE(client.Send("{\"op\":\"ping\",\"id\":\"c\"}"));
  std::string line;
  for (const char* id : {"a", "b", "c"}) {
    ASSERT_TRUE(client.Recv(&line));
    EXPECT_NE(line.find(std::string("\"id\":\"") + id + "\""),
              std::string::npos)
        << line;
  }
  server.Shutdown();
}

TEST(ServerTest, CachesRepeatedQueries) {
  obs::MetricsRegistry metrics;
  Server::Options options;
  options.num_workers = 2;
  options.metrics = &metrics;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  const std::string query =
      "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":4}";
  TestClient a(server.port());
  ASSERT_TRUE(a.connected());
  const std::string first = a.RoundTrip(query);
  EXPECT_NE(first.find("\"cached\":false"), std::string::npos);
  // Same canonical query from another connection hits the cache.
  TestClient b(server.port());
  ASSERT_TRUE(b.connected());
  const std::string second = b.RoundTrip(
      "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":4,\"id\":\"x\"}");
  EXPECT_NE(second.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(second.find("\"id\":\"x\""), std::string::npos);
  // Identical payloads modulo the cached flag and echo id.
  EXPECT_EQ(first.substr(0, first.find("\"cached\"")),
            second.substr(0, second.find("\"cached\"")));
  EXPECT_EQ(server.cache().hits(), 1u);
  server.Shutdown();

  bool saw_hit_counter = false;
  for (const auto& c : metrics.Snapshot().counters) {
    if (c.name == "serve.cache_hits") {
      saw_hit_counter = true;
      EXPECT_EQ(c.value, 1u);
    }
  }
  EXPECT_TRUE(saw_hit_counter);
}

TEST(ServerTest, RejectsMalformedRequestsWithoutClosing) {
  Server::Options options;
  options.num_workers = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (const char* bad :
       {"not json", "{\"op\":\"nope\"}", "{}", "[1,2]",
        "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":-1}",
        "{\"op\":\"ping\",\"stray\":1}"}) {
    const std::string response = client.RoundTrip(bad);
    EXPECT_NE(response.find("\"error\":\"bad_request\""), std::string::npos)
        << bad << " -> " << response;
  }
  // The connection stays usable after errors.
  EXPECT_NE(client.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true"),
            std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, TinyDeadlineYieldsDeadlineExceeded) {
  Server::Options options;
  options.num_workers = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // 1e-9 ms rounds to a zero-length budget: expired before execution.
  const std::string response = client.RoundTrip(
      "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":2,"
      "\"deadline_ms\":1e-9}");
  EXPECT_NE(response.find("\"error\":\"deadline_exceeded\""),
            std::string::npos)
      << response;
  server.Shutdown();
}

TEST(ServerTest, OverloadFloodGetsExplicitErrors) {
  Server::Options options;
  options.num_workers = 1;
  options.max_connections = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  // Fill the single admission slot and prove it is held.
  TestClient holder(server.port());
  ASSERT_TRUE(holder.connected());
  EXPECT_NE(holder.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true"),
            std::string::npos);

  // Every further connection must get an explicit overloaded error —
  // never a silent drop, never a hang.
  for (int i = 0; i < 8; ++i) {
    TestClient extra(server.port());
    ASSERT_TRUE(extra.connected());
    std::string line;
    ASSERT_TRUE(extra.Recv(&line)) << "flood connection " << i;
    EXPECT_NE(line.find("\"error\":\"overloaded\""), std::string::npos)
        << line;
  }
  EXPECT_EQ(server.overloaded_count(), 8u);
  server.Shutdown();
}

TEST(ServerTest, ConcurrentClientsAllGetAnswers) {
  obs::MetricsRegistry metrics;
  obs::TraceSession trace(/*num_lanes=*/5);
  Server::Options options;
  options.num_workers = 4;
  options.metrics = &metrics;
  options.trace = &trace;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequests = 25;
  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([c, port = server.port(), &ok_counts] {
      TestClient client(port);
      if (!client.connected()) return;
      for (int r = 0; r < kRequests; ++r) {
        std::string query;
        switch (r % 4) {
          case 0:
            query = "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":5}";
            break;
          case 1:
            query = "{\"op\":\"topk\",\"metric\":\"chi_square\",\"k\":3}";
            break;
          case 2:
            query = "{\"op\":\"filter\",\"minsup\":2,\"minconf\":0.5}";
            break;
          default:
            query = "{\"op\":\"ping\"}";
        }
        const std::string response = client.RoundTrip(query);
        if (response.find("\"ok\":true") != std::string::npos) {
          ++ok_counts[c];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_counts[c], kRequests) << "client " << c;
  }
  server.Shutdown();

  std::uint64_t requests = 0;
  for (const auto& counter : metrics.Snapshot().counters) {
    if (counter.name == "serve.requests") requests = counter.value;
  }
  EXPECT_EQ(requests,
            static_cast<std::uint64_t>(kClients) * kRequests);
  // Worker lanes saw request spans.
  std::uint64_t events = 0;
  for (std::size_t lane = 0; lane < trace.num_lanes(); ++lane) {
    events += trace.ring(lane).pushed();
  }
  EXPECT_GT(events, 0u);
}

TEST(ServerTest, ShutdownIsIdempotentAndStopsAccepting) {
  Server::Options options;
  options.num_workers = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();
  {
    TestClient client(port);
    ASSERT_TRUE(client.connected());
    EXPECT_NE(client.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true"),
              std::string::npos);
  }
  server.Shutdown();
  server.Shutdown();  // Second call is a no-op.

  // The listener is gone: either the connect fails outright or the
  // socket delivers EOF/reset instead of a response.
  TestClient after(port);
  if (after.connected()) {
    std::string line;
    after.Send("{\"op\":\"ping\"}");
    EXPECT_FALSE(after.Recv(&line));
  }
}

TEST(ServerTest, IdleConnectionIsTimedOutAndFreesItsSlot) {
  Server::Options options;
  options.num_workers = 1;
  options.max_connections = 1;
  options.idle_timeout_s = 0.25;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  // A slow-loris client: holds the only admission slot while trickling
  // an incomplete line. Partial data must not reset the idle deadline.
  TestClient loris(server.port());
  ASSERT_TRUE(loris.connected());
  ASSERT_TRUE(loris.SendRaw("{\"op\""));  // No newline: never a request.
  std::string line;
  ASSERT_TRUE(loris.Recv(&line));
  EXPECT_NE(line.find("\"error\":\"idle_timeout\""), std::string::npos)
      << line;
  EXPECT_FALSE(loris.Recv(&line));  // Connection closed after the error.

  // The slot is released: a fresh client gets served, not overloaded.
  // Retry briefly — the slot is freed a beat after the socket closes.
  bool served = false;
  for (int attempt = 0; attempt < 100 && !served; ++attempt) {
    TestClient next(server.port());
    if (!next.connected()) continue;
    served = next.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true") !=
             std::string::npos;
    if (!served) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(served);
  server.Shutdown();
}

TEST(ServerTest, CompletedRequestsResetTheIdleDeadline) {
  Server::Options options;
  options.num_workers = 1;
  options.idle_timeout_s = 0.3;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Four requests spread over twice the idle timeout: each completed
  // line pushes the deadline out, so the connection stays open.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(client.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true"),
              std::string::npos)
        << "request " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  server.Shutdown();
}

TEST(ServerTest, OverlongRequestLineIsRejected) {
  Server::Options options;
  options.num_workers = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // A newline-free blob over the cap: the server answers bad_request and
  // closes rather than buffering forever.
  const std::string blob(kMaxRequestBytes + 100, 'x');
  ASSERT_TRUE(client.Send(blob));
  std::string line;
  ASSERT_TRUE(client.Recv(&line));
  EXPECT_NE(line.find("\"error\":\"bad_request\""), std::string::npos);
  server.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace farmer
