#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/farmer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/snapshot.h"
#include "tests/test_util.h"

namespace farmer {
namespace serve {
namespace {

using testing_util::RandomDataset;

RuleGroupSnapshot MakeSnapshot(std::uint64_t seed = 41) {
  BinaryDataset ds = RandomDataset(14, 16, 0.45, seed);
  MinerOptions opts;
  opts.min_support = 2;
  FarmerResult mined = MineFarmer(ds, opts);
  RuleGroupSnapshot snapshot;
  snapshot.groups = std::move(mined.groups);
  snapshot.num_rows = ds.num_rows();
  snapshot.params = SnapshotParams::FromMinerOptions(opts);
  snapshot.fingerprint = SnapshotFingerprint::FromDataset(ds);
  return snapshot;
}

RuleGroupIndex MakeIndex(std::uint64_t seed = 41) {
  return RuleGroupIndex(MakeSnapshot(seed));
}

// A blocking test client speaking either framing.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(const std::string& line) { return SendRaw(line + "\n"); }

  // Unframed bytes, for exercising partial-line behavior.
  bool SendRaw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool Recv(std::string* line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  // Reads one FQP1 response frame; fills the echoed req_id, the status,
  // and the JSON text.
  bool RecvFrame(std::uint64_t* req_id, FrameStatus* status,
                 std::string* json) {
    for (;;) {
      if (buffer_.size() >= 4) {
        std::uint32_t len = 0;
        std::memcpy(&len, buffer_.data(), sizeof(len));
        if (buffer_.size() >= 4 + static_cast<std::size_t>(len)) {
          const Status s = DecodeResponseFrame(
              std::string_view(buffer_.data() + 4, len), status, req_id,
              json);
          buffer_.erase(0, 4 + static_cast<std::size_t>(len));
          return s.ok();
        }
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string RoundTrip(const std::string& request) {
    if (!Send(request)) return "<send failed>";
    std::string response;
    if (!Recv(&response)) return "<recv failed>";
    return response;
  }

  // Everything until the peer closes — for HTTP responses.
  std::string RecvAll() {
    for (;;) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    return buffer_;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::string Preamble() {
  return std::string(kBinaryPreamble, kBinaryPreambleSize);
}

TEST(ServerTest, ServesQueriesOnEphemeralPort) {
  Server::Options options;
  options.num_shards = 2;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.RoundTrip("{\"op\":\"ping\"}"),
            "{\"ok\":true,\"op\":\"ping\",\"cached\":false}");
  const std::string stats = client.RoundTrip("{\"op\":\"stats\"}");
  EXPECT_NE(stats.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(stats.find("\"groups\":"), std::string::npos);
  EXPECT_NE(stats.find("\"version\":1"), std::string::npos);
  const std::string topk = client.RoundTrip(
      "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":3}");
  EXPECT_NE(topk.find("\"op\":\"topk_confidence\""), std::string::npos);
  EXPECT_NE(topk.find("\"cached\":false"), std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, PipelinedRequestsOnOneConnection) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Send several requests before reading any response.
  ASSERT_TRUE(client.Send("{\"op\":\"ping\",\"id\":\"a\"}"));
  ASSERT_TRUE(client.Send("{\"op\":\"ping\",\"id\":\"b\"}"));
  ASSERT_TRUE(client.Send("{\"op\":\"ping\",\"id\":\"c\"}"));
  std::string line;
  for (const char* id : {"a", "b", "c"}) {
    ASSERT_TRUE(client.Recv(&line));
    EXPECT_NE(line.find(std::string("\"id\":\"") + id + "\""),
              std::string::npos)
        << line;
  }
  server.Shutdown();
}

TEST(ServerTest, BinaryPipelinedFramesAnswerInOrder) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // M frames in ONE write (after the preamble): the shard must parse
  // them all off the buffer and answer each, in arrival order.
  constexpr std::uint64_t kFrames = 9;
  std::string burst = Preamble();
  for (std::uint64_t i = 1; i <= kFrames; ++i) {
    QueryRequest req;
    req.bin_id = i;
    if (i % 3 == 0) {
      req.op = QueryRequest::Op::kPing;
    } else {
      req.op = QueryRequest::Op::kTopkConfidence;
      req.k = static_cast<std::size_t>(i);
    }
    burst += EncodeBinaryRequest(req);
  }
  ASSERT_TRUE(client.SendRaw(burst));

  for (std::uint64_t i = 1; i <= kFrames; ++i) {
    std::uint64_t req_id = 0;
    FrameStatus status = FrameStatus::kInternal;
    std::string json;
    ASSERT_TRUE(client.RecvFrame(&req_id, &status, &json)) << "frame " << i;
    EXPECT_EQ(req_id, i);
    EXPECT_EQ(status, FrameStatus::kOk) << json;
    EXPECT_NE(json.find("\"ok\":true"), std::string::npos) << json;
  }
  server.Shutdown();
}

TEST(ServerTest, BinaryPreambleSplitAcrossWritesStillDetected) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  QueryRequest req;
  req.op = QueryRequest::Op::kPing;
  req.bin_id = 7;
  const std::string frame = EncodeBinaryRequest(req);
  // The detector must hold its decision on a strict preamble prefix.
  ASSERT_TRUE(client.SendRaw("FQ"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(client.SendRaw("P1" + frame));

  std::uint64_t req_id = 0;
  FrameStatus status = FrameStatus::kInternal;
  std::string json;
  ASSERT_TRUE(client.RecvFrame(&req_id, &status, &json));
  EXPECT_EQ(req_id, 7u);
  EXPECT_EQ(status, FrameStatus::kOk);
  EXPECT_NE(json.find("\"op\":\"ping\""), std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, BinaryOversizedFrameLengthClosesConnection) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  std::string bytes = Preamble();
  const std::uint32_t huge = 0xFFFFFFFFu;
  bytes.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  ASSERT_TRUE(client.SendRaw(bytes));

  std::uint64_t req_id = 0;
  FrameStatus status = FrameStatus::kOk;
  std::string json;
  ASSERT_TRUE(client.RecvFrame(&req_id, &status, &json));
  EXPECT_EQ(status, FrameStatus::kBadRequest) << json;
  // Unrecoverable framing: the server closes after the error frame.
  std::string extra;
  EXPECT_FALSE(client.RecvFrame(&req_id, &status, &extra));
  server.Shutdown();
}

TEST(ServerTest, QueuedPipelinedRequestBurnsItsOwnDeadline) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // One write, three requests. The middle one carries a zero-length
  // budget anchored at parse time, so it must expire while queued
  // behind its predecessor — its neighbors still succeed.
  ASSERT_TRUE(client.SendRaw(
      "{\"op\":\"ping\",\"id\":\"a\"}\n"
      "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":2,"
      "\"deadline_ms\":1e-9,\"id\":\"b\"}\n"
      "{\"op\":\"ping\",\"id\":\"c\"}\n"));
  std::string line;
  ASSERT_TRUE(client.Recv(&line));
  EXPECT_NE(line.find("\"id\":\"a\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  ASSERT_TRUE(client.Recv(&line));
  EXPECT_NE(line.find("\"id\":\"b\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"error\":\"deadline_exceeded\""), std::string::npos)
      << line;
  ASSERT_TRUE(client.Recv(&line));
  EXPECT_NE(line.find("\"id\":\"c\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  server.Shutdown();
}

TEST(ServerTest, CachesRepeatedQueries) {
  obs::MetricsRegistry metrics;
  Server::Options options;
  options.num_shards = 2;
  options.metrics = &metrics;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  const std::string query =
      "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":4}";
  TestClient a(server.port());
  ASSERT_TRUE(a.connected());
  const std::string first = a.RoundTrip(query);
  EXPECT_NE(first.find("\"cached\":false"), std::string::npos);
  // Same canonical query from another connection hits the cache.
  TestClient b(server.port());
  ASSERT_TRUE(b.connected());
  const std::string second = b.RoundTrip(
      "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":4,\"id\":\"x\"}");
  EXPECT_NE(second.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(second.find("\"id\":\"x\""), std::string::npos);
  // Identical payloads modulo the cached flag and echo id.
  EXPECT_EQ(first.substr(0, first.find("\"cached\"")),
            second.substr(0, second.find("\"cached\"")));
  EXPECT_EQ(server.cache().hits(), 1u);
  server.Shutdown();

  bool saw_hit_counter = false;
  for (const auto& c : metrics.Snapshot().counters) {
    if (c.name == "serve.cache_hits") {
      saw_hit_counter = true;
      EXPECT_EQ(c.value, 1u);
    }
  }
  EXPECT_TRUE(saw_hit_counter);
}

TEST(ServerTest, CachedPayloadServesBothFramings) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  TestClient json_client(server.port());
  ASSERT_TRUE(json_client.connected());
  const std::string first = json_client.RoundTrip(
      "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":4}");
  EXPECT_NE(first.find("\"cached\":false"), std::string::npos);

  // The same canonical query over FQP1 framing hits the same cache
  // entry: the frame wraps the identical JSON payload.
  TestClient bin_client(server.port());
  ASSERT_TRUE(bin_client.connected());
  QueryRequest req;
  req.op = QueryRequest::Op::kTopkConfidence;
  req.k = 4;
  req.bin_id = 3;
  ASSERT_TRUE(bin_client.SendRaw(Preamble() + EncodeBinaryRequest(req)));
  std::uint64_t req_id = 0;
  FrameStatus status = FrameStatus::kInternal;
  std::string json;
  ASSERT_TRUE(bin_client.RecvFrame(&req_id, &status, &json));
  EXPECT_EQ(req_id, 3u);
  EXPECT_EQ(status, FrameStatus::kOk);
  EXPECT_NE(json.find("\"cached\":true"), std::string::npos) << json;
  EXPECT_EQ(first.substr(0, first.find("\"cached\"")),
            json.substr(0, json.find("\"cached\"")));
  EXPECT_EQ(server.cache().hits(), 1u);
  server.Shutdown();
}

TEST(ServerTest, HotSwapInvalidatesCacheAndServesNewSnapshot) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  const std::string query =
      "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":100}";
  const std::string before = client.RoundTrip(query);
  EXPECT_NE(before.find("\"cached\":false"), std::string::npos);
  // Warm the cache on the pre-swap snapshot.
  EXPECT_NE(client.RoundTrip(query).find("\"cached\":true"),
            std::string::npos);

  // Swap to a snapshot that keeps only the single best group: any
  // response rendered against the old snapshot is now wrong.
  RuleGroupSnapshot truncated = MakeSnapshot();
  truncated.groups.resize(1);
  server.InstallIndex(RuleGroupIndex(std::move(truncated)));
  EXPECT_EQ(server.snapshot_version(), 2u);

  // The post-swap query must re-execute (no cross-version cache hit)
  // and reflect the new snapshot, atomically.
  const std::string after = client.RoundTrip(query);
  EXPECT_NE(after.find("\"cached\":false"), std::string::npos) << after;
  EXPECT_NE(after.find("\"count\":1,"), std::string::npos) << after;
  EXPECT_NE(before, after);
  // Stats reports the bumped version.
  EXPECT_NE(client.RoundTrip("{\"op\":\"stats\"}").find("\"version\":2"),
            std::string::npos);
  // And the new version caches normally.
  EXPECT_NE(client.RoundTrip(query).find("\"cached\":true"),
            std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, ReloadRequestSwapsSnapshotFromFile) {
  const std::string path = ::testing::TempDir() + "/serve_reload.fsnap";
  RuleGroupSnapshot full = MakeSnapshot();
  const std::size_t full_groups = full.groups.size();
  ASSERT_GT(full_groups, 1u);
  ASSERT_TRUE(SaveSnapshot(full, path).ok());

  Server::Options options;
  options.num_shards = 2;
  options.snapshot_path = path;
  Server server(RuleGroupIndex(MakeSnapshot(), options.num_shards),
                options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // Overwrite the file with a truncated store, then ask the server to
  // reload it over the wire.
  RuleGroupSnapshot truncated = MakeSnapshot();
  truncated.groups.resize(1);
  ASSERT_TRUE(SaveSnapshot(truncated, path).ok());
  const std::string reload = client.RoundTrip("{\"op\":\"reload\"}");
  EXPECT_NE(reload.find("\"ok\":true"), std::string::npos) << reload;
  EXPECT_NE(reload.find("\"version\":2"), std::string::npos) << reload;
  EXPECT_NE(reload.find("\"groups\":1"), std::string::npos) << reload;
  EXPECT_EQ(server.snapshot_version(), 2u);
  EXPECT_EQ(server.index()->size(), 1u);

  // A corrupt file must fail the reload and keep serving version 2.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "FSNPgarbage";
    ASSERT_TRUE(out.good());
  }
  const std::string bad = client.RoundTrip("{\"op\":\"reload\"}");
  EXPECT_NE(bad.find("\"error\":\"internal\""), std::string::npos) << bad;
  EXPECT_EQ(server.snapshot_version(), 2u);
  EXPECT_NE(client.RoundTrip("{\"op\":\"stats\"}").find("\"version\":2"),
            std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, ReloadWithoutSnapshotPathIsBadRequest) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string response = client.RoundTrip("{\"op\":\"reload\"}");
  EXPECT_NE(response.find("\"error\":\"bad_request\""), std::string::npos)
      << response;
  EXPECT_EQ(server.snapshot_version(), 1u);
  server.Shutdown();
}

TEST(ServerTest, HotSwapUnderConcurrentTrafficNeverFailsARequest) {
  Server::Options options;
  options.num_shards = 2;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kRequests = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([c, port = server.port(), &failures] {
      TestClient client(port);
      if (!client.connected()) {
        failures.fetch_add(kRequests);
        return;
      }
      for (int r = 0; r < kRequests; ++r) {
        const std::string query =
            (r + c) % 2 == 0
                ? "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":10}"
                : "{\"op\":\"filter\",\"minsup\":2,\"minconf\":0.5}";
        if (client.RoundTrip(query).find("\"ok\":true") ==
            std::string::npos) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Swap snapshots repeatedly while the clients hammer the server: a
  // swap must never fail a request or serve a torn snapshot.
  for (int swap = 0; swap < 5; ++swap) {
    RuleGroupSnapshot next = MakeSnapshot();
    if (swap % 2 == 0) next.groups.resize(1);
    server.InstallIndex(RuleGroupIndex(std::move(next), 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.snapshot_version(), 6u);
  server.Shutdown();
}

TEST(ServerTest, RejectsMalformedRequestsWithoutClosing) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (const char* bad :
       {"not json", "{\"op\":\"nope\"}", "{}", "[1,2]",
        "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":-1}",
        "{\"op\":\"ping\",\"stray\":1}"}) {
    const std::string response = client.RoundTrip(bad);
    EXPECT_NE(response.find("\"error\":\"bad_request\""), std::string::npos)
        << bad << " -> " << response;
  }
  // The connection stays usable after errors.
  EXPECT_NE(client.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true"),
            std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, TinyDeadlineYieldsDeadlineExceeded) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // 1e-9 ms rounds to a zero-length budget: expired before execution.
  const std::string response = client.RoundTrip(
      "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":2,"
      "\"deadline_ms\":1e-9}");
  EXPECT_NE(response.find("\"error\":\"deadline_exceeded\""),
            std::string::npos)
      << response;
  server.Shutdown();
}

TEST(ServerTest, OverloadFloodGetsExplicitErrors) {
  Server::Options options;
  options.num_shards = 1;
  options.max_connections = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  // Fill the single admission slot and prove it is held.
  TestClient holder(server.port());
  ASSERT_TRUE(holder.connected());
  EXPECT_NE(holder.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true"),
            std::string::npos);

  // Every further connection must get an explicit overloaded error —
  // never a silent drop, never a hang.
  for (int i = 0; i < 8; ++i) {
    TestClient extra(server.port());
    ASSERT_TRUE(extra.connected());
    std::string line;
    ASSERT_TRUE(extra.Recv(&line)) << "flood connection " << i;
    EXPECT_NE(line.find("\"error\":\"overloaded\""), std::string::npos)
        << line;
  }
  EXPECT_EQ(server.overloaded_count(), 8u);
  server.Shutdown();
}

TEST(ServerTest, ConcurrentClientsAllGetAnswers) {
  obs::MetricsRegistry metrics;
  obs::TraceSession trace(/*num_lanes=*/5);
  Server::Options options;
  options.num_shards = 4;
  options.metrics = &metrics;
  options.trace = &trace;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequests = 25;
  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([c, port = server.port(), &ok_counts] {
      TestClient client(port);
      if (!client.connected()) return;
      for (int r = 0; r < kRequests; ++r) {
        std::string query;
        switch (r % 4) {
          case 0:
            query = "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":5}";
            break;
          case 1:
            query = "{\"op\":\"topk\",\"metric\":\"chi_square\",\"k\":3}";
            break;
          case 2:
            query = "{\"op\":\"filter\",\"minsup\":2,\"minconf\":0.5}";
            break;
          default:
            query = "{\"op\":\"ping\"}";
        }
        const std::string response = client.RoundTrip(query);
        if (response.find("\"ok\":true") != std::string::npos) {
          ++ok_counts[c];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_counts[c], kRequests) << "client " << c;
  }
  server.Shutdown();

  std::uint64_t requests = 0;
  for (const auto& counter : metrics.Snapshot().counters) {
    if (counter.name == "serve.requests") requests = counter.value;
  }
  EXPECT_EQ(requests,
            static_cast<std::uint64_t>(kClients) * kRequests);
  // Shard lanes saw request spans.
  std::uint64_t events = 0;
  for (std::size_t lane = 0; lane < trace.num_lanes(); ++lane) {
    events += trace.ring(lane).pushed();
  }
  EXPECT_GT(events, 0u);
}

TEST(ServerTest, ShutdownIsIdempotentAndStopsAccepting) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();
  {
    TestClient client(port);
    ASSERT_TRUE(client.connected());
    EXPECT_NE(client.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true"),
              std::string::npos);
  }
  server.Shutdown();
  server.Shutdown();  // Second call is a no-op.

  // The listener is gone: either the connect fails outright or the
  // socket delivers EOF/reset instead of a response.
  TestClient after(port);
  if (after.connected()) {
    std::string line;
    after.Send("{\"op\":\"ping\"}");
    EXPECT_FALSE(after.Recv(&line));
  }
}

TEST(ServerTest, IdleConnectionIsTimedOutAndFreesItsSlot) {
  Server::Options options;
  options.num_shards = 1;
  options.max_connections = 1;
  options.idle_timeout_s = 0.25;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  // A slow-loris client: holds the only admission slot while trickling
  // an incomplete line. Partial data must not reset the idle deadline.
  TestClient loris(server.port());
  ASSERT_TRUE(loris.connected());
  ASSERT_TRUE(loris.SendRaw("{\"op\""));  // No newline: never a request.
  std::string line;
  ASSERT_TRUE(loris.Recv(&line));
  EXPECT_NE(line.find("\"error\":\"idle_timeout\""), std::string::npos)
      << line;
  EXPECT_FALSE(loris.Recv(&line));  // Connection closed after the error.

  // The slot is released: a fresh client gets served, not overloaded.
  // Retry briefly — the slot is freed a beat after the socket closes.
  bool served = false;
  for (int attempt = 0; attempt < 100 && !served; ++attempt) {
    TestClient next(server.port());
    if (!next.connected()) continue;
    served = next.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true") !=
             std::string::npos;
    if (!served) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(served);
  server.Shutdown();
}

TEST(ServerTest, CompletedRequestsResetTheIdleDeadline) {
  Server::Options options;
  options.num_shards = 1;
  options.idle_timeout_s = 0.3;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Four requests spread over twice the idle timeout: each completed
  // line pushes the deadline out, so the connection stays open.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(client.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true"),
              std::string::npos)
        << "request " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  server.Shutdown();
}

TEST(ServerTest, OverlongRequestLineIsRejected) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // A newline-free blob over the cap: the server answers bad_request and
  // closes rather than buffering forever.
  const std::string blob(kMaxRequestBytes + 100, 'x');
  ASSERT_TRUE(client.Send(blob));
  std::string line;
  ASSERT_TRUE(client.Recv(&line));
  EXPECT_NE(line.find("\"error\":\"bad_request\""), std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, MetricsOpRendersExpositionOverBothFramings) {
  obs::MetricsRegistry metrics;
  Server::Options options;
  options.num_shards = 1;
  options.metrics = &metrics;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  TestClient json_client(server.port());
  ASSERT_TRUE(json_client.connected());
  // Prime a query so per-op series exist before the scrape.
  EXPECT_NE(json_client
                .RoundTrip(
                    "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":3}")
                .find("\"ok\":true"),
            std::string::npos);
  const std::string response =
      json_client.RoundTrip("{\"op\":\"metrics\"}");
  EXPECT_NE(response.find("\"op\":\"metrics\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"exposition\":\""), std::string::npos);
  // The exposition text rides inside a JSON string (quotes escaped);
  // unlabeled family lines survive escaping verbatim.
  EXPECT_NE(response.find("# TYPE serve_requests counter"),
            std::string::npos);

  TestClient bin_client(server.port());
  ASSERT_TRUE(bin_client.connected());
  QueryRequest req;
  req.op = QueryRequest::Op::kMetrics;
  req.bin_id = 11;
  ASSERT_TRUE(bin_client.SendRaw(Preamble() + EncodeBinaryRequest(req)));
  std::uint64_t req_id = 0;
  FrameStatus status = FrameStatus::kInternal;
  std::string json;
  ASSERT_TRUE(bin_client.RecvFrame(&req_id, &status, &json));
  EXPECT_EQ(req_id, 11u);
  EXPECT_EQ(status, FrameStatus::kOk) << json;
  EXPECT_NE(json.find("# TYPE serve_requests counter"), std::string::npos)
      << json;
  server.Shutdown();
}

TEST(ServerTest, MetricsOpWithoutRegistryIsBadRequest) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string response = client.RoundTrip("{\"op\":\"metrics\"}");
  EXPECT_NE(response.find("\"error\":\"bad_request\""), std::string::npos)
      << response;
  server.Shutdown();
}

TEST(ServerTest, HttpScrapeOnServePortCarriesLiveSeries) {
  obs::MetricsRegistry metrics;
  Server::Options options;
  options.num_shards = 2;
  options.metrics = &metrics;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());

  // Work first, so the scrape shows moving per-op/per-shard series.
  TestClient query_client(server.port());
  ASSERT_TRUE(query_client.connected());
  EXPECT_NE(query_client
                .RoundTrip(
                    "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":3}")
                .find("\"ok\":true"),
            std::string::npos);

  TestClient scraper(server.port());
  ASSERT_TRUE(scraper.connected());
  ASSERT_TRUE(scraper.SendRaw("GET /metrics HTTP/1.0\r\n\r\n"));
  const std::string response = scraper.RecvAll();
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("# TYPE serve_requests counter\n"),
            std::string::npos);
  EXPECT_NE(
      response.find("serve_op_latency_seconds_bucket"
                    "{op=\"topk_confidence\",le=\"+Inf\"} 1\n"),
      std::string::npos)
      << response;
  EXPECT_NE(response.find("serve_shard_connections{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(response.find("serve_shard_connections{shard=\"1\"}"),
            std::string::npos);

  // Anything but /metrics is a 404; the query path above is untouched.
  TestClient lost(server.port());
  ASSERT_TRUE(lost.connected());
  ASSERT_TRUE(lost.SendRaw("GET /other HTTP/1.0\r\n\r\n"));
  EXPECT_EQ(lost.RecvAll().rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u);
  server.Shutdown();
}

TEST(ServerTest, HttpScrapeWithoutRegistryIs503) {
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient scraper(server.port());
  ASSERT_TRUE(scraper.connected());
  ASSERT_TRUE(scraper.SendRaw("GET /metrics HTTP/1.0\r\n\r\n"));
  EXPECT_EQ(scraper.RecvAll().rfind("HTTP/1.0 503 Service Unavailable\r\n",
                                    0),
            0u);
  server.Shutdown();
}

TEST(ServerTest, DedicatedMetricsListenerBypassesAdmission) {
  obs::MetricsRegistry metrics;
  Server::Options options;
  options.num_shards = 1;
  options.max_connections = 1;
  options.metrics = &metrics;
  options.metrics_port = 0;  // Ephemeral.
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.metrics_port(), 0);
  ASSERT_NE(server.metrics_port(), server.port());

  // Saturate the single admission slot...
  TestClient holder(server.port());
  ASSERT_TRUE(holder.connected());
  EXPECT_NE(holder.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true"),
            std::string::npos);

  // ...and the scrape still succeeds on the dedicated listener.
  TestClient scraper(server.metrics_port());
  ASSERT_TRUE(scraper.connected());
  ASSERT_TRUE(scraper.SendRaw("GET /metrics HTTP/1.0\r\n\r\n"));
  const std::string response = scraper.RecvAll();
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("# TYPE serve_active_connections gauge\n"),
            std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, StatsReportsLiveServeSection) {
  obs::MetricsRegistry metrics;
  Server::Options options;
  options.num_shards = 2;
  options.metrics = &metrics;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_NE(client.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true"),
            std::string::npos);
  const std::string stats = client.RoundTrip("{\"op\":\"stats\"}");
  EXPECT_NE(stats.find("\"serve\":{\"requests\":"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"active_connections\":1"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"shard_connections\":["), std::string::npos);
  EXPECT_NE(stats.find("\"slow_queries\":0"), std::string::npos);
  EXPECT_NE(stats.find("\"cache\":{\"hits\":"), std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, SlowQueryLogFiresThroughTheSink) {
  // A threshold of ~1ns makes every request slow; the sink must see
  // structured lines with the phase breakdown.
  std::mutex mu;
  std::vector<std::string> lines;
  Server::Options options;
  options.num_shards = 1;
  options.slow_query_ms = 1e-6;
  options.slow_query_log = [&mu, &lines](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_NE(client
                .RoundTrip(
                    "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":3}")
                .find("\"ok\":true"),
            std::string::npos);
  const std::string stats = client.RoundTrip("{\"op\":\"stats\"}");
  server.Shutdown();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_NE(line.find("\"op\":\"topk_confidence\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"latency_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"parse_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"index_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"snapshot_version\":1"), std::string::npos);
  EXPECT_NE(line.find("\"shard\":0"), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  // The stats op (issued after the slow one) counted it live.
  EXPECT_NE(stats.find("\"slow_queries\":1"), std::string::npos) << stats;
}

TEST(ServerTest, SlowQuerySamplingKeepsEveryNth) {
  std::mutex mu;
  std::vector<std::string> lines;
  Server::Options options;
  options.num_shards = 1;
  options.slow_query_ms = 1e-6;
  options.slow_query_every = 3;
  options.slow_query_log = [&mu, &lines](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 6; ++i) {
    EXPECT_NE(client.RoundTrip("{\"op\":\"ping\"}").find("\"ok\":true"),
              std::string::npos);
  }
  server.Shutdown();
  std::lock_guard<std::mutex> lock(mu);
  // 6 slow requests, every 3rd logged: exactly 2 lines (the 1st and
  // 4th — sampling is per shard, index % every == 0).
  EXPECT_EQ(lines.size(), 2u);
}

TEST(ServerTest, TraceCoversRequestPhases) {
  obs::TraceSession trace(/*num_lanes=*/2);
  Server::Options options;
  options.num_shards = 1;
  options.trace = &trace;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_NE(client
                .RoundTrip(
                    "{\"op\":\"topk\",\"metric\":\"confidence\",\"k\":3}")
                .find("\"ok\":true"),
            std::string::npos);
  server.Shutdown();  // Quiesces the shard lanes; rings are readable.

  std::set<std::string> names;
  for (std::size_t lane = 0; lane < trace.num_lanes(); ++lane) {
    for (const obs::TraceEvent& e : trace.ring(lane).Snapshot()) {
      names.insert(e.name);
    }
  }
  for (const char* want :
       {"serve.parse", "serve.cache_lookup", "serve.index", "serve.encode",
        "serve.topk"}) {
    EXPECT_TRUE(names.count(want) == 1) << "missing span " << want;
  }
}

TEST(ServerTest, TelemetryOffLeavesResponsesByteIdentical) {
  // The instrumented server with everything disabled must answer
  // byte-for-byte like the pre-telemetry one; a golden response guards
  // against instrumentation leaking into the payload.
  Server::Options options;
  options.num_shards = 1;
  Server server(MakeIndex(), options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.RoundTrip("{\"op\":\"ping\"}"),
            "{\"ok\":true,\"op\":\"ping\",\"cached\":false}");
  server.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace farmer
