#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "classify/cba.h"
#include "classify/evaluation.h"
#include "classify/irg_classifier.h"
#include "classify/rule_ranking.h"
#include "classify/svm.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"
#include "serve/snapshot.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace farmer {
namespace {

using testing_util::MakeDataset;

TEST(RuleRankingTest, PrecedenceOrder) {
  ClassRule high_conf{{0}, 1, 2, 0.9};
  ClassRule low_conf{{1}, 1, 5, 0.8};
  ClassRule high_sup{{2}, 1, 9, 0.9};
  ClassRule shorter{{3}, 1, 2, 0.9};
  EXPECT_TRUE(RulePrecedes(high_conf, low_conf));
  EXPECT_TRUE(RulePrecedes(high_sup, high_conf));
  // Same conf+sup: shorter antecedent first; these are same length, so
  // lexicographic item order decides.
  EXPECT_TRUE(RulePrecedes(high_conf, shorter));

  std::vector<ClassRule> rules = {low_conf, shorter, high_sup, high_conf};
  RankRules(&rules);
  EXPECT_EQ(rules[0].items, (ItemVector{2}));
  EXPECT_EQ(rules.back().items, (ItemVector{1}));
}

TEST(RuleRankingTest, CoverageSelection) {
  // Rows: two class-1 rows matched by rule {0}->1, one class-0 row matched
  // by {1}->0, one class-0 row matched by nothing.
  BinaryDataset train = MakeDataset(
      {{{0, 2}, 1}, {{0, 3}, 1}, {{1, 2}, 0}, {{4}, 0}});
  std::vector<ClassRule> ranked = {
      {{0}, 1, 2, 1.0},
      {{1}, 0, 1, 1.0},
      {{2}, 1, 1, 0.5},  // Matches rows 0 and 2; both already covered.
  };
  CoverageResult sel = SelectByCoverage(train, ranked);
  ASSERT_EQ(sel.rules.size(), 2u);
  EXPECT_EQ(sel.rules[0].items, (ItemVector{0}));
  EXPECT_EQ(sel.rules[1].items, (ItemVector{1}));
  EXPECT_EQ(sel.default_class, 0);  // Row 3 uncovered, class 0.
}

TEST(RuleRankingTest, WrongClassRulesAreSkipped) {
  BinaryDataset train = MakeDataset({{{0}, 1}, {{1}, 0}});
  std::vector<ClassRule> ranked = {
      {{0}, 0, 1, 1.0},  // Matches row 0 but predicts the wrong class.
      {{0}, 1, 1, 1.0},
  };
  CoverageResult sel = SelectByCoverage(train, ranked);
  ASSERT_EQ(sel.rules.size(), 1u);
  EXPECT_EQ(sel.rules[0].label, 1);
}

TEST(CbaTest, TrainPredictSeparableData) {
  // Item 0 <=> class 1, item 1 <=> class 0, item 2 noise.
  BinaryDataset train = MakeDataset({{{0, 2}, 1},
                                     {{0}, 1},
                                     {{0, 2}, 1},
                                     {{1, 2}, 0},
                                     {{1}, 0}});
  std::vector<ClassRule> candidates = {
      {{0}, 1, 3, 1.0},
      {{1}, 0, 2, 1.0},
      {{2}, 1, 2, 2.0 / 3.0},
  };
  CbaClassifier cba = CbaClassifier::Train(train, candidates);
  EXPECT_EQ(cba.Predict({0}), 1);
  EXPECT_EQ(cba.Predict({1}), 0);
  EXPECT_EQ(cba.Predict({0, 2}), 1);
  // Unmatched row falls back to the default class.
  const ClassLabel def = cba.default_class();
  EXPECT_EQ(cba.Predict({5}), def);
}

TEST(CbaTest, GenerateRulesWithFarmerProducesMatchingRules) {
  BinaryDataset train = MakeDataset({{{0, 2}, 1},
                                     {{0, 3}, 1},
                                     {{0, 2, 3}, 1},
                                     {{1, 2}, 0},
                                     {{1, 3}, 0}});
  std::vector<ClassRule> rules =
      GenerateRulesWithFarmer(train, 0.6, 0.8);
  ASSERT_FALSE(rules.empty());
  bool has_item0_for_class1 = false;
  for (const ClassRule& r : rules) {
    EXPECT_GE(r.confidence, 0.8);
    if (r.label == 1 && r.items == ItemVector{0}) has_item0_for_class1 = true;
  }
  EXPECT_TRUE(has_item0_for_class1);
}

TEST(IrgClassifierTest, LearnsSeparableConcept) {
  BinaryDataset train = MakeDataset({{{0, 2}, 1},
                                     {{0, 3}, 1},
                                     {{0, 2, 3}, 1},
                                     {{1, 2}, 0},
                                     {{1, 3}, 0},
                                     {{1}, 0}});
  IrgClassifierOptions opts;
  opts.min_support_fraction = 0.5;
  opts.min_confidence = 0.8;
  IrgClassifier clf = IrgClassifier::Train(train, opts);
  EXPECT_GT(clf.num_mined_groups(), 0u);
  EXPECT_EQ(clf.Predict({0, 2}), 1);
  EXPECT_EQ(clf.Predict({0}), 1);
  EXPECT_EQ(clf.Predict({1, 3}), 0);
}

TEST(IrgClassifierTest, WeightedVotePredicts) {
  BinaryDataset train = MakeDataset({{{0, 2}, 1},
                                     {{0, 3}, 1},
                                     {{0, 2, 3}, 1},
                                     {{1, 2}, 0},
                                     {{1, 3}, 0},
                                     {{1}, 0}});
  IrgClassifierOptions opts;
  opts.min_support_fraction = 0.5;
  opts.min_confidence = 0.8;
  opts.prediction = IrgPrediction::kWeightedVote;
  IrgClassifier clf = IrgClassifier::Train(train, opts);
  EXPECT_EQ(clf.Predict({0, 2}), 1);
  EXPECT_EQ(clf.Predict({1, 3}), 0);
  // Unmatched rows fall back to the default class.
  EXPECT_EQ(clf.Predict({9}), clf.default_class());
}

TEST(IrgClassifierTest, VotePoliciesAgreeOnCleanData) {
  BinaryDataset train = MakeDataset({{{0}, 1},
                                     {{0}, 1},
                                     {{0}, 1},
                                     {{1}, 0},
                                     {{1}, 0},
                                     {{1}, 0}});
  IrgClassifierOptions first, vote;
  first.min_support_fraction = 0.5;
  vote.min_support_fraction = 0.5;
  vote.prediction = IrgPrediction::kWeightedVote;
  IrgClassifier a = IrgClassifier::Train(train, first);
  IrgClassifier b = IrgClassifier::Train(train, vote);
  for (RowId r = 0; r < train.num_rows(); ++r) {
    EXPECT_EQ(a.Predict(train.row(r)), b.Predict(train.row(r)));
    EXPECT_EQ(a.Predict(train.row(r)), train.label(r));
  }
}

TEST(IrgClassifierTest, EndToEndOnSyntheticMicroarray) {
  SyntheticSpec spec;
  spec.num_rows = 60;
  spec.num_genes = 120;
  spec.num_class1 = 30;
  spec.num_clusters = 4;
  spec.cluster_purity = 0.95;
  spec.p_informative = 0.7;
  spec.shift = 3.0;
  spec.row_effect = 0.4;  // Mild intensity bias keeps the class signal.
  spec.seed = 77;
  ExpressionMatrix m = GenerateSynthetic(spec);
  Split split = StratifiedSplit(m.labels(), 40, 1);
  ExpressionMatrix train_m = m.SelectRows(split.train);
  ExpressionMatrix test_m = m.SelectRows(split.test);
  Discretization disc = Discretization::FitEntropyMdl(train_m);
  BinaryDataset train = disc.Apply(train_m);
  BinaryDataset test = disc.Apply(test_m);

  IrgClassifierOptions opts;
  opts.min_support_fraction = 0.7;
  opts.min_confidence = 0.8;
  IrgClassifier clf = IrgClassifier::Train(train, opts);
  std::vector<ClassLabel> truth, predicted;
  for (RowId r = 0; r < test.num_rows(); ++r) {
    truth.push_back(test.label(r));
    predicted.push_back(clf.Predict(test.row(r)));
  }
  // Planted-signal data must classify clearly better than chance.
  EXPECT_GT(Accuracy(truth, predicted), 0.7);
}

TEST(IrgClassifierTest, TrainSplitsIntoMineAndBuild) {
  BinaryDataset train = MakeDataset({{{0, 2}, 1},
                                     {{0, 3}, 1},
                                     {{0, 2, 3}, 1},
                                     {{1, 2}, 0},
                                     {{1, 3}, 0},
                                     {{1}, 0}});
  IrgClassifierOptions opts;
  opts.min_support_fraction = 0.5;
  opts.min_confidence = 0.8;
  IrgClassifier trained = IrgClassifier::Train(train, opts);
  IrgClassifier staged = IrgClassifier::BuildFromGroups(
      train, IrgClassifier::MineClassGroups(train, opts), opts);
  EXPECT_EQ(trained.num_mined_groups(), staged.num_mined_groups());
  EXPECT_EQ(trained.default_class(), staged.default_class());
  ASSERT_EQ(trained.entries().size(), staged.entries().size());
  for (ItemId probe = 0; probe < 6; ++probe) {
    EXPECT_EQ(trained.Predict({probe}), staged.Predict({probe}));
  }
}

TEST(IrgClassifierTest, SnapshotRoundTripPredictsIdentically) {
  // The serving contract: mine -> SaveSnapshot -> LoadSnapshot ->
  // BuildFromGroups must yield a classifier whose predictions are
  // byte-identical to training directly on the same data.
  SyntheticSpec spec;
  spec.num_rows = 50;
  spec.num_genes = 80;
  spec.num_class1 = 25;
  spec.num_clusters = 3;
  spec.cluster_purity = 0.9;
  spec.p_informative = 0.6;
  spec.shift = 3.0;
  spec.seed = 31;
  ExpressionMatrix m = GenerateSynthetic(spec);
  Split split = StratifiedSplit(m.labels(), 34, 2);
  ExpressionMatrix train_m = m.SelectRows(split.train);
  ExpressionMatrix test_m = m.SelectRows(split.test);
  Discretization disc = Discretization::FitEntropyMdl(train_m);
  BinaryDataset train = disc.Apply(train_m);
  BinaryDataset test = disc.Apply(test_m);

  IrgClassifierOptions opts;
  opts.min_support_fraction = 0.6;
  opts.min_confidence = 0.8;
  const std::vector<IrgClassifier::MinedClassGroups> mined =
      IrgClassifier::MineClassGroups(train, opts);
  ASSERT_FALSE(mined.empty());

  // Round-trip each class's store through the on-disk snapshot format.
  std::vector<IrgClassifier::MinedClassGroups> reloaded;
  for (std::size_t i = 0; i < mined.size(); ++i) {
    serve::RuleGroupSnapshot snapshot;
    snapshot.groups = mined[i].groups;
    snapshot.num_rows = train.num_rows();
    MinerOptions mopts;
    mopts.consequent = mined[i].label;
    snapshot.params = serve::SnapshotParams::FromMinerOptions(mopts);
    snapshot.fingerprint = serve::SnapshotFingerprint::FromDataset(train);
    const std::string path = ::testing::TempDir() + "/irg_class_" +
                             std::to_string(i) + ".fsnap";
    ASSERT_TRUE(serve::SaveSnapshot(snapshot, path).ok());
    serve::RuleGroupSnapshot loaded;
    ASSERT_TRUE(serve::LoadSnapshot(path, &loaded).ok());
    EXPECT_EQ(loaded.fingerprint.dataset_hash, train.ContentHash());
    IrgClassifier::MinedClassGroups back;
    back.label = mined[i].label;
    back.groups = std::move(loaded.groups);
    reloaded.push_back(std::move(back));
  }

  IrgClassifier direct = IrgClassifier::Train(train, opts);
  IrgClassifier from_snapshot =
      IrgClassifier::BuildFromGroups(train, reloaded, opts);
  EXPECT_GT(direct.entries().size(), 0u);
  EXPECT_EQ(direct.default_class(), from_snapshot.default_class());
  for (RowId r = 0; r < test.num_rows(); ++r) {
    EXPECT_EQ(direct.Predict(test.row(r)), from_snapshot.Predict(test.row(r)))
        << "test row " << r;
  }
  for (RowId r = 0; r < train.num_rows(); ++r) {
    EXPECT_EQ(direct.Predict(train.row(r)),
              from_snapshot.Predict(train.row(r)))
        << "train row " << r;
  }
}

TEST(SvmTest, SeparableGaussians) {
  ExpressionMatrix m(40, 3);
  Rng rng(5);
  for (std::size_t r = 0; r < 40; ++r) {
    const bool pos = r % 2 == 0;
    m.set_label(r, pos ? 1 : 0);
    for (std::size_t g = 0; g < 3; ++g) {
      m.at(r, g) = rng.NextGaussian() * 0.3 + (pos ? 2.0 : -2.0);
    }
  }
  SvmOptions opts;
  LinearSvm svm = LinearSvm::Train(m, 1, opts);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < 40; ++r) {
    if (svm.Predict(m.row_data(r)) == m.label(r)) ++correct;
  }
  EXPECT_EQ(correct, 40u);
  EXPECT_LT(svm.passes_run(), opts.max_passes);  // Converged.
}

TEST(SvmTest, AutoCDefaultsLikeSvmLight) {
  // c <= 0 selects C = 1/avg(||x||^2): on well-separated data this still
  // classifies the training set, just with a heavily regularized margin.
  ExpressionMatrix m(30, 4);
  Rng rng(11);
  for (std::size_t r = 0; r < 30; ++r) {
    const bool pos = r % 2 == 0;
    m.set_label(r, pos ? 1 : 0);
    for (std::size_t g = 0; g < 4; ++g) {
      m.at(r, g) = rng.NextGaussian() * 0.3 + (pos ? 3.0 : -3.0);
    }
  }
  SvmOptions opts;
  opts.c = 0.0;
  opts.standardize = false;
  LinearSvm svm = LinearSvm::Train(m, 1, opts);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < 30; ++r) {
    if (svm.Predict(m.row_data(r)) == m.label(r)) ++correct;
  }
  EXPECT_EQ(correct, 30u);
  // The auto-C box constraint keeps the weight norm small relative to an
  // unregularized fit.
  SvmOptions big;
  big.c = 100.0;
  big.standardize = false;
  LinearSvm unreg = LinearSvm::Train(m, 1, big);
  double norm_auto = 0, norm_big = 0;
  for (double w : svm.weights()) norm_auto += w * w;
  for (double w : unreg.weights()) norm_big += w * w;
  EXPECT_LE(norm_auto, norm_big + 1e-12);
}

TEST(SvmTest, HighDimensionalFewSamples) {
  // n << d, like microarray data: 20 samples, 500 genes, 10 informative.
  ExpressionMatrix m(20, 500);
  Rng rng(6);
  for (std::size_t r = 0; r < 20; ++r) {
    const bool pos = r < 10;
    m.set_label(r, pos ? 1 : 0);
    for (std::size_t g = 0; g < 500; ++g) {
      m.at(r, g) = rng.NextGaussian();
      if (g < 10) m.at(r, g) += pos ? 1.5 : -1.5;
    }
  }
  LinearSvm svm = LinearSvm::Train(m, 1, SvmOptions{});
  std::size_t correct = 0;
  for (std::size_t r = 0; r < 20; ++r) {
    if (svm.Predict(m.row_data(r)) == m.label(r)) ++correct;
  }
  EXPECT_GE(correct, 19u);
}

TEST(EvaluationTest, StratifiedSplitProportions) {
  std::vector<ClassLabel> labels;
  for (int i = 0; i < 60; ++i) labels.push_back(i < 40 ? 0 : 1);
  Split split = StratifiedSplit(labels, 30, 3);
  EXPECT_EQ(split.train.size(), 30u);
  EXPECT_EQ(split.test.size(), 30u);
  std::size_t train_class1 = 0;
  for (std::size_t r : split.train) train_class1 += labels[r];
  EXPECT_EQ(train_class1, 10u);  // 20 of 60 are class 1 -> 10 of 30.
  // Disjoint and complete.
  std::vector<std::size_t> all = split.train;
  all.insert(all.end(), split.test.begin(), split.test.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(EvaluationTest, AccuracyAndKFold) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);

  std::vector<ClassLabel> labels;
  for (int i = 0; i < 25; ++i) labels.push_back(i % 2 == 0 ? 0 : 1);
  auto folds = StratifiedKFold(labels, 5, 9);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<std::size_t> seen;
  for (const Split& f : folds) {
    EXPECT_EQ(f.train.size() + f.test.size(), labels.size());
    seen.insert(seen.end(), f.test.begin(), f.test.end());
  }
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(EvaluationTest, CrossValidateVisitsEveryFoldOnce) {
  std::vector<ClassLabel> labels;
  for (int i = 0; i < 40; ++i) labels.push_back(i % 2);
  std::vector<int> visits(5, 0);
  CrossValidationResult result = CrossValidate(
      labels, 5, /*seed=*/3,
      [&](const Split& split, std::size_t fold) {
        ++visits[fold];
        EXPECT_EQ(split.train.size() + split.test.size(), labels.size());
        // Accuracy stand-in that identifies the fold.
        return static_cast<double>(fold) / 10.0;
      },
      /*pool=*/nullptr);
  ASSERT_EQ(result.fold_accuracies.size(), 5u);
  for (std::size_t f = 0; f < 5; ++f) {
    EXPECT_EQ(visits[f], 1);
    EXPECT_DOUBLE_EQ(result.fold_accuracies[f], f / 10.0);
  }
  EXPECT_DOUBLE_EQ(result.mean_accuracy, (0.0 + 0.1 + 0.2 + 0.3 + 0.4) / 5);
}

TEST(EvaluationTest, CrossValidateIsPoolSizeInvariant) {
  // The fold fan-out must not change what is evaluated or the order
  // results are reported in: inline, 1-worker and 8-worker pools all
  // produce the same per-fold accuracies for a deterministic evaluator.
  std::vector<ClassLabel> labels;
  Rng rng(99);
  for (int i = 0; i < 60; ++i) labels.push_back(rng.NextBool(0.4));
  // A deterministic pure function of the split contents.
  FoldEvaluator evaluate = [](const Split& split, std::size_t fold) {
    double h = static_cast<double>(fold) + 1.0;
    for (std::size_t r : split.test) h = h * 0.9 + static_cast<double>(r);
    return h;
  };
  const CrossValidationResult inline_run =
      CrossValidate(labels, 6, 7, evaluate, nullptr);
  for (std::size_t workers : {1u, 2u, 8u}) {
    SCOPED_TRACE("workers = " + std::to_string(workers));
    ThreadPool pool(workers);
    const CrossValidationResult pooled =
        CrossValidate(labels, 6, 7, evaluate, &pool);
    ASSERT_EQ(pooled.fold_accuracies.size(),
              inline_run.fold_accuracies.size());
    for (std::size_t f = 0; f < pooled.fold_accuracies.size(); ++f) {
      EXPECT_EQ(pooled.fold_accuracies[f], inline_run.fold_accuracies[f]);
    }
    EXPECT_EQ(pooled.mean_accuracy, inline_run.mean_accuracy);
  }
}

TEST(EvaluationTest, CrossValidateFoldsPartitionRows) {
  std::vector<ClassLabel> labels;
  for (int i = 0; i < 33; ++i) labels.push_back(i % 3 == 0);
  std::vector<int> tested(labels.size(), 0);
  std::mutex mu;
  ThreadPool pool(4);
  CrossValidate(
      labels, 4, /*seed=*/11,
      [&](const Split& split, std::size_t) {
        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t r : split.test) ++tested[r];
        return 0.0;
      },
      &pool);
  for (std::size_t r = 0; r < labels.size(); ++r) {
    EXPECT_EQ(tested[r], 1) << "row " << r;
  }
}

}  // namespace
}  // namespace farmer
