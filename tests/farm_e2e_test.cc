// End-to-end farm tests: a real Coordinator and real Workers talking
// FMP1 over localhost, plus a raw scripted client for the failure
// paths — death mid-lease, duplicate uploads, heartbeat-timeout
// revocation, and hello rejection. The headline assertion everywhere:
// whatever goes wrong short of losing the coordinator, the merged farm
// result is bit-identical to a single-process MineFarmer() run.

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/farmer.h"
#include "core/miner_options.h"
#include "dataset/dataset.h"
#include "farm/coordinator.h"
#include "farm/protocol.h"
#include "farm/worker.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "util/net.h"
#include "util/wire.h"

namespace farmer {
namespace farm {
namespace {

using testing_util::RandomDataset;

void ExpectIdenticalResults(const FarmerResult& want,
                            const FarmerResult& got) {
  ASSERT_EQ(want.groups.size(), got.groups.size());
  for (std::size_t i = 0; i < want.groups.size(); ++i) {
    SCOPED_TRACE("group " + std::to_string(i));
    const RuleGroup& a = want.groups[i];
    const RuleGroup& b = got.groups[i];
    EXPECT_EQ(a.antecedent, b.antecedent);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.support_pos, b.support_pos);
    EXPECT_EQ(a.support_neg, b.support_neg);
    EXPECT_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.chi_square, b.chi_square);
    EXPECT_EQ(a.lower_bounds, b.lower_bounds);
    EXPECT_EQ(a.lower_bounds_truncated, b.lower_bounds_truncated);
  }
  EXPECT_EQ(want.num_rows, got.num_rows);
  EXPECT_EQ(want.num_consequent_rows, got.num_consequent_rows);
}

// A blocking scripted FMP1 client for driving the coordinator into
// exact protocol states a well-behaved Worker never produces.
class RawClient {
 public:
  ~RawClient() { Close(); }

  bool Connect(int port) {
    return net::ConnectToHost("127.0.0.1", port, 5.0, &fd_).ok();
  }

  bool Send(std::string_view bytes) { return net::SendAll(fd_, bytes); }

  bool SendPreambleAndHello(const HelloMsg& hello) {
    std::string bytes(kFarmPreamble, kFarmPreambleSize);
    bytes += EncodeHello(hello);
    return Send(bytes);
  }

  // Reads one frame (blocking). Returns false on EOF / error.
  bool ReadFrame(std::uint8_t* opcode, std::string* payload) {
    while (true) {
      std::size_t consumed = 0;
      std::string_view view;
      std::string error;
      const wire::FrameExtract got =
          wire::ExtractFrame(buf_, kMaxFarmFramePayload, &consumed, opcode,
                             &view, &error);
      if (got == wire::FrameExtract::kComplete) {
        *payload = std::string(view);
        buf_.erase(0, consumed);
        return true;
      }
      if (got == wire::FrameExtract::kError) return false;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  // Hello + ack convenience; returns the ack.
  HelloAckMsg Handshake(const HelloMsg& hello) {
    HelloAckMsg ack;
    if (!SendPreambleAndHello(hello)) return ack;
    std::uint8_t opcode = 0;
    std::string payload;
    if (!ReadFrame(&opcode, &payload)) return ack;
    EXPECT_EQ(static_cast<FarmOp>(opcode), FarmOp::kHelloAck);
    EXPECT_TRUE(DecodeHelloAck(payload, &ack).ok());
    return ack;
  }

  // Requests a lease; EXPECTs a grant and returns it.
  LeaseGrantMsg RequestLease() {
    LeaseGrantMsg grant;
    EXPECT_TRUE(Send(EncodeEmptyFrame(FarmOp::kLeaseRequest)));
    std::uint8_t opcode = 0;
    std::string payload;
    EXPECT_TRUE(ReadFrame(&opcode, &payload));
    EXPECT_EQ(static_cast<FarmOp>(opcode), FarmOp::kLeaseGrant);
    EXPECT_TRUE(DecodeLeaseGrant(payload, &grant).ok());
    return grant;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    buf_.clear();
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

HelloMsg MakeHello(const BinaryDataset& dataset, const MinerOptions& opts) {
  HelloMsg hello;
  hello.fingerprint = serve::SnapshotFingerprint::FromDataset(dataset);
  hello.params = serve::SnapshotParams::FromMinerOptions(opts);
  hello.simd_level = "test";
  hello.worker_name = "raw";
  return hello;
}

// Runs `count` real workers to completion against the coordinator's
// port; EXPECTs every Run() to come back Ok.
void RunWorkers(const BinaryDataset& dataset, const MinerOptions& opts,
                int port, int count) {
  std::vector<std::thread> threads;
  std::vector<Status> statuses(static_cast<std::size_t>(count));
  std::vector<std::unique_ptr<Worker>> workers;
  for (int i = 0; i < count; ++i) {
    Worker::Options wopts;
    wopts.port = port;
    wopts.name = "w" + std::to_string(i);
    wopts.no_work_poll_s = 0.02;
    workers.push_back(std::make_unique<Worker>(dataset, opts, wopts));
  }
  for (int i = 0; i < count; ++i) {
    threads.emplace_back([&, i] { statuses[i] = workers[i]->Run(); });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < count; ++i) {
    EXPECT_TRUE(statuses[i].ok()) << "worker " << i << ": "
                                  << statuses[i].ToString();
  }
}

TEST(FarmE2ETest, TwoWorkersBitIdentical) {
  const BinaryDataset dataset = RandomDataset(20, 24, 0.3, 3);
  MinerOptions opts;
  opts.min_support = 2;
  opts.min_confidence = 0.6;
  const FarmerResult single = MineFarmer(dataset, opts);

  obs::MetricsRegistry metrics;
  Coordinator::Options copts;
  copts.metrics = &metrics;
  Coordinator coordinator(dataset, opts, copts);
  ASSERT_TRUE(coordinator.Start().ok());
  ASSERT_GT(coordinator.port(), 0);

  RunWorkers(dataset, opts, coordinator.port(), 2);
  ASSERT_TRUE(coordinator.WaitForCompletion(30.0));
  const FarmerResult farm = coordinator.Finalize();
  ExpectIdenticalResults(single, farm);
  EXPECT_EQ(single.stats.nodes_visited, farm.stats.nodes_visited);

  const Coordinator::Stats stats = coordinator.stats();
  EXPECT_EQ(stats.workers_seen, 2u);
  EXPECT_EQ(stats.results, coordinator.lease_total());
  EXPECT_EQ(stats.duplicate_results, 0u);
}

TEST(FarmE2ETest, WorkerKilledMidLeaseIsReleased) {
  const BinaryDataset dataset = RandomDataset(18, 22, 0.3, 7);
  MinerOptions opts;
  opts.min_support = 2;
  const FarmerResult single = MineFarmer(dataset, opts);

  Coordinator coordinator(dataset, opts, Coordinator::Options{});
  ASSERT_TRUE(coordinator.Start().ok());

  // A "worker" takes a lease and then dies without uploading. The
  // coordinator must revoke on disconnect and hand the row to the next
  // requester.
  RawClient raw;
  ASSERT_TRUE(raw.Connect(coordinator.port()));
  ASSERT_TRUE(raw.Handshake(MakeHello(dataset, opts)).accepted);
  const LeaseGrantMsg grant = raw.RequestLease();
  EXPECT_NE(grant.lease_id, 0u);
  raw.Close();  // Simulated SIGKILL.

  RunWorkers(dataset, opts, coordinator.port(), 1);
  ASSERT_TRUE(coordinator.WaitForCompletion(30.0));
  const FarmerResult farm = coordinator.Finalize();
  ExpectIdenticalResults(single, farm);

  const Coordinator::Stats stats = coordinator.stats();
  EXPECT_GE(stats.releases, 1u);
  EXPECT_EQ(stats.duplicate_results, 0u);
}

TEST(FarmE2ETest, DuplicateUploadIsDiscardedDeterministically) {
  const BinaryDataset dataset = RandomDataset(16, 20, 0.35, 9);
  MinerOptions opts;
  opts.min_support = 2;
  opts.report_all_rule_groups = true;  // Where duplicates would corrupt.
  const FarmerResult single = MineFarmer(dataset, opts);

  Coordinator coordinator(dataset, opts, Coordinator::Options{});
  ASSERT_TRUE(coordinator.Start().ok());

  // Mine one lease out-of-band so the raw client can upload it twice.
  internal::FarmerMiner miner(dataset, opts);
  miner.PlanFarm();

  RawClient raw;
  ASSERT_TRUE(raw.Connect(coordinator.port()));
  ASSERT_TRUE(raw.Handshake(MakeHello(dataset, opts)).accepted);
  const LeaseGrantMsg grant = raw.RequestLease();

  ResultMsg result;
  result.lease_id = grant.lease_id;
  result.root_row = grant.root_row;
  result.segments_wire = EncodeSegments(
      miner.MineFarmLease(grant.root_row, nullptr, nullptr));
  ASSERT_TRUE(raw.Send(EncodeResult(result)));
  std::uint8_t opcode = 0;
  std::string payload;
  ASSERT_TRUE(raw.ReadFrame(&opcode, &payload));
  ASSERT_EQ(static_cast<FarmOp>(opcode), FarmOp::kResultAck);
  ResultAckMsg ack;
  ASSERT_TRUE(DecodeResultAck(payload, &ack).ok());
  EXPECT_TRUE(ack.fresh);

  // Same upload again: acked, but flagged stale and never merged.
  ASSERT_TRUE(raw.Send(EncodeResult(result)));
  ASSERT_TRUE(raw.ReadFrame(&opcode, &payload));
  ASSERT_EQ(static_cast<FarmOp>(opcode), FarmOp::kResultAck);
  ASSERT_TRUE(DecodeResultAck(payload, &ack).ok());
  EXPECT_FALSE(ack.fresh);
  raw.Close();

  RunWorkers(dataset, opts, coordinator.port(), 1);
  ASSERT_TRUE(coordinator.WaitForCompletion(30.0));
  const FarmerResult farm = coordinator.Finalize();
  ExpectIdenticalResults(single, farm);
  EXPECT_EQ(coordinator.stats().duplicate_results, 1u);
}

TEST(FarmE2ETest, SilentWorkerHasLeaseRevokedAndReLeased) {
  const BinaryDataset dataset = RandomDataset(14, 20, 0.3, 13);
  MinerOptions opts;
  opts.min_support = 2;
  const FarmerResult single = MineFarmer(dataset, opts);

  Coordinator::Options copts;
  copts.heartbeat_timeout_s = 0.3;
  Coordinator coordinator(dataset, opts, copts);
  ASSERT_TRUE(coordinator.Start().ok());

  RawClient raw;
  ASSERT_TRUE(raw.Connect(coordinator.port()));
  ASSERT_TRUE(raw.Handshake(MakeHello(dataset, opts)).accepted);
  const LeaseGrantMsg grant = raw.RequestLease();

  // Go silent. Past the heartbeat timeout the coordinator must send
  // kRevoke for the held lease (the connection itself stays open).
  std::uint8_t opcode = 0;
  std::string payload;
  ASSERT_TRUE(raw.ReadFrame(&opcode, &payload));
  ASSERT_EQ(static_cast<FarmOp>(opcode), FarmOp::kRevoke);
  RevokeMsg revoke;
  ASSERT_TRUE(DecodeRevoke(payload, &revoke).ok());
  EXPECT_EQ(revoke.lease_id, grant.lease_id);
  EXPECT_GE(coordinator.stats().releases, 1u);

  // The revoked row must be grantable again — possibly to the same
  // connection, which is still welcome to take fresh leases.
  const LeaseGrantMsg again = raw.RequestLease();
  EXPECT_NE(again.lease_id, grant.lease_id);
  raw.Close();

  RunWorkers(dataset, opts, coordinator.port(), 1);
  ASSERT_TRUE(coordinator.WaitForCompletion(30.0));
  ExpectIdenticalResults(single, coordinator.Finalize());
}

TEST(FarmE2ETest, MismatchedWorkersAreRejected) {
  const BinaryDataset dataset = RandomDataset(14, 20, 0.3, 17);
  MinerOptions opts;
  opts.min_support = 2;

  Coordinator coordinator(dataset, opts, Coordinator::Options{});
  ASSERT_TRUE(coordinator.Start().ok());

  {
    // Wrong dataset fingerprint.
    RawClient raw;
    ASSERT_TRUE(raw.Connect(coordinator.port()));
    HelloMsg hello = MakeHello(dataset, opts);
    hello.fingerprint.dataset_hash ^= 1;
    const HelloAckMsg ack = raw.Handshake(hello);
    EXPECT_FALSE(ack.accepted);
    EXPECT_NE(ack.reason.find("fingerprint"), std::string::npos)
        << ack.reason;
  }
  {
    // Wrong mining parameters.
    RawClient raw;
    ASSERT_TRUE(raw.Connect(coordinator.port()));
    MinerOptions other = opts;
    other.min_support = opts.min_support + 1;
    const HelloAckMsg ack = raw.Handshake(MakeHello(dataset, other));
    EXPECT_FALSE(ack.accepted);
    EXPECT_NE(ack.reason.find("parameter"), std::string::npos)
        << ack.reason;
  }
  {
    // Wrong protocol version.
    RawClient raw;
    ASSERT_TRUE(raw.Connect(coordinator.port()));
    HelloMsg hello = MakeHello(dataset, opts);
    hello.version = kFarmProtocolVersion + 1;
    const HelloAckMsg ack = raw.Handshake(hello);
    EXPECT_FALSE(ack.accepted);
    EXPECT_NE(ack.reason.find("version"), std::string::npos) << ack.reason;
  }

  // A real Worker built with mismatched options reports the rejection
  // as InvalidArgument — not retryable, not a crash.
  MinerOptions other = opts;
  other.min_confidence = 0.9;
  Worker::Options wopts;
  wopts.port = coordinator.port();
  Worker worker(dataset, other, wopts);
  const Status status = worker.Run();
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_EQ(coordinator.stats().workers_rejected, 4u);

  // The farm still completes with a matching worker.
  RunWorkers(dataset, opts, coordinator.port(), 1);
  ASSERT_TRUE(coordinator.WaitForCompletion(30.0));
  ExpectIdenticalResults(MineFarmer(dataset, opts), coordinator.Finalize());
}

TEST(FarmE2ETest, MetricsScrapeOnTheFarmListener) {
  const BinaryDataset dataset = RandomDataset(12, 18, 0.3, 19);
  MinerOptions opts;
  opts.min_support = 2;

  obs::MetricsRegistry metrics;
  Coordinator::Options copts;
  copts.metrics = &metrics;
  Coordinator coordinator(dataset, opts, copts);
  ASSERT_TRUE(coordinator.Start().ok());

  int fd = -1;
  ASSERT_TRUE(net::ConnectToHost("127.0.0.1", coordinator.port(), 5.0, &fd)
                  .ok());
  ASSERT_TRUE(
      net::SendAll(fd, "GET /metrics HTTP/1.1\r\n\r\n"));
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("farm"), std::string::npos) << response;

  coordinator.Stop();
}

}  // namespace
}  // namespace farm
}  // namespace farmer
