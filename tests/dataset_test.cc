#include "dataset/dataset.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "dataset/io.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::MakeDataset;

TEST(DatasetTest, BasicAccessors) {
  BinaryDataset ds = MakeDataset({{{0, 2, 4}, 1}, {{1, 2}, 0}});
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.num_items(), 5u);
  EXPECT_EQ(ds.num_classes(), 2u);
  EXPECT_EQ(ds.CountLabel(1), 1u);
  EXPECT_EQ(ds.CountLabel(0), 1u);
  EXPECT_TRUE(ds.RowContains(0, 2));
  EXPECT_FALSE(ds.RowContains(1, 0));
  EXPECT_DOUBLE_EQ(ds.AverageRowLength(), 2.5);
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_EQ(ds.ItemName(3), "i3");
}

TEST(DatasetTest, OrderRowsByConsequentPutsPositivesFirst) {
  BinaryDataset ds = MakeDataset(
      {{{0}, 0}, {{1}, 1}, {{2}, 0}, {{3}, 1}, {{4}, 1}});
  RowOrder order = OrderRowsByConsequent(ds, 1);
  EXPECT_EQ(order.num_positive, 3u);
  EXPECT_EQ(order.order, (std::vector<RowId>{1, 3, 4, 0, 2}));
  for (RowId pos = 0; pos < 5; ++pos) {
    EXPECT_EQ(order.inverse[order.order[pos]], pos);
  }
  BinaryDataset permuted = PermuteRows(ds, order);
  EXPECT_EQ(permuted.label(0), 1);
  EXPECT_EQ(permuted.label(2), 1);
  EXPECT_EQ(permuted.label(3), 0);
  EXPECT_EQ(permuted.row(0), (ItemVector{1}));
  EXPECT_EQ(permuted.row(4), (ItemVector{2}));
}

TEST(DatasetTest, ReplicateRows) {
  BinaryDataset ds = MakeDataset({{{0}, 1}, {{1}, 0}});
  BinaryDataset triple = ReplicateRows(ds, 3);
  EXPECT_EQ(triple.num_rows(), 6u);
  EXPECT_EQ(triple.CountLabel(1), 3u);
  EXPECT_EQ(triple.row(4), (ItemVector{0}));
}

TEST(DatasetTest, ValidateCatchesBadRows) {
  BinaryDataset ds(3);
  ds.AddRow({0, 2}, 1);
  EXPECT_TRUE(ds.Validate().ok());
  // Bypass AddRow's debug assertions by crafting names mismatch.
  ds.set_item_names({"only-one"});
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(TransactionsIoTest, RoundTrip) {
  BinaryDataset ds = MakeDataset({{{0, 3, 7}, 1}, {{}, 0}, {{2}, 1}});
  const std::string path = ::testing::TempDir() + "/trans_roundtrip.txt";
  ASSERT_TRUE(SaveTransactions(ds, path).ok());
  BinaryDataset loaded;
  ASSERT_TRUE(LoadTransactions(path, &loaded).ok());
  EXPECT_EQ(loaded.num_rows(), 3u);
  EXPECT_EQ(loaded.num_items(), 8u);
  EXPECT_EQ(loaded.row(0), (ItemVector{0, 3, 7}));
  EXPECT_TRUE(loaded.row(1).empty());
  EXPECT_EQ(loaded.label(2), 1);
  std::remove(path.c_str());
}

TEST(TransactionsIoTest, RejectsMalformedInput) {
  const std::string path = ::testing::TempDir() + "/trans_bad.txt";
  {
    std::ofstream os(path);
    os << "1 0 2 3\n";  // Missing ':'.
  }
  BinaryDataset ds;
  Status s = LoadTransactions(path, &ds);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  {
    std::ofstream os(path);
    os << "1: 0 0 2\n";  // Duplicate item.
  }
  EXPECT_FALSE(LoadTransactions(path, &ds).ok());

  {
    std::ofstream os(path);
    os << "999: 0\n";  // Label out of range.
  }
  EXPECT_FALSE(LoadTransactions(path, &ds).ok());
  std::remove(path.c_str());
}

TEST(TransactionsIoTest, MissingFileIsIoError) {
  BinaryDataset ds;
  Status s = LoadTransactions("/nonexistent/nowhere.txt", &ds);
  EXPECT_TRUE(s.IsIoError());
}

}  // namespace
}  // namespace farmer
