// Integration tests across subsystems: the synthetic generator,
// discretizers, FARMER, the closed-set baselines and the classifiers,
// on datasets larger than the brute-force oracles can handle.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "baselines/charm.h"
#include "baselines/closet.h"
#include "core/farmer.h"
#include "core/measures.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

// Derives the constrained IRGs from a complete closed-itemset listing —
// an independent computation path to compare FARMER against.
std::vector<RuleGroup> IrgsFromClosedSets(
    const BinaryDataset& ds, const std::vector<ClosedItemset>& closed,
    const MinerOptions& opts) {
  const std::size_t n = ds.num_rows();
  const std::size_t m = ds.CountLabel(opts.consequent);
  std::vector<RuleGroup> passing;
  for (const ClosedItemset& c : closed) {
    RuleGroup g;
    g.antecedent = c.items;
    g.rows = c.rows;
    c.rows.ForEach([&](std::size_t r) {
      if (ds.label(static_cast<RowId>(r)) == opts.consequent) {
        ++g.support_pos;
      } else {
        ++g.support_neg;
      }
    });
    if (g.support_pos < opts.min_support) continue;
    g.confidence = Confidence(g.support_pos, g.antecedent_support());
    if (g.confidence < opts.min_confidence) continue;
    g.chi_square = ChiSquare(g.antecedent_support(), g.support_pos, n, m);
    if (opts.min_chi_square > 0 && g.chi_square < opts.min_chi_square) {
      continue;
    }
    passing.push_back(std::move(g));
  }
  std::vector<RuleGroup> result;
  for (const RuleGroup& g : passing) {
    bool interesting = true;
    for (const RuleGroup& other : passing) {
      if (other.antecedent_support() > g.antecedent_support() &&
          g.rows.IsSubsetOf(other.rows) &&
          other.confidence >= g.confidence) {
        interesting = false;
        break;
      }
    }
    if (interesting) result.push_back(g);
  }
  return result;
}

using GroupSig =
    std::tuple<std::vector<std::size_t>, ItemVector, std::size_t>;

std::set<GroupSig> Sigs(const std::vector<RuleGroup>& groups) {
  std::set<GroupSig> out;
  for (const RuleGroup& g : groups) {
    out.emplace(g.rows.ToVector(), g.antecedent, g.support_pos);
  }
  return out;
}

BinaryDataset MidSizeDataset(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.num_rows = 26;
  spec.num_genes = 60;
  spec.num_class1 = 13;
  spec.num_clusters = 4;
  spec.seed = seed;
  ExpressionMatrix m = GenerateSynthetic(spec);
  return Discretization::FitEqualDepth(m, 4).Apply(m);
}

class MidSizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MidSizeSweep, FarmerMatchesCharmDerivedIrgs) {
  BinaryDataset ds = MidSizeDataset(GetParam());
  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 3;
  opts.min_confidence = 0.7;
  FarmerResult farmer_result = MineFarmer(ds, opts);
  ASSERT_FALSE(farmer_result.stats.timed_out);

  CharmOptions chopts;
  chopts.min_support = 1;  // All closed sets; filtering happens after.
  CharmResult charm = MineCharm(ds, chopts);
  ASSERT_FALSE(charm.timed_out);
  std::vector<RuleGroup> expected =
      IrgsFromClosedSets(ds, charm.closed, opts);
  EXPECT_EQ(Sigs(farmer_result.groups), Sigs(expected))
      << "seed=" << GetParam();
}

TEST_P(MidSizeSweep, CharmAndClosetAgreeOnClosedSets) {
  BinaryDataset ds = MidSizeDataset(GetParam() + 1000);
  for (std::size_t minsup : {1u, 3u, 6u}) {
    CharmOptions chopts;
    chopts.min_support = minsup;
    CharmResult charm = MineCharm(ds, chopts);
    ClosetOptions clopts;
    clopts.min_support = minsup;
    ClosetResult closet = MineCloset(ds, clopts);
    ASSERT_FALSE(charm.timed_out);
    ASSERT_FALSE(closet.timed_out);

    std::set<std::pair<ItemVector, std::size_t>> a, b;
    for (const ClosedItemset& c : charm.closed) {
      a.emplace(c.items, c.rows.Count());
    }
    for (const FrequentClosed& c : closet.closed) {
      b.emplace(c.items, c.support);
    }
    EXPECT_EQ(a, b) << "seed=" << GetParam() << " minsup=" << minsup;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MidSizeSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(IntegrationTest, FarmerAllGroupsEqualsCharmClosedSetsWithClassCounts) {
  // report_all_rule_groups mode must enumerate exactly the closed sets
  // whose positive support passes minsup.
  BinaryDataset ds = MidSizeDataset(404);
  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 2;
  opts.report_all_rule_groups = true;
  opts.mine_lower_bounds = false;
  FarmerResult farmer_result = MineFarmer(ds, opts);

  CharmOptions chopts;
  chopts.min_support = 1;
  CharmResult charm = MineCharm(ds, chopts);
  std::set<GroupSig> expected;
  for (const ClosedItemset& c : charm.closed) {
    std::size_t pos = 0;
    c.rows.ForEach([&](std::size_t r) {
      if (ds.label(static_cast<RowId>(r)) == 1) ++pos;
    });
    if (pos >= 2) expected.emplace(c.rows.ToVector(), c.items, pos);
  }
  EXPECT_EQ(Sigs(farmer_result.groups), expected);
}

TEST(IntegrationTest, EntropyPipelineEndToEnd) {
  // Generate -> split -> entropy discretize -> mine -> every reported
  // group's stats verify against the raw data.
  SyntheticSpec spec;
  spec.num_rows = 50;
  spec.num_genes = 150;
  spec.num_class1 = 25;
  spec.num_clusters = 4;
  spec.cluster_purity = 0.9;
  spec.seed = 9;
  ExpressionMatrix m = GenerateSynthetic(spec);
  Discretization disc = Discretization::FitEntropyMdl(m);
  BinaryDataset ds = disc.Apply(m);
  ASSERT_GT(ds.num_items(), 0u);

  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 5;
  opts.min_confidence = 0.8;
  FarmerResult result = MineFarmer(ds, opts);
  ASSERT_FALSE(result.stats.timed_out);
  EXPECT_GT(result.groups.size(), 0u);
  for (const RuleGroup& g : result.groups) {
    // Recheck the rule against the raw expression matrix.
    std::size_t pos = 0, neg = 0;
    for (std::size_t r = 0; r < m.num_rows(); ++r) {
      bool matches = true;
      for (ItemId item : g.antecedent) {
        const std::size_t gene = disc.GeneOfItem(item);
        if (disc.ItemFor(gene, m.at(r, gene)) != item) {
          matches = false;
          break;
        }
      }
      if (!matches) continue;
      if (m.label(r) == 1) {
        ++pos;
      } else {
        ++neg;
      }
    }
    EXPECT_EQ(pos, g.support_pos);
    EXPECT_EQ(neg, g.support_neg);
    EXPECT_GE(g.confidence, 0.8);
  }
}

}  // namespace
}  // namespace farmer
