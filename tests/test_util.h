#ifndef FARMER_TESTS_TEST_UTIL_H_
#define FARMER_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <set>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/types.h"
#include "util/rng.h"

namespace farmer {
namespace testing_util {

/// Builds a dataset from explicit rows: each row a (items, label) pair.
/// Items may be unsorted; the universe is inferred.
inline BinaryDataset MakeDataset(
    const std::vector<std::pair<std::vector<int>, int>>& rows) {
  std::size_t num_items = 0;
  for (const auto& [items, label] : rows) {
    for (int i : items) {
      num_items = std::max<std::size_t>(num_items, i + 1u);
    }
  }
  BinaryDataset ds(num_items);
  for (const auto& [items, label] : rows) {
    ItemVector sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end());
    ds.AddRow(std::move(sorted), static_cast<ClassLabel>(label));
  }
  return ds;
}

/// The paper's running example (Figure 1(a)): items a..t mapped to 0..19,
/// rows 1..5 mapped to 0..4; rows 0..2 labeled C=1, rows 3..4 labeled 0.
inline BinaryDataset PaperExampleDataset() {
  auto ch = [](char c) { return c - 'a'; };
  return MakeDataset({
      {{ch('a'), ch('b'), ch('c'), ch('l'), ch('o'), ch('s')}, 1},
      {{ch('a'), ch('d'), ch('e'), ch('h'), ch('p'), ch('l'), ch('r')}, 1},
      {{ch('a'), ch('c'), ch('e'), ch('h'), ch('o'), ch('q'), ch('t')}, 1},
      {{ch('a'), ch('e'), ch('f'), ch('h'), ch('p'), ch('r')}, 0},
      {{ch('b'), ch('d'), ch('f'), ch('g'), ch('l'), ch('q'), ch('s'),
        ch('t')}, 0},
  });
}

/// A random dataset for property tests: `rows` rows over `items` items,
/// each item present with probability `density`, labels split roughly
/// half/half. Deterministic in `seed`.
inline BinaryDataset RandomDataset(std::size_t rows, std::size_t items,
                                   double density, std::uint64_t seed) {
  Rng rng(seed);
  BinaryDataset ds(items);
  for (std::size_t r = 0; r < rows; ++r) {
    ItemVector row;
    for (ItemId i = 0; i < items; ++i) {
      if (rng.NextBool(density)) row.push_back(i);
    }
    ds.AddRow(std::move(row), static_cast<ClassLabel>(rng.NextBool(0.5)));
  }
  return ds;
}

/// Canonical form of a set of itemsets for order-independent comparison.
inline std::set<ItemVector> AsSet(const std::vector<ItemVector>& itemsets) {
  return std::set<ItemVector>(itemsets.begin(), itemsets.end());
}

}  // namespace testing_util
}  // namespace farmer

#endif  // FARMER_TESTS_TEST_UTIL_H_
