// Tests for the annotated synchronization vocabulary (util/sync.h):
// Mutex/MutexLock exclusion, CondVar wake-ups and timed waits, and the
// ThreadChecker confinement assertion — including the death test that
// proves a cross-thread access actually aborts. This TU is compiled
// with FARMER_FORCE_DCHECKS so the ThreadChecker macro keeps its teeth
// in optimized builds.

#include "util/sync.h"

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/timer.h"

namespace farmer {
namespace {

TEST(MutexTest, MutexLockGivesExclusion) {
  struct Shared {
    Mutex mutex;
    int value FARMER_GUARDED_BY(mutex) = 0;
  } shared;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(shared.mutex);
        ++shared.value;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(shared.mutex);
  EXPECT_EQ(shared.value, kThreads * kIncrements);
}

// The analysis cannot model "TryLock observed from a second thread", so
// the helpers opt out; the *runtime* behavior is what's under test.
void ExpectTryLockFails(Mutex& mu) FARMER_NO_THREAD_SAFETY_ANALYSIS {
  EXPECT_FALSE(mu.TryLock());
}

void ExpectTryLockSucceeds(Mutex& mu) FARMER_NO_THREAD_SAFETY_ANALYSIS {
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  mu.Lock();
  std::thread([&mu] { ExpectTryLockFails(mu); }).join();
  mu.Unlock();
  std::thread([&mu] { ExpectTryLockSucceeds(mu); }).join();
}

TEST(CondVarTest, NotifyWakesGuardedPredicateLoop) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, PredicateOverloadWaitsForAtomics) {
  Mutex mu;
  CondVar cv;
  std::atomic<bool> flag{false};
  std::thread producer([&] {
    flag.store(true, std::memory_order_release);
    MutexLock lock(mu);
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return flag.load(std::memory_order_acquire); });
  }
  EXPECT_TRUE(flag.load());
  producer.join();
}

TEST(CondVarTest, WaitForSecondsTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  // Spurious wakeups legitimately return true; within a generous
  // budget an un-notified wait must eventually report a timeout.
  const Deadline budget = Deadline::After(10.0);
  bool timed_out = false;
  MutexLock lock(mu);
  while (!budget.ExpiredNow()) {
    if (!cv.WaitForSeconds(mu, 0.02)) {
      timed_out = true;
      break;
    }
  }
  EXPECT_TRUE(timed_out);
}

TEST(CondVarTest, WaitForSecondsSeesNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    // Timed variant of the guarded-predicate loop: bounded waits, but
    // the producer's notify (not the timeout) is what ends it.
    while (!ready) {
      cv.WaitForSeconds(mu, 10.0);
    }
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(ThreadCheckerTest, BindsToFirstCallerAndStaysBound) {
  ThreadChecker checker;
  EXPECT_TRUE(checker.CalledOnValidThread());  // First call claims it.
  EXPECT_TRUE(checker.CalledOnValidThread());  // Owner passes again.
  bool other_ok = true;
  std::thread([&] { other_ok = checker.CalledOnValidThread(); }).join();
  EXPECT_FALSE(other_ok);
}

TEST(ThreadCheckerTest, UnboundCheckerAcceptsAnyFirstThread) {
  ThreadChecker checker;
  bool first_ok = false;
  std::thread([&] { first_ok = checker.CalledOnValidThread(); }).join();
  EXPECT_TRUE(first_ok);  // The worker became the owner...
  EXPECT_FALSE(checker.CalledOnValidThread());  // ...so main is foreign.
}

TEST(ThreadCheckerTest, DetachRebindsToNextCaller) {
  ThreadChecker checker;
  EXPECT_TRUE(checker.CalledOnValidThread());
  checker.Detach();
  bool rebound = false;
  std::thread([&] { rebound = checker.CalledOnValidThread(); }).join();
  EXPECT_TRUE(rebound);
  EXPECT_FALSE(checker.CalledOnValidThread());
}

TEST(ThreadCheckerDeathTest, CrossThreadAccessAborts) {
  // threadsafe style re-executes the test binary for the death
  // statement, so the checker must bind *inside* the statement — a
  // binding made before the fork could name a thread id that does not
  // exist in the child.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadChecker checker;
        FARMER_DCHECK_CALLED_ON(checker);  // Binds to this thread.
        std::thread foreign(
            [&checker] { FARMER_DCHECK_CALLED_ON(checker); });
        foreign.join();
      },
      "ThreadChecker violation");
}

}  // namespace
}  // namespace farmer
