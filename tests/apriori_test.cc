#include "baselines/apriori.h"

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::MakeDataset;
using testing_util::RandomDataset;

std::set<std::pair<ItemVector, std::size_t>> Canon(
    const std::vector<FrequentClosed>& itemsets) {
  std::set<std::pair<ItemVector, std::size_t>> out;
  for (const FrequentClosed& f : itemsets) out.emplace(f.items, f.support);
  return out;
}

// Exhaustive oracle for frequent itemsets.
std::set<std::pair<ItemVector, std::size_t>> Oracle(const BinaryDataset& ds,
                                                    std::size_t minsup) {
  std::set<std::pair<ItemVector, std::size_t>> out;
  const std::size_t items = ds.num_items();
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << items); ++mask) {
    ItemVector itemset;
    for (std::size_t i = 0; i < items; ++i) {
      if ((mask >> i) & 1) itemset.push_back(static_cast<ItemId>(i));
    }
    std::size_t support = 0;
    for (RowId r = 0; r < ds.num_rows(); ++r) {
      const ItemVector& row = ds.row(r);
      if (std::includes(row.begin(), row.end(), itemset.begin(),
                        itemset.end())) {
        ++support;
      }
    }
    if (support >= minsup) out.emplace(std::move(itemset), support);
  }
  return out;
}

TEST(AprioriTest, HandComputedExample) {
  BinaryDataset ds =
      MakeDataset({{{0, 1}, 1}, {{0, 1}, 0}, {{0, 2}, 1}});
  AprioriOptions opts;
  opts.min_support = 2;
  AprioriResult r = MineApriori(ds, opts);
  EXPECT_EQ(Canon(r.frequent),
            (std::set<std::pair<ItemVector, std::size_t>>{{{0}, 3},
                                                          {{1}, 2},
                                                          {{0, 1}, 2}}));
}

class AprioriSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AprioriSweepTest, MatchesExhaustiveOracle) {
  for (std::size_t minsup : {1u, 2u, 4u}) {
    BinaryDataset ds = RandomDataset(10, 10, 0.5, GetParam());
    AprioriOptions opts;
    opts.min_support = minsup;
    AprioriResult r = MineApriori(ds, opts);
    ASSERT_FALSE(r.timed_out);
    EXPECT_EQ(Canon(r.frequent), Oracle(ds, minsup))
        << "seed=" << GetParam() << " minsup=" << minsup;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatasets, AprioriSweepTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(AprioriTest, OverflowCapStops) {
  BinaryDataset ds = RandomDataset(12, 20, 0.7, 1);
  AprioriOptions opts;
  opts.min_support = 1;
  opts.max_itemsets = 10;
  AprioriResult r = MineApriori(ds, opts);
  EXPECT_TRUE(r.overflowed);
}

}  // namespace
}  // namespace farmer
