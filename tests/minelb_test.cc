#include "core/minelb.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/farmer.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::AsSet;
using testing_util::MakeDataset;
using testing_util::RandomDataset;

TEST(MineLbTest, PaperExampleSeven) {
  // Example 7: upper bound antecedent A = abcde; other rows r1 = abcf,
  // r2 = cdeg. Expected lower bounds: {ad, bd, ae, be}.
  // Build a dataset where some row set supports abcde: one row abcde
  // (class 1) plus the two interfering rows.
  BinaryDataset ds = MakeDataset({
      {{0, 1, 2, 3, 4}, 1},  // abcde
      {{0, 1, 2, 5}, 0},     // abcf
      {{2, 3, 4, 6}, 0},     // cdeg
  });
  const ItemVector antecedent = {0, 1, 2, 3, 4};
  Bitset rows(3);
  rows.Set(0);
  LowerBoundResult lb = MineLowerBounds(ds, antecedent, rows);
  EXPECT_FALSE(lb.truncated);
  EXPECT_EQ(AsSet(lb.lower_bounds),
            AsSet({{0, 3}, {1, 3}, {0, 4}, {1, 4}}));
}

TEST(MineLbTest, SingletonAntecedent) {
  BinaryDataset ds = MakeDataset({{{0, 1}, 1}, {{1}, 0}});
  Bitset rows(2);
  rows.Set(0);
  LowerBoundResult lb = MineLowerBounds(ds, {0, 1}, rows);
  // Item 0 alone identifies row 0; item 1 does not.
  EXPECT_EQ(AsSet(lb.lower_bounds), AsSet({{0}}));
}

TEST(MineLbTest, NoInterferingRowsYieldSingletons) {
  // When the antecedent's rows are the whole dataset, every single item of
  // the antecedent is already a lower bound.
  BinaryDataset ds = MakeDataset({{{0, 1, 2}, 1}, {{0, 1, 2}, 0}});
  Bitset rows(2);
  rows.Set(0);
  rows.Set(1);
  LowerBoundResult lb = MineLowerBounds(ds, {0, 1, 2}, rows);
  EXPECT_EQ(AsSet(lb.lower_bounds), AsSet({{0}, {1}, {2}}));
}

TEST(MineLbTest, CandidateCapSetsTruncatedFlag) {
  // Force an update step whose candidate cross-product exceeds the cap.
  BinaryDataset ds = MakeDataset({
      {{0, 1, 2, 3, 4, 5, 6, 7}, 1},
      {{0, 1, 2, 3}, 0},  // A' = {0,1,2,3}: 4 bounds × 4 missing = 16.
  });
  Bitset rows(2);
  rows.Set(0);
  LowerBoundResult lb =
      MineLowerBounds(ds, {0, 1, 2, 3, 4, 5, 6, 7}, rows, 8);
  EXPECT_TRUE(lb.truncated);
}

// Property: MineLB equals the exhaustive minimal-subset search on random
// data, for every rule group of the dataset.
class MineLbSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MineLbSweepTest, MatchesBruteForceOnAllRuleGroups) {
  BinaryDataset ds = RandomDataset(8, 10, 0.5, GetParam());
  for (const RuleGroup& g : BruteForceAllRuleGroups(ds, 1)) {
    if (g.antecedent.size() > 12) continue;  // Keep the oracle tractable.
    LowerBoundResult lb = MineLowerBounds(ds, g.antecedent, g.rows);
    ASSERT_FALSE(lb.truncated);
    EXPECT_EQ(AsSet(lb.lower_bounds),
              AsSet(BruteForceLowerBounds(ds, g.antecedent, g.rows)))
        << "seed=" << GetParam()
        << " antecedent size=" << g.antecedent.size();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatasets, MineLbSweepTest,
                         ::testing::Range<std::uint64_t>(1, 25));

// Denser sweep: larger antecedents stress the incremental update.
class MineLbDenseTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MineLbDenseTest, MatchesBruteForceOnDenseRows) {
  BinaryDataset ds = RandomDataset(7, 14, 0.8, GetParam());
  for (const RuleGroup& g : BruteForceAllRuleGroups(ds, 1)) {
    if (g.antecedent.size() > 14) continue;
    LowerBoundResult lb = MineLowerBounds(ds, g.antecedent, g.rows);
    ASSERT_FALSE(lb.truncated);
    EXPECT_EQ(AsSet(lb.lower_bounds),
              AsSet(BruteForceLowerBounds(ds, g.antecedent, g.rows)))
        << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(DenseDatasets, MineLbDenseTest,
                         ::testing::Range<std::uint64_t>(100, 110));

TEST(MineLbTest, LowerBoundsHaveSameSupportAsUpperBound) {
  BinaryDataset ds = RandomDataset(10, 12, 0.45, 5);
  for (const RuleGroup& g : BruteForceAllRuleGroups(ds, 1)) {
    LowerBoundResult lb = MineLowerBounds(ds, g.antecedent, g.rows);
    for (const ItemVector& bound : lb.lower_bounds) {
      EXPECT_EQ(RowSupportSet(ds, bound), g.rows);
    }
  }
}

TEST(MineLbTest, ValidatorAcceptsRealOutput) {
  for (std::uint64_t seed = 40; seed < 45; ++seed) {
    BinaryDataset ds = RandomDataset(10, 12, 0.45, seed);
    for (const RuleGroup& g : BruteForceAllRuleGroups(ds, 1)) {
      LowerBoundResult lb = MineLowerBounds(ds, g.antecedent, g.rows);
      ASSERT_FALSE(lb.truncated);
      Status s = ValidateLowerBounds(ds, g.antecedent, g.rows,
                                     lb.lower_bounds);
      EXPECT_TRUE(s.ok()) << s.ToString() << " seed=" << seed;
    }
  }
}

TEST(MineLbTest, ValidatorRejectsCorruptedBounds) {
  // Paper Example 7 setup (see PaperExampleSeven above).
  BinaryDataset ds = MakeDataset({
      {{0, 1, 2, 3, 4}, 1},
      {{0, 1, 2, 5}, 0},
      {{2, 3, 4, 6}, 0},
  });
  const ItemVector antecedent = {0, 1, 2, 3, 4};
  Bitset rows(3);
  rows.Set(0);
  LowerBoundResult lb = MineLowerBounds(ds, antecedent, rows);
  ASSERT_FALSE(lb.lower_bounds.empty());

  // Non-minimal: the full antecedent generates the rows but every proper
  // superset of a true bound is non-minimal.
  {
    auto corrupted = lb.lower_bounds;
    corrupted[0] = antecedent;
    EXPECT_FALSE(
        ValidateLowerBounds(ds, antecedent, rows, corrupted).ok());
  }
  // Non-generating: item 2 (c) appears in every row, so {c} supports all
  // three rows, not just row 0.
  {
    auto corrupted = lb.lower_bounds;
    corrupted[0] = ItemVector{2};
    EXPECT_FALSE(
        ValidateLowerBounds(ds, antecedent, rows, corrupted).ok());
  }
  // Not a subset of the antecedent.
  {
    auto corrupted = lb.lower_bounds;
    corrupted[0] = ItemVector{5};
    EXPECT_FALSE(
        ValidateLowerBounds(ds, antecedent, rows, corrupted).ok());
  }
  // Empty bound.
  {
    auto corrupted = lb.lower_bounds;
    corrupted[0] = ItemVector{};
    EXPECT_FALSE(
        ValidateLowerBounds(ds, antecedent, rows, corrupted).ok());
  }
}

// An already-expired deadline: waiting on ExpiredNow() first makes the
// test deterministic on any machine speed.
Deadline ExpiredDeadline() {
  Deadline d = Deadline::After(1e-9);
  while (!d.ExpiredNow()) {
  }
  return d;
}

TEST(MineLbTest, ExpiredDeadlineStopsAtNextCheckpoint) {
  // Paper Example 7 setup: two interfering rows force update steps, so
  // the per-step checkpoint must fire and flag the result.
  BinaryDataset ds = MakeDataset({
      {{0, 1, 2, 3, 4}, 1},
      {{0, 1, 2, 5}, 0},
      {{2, 3, 4, 6}, 0},
  });
  const ItemVector antecedent = {0, 1, 2, 3, 4};
  Bitset rows(3);
  rows.Set(0);
  const Deadline expired = ExpiredDeadline();
  LowerBoundResult lb = MineLowerBounds(ds, antecedent, rows, 0, &expired);
  EXPECT_TRUE(lb.timed_out);
  EXPECT_TRUE(lb.truncated);
  // Whatever survived is still an under-approximation: every bound is a
  // non-empty subset of the antecedent.
  for (const ItemVector& bound : lb.lower_bounds) {
    EXPECT_FALSE(bound.empty());
    EXPECT_TRUE(std::includes(antecedent.begin(), antecedent.end(),
                              bound.begin(), bound.end()));
  }
}

TEST(MineLbTest, NullAndLiveDeadlinesChangeNothing) {
  BinaryDataset ds = RandomDataset(16, 14, 0.4, 11);
  const Deadline generous = Deadline::After(3600.0);
  for (const RuleGroup& g : BruteForceAllRuleGroups(ds, 1)) {
    LowerBoundResult plain = MineLowerBounds(ds, g.antecedent, g.rows);
    LowerBoundResult timed =
        MineLowerBounds(ds, g.antecedent, g.rows, 0, &generous);
    EXPECT_FALSE(timed.timed_out);
    EXPECT_EQ(plain.lower_bounds, timed.lower_bounds);
  }
}

TEST(MineLbTest, MinerPropagatesMineLbTimeout) {
  // A deadline that expires during (not before) the search would be
  // machine-dependent; an expired one deterministically exercises the
  // propagation path: mining stops, MineLB never completes a group, and
  // the result is flagged partial.
  BinaryDataset ds = RandomDataset(30, 16, 0.45, 5);
  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 1;
  opts.mine_lower_bounds = true;
  opts.deadline = ExpiredDeadline();
  FarmerResult r = MineFarmer(ds, opts);
  EXPECT_TRUE(r.stats.timed_out);
}

}  // namespace
}  // namespace farmer
