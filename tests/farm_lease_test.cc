// The farm decomposition's determinism contract: PlanFarm +
// MineFarmLease over every lease + FinalizeFarm must be bit-identical
// to a single-process MineFarmer() run — same groups, same order, same
// floats — for any option set and any upload order.

#include <algorithm>
#include <cstddef>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/farmer.h"
#include "core/miner_options.h"
#include "dataset/dataset.h"
#include "test_util.h"

namespace farmer {
namespace {

using testing_util::PaperExampleDataset;
using testing_util::RandomDataset;

void ExpectIdenticalResults(const FarmerResult& want,
                            const FarmerResult& got) {
  ASSERT_EQ(want.groups.size(), got.groups.size());
  for (std::size_t i = 0; i < want.groups.size(); ++i) {
    SCOPED_TRACE("group " + std::to_string(i));
    const RuleGroup& a = want.groups[i];
    const RuleGroup& b = got.groups[i];
    EXPECT_EQ(a.antecedent, b.antecedent);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.support_pos, b.support_pos);
    EXPECT_EQ(a.support_neg, b.support_neg);
    EXPECT_EQ(a.confidence, b.confidence);  // Bit-identical.
    EXPECT_EQ(a.chi_square, b.chi_square);
    EXPECT_EQ(a.lower_bounds, b.lower_bounds);
    EXPECT_EQ(a.lower_bounds_truncated, b.lower_bounds_truncated);
  }
  EXPECT_EQ(want.num_rows, got.num_rows);
  EXPECT_EQ(want.num_consequent_rows, got.num_consequent_rows);
}

// Mines every lease of `dataset` with one FarmerMiner (the "worker"),
// optionally shuffles the upload order, and finalizes with another (the
// "coordinator") — the two-instance split mirrors the real deployment,
// where planner and workers are separate processes.
FarmerResult MineViaFarm(const BinaryDataset& dataset,
                         const MinerOptions& opts,
                         std::uint64_t shuffle_seed) {
  internal::FarmerMiner worker(dataset, opts);
  const internal::FarmerMiner::FarmPlan& plan = worker.PlanFarm();
  std::vector<MineSegment> uploads;
  MinerStats stats;
  if (!plan.root_pruned) {
    for (const std::uint32_t row : plan.lease_rows) {
      MinerStats lease_stats;
      std::vector<MineSegment> segments =
          worker.MineFarmLease(row, nullptr, &lease_stats);
      stats.MergeFrom(lease_stats);
      for (MineSegment& seg : segments) uploads.push_back(std::move(seg));
    }
  }
  if (shuffle_seed != 0) {
    std::mt19937_64 rng(shuffle_seed);
    std::shuffle(uploads.begin(), uploads.end(), rng);
  }

  internal::FarmerMiner coordinator(dataset, opts);
  const internal::FarmerMiner::FarmPlan& cplan = coordinator.PlanFarm();
  EXPECT_EQ(cplan.root_pruned, plan.root_pruned);
  EXPECT_EQ(cplan.lease_rows, plan.lease_rows);
  for (const MineSegment& seg : cplan.root_segments) {
    uploads.push_back(seg);
  }
  stats.MergeFrom(cplan.root_stats);
  return coordinator.FinalizeFarm(std::move(uploads), stats);
}

void ExpectFarmInvariant(const BinaryDataset& dataset, MinerOptions opts,
                         bool expect_same_nodes = true) {
  opts.num_threads = 1;
  const FarmerResult single = MineFarmer(dataset, opts);
  EXPECT_FALSE(single.stats.timed_out);
  for (const std::uint64_t shuffle_seed : {0ull, 1ull, 99ull}) {
    SCOPED_TRACE("shuffle seed " + std::to_string(shuffle_seed));
    const FarmerResult farm = MineViaFarm(dataset, opts, shuffle_seed);
    ExpectIdenticalResults(single, farm);
    // Tree-shape equality does not hold in top-k mode: the sequential
    // run tightens its confidence floor as the top-k heap fills, while
    // a farm worker (like an in-process parallel worker) only has the
    // static floor and so visits a superset of the nodes. The reported
    // groups are identical either way — that is the contract.
    if (expect_same_nodes) {
      EXPECT_EQ(single.stats.nodes_visited, farm.stats.nodes_visited);
    } else {
      EXPECT_GE(farm.stats.nodes_visited, single.stats.nodes_visited);
    }
  }
}

TEST(FarmLeaseTest, PaperExample) {
  MinerOptions opts;
  opts.min_support = 1;
  ExpectFarmInvariant(PaperExampleDataset(), opts);
}

TEST(FarmLeaseTest, RandomDatasets) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed = " + std::to_string(seed));
    MinerOptions opts;
    opts.min_support = 2;
    opts.min_confidence = 0.6;
    ExpectFarmInvariant(RandomDataset(14, 24, 0.3, seed), opts);
  }
}

TEST(FarmLeaseTest, TopKMode) {
  // Top-k exercises the dynamic-confidence-floor subtlety: a farm
  // worker must use the static floor (like in-process parallel
  // workers), or its pruning would depend on upload order.
  MinerOptions opts;
  opts.min_support = 2;
  opts.top_k = 5;
  ExpectFarmInvariant(RandomDataset(15, 20, 0.35, 11), opts,
                      /*expect_same_nodes=*/false);
}

TEST(FarmLeaseTest, ReportAllRuleGroups) {
  MinerOptions opts;
  opts.min_support = 2;
  opts.min_confidence = 0.5;
  opts.report_all_rule_groups = true;
  ExpectFarmInvariant(RandomDataset(12, 18, 0.35, 23), opts);
}

TEST(FarmLeaseTest, ChiSquareAndNoLowerBounds) {
  MinerOptions opts;
  opts.min_support = 2;
  opts.min_chi_square = 1.0;
  opts.mine_lower_bounds = false;
  ExpectFarmInvariant(RandomDataset(14, 22, 0.3, 31), opts);
}

TEST(FarmLeaseTest, VerifyInvariantsMode) {
  // The miner's full self-verification (closure proofs, store
  // re-validation after every merged segment) must hold on the farm
  // path too.
  MinerOptions opts;
  opts.min_support = 2;
  opts.min_confidence = 0.5;
  opts.verify_invariants = true;
  ExpectFarmInvariant(RandomDataset(13, 22, 0.35, 77), opts);
}

TEST(FarmLeaseTest, EmptyDataset) {
  BinaryDataset empty(4);
  MinerOptions opts;
  internal::FarmerMiner miner(empty, opts);
  const internal::FarmerMiner::FarmPlan& plan = miner.PlanFarm();
  EXPECT_TRUE(plan.root_pruned);
  EXPECT_TRUE(plan.lease_rows.empty());
  const FarmerResult result = miner.FinalizeFarm({}, MinerStats{});
  EXPECT_TRUE(result.groups.empty());
}

TEST(FarmLeaseTest, DuplicateUploadWouldDoubleCount) {
  // Documents why the coordinator dedups by row: replaying the same
  // lease's segments twice is NOT harmless in report-all mode. The
  // coordinator's first-upload-wins rule is what keeps the merge exact.
  const BinaryDataset dataset = RandomDataset(12, 18, 0.35, 5);
  MinerOptions opts;
  opts.min_support = 2;
  opts.report_all_rule_groups = true;
  const FarmerResult single = MineFarmer(dataset, opts);

  internal::FarmerMiner worker(dataset, opts);
  const internal::FarmerMiner::FarmPlan& plan = worker.PlanFarm();
  ASSERT_FALSE(plan.root_pruned);
  ASSERT_FALSE(plan.lease_rows.empty());
  std::vector<MineSegment> uploads;
  for (const std::uint32_t row : plan.lease_rows) {
    for (MineSegment& seg : worker.MineFarmLease(row, nullptr, nullptr)) {
      uploads.push_back(std::move(seg));
    }
  }
  // Duplicate the first lease's upload wholesale.
  std::vector<MineSegment> again =
      worker.MineFarmLease(plan.lease_rows.front(), nullptr, nullptr);
  for (MineSegment& seg : again) uploads.push_back(std::move(seg));
  for (const MineSegment& seg : plan.root_segments) uploads.push_back(seg);

  internal::FarmerMiner coordinator(dataset, opts);
  coordinator.PlanFarm();
  const FarmerResult doubled =
      coordinator.FinalizeFarm(std::move(uploads), MinerStats{});
  EXPECT_NE(single.groups.size(), doubled.groups.size())
      << "duplicate uploads were expected to corrupt a report-all merge; "
         "if this ever becomes benign, the dedup rationale changed";
}

}  // namespace
}  // namespace farmer
