// Determinism of the parallel FARMER search: for any thread count the
// reported rule groups must be bit-identical to the sequential run —
// same antecedents, row sets, supports, confidences, and ordering.

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/farmer.h"
#include "core/miner_options.h"
#include "dataset/dataset.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"
#include "test_util.h"
#include "util/timer.h"

namespace farmer {
namespace {

using testing_util::PaperExampleDataset;
using testing_util::RandomDataset;

// A deliberately skewed dataset: a dense cluster of heavily overlapping
// rows (one deep, narrow region of the row-enumeration tree) plus sparse
// low-overlap filler rows whose subtrees are shallow. A static
// first-level fan-out leaves almost all the work in the cluster's tasks;
// the adaptive splitter must re-split inside the cluster. Deterministic
// in `seed`.
BinaryDataset SkewedDataset(std::size_t dense_rows, std::size_t sparse_rows,
                            std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t items = 24;
  BinaryDataset ds(items);
  for (std::size_t r = 0; r < dense_rows; ++r) {
    // Cluster rows share items 0..11 almost entirely.
    ItemVector row;
    for (ItemId i = 0; i < 12; ++i) {
      if (rng.NextBool(0.9)) row.push_back(i);
    }
    ds.AddRow(std::move(row), static_cast<ClassLabel>(r % 2 == 0));
  }
  for (std::size_t r = 0; r < sparse_rows; ++r) {
    // Filler rows draw thinly from the disjoint upper item range.
    ItemVector row;
    for (ItemId i = 12; i < items; ++i) {
      if (rng.NextBool(0.15)) row.push_back(i);
    }
    ds.AddRow(std::move(row), static_cast<ClassLabel>(rng.NextBool(0.5)));
  }
  return ds;
}

// Asserts that `got` reports exactly the groups of `want`, in the same
// order, field by field.
void ExpectIdenticalResults(const FarmerResult& want,
                            const FarmerResult& got) {
  ASSERT_EQ(want.groups.size(), got.groups.size());
  for (std::size_t i = 0; i < want.groups.size(); ++i) {
    SCOPED_TRACE("group " + std::to_string(i));
    const RuleGroup& a = want.groups[i];
    const RuleGroup& b = got.groups[i];
    EXPECT_EQ(a.antecedent, b.antecedent);
    EXPECT_EQ(a.rows, b.rows) << a.rows.ToString() << " vs "
                              << b.rows.ToString();
    EXPECT_EQ(a.support_pos, b.support_pos);
    EXPECT_EQ(a.support_neg, b.support_neg);
    EXPECT_EQ(a.confidence, b.confidence);  // Bit-identical, not approximate.
    EXPECT_EQ(a.chi_square, b.chi_square);
    EXPECT_EQ(a.lower_bounds, b.lower_bounds);
    EXPECT_EQ(a.lower_bounds_truncated, b.lower_bounds_truncated);
  }
  EXPECT_EQ(want.num_rows, got.num_rows);
  EXPECT_EQ(want.num_consequent_rows, got.num_consequent_rows);
}

// Runs the miner at 1, 2, 4 and 8 threads and checks all results against
// the sequential one.
void ExpectThreadCountInvariant(const BinaryDataset& dataset,
                                MinerOptions opts) {
  opts.num_threads = 1;
  const FarmerResult sequential = MineFarmer(dataset, opts);
  EXPECT_FALSE(sequential.stats.timed_out);
  for (std::size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    opts.num_threads = threads;
    const FarmerResult parallel = MineFarmer(dataset, opts);
    EXPECT_FALSE(parallel.stats.timed_out);
    ExpectIdenticalResults(sequential, parallel);
    // Tree-shape stats are thread-count-invariant too: the same nodes are
    // visited, just on different threads.
    EXPECT_EQ(sequential.stats.nodes_visited, parallel.stats.nodes_visited);
    EXPECT_EQ(sequential.stats.rows_absorbed, parallel.stats.rows_absorbed);
  }
}

// A small synthetic paper dataset, discretized like the benchmarks do.
BinaryDataset SmallPaperDataset(const std::string& name) {
  SyntheticSpec spec = PaperDatasetSpec(name, /*column_scale=*/0.01);
  ExpressionMatrix matrix = GenerateSynthetic(spec);
  Discretization disc = Discretization::FitEqualDepth(matrix, 10);
  return disc.Apply(matrix);
}

TEST(FarmerParallelTest, PaperExampleAllThreadCounts) {
  MinerOptions opts;
  opts.min_support = 1;
  ExpectThreadCountInvariant(PaperExampleDataset(), opts);
}

TEST(FarmerParallelTest, VerifyInvariantsModeAllThreadCounts) {
  // Runs the full self-verification mode (kernel cross-checks, store
  // re-validation after every segment merge, pool quiescence, closure and
  // MineLB minimality proofs) across thread counts. Any divergence between
  // the word-parallel kernels and the scalar references, or any unsound
  // merge, aborts the binary.
  MinerOptions opts;
  opts.min_support = 2;
  opts.min_confidence = 0.5;
  opts.verify_invariants = true;
  ExpectThreadCountInvariant(RandomDataset(13, 22, 0.35, 77), opts);
  ExpectThreadCountInvariant(SkewedDataset(10, 14, 77), opts);
}

TEST(FarmerParallelTest, RandomDatasetsAllThreadCounts) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed = " + std::to_string(seed));
    MinerOptions opts;
    opts.min_support = 2;
    opts.min_confidence = 0.6;
    ExpectThreadCountInvariant(RandomDataset(14, 24, 0.3, seed), opts);
  }
}

TEST(FarmerParallelTest, SyntheticPaperDatasets) {
  for (const char* name : {"BC", "CT"}) {
    SCOPED_TRACE(name);
    MinerOptions opts;
    opts.min_support = 4;
    opts.min_confidence = 0.8;
    opts.mine_lower_bounds = false;
    ExpectThreadCountInvariant(SmallPaperDataset(name), opts);
  }
}

TEST(FarmerParallelTest, TopKIsThreadCountInvariant) {
  // The dynamic top-k confidence floor is worker-local in parallel runs;
  // the reported groups must still match the sequential ones exactly.
  MinerOptions opts;
  opts.min_support = 2;
  opts.top_k = 5;
  opts.mine_lower_bounds = false;
  for (std::uint64_t seed = 10; seed <= 12; ++seed) {
    SCOPED_TRACE("seed = " + std::to_string(seed));
    const BinaryDataset ds = RandomDataset(16, 20, 0.35, seed);
    opts.num_threads = 1;
    const FarmerResult sequential = MineFarmer(ds, opts);
    for (std::size_t threads : {2u, 4u, 8u}) {
      SCOPED_TRACE("threads = " + std::to_string(threads));
      opts.num_threads = threads;
      ExpectIdenticalResults(sequential, MineFarmer(ds, opts));
    }
  }
}

TEST(FarmerParallelTest, ExactModeIsThreadCountInvariant) {
  // Ablation configurations take the exact-mode path (hash-set dedup on
  // the recomputed row sets); the merge must preserve its semantics.
  for (const bool p1 : {false, true}) {
    MinerOptions opts;
    opts.min_support = 2;
    opts.enable_pruning1 = p1;
    opts.enable_pruning2 = false;
    opts.mine_lower_bounds = false;
    SCOPED_TRACE(p1 ? "pruning2 off" : "pruning1+2 off");
    ExpectThreadCountInvariant(RandomDataset(12, 18, 0.35, 7), opts);
  }
}

TEST(FarmerParallelTest, ReportAllGroupsIsThreadCountInvariant) {
  MinerOptions opts;
  opts.min_support = 2;
  opts.min_confidence = 0.5;
  opts.report_all_rule_groups = true;
  opts.mine_lower_bounds = false;
  ExpectThreadCountInvariant(RandomDataset(13, 20, 0.3, 21), opts);
}

TEST(FarmerParallelTest, ShortDeadlineTerminatesWithoutDeadlock) {
  // An already-expired deadline over a search far too large to finish:
  // every thread count must terminate promptly (one worker noticing the
  // expiry cancels the siblings), report timed_out, and keep the
  // partial-result contract (whatever is returned satisfies the
  // thresholds). Deadline throttles its clock reads, so the tree must be
  // big enough for some worker to make a few hundred checks.
  const BinaryDataset ds = SmallPaperDataset("BC");
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    MinerOptions opts;
    opts.min_support = 1;
    opts.mine_lower_bounds = false;
    opts.store_antecedents = false;
    opts.num_threads = threads;
    opts.deadline = Deadline::After(1e-9);
    const FarmerResult result = MineFarmer(ds, opts);
    EXPECT_TRUE(result.stats.timed_out);
    for (const RuleGroup& g : result.groups) {
      EXPECT_GE(g.support_pos, opts.min_support);
    }
  }
}

TEST(FarmerParallelTest, SkewedTreesAllThreadCounts) {
  // The workload the work-stealing scheduler exists for: nearly all of
  // the enumeration tree hangs under a handful of heavily overlapping
  // rows. Results must stay bit-identical while idle workers steal and
  // re-split the deep subtrees.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed = " + std::to_string(seed));
    MinerOptions opts;
    opts.min_support = 2;
    ExpectThreadCountInvariant(SkewedDataset(12, 8, seed), opts);
  }
}

TEST(FarmerParallelTest, SkewedTreesTopKAndExactMode) {
  const BinaryDataset ds = SkewedDataset(11, 6, 42);
  {
    MinerOptions opts;
    opts.min_support = 2;
    opts.top_k = 4;
    opts.mine_lower_bounds = false;
    opts.num_threads = 1;
    const FarmerResult sequential = MineFarmer(ds, opts);
    for (std::size_t threads : {2u, 4u, 8u}) {
      SCOPED_TRACE("top-k, threads = " + std::to_string(threads));
      opts.num_threads = threads;
      ExpectIdenticalResults(sequential, MineFarmer(ds, opts));
    }
  }
  {
    MinerOptions opts;
    opts.min_support = 2;
    opts.enable_pruning1 = false;
    opts.enable_pruning2 = false;
    opts.mine_lower_bounds = false;
    SCOPED_TRACE("exact mode");
    ExpectThreadCountInvariant(ds, opts);
  }
}

TEST(FarmerParallelTest, SplitDepthDoesNotChangeResults) {
  // max_split_depth only shifts where tasks are cut, never what they
  // mine. 0 disables splitting entirely (the root task mines the whole
  // tree sequentially on one worker); large values split eagerly.
  const BinaryDataset ds = SkewedDataset(10, 6, 5);
  MinerOptions opts;
  opts.min_support = 2;
  opts.num_threads = 1;
  const FarmerResult sequential = MineFarmer(ds, opts);
  for (std::size_t depth : {0u, 1u, 3u, 64u}) {
    SCOPED_TRACE("max_split_depth = " + std::to_string(depth));
    opts.max_split_depth = depth;
    opts.num_threads = 4;
    ExpectIdenticalResults(sequential, MineFarmer(ds, opts));
  }
}

TEST(FarmerParallelTest, MidRunDeadlinePropagatesThroughStolenTasks) {
  // A deadline that expires *during* the search (not before it): the
  // worker that notices cancels its siblings; tasks already stolen or
  // queued must all observe the flag, the pool must drain, and every
  // thread count must report timed_out with the partial-result contract
  // intact. The workload is far too large to finish in 30ms.
  SyntheticSpec spec = PaperDatasetSpec("BC", /*column_scale=*/0.02);
  ExpressionMatrix matrix = GenerateSynthetic(spec);
  Discretization disc = Discretization::FitEqualDepth(matrix, 10);
  const BinaryDataset ds = disc.Apply(matrix);
  for (std::size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    MinerOptions opts;
    opts.min_support = 1;
    opts.mine_lower_bounds = false;
    opts.store_antecedents = false;
    opts.num_threads = threads;
    opts.max_split_depth = 64;  // Split aggressively: many stealable tasks.
    opts.deadline = Deadline::After(0.03);
    const FarmerResult result = MineFarmer(ds, opts);
    EXPECT_TRUE(result.stats.timed_out);
    for (const RuleGroup& g : result.groups) {
      EXPECT_GE(g.support_pos, opts.min_support);
    }
  }
}

TEST(FarmerParallelTest, MoreThreadsThanSubtrees) {
  // Thread counts far beyond the available subtree tasks must clamp,
  // not hang or crash.
  MinerOptions opts;
  opts.min_support = 1;
  opts.num_threads = 64;
  const FarmerResult parallel = MineFarmer(PaperExampleDataset(), opts);
  opts.num_threads = 1;
  const FarmerResult sequential = MineFarmer(PaperExampleDataset(), opts);
  ExpectIdenticalResults(sequential, parallel);
}

}  // namespace
}  // namespace farmer
