#include "serve/snapshot.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/farmer.h"
#include "tests/test_util.h"
#include "util/crc32.h"

namespace farmer {
namespace serve {
namespace {

using testing_util::RandomDataset;

// A snapshot with real mined content: non-trivial row sets, lower
// bounds, and measures.
RuleGroupSnapshot MineSnapshot(std::uint64_t seed = 21) {
  BinaryDataset ds = RandomDataset(14, 16, 0.45, seed);
  MinerOptions opts;
  opts.min_support = 2;
  opts.min_confidence = 0.5;
  FarmerResult mined = MineFarmer(ds, opts);
  RuleGroupSnapshot snapshot;
  snapshot.groups = std::move(mined.groups);
  snapshot.num_rows = ds.num_rows();
  snapshot.params = SnapshotParams::FromMinerOptions(opts);
  snapshot.fingerprint = SnapshotFingerprint::FromDataset(ds);
  return snapshot;
}

void ExpectEqualSnapshots(const RuleGroupSnapshot& a,
                          const RuleGroupSnapshot& b) {
  EXPECT_EQ(a.num_rows, b.num_rows);
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    const RuleGroup& x = a.groups[i];
    const RuleGroup& y = b.groups[i];
    EXPECT_EQ(x.antecedent, y.antecedent) << "group " << i;
    EXPECT_EQ(x.rows, y.rows) << "group " << i;
    EXPECT_EQ(x.support_pos, y.support_pos) << "group " << i;
    EXPECT_EQ(x.support_neg, y.support_neg) << "group " << i;
    EXPECT_DOUBLE_EQ(x.confidence, y.confidence) << "group " << i;
    EXPECT_DOUBLE_EQ(x.chi_square, y.chi_square) << "group " << i;
    EXPECT_EQ(x.lower_bounds, y.lower_bounds) << "group " << i;
    EXPECT_EQ(x.lower_bounds_truncated, y.lower_bounds_truncated)
        << "group " << i;
  }
}

TEST(SnapshotTest, RoundTripsMinedStoreThroughFile) {
  const RuleGroupSnapshot snapshot = MineSnapshot();
  ASSERT_FALSE(snapshot.groups.empty());
  const std::string path = ::testing::TempDir() + "/store.fsnap";
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  RuleGroupSnapshot loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded).ok());
  ExpectEqualSnapshots(snapshot, loaded);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripsEmptyStore) {
  RuleGroupSnapshot snapshot;
  snapshot.num_rows = 9;
  snapshot.params.min_support = 3;
  snapshot.fingerprint.dataset_hash = 0xDEADBEEFu;
  snapshot.fingerprint.num_rows = 9;
  snapshot.fingerprint.num_items = 12;
  const std::string buffer = SerializeSnapshot(snapshot);
  RuleGroupSnapshot loaded;
  ASSERT_TRUE(LoadSnapshotFromBuffer(buffer, "test", &loaded).ok());
  ExpectEqualSnapshots(snapshot, loaded);
}

TEST(SnapshotTest, RoundTripsTruncatedLowerBoundFlagAndEdgeValues) {
  RuleGroupSnapshot snapshot;
  snapshot.num_rows = 70;  // More than one bitset word.
  snapshot.fingerprint.num_rows = 70;
  snapshot.fingerprint.num_items = 300;
  RuleGroup g;
  g.antecedent = {0, 299};
  g.rows = Bitset(70);
  g.rows.Set(0);
  g.rows.Set(69);
  g.support_pos = 1;
  g.support_neg = 1;
  g.confidence = 0.5;
  g.chi_square = 123.25;
  g.lower_bounds = {{0}, {299}};
  g.lower_bounds_truncated = true;
  snapshot.groups.push_back(g);
  const std::string buffer = SerializeSnapshot(snapshot);
  RuleGroupSnapshot loaded;
  ASSERT_TRUE(LoadSnapshotFromBuffer(buffer, "test", &loaded).ok());
  ExpectEqualSnapshots(snapshot, loaded);
}

TEST(SnapshotTest, SerializeIsDeterministic) {
  const RuleGroupSnapshot snapshot = MineSnapshot();
  EXPECT_EQ(SerializeSnapshot(snapshot), SerializeSnapshot(snapshot));
}

TEST(SnapshotTest, RejectsEveryTruncation) {
  const std::string buffer = SerializeSnapshot(MineSnapshot());
  RuleGroupSnapshot loaded;
  for (std::size_t len = 0; len < buffer.size(); ++len) {
    const Status s = LoadSnapshotFromBuffer(
        std::string_view(buffer).substr(0, len), "trunc", &loaded);
    EXPECT_TRUE(s.IsInvalidArgument()) << "accepted prefix of " << len;
  }
}

TEST(SnapshotTest, RejectsEveryByteCorruption) {
  // Every byte is structural, checksummed, or a checksum itself, so any
  // single-byte corruption must be detected.
  const std::string buffer = SerializeSnapshot(MineSnapshot());
  RuleGroupSnapshot loaded;
  for (std::size_t pos = 0; pos < buffer.size(); ++pos) {
    std::string corrupt = buffer;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5A);
    const Status s = LoadSnapshotFromBuffer(corrupt, "corrupt", &loaded);
    EXPECT_TRUE(s.IsInvalidArgument()) << "accepted flip at byte " << pos;
  }
}

template <typename T>
T ReadLe(const std::string& buffer, std::size_t off) {
  T v{};
  std::memcpy(&v, buffer.data() + off, sizeof(v));
  return v;
}

template <typename T>
void WriteLe(std::string* buffer, std::size_t off, T v) {
  std::memcpy(buffer->data() + off, &v, sizeof(v));
}

TEST(SnapshotTest, RejectsNonCanonicalRowSetEncoding) {
  // Writers trim trailing zero bitset words; a hand-rolled buffer that
  // keeps one must be rejected so every snapshot has exactly one
  // serialized form (the fuzzer relies on this for its byte-identity
  // round-trip oracle).
  RuleGroupSnapshot snapshot;
  snapshot.num_rows = 70;
  snapshot.fingerprint.num_rows = 70;
  snapshot.fingerprint.num_items = 5;
  RuleGroup g;
  g.rows = Bitset(70);  // Empty row set: canonical word count is 0.
  snapshot.groups.push_back(g);
  std::string buffer = SerializeSnapshot(snapshot);
  RuleGroupSnapshot loaded;
  ASSERT_TRUE(LoadSnapshotFromBuffer(buffer, "canon", &loaded).ok());

  // Header is 16 bytes; each section is tag u32 | size u64 | payload |
  // crc u32. Walk past META to the GRPS payload.
  std::size_t section = 16;
  section += 4 + 8 + ReadLe<std::uint64_t>(buffer, section + 4) + 4;
  const std::uint64_t grps_size = ReadLe<std::uint64_t>(buffer, section + 4);
  const std::size_t payload = section + 4 + 8;
  // Payload: group count u64, then 33 bytes of stats+flags, an empty
  // antecedent (u32 count 0), then the row-set word count.
  const std::size_t word_count_off = payload + 8 + 33 + 4;
  ASSERT_EQ(ReadLe<std::uint32_t>(buffer, word_count_off), 0u);
  WriteLe<std::uint32_t>(&buffer, word_count_off, 1);
  buffer.insert(word_count_off + 4, 8, '\0');  // One all-zero word.
  WriteLe<std::uint64_t>(&buffer, section + 4, grps_size + 8);
  WriteLe<std::uint32_t>(
      &buffer, payload + grps_size + 8,
      Crc32(buffer.data() + payload, grps_size + 8));

  const Status s = LoadSnapshotFromBuffer(buffer, "noncanon", &loaded);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("non-canonical"), std::string::npos);
}

TEST(SnapshotTest, RejectsItemUniverseOverCap) {
  // A CRC-valid META declaring a huge item universe must be rejected up
  // front: RuleGroupIndex sizes two posting-list vectors from
  // num_items, so an unchecked count is an allocation bomb.
  std::string buffer = SerializeSnapshot(MineSnapshot());
  // META payload starts after header (16) + tag u32 + size u64; its
  // layout puts fingerprint.num_items at payload offset 24.
  const std::size_t meta_payload = 16 + 4 + 8;
  const std::uint64_t meta_size =
      ReadLe<std::uint64_t>(buffer, 16 + 4);
  WriteLe<std::uint64_t>(&buffer, meta_payload + 24,
                         std::uint64_t{1} << 60);
  WriteLe<std::uint32_t>(
      &buffer, meta_payload + meta_size,
      Crc32(buffer.data() + meta_payload, meta_size));
  RuleGroupSnapshot loaded;
  const Status s = LoadSnapshotFromBuffer(buffer, "items", &loaded);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("num_items"), std::string::npos)
      << s.message();
}

TEST(SnapshotTest, RejectsSupportsWhoseSumWrapsToRowCount) {
  // support_pos and support_neg are attacker-controlled u64s; adding
  // 2^63 to both leaves their mod-2^64 sum equal to the true row count,
  // so the row-count cross-check alone would accept nonsense supports.
  std::string buffer = SerializeSnapshot(MineSnapshot());
  std::size_t section = 16;
  section += 4 + 8 + ReadLe<std::uint64_t>(buffer, section + 4) + 4;
  const std::uint64_t grps_size = ReadLe<std::uint64_t>(buffer, section + 4);
  const std::size_t payload = section + 4 + 8;
  // GRPS payload: group count u64, then group 0's support_pos u64 and
  // support_neg u64.
  ASSERT_GE(ReadLe<std::uint64_t>(buffer, payload), 1u);
  const std::uint64_t half = std::uint64_t{1} << 63;
  WriteLe<std::uint64_t>(&buffer, payload + 8,
                         ReadLe<std::uint64_t>(buffer, payload + 8) + half);
  WriteLe<std::uint64_t>(&buffer, payload + 16,
                         ReadLe<std::uint64_t>(buffer, payload + 16) + half);
  WriteLe<std::uint32_t>(&buffer, payload + grps_size,
                         Crc32(buffer.data() + payload, grps_size));
  RuleGroupSnapshot loaded;
  const Status s = LoadSnapshotFromBuffer(buffer, "wrap", &loaded);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("support exceeds num_rows"),
            std::string::npos)
      << s.message();
}

TEST(SnapshotTest, RejectsTrailingBytes) {
  const std::string buffer = SerializeSnapshot(MineSnapshot()) + "x";
  RuleGroupSnapshot loaded;
  EXPECT_TRUE(
      LoadSnapshotFromBuffer(buffer, "trailing", &loaded).IsInvalidArgument());
}

TEST(SnapshotTest, RejectsFutureVersionEvenWithValidChecksum) {
  std::string buffer = SerializeSnapshot(MineSnapshot());
  // Header: magic[4] | version u32 | section_count u32 | crc32 u32.
  buffer[4] = 2;  // version = 2 (little-endian low byte).
  const std::uint32_t crc = Crc32(buffer.data(), 12);
  std::memcpy(&buffer[12], &crc, sizeof(crc));
  RuleGroupSnapshot loaded;
  const Status s = LoadSnapshotFromBuffer(buffer, "future", &loaded);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(SnapshotTest, RejectsBadMagic) {
  std::string buffer = SerializeSnapshot(MineSnapshot());
  buffer[0] = 'X';
  RuleGroupSnapshot loaded;
  EXPECT_TRUE(
      LoadSnapshotFromBuffer(buffer, "magic", &loaded).IsInvalidArgument());
}

TEST(SnapshotTest, SaveRejectsInconsistentRowWidth) {
  RuleGroupSnapshot snapshot;
  snapshot.num_rows = 10;
  RuleGroup g;
  g.rows = Bitset(12);  // Wider than the snapshot's row count.
  snapshot.groups.push_back(g);
  const std::string path = ::testing::TempDir() + "/badwidth.fsnap";
  EXPECT_TRUE(SaveSnapshot(snapshot, path).IsInvalidArgument());
}

TEST(SnapshotTest, SaveRejectsRowCountOverCap) {
  RuleGroupSnapshot snapshot;
  snapshot.num_rows = static_cast<std::size_t>(kMaxSnapshotRows) + 1;
  const std::string path = ::testing::TempDir() + "/overcap.fsnap";
  EXPECT_TRUE(SaveSnapshot(snapshot, path).IsInvalidArgument());
}

TEST(SnapshotTest, SaveRejectsItemCountOverCap) {
  RuleGroupSnapshot snapshot;
  snapshot.fingerprint.num_items = kMaxSnapshotItems + 1;
  const std::string path = ::testing::TempDir() + "/overitems.fsnap";
  EXPECT_TRUE(SaveSnapshot(snapshot, path).IsInvalidArgument());
}

TEST(SnapshotTest, LoadReportsIoErrorForMissingFile) {
  RuleGroupSnapshot loaded;
  EXPECT_TRUE(LoadSnapshot("/nonexistent/store.fsnap", &loaded).IsIoError());
}

// Format-stability regression: a checked-in FSNP v1 file written by an
// earlier build must load and re-serialize byte-identically forever.
// This pins the on-disk format against internal representation changes
// (e.g. the Bitset word storage moving to 64-byte-aligned allocations).
TEST(SnapshotTest, FixtureV1RoundTripsByteIdentically) {
  const std::string path =
      std::string(FARMER_TEST_DATA_DIR) + "/fixture_v1.fsnap";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << path;
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes.empty());

  RuleGroupSnapshot loaded;
  ASSERT_TRUE(LoadSnapshotFromBuffer(bytes, path, &loaded).ok());
  EXPECT_EQ(loaded.groups.size(), 272u);
  EXPECT_EQ(loaded.num_rows, 62u);
  EXPECT_EQ(SerializeSnapshot(loaded), bytes);
}

TEST(SnapshotTest, FingerprintTracksDatasetContent) {
  BinaryDataset a = RandomDataset(10, 12, 0.4, 5);
  BinaryDataset b = RandomDataset(10, 12, 0.4, 6);
  EXPECT_EQ(SnapshotFingerprint::FromDataset(a),
            SnapshotFingerprint::FromDataset(a));
  EXPECT_NE(SnapshotFingerprint::FromDataset(a).dataset_hash,
            SnapshotFingerprint::FromDataset(b).dataset_hash);
}

}  // namespace
}  // namespace serve
}  // namespace farmer
