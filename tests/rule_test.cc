#include "core/rule.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace farmer {
namespace {

TEST(RuleGroupTest, AntecedentSupport) {
  RuleGroup g;
  g.support_pos = 3;
  g.support_neg = 2;
  EXPECT_EQ(g.antecedent_support(), 5u);
}

TEST(FormatRuleGroupTest, RendersNamesAndStats) {
  BinaryDataset ds = testing_util::MakeDataset({{{0, 1}, 1}});
  ds.set_item_names({"geneA:high", "geneB:low"});
  RuleGroup g;
  g.antecedent = {0, 1};
  g.rows = Bitset(1);
  g.rows.Set(0);
  g.support_pos = 1;
  g.confidence = 1.0;
  g.chi_square = 0.0;
  const std::string s = FormatRuleGroup(g, ds, "cancer");
  EXPECT_NE(s.find("geneA:high,geneB:low"), std::string::npos) << s;
  EXPECT_NE(s.find("-> cancer"), std::string::npos) << s;
  EXPECT_NE(s.find("sup=1"), std::string::npos) << s;
  EXPECT_NE(s.find("conf=1"), std::string::npos) << s;
}

TEST(FormatRuleGroupTest, UnstoredAntecedent) {
  BinaryDataset ds = testing_util::MakeDataset({{{0}, 1}, {{0}, 0}});
  RuleGroup g;
  g.rows = Bitset(2);
  g.rows.Set(0);
  g.rows.Set(1);
  g.support_pos = 1;
  g.support_neg = 1;
  const std::string s = FormatRuleGroup(g, ds, "C");
  EXPECT_NE(s.find("unstored antecedent of 2 rows"), std::string::npos) << s;
}

TEST(FormatRuleGroupTest, ReportsLowerBoundCount) {
  BinaryDataset ds = testing_util::MakeDataset({{{0, 1}, 1}});
  RuleGroup g;
  g.antecedent = {0};
  g.rows = Bitset(1);
  g.lower_bounds = {{0}};
  const std::string s = FormatRuleGroup(g, ds, "C");
  EXPECT_NE(s.find("lower_bounds=1"), std::string::npos) << s;
}

}  // namespace
}  // namespace farmer
