// Cross-cutting properties of the FARMER miner beyond the direct oracle
// comparisons in farmer_test.cc.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/farmer.h"
#include "dataset/dataset.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::MakeDataset;
using testing_util::RandomDataset;

using GroupSig = std::tuple<std::vector<std::size_t>, std::size_t,
                            std::size_t>;

std::set<GroupSig> Sigs(const std::vector<RuleGroup>& groups) {
  std::set<GroupSig> out;
  for (const RuleGroup& g : groups) {
    out.emplace(g.rows.ToVector(), g.support_pos, g.support_neg);
  }
  return out;
}

TEST(FarmerPropertiesTest, DeterministicAcrossRuns) {
  BinaryDataset ds = RandomDataset(12, 15, 0.45, 2024);
  MinerOptions opts;
  opts.min_support = 2;
  FarmerResult a = MineFarmer(ds, opts);
  FarmerResult b = MineFarmer(ds, opts);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].rows, b.groups[i].rows);
    EXPECT_EQ(a.groups[i].antecedent, b.groups[i].antecedent);
    EXPECT_EQ(a.groups[i].lower_bounds, b.groups[i].lower_bounds);
  }
}

TEST(FarmerPropertiesTest, RowOrderInvariance) {
  // Mining must not depend on the input row order (the miner permutes
  // internally); row sets are reported in the caller's ids.
  BinaryDataset ds = RandomDataset(11, 13, 0.5, 31);
  MinerOptions opts;
  opts.min_support = 2;
  opts.min_confidence = 0.5;
  FarmerResult base = MineFarmer(ds, opts);

  // Reverse the rows.
  BinaryDataset reversed(ds.num_items());
  for (RowId r = ds.num_rows(); r-- > 0;) {
    reversed.AddRow(ds.row(r), ds.label(r));
  }
  FarmerResult rev = MineFarmer(reversed, opts);

  // Map reversed row ids back.
  std::set<GroupSig> remapped;
  const std::size_t n = ds.num_rows();
  for (const RuleGroup& g : rev.groups) {
    std::vector<std::size_t> rows;
    g.rows.ForEach([&](std::size_t r) { rows.push_back(n - 1 - r); });
    std::sort(rows.begin(), rows.end());
    remapped.emplace(rows, g.support_pos, g.support_neg);
  }
  EXPECT_EQ(Sigs(base.groups), remapped);
}

TEST(FarmerPropertiesTest, OtherConsequentMinesTheOtherClass) {
  BinaryDataset ds = RandomDataset(10, 12, 0.5, 55);
  MinerOptions opts;
  opts.consequent = 0;
  opts.min_support = 2;
  FarmerResult mined = MineFarmer(ds, opts);
  std::vector<RuleGroup> expected = BruteForceIRGs(ds, opts);
  EXPECT_EQ(Sigs(mined.groups), Sigs(expected));
  for (const RuleGroup& g : mined.groups) {
    std::size_t class0 = 0;
    g.rows.ForEach([&](std::size_t r) {
      if (ds.label(static_cast<RowId>(r)) == 0) ++class0;
    });
    EXPECT_EQ(class0, g.support_pos);
  }
}

TEST(FarmerPropertiesTest, ThreeClassDataset) {
  // Labels 0/1/2; consequent 2 treats 0 and 1 jointly as ¬C.
  BinaryDataset ds(6);
  Rng rng(77);
  for (int r = 0; r < 12; ++r) {
    ItemVector items;
    for (ItemId i = 0; i < 6; ++i) {
      if (rng.NextBool(0.5)) items.push_back(i);
    }
    ds.AddRow(std::move(items), static_cast<ClassLabel>(r % 3));
  }
  MinerOptions opts;
  opts.consequent = 2;
  opts.min_support = 1;
  FarmerResult mined = MineFarmer(ds, opts);
  std::vector<RuleGroup> expected = BruteForceIRGs(ds, opts);
  EXPECT_EQ(Sigs(mined.groups), Sigs(expected));
}

TEST(FarmerPropertiesTest, ReplicationScalesSupports) {
  BinaryDataset ds = RandomDataset(8, 10, 0.5, 91);
  MinerOptions opts;
  opts.min_support = 2;
  FarmerResult base = MineFarmer(ds, opts);

  const std::size_t k = 3;
  BinaryDataset big = ReplicateRows(ds, k);
  MinerOptions big_opts = opts;
  big_opts.min_support = opts.min_support * k;
  FarmerResult scaled = MineFarmer(big, big_opts);

  // Same groups, supports multiplied by k. (Confidence and chi-square are
  // scale-sensitive only through supports; confidences match exactly.)
  ASSERT_EQ(base.groups.size(), scaled.groups.size());
  std::map<ItemVector, const RuleGroup*> by_antecedent;
  for (const RuleGroup& g : scaled.groups) {
    by_antecedent[g.antecedent] = &g;
  }
  for (const RuleGroup& g : base.groups) {
    auto it = by_antecedent.find(g.antecedent);
    ASSERT_NE(it, by_antecedent.end());
    EXPECT_EQ(it->second->support_pos, g.support_pos * k);
    EXPECT_EQ(it->second->support_neg, g.support_neg * k);
    EXPECT_DOUBLE_EQ(it->second->confidence, g.confidence);
  }
}

TEST(FarmerPropertiesTest, PartialTimeoutResultsAreSound) {
  // Groups reported before the deadline fires must be exactly correct
  // (subset of the full result with identical stats).
  BinaryDataset ds = RandomDataset(13, 16, 0.5, 17);
  MinerOptions full;
  full.min_support = 1;
  full.mine_lower_bounds = false;
  FarmerResult complete = MineFarmer(ds, full);
  const std::set<GroupSig> complete_sigs = Sigs(complete.groups);

  for (double limit : {1e-5, 1e-4, 1e-3}) {
    MinerOptions capped = full;
    capped.deadline = Deadline::After(limit);
    FarmerResult partial = MineFarmer(ds, capped);
    if (!partial.stats.timed_out) continue;
    for (const GroupSig& sig : Sigs(partial.groups)) {
      EXPECT_TRUE(complete_sigs.count(sig))
          << "partial result contains a group the full run rejects";
    }
  }
}

TEST(FarmerPropertiesTest, LowerBoundsAreMinimalAndDistinct) {
  BinaryDataset ds = RandomDataset(10, 12, 0.5, 123);
  MinerOptions opts;
  opts.min_support = 1;
  FarmerResult mined = MineFarmer(ds, opts);
  for (const RuleGroup& g : mined.groups) {
    for (std::size_t a = 0; a < g.lower_bounds.size(); ++a) {
      // Each lower bound has the group's exact row support.
      EXPECT_EQ(RowSupportSet(ds, g.lower_bounds[a]), g.rows);
      for (std::size_t b = 0; b < g.lower_bounds.size(); ++b) {
        if (a == b) continue;
        // No lower bound contains another.
        EXPECT_FALSE(std::includes(
            g.lower_bounds[a].begin(), g.lower_bounds[a].end(),
            g.lower_bounds[b].begin(), g.lower_bounds[b].end()))
            << "lower bounds not minimal";
      }
    }
  }
}

TEST(FarmerPropertiesTest, StatsCountersAreConsistent) {
  BinaryDataset ds = RandomDataset(12, 14, 0.5, 66);
  MinerOptions opts;
  opts.min_support = 2;
  opts.min_confidence = 0.6;
  FarmerResult r = MineFarmer(ds, opts);
  EXPECT_GT(r.stats.nodes_visited, 0u);
  EXPECT_GE(r.stats.mine_seconds, 0.0);
  EXPECT_EQ(r.num_rows, ds.num_rows());
  EXPECT_EQ(r.num_consequent_rows, ds.CountLabel(1));
}

}  // namespace
}  // namespace farmer
