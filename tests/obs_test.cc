// Observability subsystem (src/obs/): event-ring overflow semantics,
// lock-free metrics under contention, Chrome-Trace-Format validity of a
// multi-threaded mining trace, progress counters/reporter, and the
// guarantee that enabling none of it leaves the mined groups
// byte-identical.

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/farmer.h"
#include "core/miner_options.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::RandomDataset;

// ---------------------------------------------------------------------
// A minimal JSON reader, just enough to validate the obs exporters
// without external dependencies. Parses objects, arrays, strings,
// numbers, booleans and null into a tagged tree.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue& at(const std::string& key) const {
    static const JsonValue missing;
    auto it = fields.find(key);
    return it == fields.end() ? missing : it->second;
  }
  bool Has(const std::string& key) const { return fields.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == s_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, std::size_t len) {
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->text);
    }
    if (c == 't') {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      return Literal("true", 4);
    }
    if (c == 'f') {
      out->kind = JsonValue::kBool;
      out->boolean = false;
      return Literal("false", 5);
    }
    if (c == 'n') {
      out->kind = JsonValue::kNull;
      return Literal("null", 4);
    }
    return ParseNumber(out);
  }

  bool ParseString(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':
            // Good enough for validation: skip the 4 hex digits.
            if (pos_ + 4 > s_.size()) return false;
            pos_ += 4;
            c = '?';
            break;
          default: c = esc; break;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::stod(s_.substr(start, pos_ - start));
    return true;
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->fields.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

JsonValue ParseJsonOrDie(const std::string& text) {
  JsonValue v;
  EXPECT_TRUE(JsonParser(text).Parse(&v)) << "invalid JSON: " << text;
  return v;
}

// ---------------------------------------------------------------------
// EventRing.

TEST(EventRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(obs::EventRing(5).capacity(), 8u);
  EXPECT_EQ(obs::EventRing(8).capacity(), 8u);
  EXPECT_EQ(obs::EventRing(1).capacity(), 2u);
}

TEST(EventRingTest, OverflowKeepsNewestAndCountsDrops) {
  obs::EventRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    obs::TraceEvent e;
    e.name = "e";
    e.ts_ns = i;
    ring.Push(e);
  }
  EXPECT_EQ(ring.pushed(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  std::vector<obs::TraceEvent> kept = ring.Snapshot();
  ASSERT_EQ(kept.size(), 8u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    // The newest 8 of the 20 pushes survive, oldest first: 12..19.
    EXPECT_EQ(kept[i].ts_ns, 12 + i);
  }
}

TEST(EventRingTest, NoOverflowReportsZeroDrops) {
  obs::EventRing ring(16);
  for (int i = 0; i < 10; ++i) ring.Push(obs::TraceEvent{});
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.Snapshot().size(), 10u);
}

// ---------------------------------------------------------------------
// Metrics.

TEST(MetricsTest, ConcurrentIncrementsSumExactly) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.counter");
  obs::Histogram* hist =
      registry.GetHistogram("test.hist", {1.0, 10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(static_cast<double>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Sum of observations: kPerThread * (0 + 1 + 2 + 3).
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, kPerThread * 6.0);
}

TEST(MetricsTest, GaugeSetMaxIsMonotone) {
  obs::Gauge gauge;
  gauge.SetMax(3.0);
  gauge.SetMax(1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.SetMax(7.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.5);
}

TEST(MetricsTest, HistogramBucketsPartitionByUpperEdge) {
  obs::Histogram hist({1.0, 10.0});
  hist.Observe(0.5);   // <= 1
  hist.Observe(1.0);   // <= 1 (inclusive edge)
  hist.Observe(5.0);   // <= 10
  hist.Observe(99.0);  // overflow
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.count(), 4u);
}

TEST(MetricsTest, HistogramDropsNaNObservations) {
  obs::Histogram hist({1.0});
  hist.Observe(0.5);
  hist.Observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.bucket_count(0), 1u);
  EXPECT_EQ(hist.bucket_count(1), 0u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5);
}

TEST(MetricsTest, HistogramPlacesInfinitiesAndNegatives) {
  obs::Histogram hist({0.0, 1.0});
  hist.Observe(-std::numeric_limits<double>::infinity());  // First bucket.
  hist.Observe(-5.0);                                      // First bucket.
  hist.Observe(std::numeric_limits<double>::infinity());   // Overflow.
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 0u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.count(), 3u);
  // -inf + +inf would be NaN; the sum only has to stay a double. All
  // three observations must be counted regardless of what it holds.
  EXPECT_TRUE(std::isinf(hist.sum()) || std::isnan(hist.sum()));
}

TEST(MetricsTest, HistogramSnapshotConsistentUnderConcurrentObserve) {
  // Snapshots cut while observers run must stay internally sane:
  // bucket sums never exceed the number of observations started, and
  // once the writers join, everything is exact.
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram("race.hist", {0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        hist->Observe(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  go.store(true, std::memory_order_release);
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  for (int round = 0; round < 50; ++round) {
    obs::MetricsSnapshot snap = registry.Snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const auto& h = snap.histograms[0];
    ASSERT_EQ(h.buckets.size(), 2u);
    std::uint64_t in_buckets = h.buckets[0] + h.buckets[1];
    EXPECT_LE(in_buckets, total);
    EXPECT_LE(h.count, total);
  }
  for (std::thread& t : writers) t.join();
  obs::MetricsSnapshot snap = registry.Snapshot();
  const auto& h = snap.histograms[0];
  EXPECT_EQ(h.count, total);
  EXPECT_EQ(h.buckets[0] + h.buckets[1], total);
  EXPECT_EQ(h.buckets[0], total / 2);
  EXPECT_DOUBLE_EQ(h.sum, total / 2 * 0.25 + total / 2 * 0.75);
}

TEST(MetricsTest, JsonExportIsValidAndComplete) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c.one")->Add(42);
  registry.GetGauge("g.two")->Set(2.5);
  registry.GetHistogram("h.three", {1.0, 2.0})->Observe(1.5);
  JsonValue root = ParseJsonOrDie(registry.ToJson());
  ASSERT_EQ(root.kind, JsonValue::kObject);
  EXPECT_DOUBLE_EQ(root.at("counters").at("c.one").number, 42.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("g.two").number, 2.5);
  const JsonValue& h = root.at("histograms").at("h.three");
  ASSERT_EQ(h.at("buckets").items.size(), 3u);
  EXPECT_DOUBLE_EQ(h.at("count").number, 1.0);
}

// ---------------------------------------------------------------------
// Tracing a real parallel mining run.

struct TracedRun {
  FarmerResult result;
  JsonValue trace;
  std::uint64_t merge_segments = 0;
};

TracedRun MineWithTrace(std::size_t threads) {
  BinaryDataset ds = RandomDataset(40, 24, 0.4, 99);
  obs::TraceSession session(threads + 1);
  obs::MetricsRegistry metrics;
  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 2;
  opts.mine_lower_bounds = true;
  opts.num_threads = threads;
  opts.trace = &session;
  opts.metrics = &metrics;
  TracedRun out;
  out.result = MineFarmer(ds, opts);
  out.trace = ParseJsonOrDie(session.ToJson());
  out.merge_segments = metrics.GetCounter("farmer.merge.segments")->value();
  return out;
}

TEST(TraceTest, FourThreadRunEmitsValidChromeTraceFormat) {
  TracedRun run = MineWithTrace(4);
  ASSERT_EQ(run.trace.kind, JsonValue::kObject);
  const JsonValue& events = run.trace.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);
  ASSERT_FALSE(events.items.empty());

  std::size_t merge_spans = 0;
  std::set<std::string> names;
  for (const JsonValue& e : events.items) {
    ASSERT_EQ(e.kind, JsonValue::kObject);
    ASSERT_TRUE(e.Has("name"));
    ASSERT_TRUE(e.Has("ph"));
    ASSERT_TRUE(e.Has("pid"));
    ASSERT_TRUE(e.Has("tid"));
    const std::string& ph = e.at("ph").text;
    ASSERT_TRUE(ph == "X" || ph == "i" || ph == "M") << ph;
    if (ph == "M") continue;  // Metadata events carry no timestamp args.
    ASSERT_TRUE(e.Has("ts"));
    names.insert(e.at("name").text);
    if (ph == "X") {
      ASSERT_TRUE(e.Has("dur"));
      EXPECT_GE(e.at("dur").number, 0.0);
      if (e.at("name").text == "merge") {
        ++merge_spans;
        EXPECT_DOUBLE_EQ(e.at("tid").number, 0.0);  // Control lane.
      }
    }
  }
  // The phase spans and at least one task must be present.
  EXPECT_TRUE(names.count("mine"));
  EXPECT_TRUE(names.count("task"));
  EXPECT_TRUE(names.count("remap"));
  // Exactly one merge span per replayed segment (the metrics counter is
  // incremented in the same loop).
  EXPECT_GT(merge_spans, 0u);
  EXPECT_EQ(merge_spans, run.merge_segments);
}

TEST(TraceTest, StealInstantsMatchStealCounter) {
  // Steals are timing-dependent, so assert consistency, not a count:
  // every steal the pool observed must have produced one instant.
  TracedRun run = MineWithTrace(4);
  std::size_t steal_events = 0;
  for (const JsonValue& e : run.trace.at("traceEvents").items) {
    if (e.at("name").text == "steal") ++steal_events;
  }
  EXPECT_EQ(steal_events, run.result.stats.task_steals);
}

TEST(TraceTest, MetadataNamesEveryLane) {
  obs::TraceSession session(3);  // Control + 2 workers.
  session.Instant(0, "x");
  JsonValue root = ParseJsonOrDie(session.ToJson());
  std::set<std::string> thread_names;
  for (const JsonValue& e : root.at("traceEvents").items) {
    if (e.at("ph").text == "M" && e.at("name").text == "thread_name") {
      thread_names.insert(e.at("args").at("name").text);
    }
  }
  EXPECT_TRUE(thread_names.count("main"));
  EXPECT_EQ(thread_names.size(), 3u);
}

TEST(TraceTest, ScopedSpanWithNullSessionIsNoop) {
  obs::ScopedSpan span(nullptr, 0, "nothing");
  span.Arg("a", 1);
  span.Arg("b", 2);
  span.Arg("c", 3);  // Third arg ignored, not UB.
}

// ---------------------------------------------------------------------
// Zero-overhead guarantee: no obs pointers -> identical results.

void ExpectIdenticalGroups(const FarmerResult& want,
                           const FarmerResult& got) {
  ASSERT_EQ(want.groups.size(), got.groups.size());
  for (std::size_t i = 0; i < want.groups.size(); ++i) {
    SCOPED_TRACE("group " + std::to_string(i));
    EXPECT_EQ(want.groups[i].antecedent, got.groups[i].antecedent);
    EXPECT_EQ(want.groups[i].rows, got.groups[i].rows);
    EXPECT_EQ(want.groups[i].support_pos, got.groups[i].support_pos);
    EXPECT_EQ(want.groups[i].support_neg, got.groups[i].support_neg);
    EXPECT_EQ(want.groups[i].confidence, got.groups[i].confidence);
    EXPECT_EQ(want.groups[i].lower_bounds, got.groups[i].lower_bounds);
  }
}

TEST(ObsIntegrationTest, InstrumentationDoesNotChangeResults) {
  BinaryDataset ds = RandomDataset(36, 20, 0.45, 3);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    MinerOptions plain;
    plain.consequent = 1;
    plain.min_support = 2;
    plain.num_threads = threads;
    FarmerResult bare = MineFarmer(ds, plain);

    obs::TraceSession session(threads + 1);
    obs::MetricsRegistry metrics;
    obs::ProgressCounters progress;
    MinerOptions instrumented = plain;
    instrumented.trace = &session;
    instrumented.metrics = &metrics;
    instrumented.progress = &progress;
    FarmerResult traced = MineFarmer(ds, instrumented);

    ExpectIdenticalGroups(bare, traced);
    EXPECT_EQ(bare.stats.nodes_visited, traced.stats.nodes_visited);
  }
}

// ---------------------------------------------------------------------
// Progress counters and reporter.

TEST(ProgressTest, CountersMatchFinalStats) {
  BinaryDataset ds = RandomDataset(36, 20, 0.45, 17);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    obs::ProgressCounters progress;
    MinerOptions opts;
    opts.consequent = 1;
    opts.min_support = 2;
    opts.num_threads = threads;
    opts.progress = &progress;
    FarmerResult r = MineFarmer(ds, opts);
    // Every per-task flush lands before the pool drains, so the final
    // counters agree exactly with the merged statistics.
    EXPECT_EQ(progress.nodes.load(), r.stats.nodes_visited);
    EXPECT_EQ(progress.rows_absorbed.load(), r.stats.rows_absorbed);
    EXPECT_EQ(progress.pruned_backscan.load(),
              r.stats.pruned_by_backscan);
    EXPECT_EQ(progress.minelb_done.load(), r.groups.size());
    if (threads > 1) {
      // Spawned tasks + the root task all completed.
      EXPECT_EQ(progress.tasks_completed.load(),
                r.stats.tasks_spawned + 1);
      EXPECT_EQ(progress.tasks_spawned.load(),
                r.stats.tasks_spawned + 1);
    }
  }
}

TEST(ProgressTest, ReporterEmitsLinesAndStops) {
  obs::ProgressCounters counters;
  counters.nodes.store(123456);
  counters.groups.store(42);
  counters.root_total.store(10);
  counters.root_done.store(5);
  std::vector<std::string> lines;
  std::mutex lines_mutex;
  obs::ProgressReporter::Options opts;
  opts.interval_seconds = 0.01;
  opts.sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(lines_mutex);
    lines.push_back(line);
  };
  obs::ProgressReporter reporter(&counters, opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  reporter.Stop();
  reporter.Stop();  // Idempotent.
  std::lock_guard<std::mutex> lock(lines_mutex);
  ASSERT_FALSE(lines.empty());
  // Every line reports the node count and the completion estimate.
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("nodes"), std::string::npos) << line;
  }
}

TEST(ProgressTest, FormatSampleMentionsKeyFields) {
  obs::ProgressCounters counters;
  counters.nodes.store(1000);
  counters.groups.store(7);
  obs::ProgressReporter::Options opts;
  opts.interval_seconds = 3600.0;  // Never fires on its own.
  opts.sink = [](const std::string&) {};
  obs::ProgressReporter reporter(&counters, opts);
  const std::string line = reporter.FormatSample();
  EXPECT_NE(line.find("nodes"), std::string::npos) << line;
  EXPECT_NE(line.find("groups"), std::string::npos) << line;
  reporter.Stop();
}

TEST(ProgressTest, RaiseMaxDepthIsMonotoneUnderContention) {
  obs::ProgressCounters counters;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counters, t] {
      for (std::uint64_t d = 0; d < 1000; ++d) {
        counters.RaiseMaxDepth(d * 4 + t);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counters.max_depth.load(), 999u * 4 + 3);
}

}  // namespace
}  // namespace farmer
