#include "util/bitset.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace farmer {
namespace {

TEST(BitsetTest, BasicSetResetTest) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
  b.ResetAll();
  EXPECT_TRUE(b.None());
}

TEST(BitsetTest, SetAllRespectsSize) {
  Bitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  Bitset c(64);
  c.SetAll();
  EXPECT_EQ(c.Count(), 64u);
}

TEST(BitsetTest, SubsetAndIntersection) {
  Bitset a(100), b(100);
  a.Set(3);
  a.Set(50);
  b.Set(3);
  b.Set(50);
  b.Set(99);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsProperSubsetOf(b));
  EXPECT_FALSE(a.IsProperSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.IntersectCount(b), 2u);
  Bitset c(100);
  c.Set(1);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(BitsetTest, SetAlgebraOperators) {
  Bitset a(66), b(66);
  a.Set(0);
  a.Set(65);
  b.Set(65);
  b.Set(30);
  EXPECT_EQ((a | b).ToVector(), (std::vector<std::size_t>{0, 30, 65}));
  EXPECT_EQ((a & b).ToVector(), (std::vector<std::size_t>{65}));
  EXPECT_EQ((a - b).ToVector(), (std::vector<std::size_t>{0}));
}

TEST(BitsetTest, FindFirstAndNext) {
  Bitset b(200);
  EXPECT_EQ(b.FindFirst(), 200u);
  b.Set(5);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindFirst(), 5u);
  EXPECT_EQ(b.FindNext(5), 64u);
  EXPECT_EQ(b.FindNext(64), 199u);
  EXPECT_EQ(b.FindNext(199), 200u);
}

TEST(BitsetTest, ResizeClearsNewBitsAndTrims) {
  Bitset b(10);
  b.SetAll();
  b.Resize(100);
  EXPECT_EQ(b.Count(), 10u);
  b.Resize(4);
  EXPECT_EQ(b.Count(), 4u);
  b.Resize(10);
  EXPECT_EQ(b.Count(), 4u);  // Trimmed bits stay cleared.
}

TEST(BitsetTest, EqualityAndHash) {
  Bitset a(80), b(80);
  a.Set(7);
  b.Set(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(8);
  EXPECT_NE(a, b);
}

TEST(BitsetTest, ToStringRendersSetBits) {
  Bitset b(10);
  b.Set(1);
  b.Set(4);
  EXPECT_EQ(b.ToString(), "{1,4}");
  EXPECT_EQ(Bitset(3).ToString(), "{}");
}

TEST(BitsetTest, RandomizedAgainstStdSet) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t size = 1 + rng.NextBelow(300);
    Bitset bits(size);
    std::set<std::size_t> model;
    for (int op = 0; op < 200; ++op) {
      const std::size_t pos = rng.NextBelow(size);
      if (rng.NextBool(0.6)) {
        bits.Set(pos);
        model.insert(pos);
      } else {
        bits.Reset(pos);
        model.erase(pos);
      }
    }
    EXPECT_EQ(bits.Count(), model.size());
    EXPECT_EQ(bits.ToVector(),
              std::vector<std::size_t>(model.begin(), model.end()));
    std::size_t iterated = 0;
    bits.ForEach([&](std::size_t pos) {
      EXPECT_TRUE(model.count(pos));
      ++iterated;
    });
    EXPECT_EQ(iterated, model.size());
  }
}

}  // namespace
}  // namespace farmer
