#include "util/bitset.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/bitset_ref.h"
#include "util/rng.h"

namespace farmer {
namespace {

TEST(BitsetTest, BasicSetResetTest) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
  b.ResetAll();
  EXPECT_TRUE(b.None());
}

TEST(BitsetTest, SetAllRespectsSize) {
  Bitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  Bitset c(64);
  c.SetAll();
  EXPECT_EQ(c.Count(), 64u);
}

TEST(BitsetTest, SubsetAndIntersection) {
  Bitset a(100), b(100);
  a.Set(3);
  a.Set(50);
  b.Set(3);
  b.Set(50);
  b.Set(99);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsProperSubsetOf(b));
  EXPECT_FALSE(a.IsProperSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.IntersectCount(b), 2u);
  Bitset c(100);
  c.Set(1);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(BitsetTest, SetAlgebraOperators) {
  Bitset a(66), b(66);
  a.Set(0);
  a.Set(65);
  b.Set(65);
  b.Set(30);
  EXPECT_EQ((a | b).ToVector(), (std::vector<std::size_t>{0, 30, 65}));
  EXPECT_EQ((a & b).ToVector(), (std::vector<std::size_t>{65}));
  EXPECT_EQ((a - b).ToVector(), (std::vector<std::size_t>{0}));
}

TEST(BitsetTest, FindFirstAndNext) {
  Bitset b(200);
  EXPECT_EQ(b.FindFirst(), 200u);
  b.Set(5);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindFirst(), 5u);
  EXPECT_EQ(b.FindNext(5), 64u);
  EXPECT_EQ(b.FindNext(64), 199u);
  EXPECT_EQ(b.FindNext(199), 200u);
}

TEST(BitsetTest, ResizeClearsNewBitsAndTrims) {
  Bitset b(10);
  b.SetAll();
  b.Resize(100);
  EXPECT_EQ(b.Count(), 10u);
  b.Resize(4);
  EXPECT_EQ(b.Count(), 4u);
  b.Resize(10);
  EXPECT_EQ(b.Count(), 4u);  // Trimmed bits stay cleared.
}

TEST(BitsetTest, EqualityAndHash) {
  Bitset a(80), b(80);
  a.Set(7);
  b.Set(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(8);
  EXPECT_NE(a, b);
}

TEST(BitsetTest, ToStringRendersSetBits) {
  Bitset b(10);
  b.Set(1);
  b.Set(4);
  EXPECT_EQ(b.ToString(), "{1,4}");
  EXPECT_EQ(Bitset(3).ToString(), "{}");
}

TEST(BitsetTest, CountPrefix) {
  Bitset b(200);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(130);
  b.Set(199);
  EXPECT_EQ(b.CountPrefix(0), 0u);
  EXPECT_EQ(b.CountPrefix(1), 1u);
  EXPECT_EQ(b.CountPrefix(63), 1u);
  EXPECT_EQ(b.CountPrefix(64), 2u);
  EXPECT_EQ(b.CountPrefix(65), 3u);
  EXPECT_EQ(b.CountPrefix(131), 4u);
  EXPECT_EQ(b.CountPrefix(199), 4u);
  EXPECT_EQ(b.CountPrefix(200), 5u);
  EXPECT_EQ(b.CountPrefix(10000), 5u);  // Clamped to size().
}

TEST(BitsetTest, ResetPrefix) {
  Bitset b(130);
  b.SetAll();
  b.ResetPrefix(70);  // Clears a full word plus 6 bits of the next.
  for (std::size_t i = 0; i < 130; ++i) {
    EXPECT_EQ(b.Test(i), i >= 70) << "bit " << i;
  }
  EXPECT_EQ(b.Count(), 60u);

  b.SetAll();
  b.ResetPrefix(0);  // No-op.
  EXPECT_EQ(b.Count(), 130u);
  b.ResetPrefix(64);  // Exactly one word: no tail masking.
  EXPECT_EQ(b.FindFirst(), 64u);
  b.ResetPrefix(1000);  // Clamped to size.
  EXPECT_TRUE(b.None());

  // Mirrors the miner's use: derive "candidates strictly after row r"
  // from a parent mask.
  Bitset cand(100);
  for (std::size_t i = 0; i < 100; i += 3) cand.Set(i);
  Bitset derived = cand;
  derived.ResetPrefix(31);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(derived.Test(i), cand.Test(i) && i >= 31) << "bit " << i;
  }
}

TEST(BitsetTest, AndCountAndPrefix) {
  Bitset a(150), b(150);
  a.Set(0);
  a.Set(70);
  a.Set(100);
  a.Set(149);
  b.Set(70);
  b.Set(100);
  b.Set(120);
  EXPECT_EQ(a.AndCount(b), 2u);
  EXPECT_EQ(a.AndCountPrefix(b, 0), 0u);
  EXPECT_EQ(a.AndCountPrefix(b, 70), 0u);
  EXPECT_EQ(a.AndCountPrefix(b, 71), 1u);
  EXPECT_EQ(a.AndCountPrefix(b, 101), 2u);
  EXPECT_EQ(a.AndCountPrefix(b, 150), 2u);
  EXPECT_EQ(a.AndCountPrefix(b, 9999), 2u);
}

TEST(BitsetTest, IntersectsAllOf) {
  Bitset probe(100), t1(100), t2(100), t3(100), scratch;
  probe.Set(10);
  probe.Set(50);
  t1.Set(10);
  t1.Set(50);
  t2.Set(50);
  t2.Set(60);
  t3.Set(10);
  const Bitset* both[] = {&t1, &t2};
  EXPECT_TRUE(probe.IntersectsAllOf(both, 2, &scratch));  // 50 survives.
  const Bitset* all3[] = {&t1, &t2, &t3};
  EXPECT_FALSE(probe.IntersectsAllOf(all3, 3, &scratch));  // Nothing in all.
  EXPECT_TRUE(probe.IntersectsAllOf(nullptr, 0, &scratch));  // Any().
  Bitset empty(100);
  EXPECT_FALSE(empty.IntersectsAllOf(nullptr, 0, &scratch));
}

TEST(BitsetTest, AndIntoAndNotIntoReuseStorage) {
  Bitset a(130), b(130), out;
  a.Set(1);
  a.Set(65);
  a.Set(129);
  b.Set(65);
  b.Set(100);
  Bitset::AndInto(a, b, &out);
  EXPECT_EQ(out.ToVector(), (std::vector<std::size_t>{65}));
  EXPECT_EQ(out.size(), 130u);
  Bitset::AndNotInto(a, b, &out);
  EXPECT_EQ(out.ToVector(), (std::vector<std::size_t>{1, 129}));
  // Aliasing with an input is allowed.
  Bitset c = a;
  Bitset::AndNotInto(c, b, &c);
  EXPECT_EQ(c.ToVector(), (std::vector<std::size_t>{1, 129}));
}

TEST(BitsetTest, OrAnd) {
  Bitset acc(100), a(100), b(100);
  acc.Set(0);
  a.Set(10);
  a.Set(20);
  b.Set(20);
  b.Set(30);
  acc.OrAnd(a, b);
  EXPECT_EQ(acc.ToVector(), (std::vector<std::size_t>{0, 20}));
}

TEST(BitsetTest, KernelsMatchNaiveOnRandomSets) {
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t size = 1 + rng.NextBelow(250);
    Bitset a(size), b(size);
    std::set<std::size_t> ma, mb;
    for (std::size_t i = 0; i < size; ++i) {
      if (rng.NextBool(0.4)) {
        a.Set(i);
        ma.insert(i);
      }
      if (rng.NextBool(0.4)) {
        b.Set(i);
        mb.insert(i);
      }
    }
    const std::size_t limit = rng.NextBelow(size + 10);
    std::size_t naive_prefix = 0, naive_and_prefix = 0, naive_and = 0;
    for (std::size_t i : ma) {
      if (i < limit) ++naive_prefix;
      if (mb.count(i)) {
        ++naive_and;
        if (i < limit) ++naive_and_prefix;
      }
    }
    EXPECT_EQ(a.CountPrefix(limit), naive_prefix);
    EXPECT_EQ(a.AndCount(b), naive_and);
    EXPECT_EQ(a.AndCountPrefix(b, limit), naive_and_prefix);
    Bitset out;
    Bitset::AndInto(a, b, &out);
    EXPECT_EQ(out, a & b);
    Bitset::AndNotInto(a, b, &out);
    EXPECT_EQ(out, a - b);
    Bitset acc(size);
    acc.OrAnd(a, b);
    EXPECT_EQ(acc, a & b);
    Bitset scratch;
    const Bitset* sets[] = {&b};
    EXPECT_EQ(a.IntersectsAllOf(sets, 1, &scratch), a.Intersects(b));
  }
}

TEST(BitsetTest, RandomizedAgainstStdSet) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t size = 1 + rng.NextBelow(300);
    Bitset bits(size);
    std::set<std::size_t> model;
    for (int op = 0; op < 200; ++op) {
      const std::size_t pos = rng.NextBelow(size);
      if (rng.NextBool(0.6)) {
        bits.Set(pos);
        model.insert(pos);
      } else {
        bits.Reset(pos);
        model.erase(pos);
      }
    }
    EXPECT_EQ(bits.Count(), model.size());
    EXPECT_EQ(bits.ToVector(),
              std::vector<std::size_t>(model.begin(), model.end()));
    std::size_t iterated = 0;
    bits.ForEach([&](std::size_t pos) {
      EXPECT_TRUE(model.count(pos));
      ++iterated;
    });
    EXPECT_EQ(iterated, model.size());
  }
}

TEST(BitsetTest, CheckInvariantsHoldsAcrossOperations) {
  for (std::size_t size : {0u, 1u, 63u, 64u, 65u, 130u, 1000u}) {
    Bitset b(size);
    b.CheckInvariants();
    b.SetAll();
    b.CheckInvariants();  // SetAll must leave tail bits clear.
    if (size > 0) {
      b.Reset(size - 1);
      b.CheckInvariants();
    }
    Bitset c(size);
    c.SetAll();
    b |= c;
    b.CheckInvariants();
    b -= c;
    b.CheckInvariants();
    b.Resize(size + 77);
    b.CheckInvariants();
  }
}

// Randomized cross-check of every word-parallel kernel against the scalar
// references in util/bitset_ref.h — the same oracles the miner's
// verify_invariants mode uses, exercised here on adversarial sizes
// (word-boundary straddling, empty sets, mismatched prefixes).
TEST(BitsetTest, KernelsMatchScalarReferences) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t size = 1 + rng.NextBelow(200);
    Bitset a(size);
    Bitset b(size);
    Bitset base(size);
    for (std::size_t i = 0; i < size; ++i) {
      if (rng.NextBool(0.35)) a.Set(i);
      if (rng.NextBool(0.35)) b.Set(i);
      if (rng.NextBool(0.35)) base.Set(i);
    }
    const std::size_t limit = rng.NextBelow(size + 8);

    EXPECT_EQ(a.AndCount(b), ref::AndCount(a, b));
    EXPECT_EQ(a.AndCountPrefix(b, limit), ref::AndCountPrefix(a, b, limit));
    EXPECT_EQ(a.CountPrefix(limit), ref::CountPrefix(a, limit));

    Bitset out;
    Bitset::AndInto(a, b, &out);
    out.CheckInvariants();
    EXPECT_EQ(out, ref::AndInto(a, b));
    Bitset::AndNotInto(a, b, &out);
    out.CheckInvariants();
    EXPECT_EQ(out, ref::AndNotInto(a, b));

    Bitset acc = base;
    acc.OrAnd(a, b);
    acc.CheckInvariants();
    EXPECT_EQ(acc, ref::OrAnd(base, a, b));

    // IntersectsAllOf against 0..3 random sets.
    const std::size_t num_sets = rng.NextBelow(4);
    std::vector<Bitset> sets(num_sets, Bitset(size));
    std::vector<const Bitset*> ptrs;
    for (auto& s : sets) {
      for (std::size_t i = 0; i < size; ++i) {
        if (rng.NextBool(0.5)) s.Set(i);
      }
      ptrs.push_back(&s);
    }
    Bitset scratch;
    EXPECT_EQ(a.IntersectsAllOf(ptrs.data(), ptrs.size(), &scratch),
              ref::IntersectsAllOf(a, ptrs.data(), ptrs.size()))
        << "trial=" << trial;
  }
}

}  // namespace
}  // namespace farmer
