#include "core/carpenter.h"

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "baselines/charm.h"
#include "core/brute_force.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::MakeDataset;
using testing_util::PaperExampleDataset;
using testing_util::RandomDataset;

std::set<std::pair<ItemVector, std::size_t>> Canon(
    const std::vector<ClosedItemset>& closed) {
  std::set<std::pair<ItemVector, std::size_t>> out;
  for (const ClosedItemset& c : closed) {
    out.emplace(c.items, c.rows.Count());
  }
  return out;
}

TEST(CarpenterTest, PaperExampleClosedSets) {
  // The running example: aeh is closed with support 3 ({2,3,4} 1-based);
  // a is closed with support 4.
  BinaryDataset ds = PaperExampleDataset();
  CarpenterOptions opts;
  opts.min_support = 3;
  CarpenterResult r = MineCarpenter(ds, opts);
  auto ch = [](char c) { return static_cast<ItemId>(c - 'a'); };
  const auto canon = Canon(r.closed);
  EXPECT_TRUE(canon.count({{ch('a'), ch('e'), ch('h')}, 3}));
  EXPECT_TRUE(canon.count({{ch('a')}, 4}));
  // Every set reported must be closed with exact support.
  for (const ClosedItemset& c : r.closed) {
    EXPECT_EQ(RowSupportSet(ds, c.items), c.rows);
  }
}

TEST(CarpenterTest, RowSupportSetsAreExact) {
  BinaryDataset ds = RandomDataset(12, 14, 0.5, 8);
  CarpenterResult r = MineCarpenter(ds, CarpenterOptions{});
  for (const ClosedItemset& c : r.closed) {
    EXPECT_EQ(RowSupportSet(ds, c.items), c.rows);
  }
}

TEST(CarpenterTest, DeadlineAndCap) {
  BinaryDataset ds = RandomDataset(14, 30, 0.6, 3);
  CarpenterOptions opts;
  opts.deadline = Deadline::After(1e-9);
  EXPECT_TRUE(MineCarpenter(ds, opts).timed_out);

  CarpenterOptions cap;
  cap.max_closed = 2;
  CarpenterResult r = MineCarpenter(ds, cap);
  EXPECT_TRUE(r.overflowed);
}

class CarpenterSweepTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(CarpenterSweepTest, MatchesBruteForceClosedSets) {
  const auto [seed, minsup] = GetParam();
  for (double density : {0.15, 0.3, 0.55, 0.8, 0.9}) {
    BinaryDataset ds = RandomDataset(11, 13, density, seed);
    CarpenterOptions opts;
    opts.min_support = static_cast<std::size_t>(minsup);
    CarpenterResult mined = MineCarpenter(ds, opts);
    ASSERT_FALSE(mined.timed_out);
    EXPECT_EQ(Canon(mined.closed),
              Canon(BruteForceClosedItemsets(ds, opts.min_support)))
        << "seed=" << seed << " minsup=" << minsup
        << " density=" << density;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatasets, CarpenterSweepTest,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 9),
                       ::testing::Values(1, 2, 4)));

TEST(CarpenterTest, AgreesWithCharmOnMicroarrayShapedData) {
  SyntheticSpec spec;
  spec.num_rows = 24;
  spec.num_genes = 80;
  spec.num_class1 = 12;
  spec.num_clusters = 4;
  spec.seed = 12;
  ExpressionMatrix m = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(m, 4).Apply(m);
  for (std::size_t minsup : {2u, 4u, 8u}) {
    CarpenterOptions copts;
    copts.min_support = minsup;
    CarpenterResult carpenter = MineCarpenter(ds, copts);
    CharmOptions chopts;
    chopts.min_support = minsup;
    CharmResult charm = MineCharm(ds, chopts);
    ASSERT_FALSE(carpenter.timed_out);
    ASSERT_FALSE(charm.timed_out);
    EXPECT_EQ(Canon(carpenter.closed), Canon(charm.closed))
        << "minsup=" << minsup;
  }
}

}  // namespace
}  // namespace farmer
