// Prometheus text exposition (src/obs/exposition.h): name/label
// sanitization, label-value escaping, the LabeledName/SplitLabeledName
// round trip, family grouping, histogram bucket cumulation, and the
// +Inf == _count invariant under snapshots that race observers.

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exposition.h"
#include "obs/metrics.h"

namespace farmer {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::size_t CountOf(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

TEST(ExpositionTest, SanitizeMetricName) {
  EXPECT_EQ(obs::SanitizeMetricName("serve.requests"), "serve_requests");
  EXPECT_EQ(obs::SanitizeMetricName("a:b_c9"), "a:b_c9");
  EXPECT_EQ(obs::SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(obs::SanitizeMetricName("sp ace/slash"), "sp_ace_slash");
  EXPECT_EQ(obs::SanitizeMetricName(""), "_");
}

TEST(ExpositionTest, SanitizeLabelNameRejectsColon) {
  EXPECT_EQ(obs::SanitizeLabelName("shard"), "shard");
  EXPECT_EQ(obs::SanitizeLabelName("a:b"), "a_b");
  EXPECT_EQ(obs::SanitizeLabelName("0op"), "_0op");
}

TEST(ExpositionTest, EscapeLabelValue) {
  EXPECT_EQ(obs::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::EscapeLabelValue("a\nb"), "a\\nb");
}

TEST(ExpositionTest, LabeledNameSplitsBack) {
  const std::string name =
      obs::LabeledName("serve.bytes_in", {{"shard", "0"}, {"op", "top\"k"}});
  EXPECT_EQ(name, "serve.bytes_in{shard=\"0\",op=\"top\\\"k\"}");
  std::string base;
  std::string labels;
  obs::SplitLabeledName(name, &base, &labels);
  EXPECT_EQ(base, "serve.bytes_in");
  EXPECT_EQ(labels, "shard=\"0\",op=\"top\\\"k\"");

  obs::SplitLabeledName("plain.name", &base, &labels);
  EXPECT_EQ(base, "plain.name");
  EXPECT_TRUE(labels.empty());
}

TEST(ExpositionTest, RendersCountersGaugesWithHelpAndType) {
  obs::MetricsRegistry registry;
  registry.GetCounter("serve.requests")->Add(7);
  registry.GetGauge("serve.active_connections")->Set(3.0);
  const std::string text = obs::RenderPrometheus(registry.Snapshot());

  EXPECT_TRUE(Contains(text, "# HELP serve_requests serve.requests\n"));
  EXPECT_TRUE(Contains(text, "# TYPE serve_requests counter\n"));
  EXPECT_TRUE(Contains(text, "serve_requests 7\n"));
  EXPECT_TRUE(Contains(text, "# TYPE serve_active_connections gauge\n"));
  EXPECT_TRUE(Contains(text, "serve_active_connections 3\n"));
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(ExpositionTest, GroupsLabeledSeriesUnderOneFamily) {
  obs::MetricsRegistry registry;
  registry.GetCounter(obs::LabeledName("serve.bytes_in", {{"shard", "0"}}))
      ->Add(10);
  registry.GetCounter(obs::LabeledName("serve.bytes_in", {{"shard", "1"}}))
      ->Add(20);
  const std::string text = obs::RenderPrometheus(registry.Snapshot());

  // One HELP/TYPE pair, two samples, consecutive.
  EXPECT_EQ(CountOf(text, "# TYPE serve_bytes_in counter\n"), 1u);
  EXPECT_TRUE(Contains(text, "serve_bytes_in{shard=\"0\"} 10\n"));
  EXPECT_TRUE(Contains(text, "serve_bytes_in{shard=\"1\"} 20\n"));
}

TEST(ExpositionTest, HistogramBucketsAreCumulative) {
  obs::MetricsRegistry registry;
  obs::Histogram* h =
      registry.GetHistogram("serve.latency_seconds", {0.01, 0.1, 1.0});
  h->Observe(0.005);  // le 0.01
  h->Observe(0.005);  // le 0.01
  h->Observe(0.5);    // le 1.0
  h->Observe(99.0);   // overflow
  const std::string text = obs::RenderPrometheus(registry.Snapshot());

  EXPECT_TRUE(Contains(text, "# TYPE serve_latency_seconds histogram\n"));
  EXPECT_TRUE(
      Contains(text, "serve_latency_seconds_bucket{le=\"0.01\"} 2\n"));
  EXPECT_TRUE(
      Contains(text, "serve_latency_seconds_bucket{le=\"0.1\"} 2\n"));
  EXPECT_TRUE(Contains(text, "serve_latency_seconds_bucket{le=\"1\"} 3\n"));
  EXPECT_TRUE(
      Contains(text, "serve_latency_seconds_bucket{le=\"+Inf\"} 4\n"));
  EXPECT_TRUE(Contains(text, "serve_latency_seconds_count 4\n"));
  EXPECT_TRUE(Contains(text, "serve_latency_seconds_sum "));
}

TEST(ExpositionTest, LabeledHistogramKeepsLabelsOnEverySample) {
  obs::MetricsRegistry registry;
  registry
      .GetHistogram(
          obs::LabeledName("serve.op_latency_seconds", {{"op", "topk"}}),
          {0.5})
      ->Observe(0.1);
  const std::string text = obs::RenderPrometheus(registry.Snapshot());
  EXPECT_TRUE(Contains(
      text, "serve_op_latency_seconds_bucket{op=\"topk\",le=\"0.5\"} 1\n"));
  EXPECT_TRUE(Contains(
      text, "serve_op_latency_seconds_bucket{op=\"topk\",le=\"+Inf\"} 1\n"));
  EXPECT_TRUE(Contains(text, "serve_op_latency_seconds_sum{op=\"topk\"} "));
  EXPECT_TRUE(
      Contains(text, "serve_op_latency_seconds_count{op=\"topk\"} 1\n"));
}

TEST(ExpositionTest, CountMatchesInfBucketWhenCountFieldLags) {
  // Simulate a snapshot cut between a racing Observe()'s bucket add
  // and its count add: the renderer must derive +Inf and _count from
  // the buckets so the pair stays equal.
  obs::MetricsSnapshot snap;
  obs::MetricsSnapshot::HistogramValue h;
  h.name = "lagged";
  h.bounds = {1.0};
  h.buckets = {3, 1};  // 4 observations landed in buckets...
  h.count = 3;         // ...but count was read before the 4th add.
  h.sum = 2.5;
  snap.histograms.push_back(h);
  const std::string text = obs::RenderPrometheus(snap);
  EXPECT_TRUE(Contains(text, "lagged_bucket{le=\"+Inf\"} 4\n"));
  EXPECT_TRUE(Contains(text, "lagged_count 4\n"));
}

TEST(ExpositionTest, NonFiniteGaugeAndSumRenderSpelledOut) {
  obs::MetricsSnapshot snap;
  obs::MetricsSnapshot::GaugeValue inf_gauge;
  inf_gauge.name = "g.inf";
  inf_gauge.value = std::numeric_limits<double>::infinity();
  snap.gauges.push_back(inf_gauge);
  obs::MetricsSnapshot::GaugeValue nan_gauge;
  nan_gauge.name = "g.nan";
  nan_gauge.value = std::numeric_limits<double>::quiet_NaN();
  snap.gauges.push_back(nan_gauge);
  const std::string text = obs::RenderPrometheus(snap);
  EXPECT_TRUE(Contains(text, "g_inf +Inf\n"));
  EXPECT_TRUE(Contains(text, "g_nan NaN\n"));
}

TEST(ExpositionTest, CrossKindNameCollisionSkippedNotDuplicated) {
  obs::MetricsRegistry registry;
  registry.GetCounter("clash.name")->Add(1);
  registry.GetGauge("clash_name")->Set(2.0);  // Sanitizes identically.
  const std::string text = obs::RenderPrometheus(registry.Snapshot());
  EXPECT_EQ(CountOf(text, "# TYPE clash_name "), 1u);
  EXPECT_TRUE(Contains(text, "skipped family 'clash_name'"));
}

}  // namespace
}  // namespace farmer
