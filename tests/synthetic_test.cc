#include "dataset/synthetic.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "dataset/discretize.h"
#include "dataset/io.h"
#include "dataset/transpose.h"

namespace farmer {
namespace {

TEST(SyntheticTest, GeneratesRequestedShape) {
  SyntheticSpec spec;
  spec.num_rows = 50;
  spec.num_genes = 200;
  spec.num_class1 = 20;
  spec.seed = 42;
  ExpressionMatrix m = GenerateSynthetic(spec);
  EXPECT_EQ(m.num_rows(), 50u);
  EXPECT_EQ(m.num_genes(), 200u);
  EXPECT_EQ(m.CountLabel(1), 20u);
  EXPECT_EQ(m.CountLabel(0), 30u);
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.num_rows = 20;
  spec.num_genes = 30;
  spec.num_class1 = 10;
  spec.seed = 7;
  ExpressionMatrix a = GenerateSynthetic(spec);
  ExpressionMatrix b = GenerateSynthetic(spec);
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.label(r), b.label(r));
    for (std::size_t g = 0; g < a.num_genes(); ++g) {
      EXPECT_DOUBLE_EQ(a.at(r, g), b.at(r, g));
    }
  }
  spec.seed = 8;
  ExpressionMatrix c = GenerateSynthetic(spec);
  bool differs = false;
  for (std::size_t g = 0; g < a.num_genes() && !differs; ++g) {
    differs = a.at(0, g) != c.at(0, g);
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticTest, ClusterStructureIsClassCorrelated) {
  // After entropy discretization, a dataset with class-biased clusters
  // must keep a reasonable number of informative genes; pure noise
  // (p_informative = 0) must not.
  SyntheticSpec spec;
  spec.num_rows = 60;
  spec.num_genes = 300;
  spec.num_class1 = 30;
  spec.num_clusters = 4;
  spec.cluster_purity = 0.9;
  spec.seed = 5;
  ExpressionMatrix with_signal = GenerateSynthetic(spec);
  Discretization d1 = Discretization::FitEntropyMdl(with_signal);
  EXPECT_GT(d1.num_kept_genes(), 10u);

  SyntheticSpec noise = spec;
  noise.p_informative = 0.0;
  ExpressionMatrix pure_noise = GenerateSynthetic(noise);
  Discretization d2 = Discretization::FitEntropyMdl(pure_noise);
  EXPECT_LT(d2.num_kept_genes(), d1.num_kept_genes());
}

TEST(SyntheticTest, SameClusterRowsShareManyDiscretizedItems) {
  // The property the efficiency benches rely on: strong inter-sample
  // correlation, i.e. pairs of rows sharing many items after equal-depth
  // discretization (real microarray samples cluster by subtype).
  SyntheticSpec spec;
  spec.num_rows = 50;
  spec.num_genes = 400;
  spec.num_class1 = 25;
  spec.num_clusters = 5;
  spec.seed = 6;
  ExpressionMatrix m = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(m, 10).Apply(m);
  // Count the largest pairwise row intersection.
  std::size_t best = 0;
  for (RowId a = 0; a < ds.num_rows(); ++a) {
    for (RowId b = a + 1; b < ds.num_rows(); ++b) {
      ItemVector shared;
      std::set_intersection(ds.row(a).begin(), ds.row(a).end(),
                            ds.row(b).begin(), ds.row(b).end(),
                            std::back_inserter(shared));
      best = std::max(best, shared.size());
    }
  }
  // Independent rows would share ~40 items (400 genes / 10 buckets);
  // same-cluster rows must share several times that.
  EXPECT_GT(best, 120u);
}

TEST(SyntheticTest, PaperDatasetSpecsMatchTableOne) {
  struct Expect {
    const char* name;
    std::size_t rows, cols, class1;
  };
  const Expect expected[] = {{"BC", 97, 24481, 46},
                             {"LC", 181, 12533, 31},
                             {"CT", 62, 2000, 40},
                             {"PC", 136, 12600, 52},
                             {"ALL", 72, 7129, 47}};
  for (const Expect& e : expected) {
    SyntheticSpec spec = PaperDatasetSpec(e.name, 1.0);
    EXPECT_EQ(spec.num_rows, e.rows) << e.name;
    EXPECT_EQ(spec.num_genes, e.cols) << e.name;
    EXPECT_EQ(spec.num_class1, e.class1) << e.name;
  }
  // Column scaling shrinks genes but never the rows.
  SyntheticSpec scaled = PaperDatasetSpec("BC", 0.05);
  EXPECT_EQ(scaled.num_rows, 97u);
  EXPECT_EQ(scaled.num_genes, 1224u);
  EXPECT_THROW(PaperDatasetSpec("nope", 1.0), std::invalid_argument);
}

TEST(SyntheticTest, PaperSplitSizesMatchTableTwo) {
  EXPECT_EQ(PaperSplitSizes("BC").train, 78u);
  EXPECT_EQ(PaperSplitSizes("BC").test, 19u);
  EXPECT_EQ(PaperSplitSizes("LC").train, 32u);
  EXPECT_EQ(PaperSplitSizes("LC").test, 149u);
  EXPECT_EQ(PaperSplitSizes("ALL").train, 38u);
  EXPECT_EQ(PaperSplitSizes("ALL").test, 34u);
}

TEST(TransposeTest, BuildMatchesDataset) {
  SyntheticSpec spec;
  spec.num_rows = 25;
  spec.num_genes = 15;
  spec.num_class1 = 12;
  spec.seed = 9;
  ExpressionMatrix m = GenerateSynthetic(spec);
  BinaryDataset ds = Discretization::FitEqualDepth(m, 4).Apply(m);
  TransposedTable tt = TransposedTable::Build(ds);
  ASSERT_EQ(tt.num_items(), ds.num_items());
  EXPECT_EQ(tt.num_rows(), ds.num_rows());
  for (ItemId i = 0; i < tt.num_items(); ++i) {
    for (RowId r : tt.tuple(i)) {
      EXPECT_TRUE(ds.RowContains(r, i));
    }
  }
  std::size_t total = 0;
  for (ItemId i = 0; i < tt.num_items(); ++i) total += tt.tuple(i).size();
  std::size_t expected = 0;
  for (RowId r = 0; r < ds.num_rows(); ++r) expected += ds.row(r).size();
  EXPECT_EQ(total, expected);

  const std::vector<ItemId> by_len = tt.ItemsByTupleLength();
  for (std::size_t k = 1; k < by_len.size(); ++k) {
    EXPECT_LE(tt.tuple(by_len[k - 1]).size(), tt.tuple(by_len[k]).size());
  }
}

TEST(ExpressionCsvTest, RoundTrip) {
  SyntheticSpec spec;
  spec.num_rows = 10;
  spec.num_genes = 6;
  spec.num_class1 = 4;
  spec.seed = 11;
  ExpressionMatrix m = GenerateSynthetic(spec);
  const std::string path = ::testing::TempDir() + "/expr_roundtrip.csv";
  ASSERT_TRUE(SaveExpressionCsv(m, path).ok());
  ExpressionMatrix loaded;
  ASSERT_TRUE(LoadExpressionCsv(path, &loaded).ok());
  ASSERT_EQ(loaded.num_rows(), m.num_rows());
  ASSERT_EQ(loaded.num_genes(), m.num_genes());
  for (std::size_t r = 0; r < m.num_rows(); ++r) {
    EXPECT_EQ(loaded.label(r), m.label(r));
    for (std::size_t g = 0; g < m.num_genes(); ++g) {
      EXPECT_NEAR(loaded.at(r, g), m.at(r, g), 1e-6);
    }
  }
  std::remove(path.c_str());
}

TEST(ExpressionCsvTest, RejectsMalformedHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/expr_bad.csv";
  ExpressionMatrix out;
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("gene0,gene1\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadExpressionCsv(path, &out).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("class,g0\n1,2.5\n0,notanumber\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadExpressionCsv(path, &out).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("class,g0\n1,1.0,2.0\n", f);  // Too many fields.
    std::fclose(f);
  }
  EXPECT_FALSE(LoadExpressionCsv(path, &out).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace farmer
