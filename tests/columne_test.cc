#include "baselines/columne.h"

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/farmer.h"
#include "core/measures.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::MakeDataset;
using testing_util::RandomDataset;

// Rule-level brute-force oracle: enumerate every itemset, keep those
// passing the constraints, then keep rules whose confidence strictly
// exceeds every passing proper sub-rule's.
std::vector<ColumnERule> OracleInterestingRules(const BinaryDataset& ds,
                                                const ColumnEOptions& opts) {
  const std::size_t n = ds.num_rows();
  const std::size_t m = ds.CountLabel(opts.consequent);
  const std::size_t items = ds.num_items();
  std::vector<ColumnERule> passing;
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << items); ++mask) {
    ItemVector itemset;
    for (std::size_t i = 0; i < items; ++i) {
      if ((mask >> i) & 1) itemset.push_back(static_cast<ItemId>(i));
    }
    std::size_t y = 0, nn = 0;
    for (RowId r = 0; r < n; ++r) {
      const ItemVector& row = ds.row(r);
      if (std::includes(row.begin(), row.end(), itemset.begin(),
                        itemset.end())) {
        if (ds.label(r) == opts.consequent) {
          ++y;
        } else {
          ++nn;
        }
      }
    }
    if (y < std::max<std::size_t>(1, opts.min_support)) continue;
    const double conf = Confidence(y, y + nn);
    if (conf < opts.min_confidence) continue;
    const double chi = ChiSquare(y + nn, y, n, m);
    if (opts.min_chi_square > 0 && chi < opts.min_chi_square) continue;
    ColumnERule rule;
    rule.items = itemset;
    rule.support_pos = y;
    rule.support_neg = nn;
    rule.confidence = conf;
    rule.chi_square = chi;
    passing.push_back(std::move(rule));
  }
  std::vector<ColumnERule> interesting;
  for (const ColumnERule& rule : passing) {
    bool keep = true;
    for (const ColumnERule& sub : passing) {
      if (sub.items.size() < rule.items.size() &&
          sub.confidence >= rule.confidence &&
          std::includes(rule.items.begin(), rule.items.end(),
                        sub.items.begin(), sub.items.end())) {
        keep = false;
        break;
      }
    }
    if (keep) interesting.push_back(rule);
  }
  return interesting;
}

std::set<std::tuple<ItemVector, std::size_t, std::size_t>> Canon(
    const std::vector<ColumnERule>& rules) {
  std::set<std::tuple<ItemVector, std::size_t, std::size_t>> out;
  for (const ColumnERule& r : rules) {
    out.emplace(r.items, r.support_pos, r.support_neg);
  }
  return out;
}

TEST(ColumnETest, HandComputedExample) {
  // Rows: 0:{a,b} C, 1:{a} C, 2:{a,b} ¬C. Rules with minsup=1, minconf=0:
  // a: conf 2/3; b: conf 1/2; ab: conf 1/2. Interesting: a (its empty
  // proper subsets are not rules), b, ab? b's subsets: none. ab covered by
  // a (conf 2/3 >= 1/2) and b (1/2 >= 1/2) -> not interesting.
  BinaryDataset ds = MakeDataset({{{0, 1}, 1}, {{0}, 1}, {{0, 1}, 0}});
  ColumnEOptions opts;
  ColumnEResult r = MineColumnE(ds, opts);
  EXPECT_EQ(Canon(r.rules),
            Canon({ColumnERule{{0}, 2, 1, 0, 0},
                   ColumnERule{{1}, 1, 1, 0, 0}}));
}

TEST(ColumnETest, DeadlineAndOverflow) {
  BinaryDataset ds = RandomDataset(12, 24, 0.6, 5);
  ColumnEOptions opts;
  opts.deadline = Deadline::After(1e-9);
  EXPECT_TRUE(MineColumnE(ds, opts).timed_out);

  ColumnEOptions cap;
  cap.max_rules = 5;
  EXPECT_TRUE(MineColumnE(ds, cap).overflowed);
}

class ColumnESweepTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColumnESweepTest, MatchesRuleLevelOracle) {
  const std::uint64_t seed = GetParam();
  for (const auto& [minsup, minconf, minchi] :
       std::vector<std::tuple<std::size_t, double, double>>{
           {1, 0.0, 0.0}, {2, 0.0, 0.0}, {1, 0.6, 0.0}, {1, 0.0, 1.0},
           {2, 0.5, 0.5}}) {
    BinaryDataset ds = RandomDataset(9, 9, 0.45, seed);
    ColumnEOptions opts;
    opts.min_support = minsup;
    opts.min_confidence = minconf;
    opts.min_chi_square = minchi;
    ColumnEResult mined = MineColumnE(ds, opts);
    ASSERT_FALSE(mined.timed_out);
    EXPECT_EQ(Canon(mined.rules), Canon(OracleInterestingRules(ds, opts)))
        << "seed=" << seed << " minsup=" << minsup << " minconf=" << minconf
        << " minchi=" << minchi;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatasets, ColumnESweepTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(ColumnETest, EveryFarmerIrgHasAnInterestingRuleWithItsRowSet) {
  // Unconstrained cross-check against FARMER: every IRG's lower bounds are
  // interesting rules, so its row set must appear among ColumnE's rules.
  for (std::uint64_t seed : {2u, 4u, 6u}) {
    BinaryDataset ds = RandomDataset(9, 10, 0.5, seed);
    MinerOptions fopts;
    fopts.min_support = 1;
    FarmerResult farmer_result = MineFarmer(ds, fopts);

    ColumnEOptions copts;
    copts.min_support = 1;
    ColumnEResult columne = MineColumnE(ds, copts);
    std::set<std::vector<std::size_t>> columne_row_sets;
    for (const ColumnERule& rule : columne.rules) {
      columne_row_sets.insert(
          RowSupportSet(ds, rule.items).ToVector());
    }
    for (const RuleGroup& g : farmer_result.groups) {
      EXPECT_TRUE(columne_row_sets.count(g.rows.ToVector()))
          << "seed=" << seed << " missing group rows "
          << g.rows.ToString();
    }
  }
}

}  // namespace
}  // namespace farmer
