// Tests for the FARMER_CHECK contract library: handler hooking, streamed
// context, CHECK_OK formatting, and the NDEBUG behaviour of DCHECK.
#include "util/check.h"

#include <stdexcept>
#include <string>

#include "gtest/gtest.h"
#include "util/status.h"

namespace farmer {
namespace {

// CheckFailureHandler is a plain function pointer, so the captured message
// travels through a global. Each test clears it first.
std::string* g_last_message = nullptr;

struct CheckFired : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void ThrowingHandler(const char* file, int line, const std::string& message) {
  if (g_last_message != nullptr) {
    *g_last_message = std::string(file) + ":" + std::to_string(line) + ": " +
                      message;
  }
  throw CheckFired(message);
}

class CheckTest : public ::testing::Test {
 protected:
  CheckTest() : scoped_(&ThrowingHandler) { g_last_message = &last_message_; }
  ~CheckTest() override { g_last_message = nullptr; }

  std::string last_message_;
  ScopedCheckFailureHandler scoped_;
};

TEST_F(CheckTest, PassingCheckIsSilent) {
  FARMER_CHECK(1 + 1 == 2) << "never evaluated";
  EXPECT_TRUE(last_message_.empty());
}

TEST_F(CheckTest, FailingCheckReportsConditionText) {
  EXPECT_THROW(FARMER_CHECK(2 + 2 == 5), CheckFired);
  EXPECT_NE(last_message_.find("CHECK failed: 2 + 2 == 5"), std::string::npos)
      << last_message_;
  EXPECT_NE(last_message_.find("check_test.cc"), std::string::npos)
      << last_message_;
}

TEST_F(CheckTest, StreamedOperandsAppearInMessage) {
  const int rows = 17;
  EXPECT_THROW(FARMER_CHECK(rows < 10) << "rows=" << rows, CheckFired);
  EXPECT_NE(last_message_.find("rows=17"), std::string::npos) << last_message_;
}

TEST_F(CheckTest, StreamedOperandsNotEvaluatedOnSuccess) {
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "side effect";
  };
  FARMER_CHECK(true) << count();
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(FARMER_CHECK(false) << count(), CheckFired);
  EXPECT_EQ(evaluations, 1);
}

TEST_F(CheckTest, CheckOkPassesOnOkStatus) {
  FARMER_CHECK_OK(Status::Ok()) << "never evaluated";
  EXPECT_TRUE(last_message_.empty());
}

TEST_F(CheckTest, CheckOkIncludesStatusText) {
  EXPECT_THROW(
      FARMER_CHECK_OK(Status::InvalidArgument("bad gene count")) << "ctx",
      CheckFired);
  EXPECT_NE(last_message_.find("bad gene count"), std::string::npos)
      << last_message_;
  EXPECT_NE(last_message_.find("ctx"), std::string::npos) << last_message_;
}

TEST_F(CheckTest, DcheckMatchesBuildMode) {
#if defined(NDEBUG) && !defined(FARMER_FORCE_DCHECKS)
  // Release builds: the condition must not even be evaluated.
  int evaluations = 0;
  FARMER_DCHECK([&evaluations]() {
    ++evaluations;
    return false;
  }());
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_THROW(FARMER_DCHECK(false), CheckFired);
  EXPECT_NE(last_message_.find("CHECK failed"), std::string::npos);
#endif
}

TEST_F(CheckTest, SetHandlerReturnsPrevious) {
  // scoped_ installed ThrowingHandler; verify the chain restores.
  CheckFailureHandler prev = SetCheckFailureHandler(nullptr);
  EXPECT_EQ(prev, &ThrowingHandler);
  SetCheckFailureHandler(prev);
}

}  // namespace
}  // namespace farmer
