// Unit and stress tests for the work-stealing ThreadPool: nested
// submission (Submit from inside a task), steal accounting, reuse across
// Wait cycles, worker-id plumbing, cooperative cancellation, and the
// Shutdown() teardown contract. The recursive-spawn stress tests double
// as the TSan workload in CI.

#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/check.h"

namespace farmer {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter](std::size_t) { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleWorkerPoolStillRunsEverything) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter](std::size_t) { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&](std::size_t worker_id) {
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(worker_id);
    });
  }
  pool.Wait();
  ASSERT_FALSE(seen.empty());
  EXPECT_LT(*seen.rbegin(), pool.num_threads());
}

// The restriction this PR removes: Submit() from inside a running task
// must enqueue (on the submitting worker's own deque) and be executed
// before Wait() returns.
TEST(ThreadPoolTest, SubmitFromInsideATaskIsLegal) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&](std::size_t) {
    ++counter;
    pool.Submit([&](std::size_t) {
      ++counter;
      pool.Submit([&](std::size_t) { ++counter; });
    });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

// Recursive binary fan-out: every task spawns two children down to a
// fixed depth. Wait() must cover transitively submitted work, and the
// leaf count proves no task was lost or run twice.
TEST(ThreadPoolTest, RecursiveSpawnStress) {
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) {
      ++leaves;
      return;
    }
    pool.Submit([&spawn, depth](std::size_t) { spawn(depth - 1); });
    pool.Submit([&spawn, depth](std::size_t) { spawn(depth - 1); });
  };
  spawn(10);
  pool.Wait();
  EXPECT_EQ(leaves.load(), 1 << 10);
}

// A deliberately skewed workload: one long chain of tasks each spawning a
// burst of siblings. Idle workers can only make progress by stealing, so
// with more than one worker the steal counters must move.
TEST(ThreadPoolTest, SkewedWorkloadTriggersSteals) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::function<void(int)> chain = [&](int depth) {
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&done](std::size_t) {
        // Enough work that the chain's owner cannot drain its own deque
        // before the next burst arrives.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++done;
      });
    }
    if (depth > 0) {
      pool.Submit([&chain, depth](std::size_t) { chain(depth - 1); });
    }
  };
  pool.Submit([&chain](std::size_t) { chain(40); });
  pool.Wait();
  EXPECT_EQ(done.load(), 41 * 8);
  EXPECT_GT(pool.steal_count(), 0u);
  EXPECT_GE(pool.stolen_task_count(), pool.steal_count());
}

TEST(ThreadPoolTest, ReusableAcrossWaitCycles) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> counter{0};
    for (int i = 0; i < 30; ++i) {
      pool.Submit([&counter](std::size_t) { ++counter; });
    }
    pool.Wait();
    ASSERT_EQ(counter.load(), 30) << "round " << round;
    ASSERT_EQ(pool.ApproxPending(), 0u);
  }
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Nothing submitted.
  std::atomic<int> counter{0};
  pool.Submit([&counter](std::size_t) { ++counter; });
  pool.Wait();
  pool.Wait();  // Idempotent.
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter](std::size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++counter;
      });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 64);
}

// Cancellation is cooperative: tasks poll the flag and bail. All tasks
// still *run* (the pool does not drop work), but cancelled ones return
// immediately, so the pool drains quickly.
TEST(ThreadPoolTest, CancelFlagShortCircuitsTasks) {
  ThreadPool pool(4);
  CancelFlag cancel;
  std::atomic<int> started{0};
  std::atomic<int> completed{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&](std::size_t) {
      ++started;
      if (cancel.Cancelled()) return;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++completed;
      if (completed.load() >= 10) cancel.Cancel();
    });
  }
  pool.Wait();
  EXPECT_EQ(started.load(), 200);
  EXPECT_GE(completed.load(), 10);
  EXPECT_TRUE(cancel.Cancelled());
}

TEST(ThreadPoolTest, CancelFlagResets) {
  CancelFlag flag;
  EXPECT_FALSE(flag.Cancelled());
  flag.Cancel();
  EXPECT_TRUE(flag.Cancelled());
  flag.Reset();
  EXPECT_FALSE(flag.Cancelled());
}

// High-contention stress: many externally submitted roots, each spawning
// a small subtree from inside the pool, across repeated cycles. Run under
// TSan in CI to vet the deque locking and the sleep/wake transitions.
TEST(ThreadPoolTest, MixedInternalExternalStress) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&pool, &sum](std::size_t) {
        for (int j = 0; j < 4; ++j) {
          pool.Submit([&pool, &sum](std::size_t) {
            pool.Submit([&sum](std::size_t) { sum += 1; });
            sum += 1;
          });
        }
        sum += 1;
      });
    }
    pool.Wait();
    ASSERT_EQ(sum.load(), 50 * (1 + 4 * 2)) << "round " << round;
  }
}

TEST(ThreadPoolTest, QuiescentAfterWaitEveryRound) {
  // CheckQuiescent asserts the pool's internal accounting (in-flight and
  // pending counters, per-worker deques) returns to zero after Wait —
  // the invariant the miner relies on before merging parallel segments.
  ThreadPool pool(4);
  pool.CheckQuiescent();  // Idle pool is trivially quiescent.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&pool, &sum](std::size_t) {
        sum += 1;
        if (sum.load() % 8 == 0) {
          pool.Submit([&sum](std::size_t) { sum += 1; });
        }
      });
    }
    pool.Wait();
    pool.CheckQuiescent();
  }
}

TEST(ThreadPoolShutdownTest, DestructionWithQueuedTasksDrainsThem) {
  // Tear the pool down while tasks are still queued behind a slow one:
  // workers must finish everything before joining — destruction is a
  // drain, never a drop.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
    }
    // No Wait(): the destructor's Shutdown() owns the drain.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolShutdownTest, ShutdownIsIdempotent) {
  std::atomic<int> ran{0};
  ThreadPool pool(3);
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&ran](std::size_t) { ++ran; });
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 16);
  pool.Shutdown();  // Second explicit call: no-op.
  EXPECT_EQ(ran.load(), 16);
  // The destructor makes the third call.
}

TEST(ThreadPoolShutdownTest, SubmitAfterShutdownFiresContractCheck) {
  struct ContractViolation : std::runtime_error {
    using std::runtime_error::runtime_error;
  };
  ScopedCheckFailureHandler scoped(
      [](const char*, int, const std::string& message) {
        throw ContractViolation(message);
      });
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([](std::size_t) {}), ContractViolation);
}

}  // namespace
}  // namespace farmer
