#include "core/measures.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace farmer {
namespace {

TEST(MeasuresTest, ConfidenceBasics) {
  EXPECT_DOUBLE_EQ(Confidence(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(Confidence(3, 4), 0.75);
  EXPECT_DOUBLE_EQ(Confidence(4, 4), 1.0);
}

TEST(MeasuresTest, ChiSquareKnownTable) {
  // Contingency: a=30, b=10, c=20, d=40 -> n=100, m=50, x=40, y=30.
  // chi = n(ad-bc)^2 / (x m (n-x)(n-m))
  //     = 100*(30*40-10*20)^2 / (40*50*60*50) = 100*1e6/6e6.
  EXPECT_NEAR(ChiSquare(40, 30, 100, 50), 100.0 * 1000000.0 / 6000000.0,
              1e-9);
}

TEST(MeasuresTest, ChiSquareDegenerateMarginsAreZero) {
  EXPECT_DOUBLE_EQ(ChiSquare(0, 0, 10, 5), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquare(10, 5, 10, 5), 0.0);  // x == n.
  EXPECT_DOUBLE_EQ(ChiSquare(4, 0, 10, 0), 0.0);   // m == 0.
  EXPECT_DOUBLE_EQ(ChiSquare(4, 4, 10, 10), 0.0);  // m == n.
}

TEST(MeasuresTest, ChiSquareIndependenceIsZero) {
  // When the antecedent is independent of the class the statistic is 0:
  // x=40, y=20, n=100, m=50 -> y/x == m/n.
  EXPECT_NEAR(ChiSquare(40, 20, 100, 50), 0.0, 1e-12);
}

TEST(MeasuresTest, LiftAndConviction) {
  // conf=0.75, base=0.5 -> lift 1.5, conviction (1-0.5)/(1-0.75)=2.
  EXPECT_NEAR(Lift(4, 3, 100, 50), 1.5, 1e-12);
  EXPECT_NEAR(Conviction(4, 3, 100, 50), 2.0, 1e-12);
  EXPECT_TRUE(std::isinf(Conviction(4, 4, 100, 50)));
  EXPECT_DOUBLE_EQ(Lift(0, 0, 100, 50), 0.0);
}

TEST(MeasuresTest, EntropyGainOfPerfectSplit) {
  // x=m, y=m: the antecedent exactly identifies the class -> gain = H(m/n).
  const std::size_t n = 20, m = 8;
  const double p = static_cast<double>(m) / n;
  const double h = -p * std::log2(p) - (1 - p) * std::log2(1 - p);
  EXPECT_NEAR(EntropyGain(m, m, n, m), h, 1e-12);
  EXPECT_NEAR(EntropyGain(10, 4, 20, 8), 0.0, 1e-12);  // Independent.
}

// Property: the subtree upper bounds dominate the measure at every
// feasible descendant point of the parallelogram.
TEST(MeasuresTest, UpperBoundsDominateFeasibleRegion) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 4 + rng.NextBelow(40);
    const std::size_t m = 1 + rng.NextBelow(n - 1);
    const std::size_t y = rng.NextBelow(m + 1);
    const std::size_t x = y + rng.NextBelow(n - m + 1);  // x-y <= n-m.
    if (x == 0) continue;
    const double chi_ub = ChiSquareUpperBound(x, y, n, m);
    const double eg_ub = EntropyGainUpperBound(x, y, n, m);
    // Descendants: y' in [y, m], x'-y' in [x-y, n-m], y' <= x'.
    for (std::size_t y2 = y; y2 <= m; ++y2) {
      for (std::size_t neg = x - y; neg <= n - m; ++neg) {
        const std::size_t x2 = y2 + neg;
        EXPECT_LE(ChiSquare(x2, y2, n, m), chi_ub + 1e-9)
            << "x=" << x << " y=" << y << " x2=" << x2 << " y2=" << y2
            << " n=" << n << " m=" << m;
        EXPECT_LE(EntropyGain(x2, y2, n, m), eg_ub + 1e-9);
      }
    }
  }
}

TEST(MeasuresTest, GiniGainValues) {
  // Perfect split: gain equals the base impurity 2p(1-p).
  const std::size_t n = 20, m = 8;
  const double p = static_cast<double>(m) / n;
  EXPECT_NEAR(GiniGain(m, m, n, m), 2 * p * (1 - p), 1e-12);
  EXPECT_NEAR(GiniGain(10, 4, 20, 8), 0.0, 1e-12);  // Independent.
  EXPECT_DOUBLE_EQ(GiniGain(0, 0, 20, 8), 0.0);
}

TEST(MeasuresTest, PhiCoefficientValues) {
  // Perfect positive association: phi = 1.
  EXPECT_NEAR(PhiCoefficient(8, 8, 20, 8), 1.0, 1e-12);
  // Independence: phi = 0.
  EXPECT_NEAR(PhiCoefficient(10, 4, 20, 8), 0.0, 1e-12);
  // Perfect negative association (A covers exactly the non-C rows).
  EXPECT_NEAR(PhiCoefficient(12, 0, 20, 8), -1.0, 1e-12);
  // phi^2 * n == chi-square.
  EXPECT_NEAR(PhiCoefficient(40, 30, 100, 50) *
                  PhiCoefficient(40, 30, 100, 50) * 100,
              ChiSquare(40, 30, 100, 50), 1e-9);
}

TEST(MeasuresTest, GiniAndPhiBoundsDominateFeasibleRegion) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 4 + rng.NextBelow(30);
    const std::size_t m = 1 + rng.NextBelow(n - 1);
    const std::size_t y = rng.NextBelow(m + 1);
    const std::size_t x = y + rng.NextBelow(n - m + 1);
    if (x == 0) continue;
    const double gini_ub = GiniGainUpperBound(x, y, n, m);
    const double phi_ub = PhiUpperBound(x, y, n, m);
    for (std::size_t y2 = y; y2 <= m; ++y2) {
      for (std::size_t neg = x - y; neg <= n - m; ++neg) {
        const std::size_t x2 = y2 + neg;
        EXPECT_LE(GiniGain(x2, y2, n, m), gini_ub + 1e-9);
        EXPECT_LE(PhiCoefficient(x2, y2, n, m), phi_ub + 1e-9);
      }
    }
  }
}

TEST(MeasuresTest, ConfidenceDerivedBounds) {
  EXPECT_NEAR(LiftUpperBound(0.8, 100, 40), 2.0, 1e-12);
  EXPECT_TRUE(std::isinf(ConvictionUpperBound(1.0, 100, 40)));
  EXPECT_NEAR(ConvictionUpperBound(0.5, 100, 40), 0.6 / 0.5, 1e-12);
}

}  // namespace
}  // namespace farmer
