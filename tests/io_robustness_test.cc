// Robustness regression tests for the dataset parsers: every hostile input
// class found by (or seeded into) the fuzz harnesses must come back as a
// clean InvalidArgument/IoError Status — never a crash, never an
// allocation proportional to a hostile directive. The final tests sweep
// the checked-in fuzz corpora so fuzzer discoveries stay fixed.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "dataset/dataset.h"
#include "dataset/discretize.h"
#include "dataset/expression_matrix.h"
#include "dataset/io.h"
#include "gtest/gtest.h"
#include "serve/index.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace farmer {
namespace {

Status ParseCsv(const std::string& text) {
  std::istringstream in(text);
  ExpressionMatrix matrix;
  return LoadExpressionCsv(in, "test", &matrix);
}

Status ParseTransactions(const std::string& text) {
  std::istringstream in(text);
  BinaryDataset dataset;
  return LoadTransactions(in, "test", &dataset);
}

TEST(CsvRobustnessTest, EmptyInput) {
  EXPECT_TRUE(ParseCsv("").IsInvalidArgument());
}

TEST(CsvRobustnessTest, TruncatedHeader) {
  EXPECT_TRUE(ParseCsv("cla").IsInvalidArgument());
  EXPECT_TRUE(ParseCsv("gene,g1\n0,1\n").IsInvalidArgument());
}

TEST(CsvRobustnessTest, HeaderOnlyIsValidEmptyMatrix) {
  std::istringstream in("class,g1,g2\n");
  ExpressionMatrix matrix;
  ASSERT_TRUE(LoadExpressionCsv(in, "test", &matrix).ok());
  EXPECT_EQ(matrix.num_rows(), 0u);
  EXPECT_EQ(matrix.num_genes(), 2u);
}

TEST(CsvRobustnessTest, NonNumericCell) {
  Status s = ParseCsv("class,g1\n0,abc\n");
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("bad value"), std::string::npos)
      << s.ToString();
}

TEST(CsvRobustnessTest, RaggedRow) {
  EXPECT_TRUE(ParseCsv("class,g1,g2\n0,1.5\n").IsInvalidArgument());
  EXPECT_TRUE(ParseCsv("class,g1\n0,1.5,2.5\n").IsInvalidArgument());
}

TEST(CsvRobustnessTest, LabelOutOfRange) {
  EXPECT_TRUE(ParseCsv("class,g1\n256,1.0\n").IsInvalidArgument());
  EXPECT_TRUE(ParseCsv("class,g1\n-1,1.0\n").IsInvalidArgument());
}

TEST(CsvRobustnessTest, ErrorMessagesUseStreamName) {
  Status s = ParseCsv("class,g1\n0,abc\n");
  EXPECT_NE(s.ToString().find("test:"), std::string::npos) << s.ToString();
}

TEST(TransactionRobustnessTest, MissingColon) {
  EXPECT_TRUE(ParseTransactions("1 2 3\n").IsInvalidArgument());
}

TEST(TransactionRobustnessTest, DuplicateItems) {
  Status s = ParseTransactions("1: 1 1 2\n");
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("duplicate item"), std::string::npos)
      << s.ToString();
}

TEST(TransactionRobustnessTest, OversizedItemsDirective) {
  // A 30-byte file must not be able to demand a multi-gigabyte universe.
  Status s = ParseTransactions("#items 99999999999999\n1: 0\n");
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("cap"), std::string::npos) << s.ToString();
}

TEST(TransactionRobustnessTest, OversizedItemId) {
  Status s = ParseTransactions("1: 4294967295\n");
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("cap"), std::string::npos) << s.ToString();
}

TEST(TransactionRobustnessTest, ItemsAtTheCapBoundary) {
  const std::string max_ok = std::to_string(kMaxTransactionItems);
  EXPECT_TRUE(ParseTransactions("#items " + max_ok + "\n").ok());
  EXPECT_TRUE(
      ParseTransactions("#items " + max_ok + "1\n").IsInvalidArgument());
}

TEST(TransactionRobustnessTest, BadLabelAndDirective) {
  EXPECT_TRUE(ParseTransactions("x: 1\n").IsInvalidArgument());
  EXPECT_TRUE(ParseTransactions("999: 1\n").IsInvalidArgument());
  EXPECT_TRUE(ParseTransactions("#items x\n").IsInvalidArgument());
}

TEST(TransactionRobustnessTest, MissingFileIsIoError) {
  BinaryDataset dataset;
  EXPECT_TRUE(
      LoadTransactions("/nonexistent/farmer.txt", &dataset).IsIoError());
}

// Sweeps a checked-in fuzz corpus directory: every file must parse to
// either Ok or a clean error Status. Crashes/aborts fail the whole test
// binary, which is the point.
class CorpusSweep {
 public:
  template <typename Parser>
  static void Run(const std::string& corpus, Parser parse) {
    const std::filesystem::path dir =
        std::filesystem::path(FARMER_FUZZ_CORPUS_DIR) / corpus;
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      ++files;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      parse(buf.str());  // Must return, not crash.
    }
    EXPECT_GE(files, 4u) << "corpus " << dir << " looks empty";
  }
};

TEST(CorpusSweepTest, ExpressionCsvCorpusNeverCrashes) {
  CorpusSweep::Run("fuzz_load_expression_csv",
                   [](const std::string& text) { (void)ParseCsv(text); });
}

TEST(CorpusSweepTest, TransactionCorpusNeverCrashes) {
  CorpusSweep::Run("fuzz_load_transactions", [](const std::string& text) {
    (void)ParseTransactions(text);
  });
}

TEST(CorpusSweepTest, SnapshotCorpusNeverCrashes) {
  // Mirrors fuzz_snapshot's contract: hostile bytes come back as
  // InvalidArgument; accepted buffers re-serialize byte-identically and
  // survive index queries.
  CorpusSweep::Run("fuzz_snapshot", [](const std::string& text) {
    serve::RuleGroupSnapshot snapshot;
    const Status s =
        serve::LoadSnapshotFromBuffer(text, "corpus", &snapshot);
    if (!s.ok()) {
      EXPECT_TRUE(s.IsInvalidArgument());
      return;
    }
    EXPECT_EQ(serve::SerializeSnapshot(snapshot), text);
    serve::RuleGroupIndex index(std::move(snapshot));
    (void)index.TopKByConfidence(3);
    (void)index.Filter(1, 0.5, 8);
    (void)index.RowCover({1, 3, 5}, 8);
  });
}

TEST(CorpusSweepTest, DiscretizerCorporaNeverCrash) {
  // Mirrors the fuzz harness contract: parsed matrices must discretize
  // and the result must validate.
  CorpusSweep::Run("fuzz_discretize_mdl", [](const std::string& text) {
    std::istringstream in(text);
    ExpressionMatrix matrix;
    if (!LoadExpressionCsv(in, "corpus", &matrix).ok()) return;
    Discretization disc = Discretization::FitEntropyMdl(matrix);
    EXPECT_TRUE(disc.Apply(matrix).Validate().ok());
  });
  CorpusSweep::Run("fuzz_discretize_equal_depth",
                   [](const std::string& text) {
                     if (text.empty()) return;
                     const int buckets =
                         1 + static_cast<unsigned char>(text[0]) % 32;
                     std::istringstream in(text.substr(1));
                     ExpressionMatrix matrix;
                     if (!LoadExpressionCsv(in, "corpus", &matrix).ok()) {
                       return;
                     }
                     Discretization disc =
                         Discretization::FitEqualDepth(matrix, buckets);
                     EXPECT_TRUE(disc.Apply(matrix).Validate().ok());
                   });
}

}  // namespace
}  // namespace farmer
