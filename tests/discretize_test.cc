#include "dataset/discretize.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "util/rng.h"

namespace farmer {
namespace {

ExpressionMatrix TinyMatrix() {
  // 6 samples × 2 genes. Gene 0 perfectly separates the classes at 0;
  // gene 1 is pure noise.
  ExpressionMatrix m(6, 2);
  const double g0[] = {-3, -2, -1, 1, 2, 3};
  const double g1[] = {0.3, -0.1, 0.25, -0.2, 0.15, 0.05};
  for (std::size_t r = 0; r < 6; ++r) {
    m.at(r, 0) = g0[r];
    m.at(r, 1) = g1[r];
    m.set_label(r, r < 3 ? 0 : 1);
  }
  return m;
}

TEST(EqualDepthTest, ProducesRequestedBuckets) {
  ExpressionMatrix m = TinyMatrix();
  Discretization d = Discretization::FitEqualDepth(m, 3);
  // Gene 0: 6 distinct values, 3 buckets -> 2 cuts.
  EXPECT_EQ(d.cuts(0).size(), 2u);
  EXPECT_EQ(d.cuts(1).size(), 2u);
  EXPECT_EQ(d.num_items(), 6u);
  BinaryDataset ds = d.Apply(m);
  EXPECT_EQ(ds.num_rows(), 6u);
  // Every row gets exactly one item per gene.
  for (RowId r = 0; r < 6; ++r) {
    EXPECT_EQ(ds.row(r).size(), 2u);
  }
  // Bucket occupancy of gene 0 is balanced: 2 rows per bucket.
  std::vector<int> occupancy(3, 0);
  for (RowId r = 0; r < 6; ++r) {
    ++occupancy[ds.row(r)[0]];
  }
  EXPECT_EQ(occupancy, (std::vector<int>{2, 2, 2}));
}

TEST(EqualDepthTest, ConstantGeneCollapsesToOneBucket) {
  ExpressionMatrix m(4, 1);
  for (std::size_t r = 0; r < 4; ++r) m.at(r, 0) = 5.0;
  Discretization d = Discretization::FitEqualDepth(m, 10);
  EXPECT_TRUE(d.cuts(0).empty());
  EXPECT_EQ(d.num_items(), 1u);  // Equal-depth keeps single-bin genes.
  BinaryDataset ds = d.Apply(m);
  for (RowId r = 0; r < 4; ++r) {
    EXPECT_EQ(ds.row(r), (ItemVector{0}));
  }
}

TEST(EntropyMdlTest, FindsTheSeparatingCutAndDropsNoise) {
  ExpressionMatrix m = TinyMatrix();
  Discretization d = Discretization::FitEntropyMdl(m);
  // Gene 0 separates perfectly: exactly one cut near 0.
  ASSERT_EQ(d.cuts(0).size(), 1u);
  EXPECT_NEAR(d.cuts(0)[0], 0.0, 1.01);
  // Gene 1 carries no class signal: dropped entirely.
  EXPECT_TRUE(d.cuts(1).empty());
  EXPECT_EQ(d.num_kept_genes(), 1u);
  EXPECT_EQ(d.num_items(), 2u);

  BinaryDataset ds = d.Apply(m);
  // The two items now predict the class exactly.
  for (RowId r = 0; r < 6; ++r) {
    ASSERT_EQ(ds.row(r).size(), 1u);
    EXPECT_EQ(ds.row(r)[0], m.label(r) == 0 ? 0u : 1u);
  }
}

TEST(EntropyMdlTest, PureClassYieldsNoCuts) {
  ExpressionMatrix m(5, 1);
  for (std::size_t r = 0; r < 5; ++r) {
    m.at(r, 0) = static_cast<double>(r);
    m.set_label(r, 1);
  }
  Discretization d = Discretization::FitEntropyMdl(m);
  EXPECT_TRUE(d.cuts(0).empty());
  EXPECT_EQ(d.num_items(), 0u);
}

TEST(DiscretizeTest, ItemForMatchesApply) {
  SyntheticSpec spec;
  spec.num_rows = 30;
  spec.num_genes = 12;
  spec.num_class1 = 15;
  spec.seed = 3;
  ExpressionMatrix m = GenerateSynthetic(spec);
  Discretization d = Discretization::FitEqualDepth(m, 4);
  BinaryDataset ds = d.Apply(m);
  for (std::size_t r = 0; r < m.num_rows(); ++r) {
    ItemVector expected;
    for (std::size_t g = 0; g < m.num_genes(); ++g) {
      const ItemId item = d.ItemFor(g, m.at(r, g));
      ASSERT_NE(item, Discretization::kNoItem);
      expected.push_back(item);
    }
    EXPECT_EQ(ds.row(static_cast<RowId>(r)), expected);
  }
}

TEST(DiscretizeTest, ItemNamesDescribeIntervals) {
  ExpressionMatrix m = TinyMatrix();
  Discretization d = Discretization::FitEntropyMdl(m);
  const std::vector<std::string> names = d.MakeItemNames(m);
  ASSERT_EQ(names.size(), d.num_items());
  EXPECT_NE(names[0].find("g0"), std::string::npos);
  EXPECT_NE(names[0].find("(-inf,"), std::string::npos);
  EXPECT_NE(names[1].find("+inf)"), std::string::npos);
}

TEST(DiscretizeTest, ClassEntropyValues) {
  EXPECT_DOUBLE_EQ(ClassEntropy({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ClassEntropy({4, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ClassEntropy({2, 2}), 1.0);
  EXPECT_NEAR(ClassEntropy({1, 1, 1, 1}), 2.0, 1e-12);
}

TEST(DiscretizeTest, SaveLoadRoundTrip) {
  ExpressionMatrix m = TinyMatrix();
  for (const bool entropy : {false, true}) {
    Discretization d = entropy ? Discretization::FitEntropyMdl(m)
                               : Discretization::FitEqualDepth(m, 3);
    const std::string path = ::testing::TempDir() + "/cuts_roundtrip.txt";
    ASSERT_TRUE(d.Save(path).ok());
    Discretization loaded;
    ASSERT_TRUE(Discretization::Load(path, &loaded).ok());
    EXPECT_EQ(loaded.num_items(), d.num_items());
    EXPECT_EQ(loaded.num_kept_genes(), d.num_kept_genes());
    for (std::size_t g = 0; g < m.num_genes(); ++g) {
      ASSERT_EQ(loaded.cuts(g).size(), d.cuts(g).size());
      for (std::size_t c = 0; c < d.cuts(g).size(); ++c) {
        EXPECT_DOUBLE_EQ(loaded.cuts(g)[c], d.cuts(g)[c]);
      }
    }
    // Applying the loaded discretization yields identical itemsets.
    BinaryDataset a = d.Apply(m);
    BinaryDataset b = loaded.Apply(m);
    for (RowId r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.row(r), b.row(r));
    }
    std::remove(path.c_str());
  }
}

TEST(DiscretizeTest, LoadRejectsMalformedCuts) {
  const std::string path = ::testing::TempDir() + "/cuts_bad.txt";
  Discretization out;
  const char* cases[] = {
      "wrong-header v1 2\n",
      "farmer-cuts v9 2\n",
      "farmer-cuts v1 2\ngene 5 kept 1.0\n",          // Gene out of range.
      "farmer-cuts v1 2\ngene 0 maybe 1.0\n",         // Bad keep word.
      "farmer-cuts v1 2\ngene 0 kept 2.0 1.0\n",      // Not ascending.
  };
  for (const char* contents : cases) {
    {
      std::ofstream os(path);
      os << contents;
    }
    EXPECT_FALSE(Discretization::Load(path, &out).ok())
        << "accepted:\n" << contents;
  }
  std::remove(path.c_str());
}

TEST(DiscretizeTest, TrainFittedAppliedToTestKeepsItemUniverse) {
  SyntheticSpec spec;
  spec.num_rows = 40;
  spec.num_genes = 10;
  spec.num_class1 = 20;
  spec.seed = 8;
  ExpressionMatrix m = GenerateSynthetic(spec);
  std::vector<std::size_t> train_rows, test_rows;
  for (std::size_t r = 0; r < 30; ++r) train_rows.push_back(r);
  for (std::size_t r = 30; r < 40; ++r) test_rows.push_back(r);
  ExpressionMatrix train = m.SelectRows(train_rows);
  ExpressionMatrix test = m.SelectRows(test_rows);
  Discretization d = Discretization::FitEqualDepth(train, 5);
  BinaryDataset train_ds = d.Apply(train);
  BinaryDataset test_ds = d.Apply(test);
  EXPECT_EQ(train_ds.num_items(), test_ds.num_items());
  EXPECT_TRUE(test_ds.Validate().ok());
}

}  // namespace
}  // namespace farmer
