#include "util/simd/simd.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/farmer.h"
#include "tests/test_util.h"
#include "util/bitset.h"
#include "util/bitset_ref.h"
#include "util/rng.h"

namespace farmer {
namespace {

// Every test that forces a level restores the prior selection, so test
// order never leaks through the process-global dispatcher state.
class SimdDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override { prior_ = simd::ActiveLevel(); }
  void TearDown() override { ASSERT_TRUE(simd::ForceLevel(prior_)); }

  static std::vector<simd::Level> SupportedLevels() {
    std::vector<simd::Level> levels;
    for (int l = 0; l < simd::kNumLevels; ++l) {
      const auto level = static_cast<simd::Level>(l);
      if (simd::LevelSupported(level)) levels.push_back(level);
    }
    return levels;
  }

 private:
  simd::Level prior_;
};

TEST_F(SimdDispatchTest, LevelNamesRoundTrip) {
  for (int l = 0; l < simd::kNumLevels; ++l) {
    const auto level = static_cast<simd::Level>(l);
    simd::Level parsed;
    ASSERT_TRUE(simd::ParseLevel(simd::LevelName(level), &parsed))
        << simd::LevelName(level);
    EXPECT_EQ(parsed, level);
  }
  simd::Level parsed;
  EXPECT_FALSE(simd::ParseLevel("auto", &parsed));
  EXPECT_FALSE(simd::ParseLevel("", &parsed));
  EXPECT_FALSE(simd::ParseLevel("avx1024", &parsed));
  EXPECT_FALSE(simd::Configure("avx1024"));
}

TEST_F(SimdDispatchTest, ScalarAlwaysUsableAndBestLevelIsWidest) {
  EXPECT_TRUE(simd::LevelCompiled(simd::Level::kScalar));
  EXPECT_TRUE(simd::LevelSupported(simd::Level::kScalar));
  const simd::Level best = simd::DetectBestLevel();
  EXPECT_TRUE(simd::LevelSupported(best));
  for (int l = 0; l < simd::kNumLevels; ++l) {
    const auto level = static_cast<simd::Level>(l);
    if (static_cast<int>(level) > static_cast<int>(best)) {
      EXPECT_FALSE(simd::LevelSupported(level)) << simd::LevelName(level);
    }
  }
}

TEST_F(SimdDispatchTest, ForcingEveryUsableLevelSticks) {
  for (simd::Level level : SupportedLevels()) {
    ASSERT_TRUE(simd::ForceLevel(level)) << simd::LevelName(level);
    EXPECT_EQ(simd::ActiveLevel(), level);
    EXPECT_STREQ(simd::Active().name, simd::LevelName(level));
  }
}

TEST_F(SimdDispatchTest, ConfigureAutoRestoresDetectedBest) {
  ASSERT_TRUE(simd::Configure("scalar"));
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  ASSERT_TRUE(simd::Configure("auto"));
  EXPECT_EQ(simd::ActiveLevel(), simd::DetectBestLevel());
}

TEST_F(SimdDispatchTest, WordStorageIs64ByteAligned) {
  for (std::size_t bits : {1u, 64u, 65u, 511u, 513u, 8192u, 100000u}) {
    Bitset b(bits);
    ASSERT_FALSE(b.words().empty());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.words().data()) % 64, 0u)
        << bits << " bits";
  }
}

// Random pair of sets plus a prefix limit; sizes chosen to hit word
// tails, partial vector steps, and the one-word case.
struct KernelCase {
  Bitset a, b, c;
  std::size_t pos_limit;
};

KernelCase MakeCase(std::size_t bits, double density, std::uint64_t seed) {
  Rng rng(seed);
  KernelCase kc{Bitset(bits), Bitset(bits), Bitset(bits),
                rng.NextBelow(bits + 7)};
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(density)) kc.a.Set(i);
    if (rng.NextBool(density)) kc.b.Set(i);
    if (rng.NextBool(density)) kc.c.Set(i);
  }
  return kc;
}

TEST_F(SimdDispatchTest, KernelsMatchReferenceAtEveryLevel) {
  std::vector<KernelCase> cases;
  std::uint64_t seed = 1;
  for (std::size_t bits : {1u, 63u, 64u, 65u, 200u, 511u, 512u, 513u,
                           1000u, 1500u}) {
    for (double density : {0.0, 0.05, 0.5, 1.0}) {
      cases.push_back(MakeCase(bits, density, seed++));
    }
  }
  for (simd::Level level : SupportedLevels()) {
    ASSERT_TRUE(simd::ForceLevel(level));
    SCOPED_TRACE(simd::LevelName(level));
    for (const KernelCase& kc : cases) {
      SCOPED_TRACE(kc.a.size());
      const Bitset& a = kc.a;
      const Bitset& b = kc.b;
      EXPECT_EQ(a.Count(), ref::AndCount(a, a));
      EXPECT_EQ(a.CountPrefix(kc.pos_limit),
                ref::CountPrefix(a, kc.pos_limit));
      EXPECT_EQ(a.AndCount(b), ref::AndCount(a, b));
      EXPECT_EQ(a.AndCountPrefix(b, kc.pos_limit),
                ref::AndCountPrefix(a, b, kc.pos_limit));
      EXPECT_EQ(a.None(), ref::AndCount(a, a) == 0);
      EXPECT_EQ(a.Intersects(b), ref::AndCount(a, b) > 0);
      EXPECT_EQ(a.IsSubsetOf(b), ref::AndCount(a, b) == ref::AndCount(a, a));
      const Bitset* sets[2] = {&b, &kc.c};
      Bitset scratch(a.size());
      EXPECT_EQ(a.IntersectsAllOf(sets, 2, &scratch),
                ref::IntersectsAllOf(a, sets, 2));
      Bitset out;
      Bitset::AndInto(a, b, &out);
      EXPECT_EQ(out, ref::AndInto(a, b));
      Bitset::AndNotInto(a, b, &out);
      EXPECT_EQ(out, ref::AndNotInto(a, b));
      Bitset acc = kc.c;
      acc.OrAnd(a, b);
      EXPECT_EQ(acc, ref::OrAnd(kc.c, a, b));
      EXPECT_EQ(a & b, ref::AndInto(a, b));
      EXPECT_EQ(a | b, ref::OrAnd(a, b, b));
      EXPECT_EQ(a - b, ref::AndNotInto(a, b));
    }
  }
}

void ExpectSameGroups(const FarmerResult& got, const FarmerResult& want) {
  ASSERT_EQ(got.groups.size(), want.groups.size());
  for (std::size_t i = 0; i < got.groups.size(); ++i) {
    const RuleGroup& g = got.groups[i];
    const RuleGroup& w = want.groups[i];
    EXPECT_EQ(g.antecedent, w.antecedent) << "group " << i;
    EXPECT_EQ(g.rows, w.rows) << "group " << i;
    EXPECT_EQ(g.support_pos, w.support_pos) << "group " << i;
    EXPECT_EQ(g.support_neg, w.support_neg) << "group " << i;
    EXPECT_EQ(g.confidence, w.confidence) << "group " << i;
    EXPECT_EQ(g.chi_square, w.chi_square) << "group " << i;
    EXPECT_EQ(g.lower_bounds, w.lower_bounds) << "group " << i;
  }
}

TEST_F(SimdDispatchTest, MinerIsBitIdenticalAcrossLevels) {
  const BinaryDataset ds = testing_util::RandomDataset(60, 80, 0.25, 99);
  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 4;
  opts.min_confidence = 0.7;

  opts.simd_level = "scalar";
  const FarmerResult baseline = MineFarmer(ds, opts);
  EXPECT_EQ(baseline.stats.simd_level, "scalar");
  EXPECT_FALSE(baseline.groups.empty());

  for (simd::Level level : SupportedLevels()) {
    opts.simd_level = simd::LevelName(level);
    const FarmerResult got = MineFarmer(ds, opts);
    SCOPED_TRACE(opts.simd_level);
    EXPECT_EQ(got.stats.simd_level, opts.simd_level);
    ExpectSameGroups(got, baseline);
  }
}

// verify_invariants cross-checks every hot-path kernel call against the
// ref:: oracle during a real mining run — at the widest level this
// exercises the vector kernels under genuine miner traffic.
TEST_F(SimdDispatchTest, VerifyInvariantsPassesAtWidestLevel) {
  const BinaryDataset ds = testing_util::RandomDataset(40, 50, 0.3, 7);
  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 3;
  opts.min_confidence = 0.6;
  opts.verify_invariants = true;
  opts.simd_level = simd::LevelName(simd::DetectBestLevel());
  const FarmerResult result = MineFarmer(ds, opts);
  EXPECT_EQ(result.stats.simd_level, opts.simd_level);
}

TEST_F(SimdDispatchTest, StatsJsonNamesTheActiveLevel) {
  MinerStats stats;
  stats.simd_level = "avx2";
  EXPECT_NE(stats.ToJson().find("\"simd_level\": \"avx2\""),
            std::string::npos);
  MinerStats unset;
  const std::string json = unset.ToJson();
  EXPECT_NE(json.find(std::string("\"simd_level\": \"") +
                      simd::LevelName(simd::ActiveLevel()) + "\""),
            std::string::npos);
}

}  // namespace
}  // namespace farmer
