#include "serve/index.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/farmer.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace farmer {
namespace serve {
namespace {

using testing_util::RandomDataset;

struct Fixture {
  BinaryDataset dataset;
  RuleGroupIndex index;
};

Fixture MakeFixture(std::uint64_t seed) {
  BinaryDataset ds = RandomDataset(16, 18, 0.45, seed);
  MinerOptions opts;
  opts.min_support = 2;
  FarmerResult mined = MineFarmer(ds, opts);
  RuleGroupSnapshot snapshot;
  snapshot.groups = std::move(mined.groups);
  snapshot.num_rows = ds.num_rows();
  snapshot.params = SnapshotParams::FromMinerOptions(opts);
  snapshot.fingerprint = SnapshotFingerprint::FromDataset(ds);
  return Fixture{std::move(ds), RuleGroupIndex(std::move(snapshot))};
}

// The index's canonical answer order: descending (confidence,
// support_pos), ties by ascending group index (stable sort over 0..n-1).
std::vector<std::uint32_t> SortByConfidence(
    std::vector<std::uint32_t> ids, const std::vector<RuleGroup>& groups) {
  std::stable_sort(ids.begin(), ids.end(),
                   [&groups](std::uint32_t a, std::uint32_t b) {
                     if (groups[a].confidence != groups[b].confidence) {
                       return groups[a].confidence > groups[b].confidence;
                     }
                     if (groups[a].support_pos != groups[b].support_pos) {
                       return groups[a].support_pos > groups[b].support_pos;
                     }
                     return a < b;
                   });
  return ids;
}

std::vector<std::uint32_t> AllIds(const RuleGroupIndex& index) {
  std::vector<std::uint32_t> ids(index.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::uint32_t>(i);
  }
  return ids;
}

bool Contains(const ItemVector& super, const ItemVector& sub) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

// The classifier's match rule: any lower bound covers the sample, or the
// antecedent does when the group has no lower bounds.
bool Matches(const RuleGroup& g, const ItemVector& row) {
  if (g.lower_bounds.empty()) return Contains(row, g.antecedent);
  for (const ItemVector& lb : g.lower_bounds) {
    if (Contains(row, lb)) return true;
  }
  return false;
}

TEST(RuleGroupIndexTest, TopKMatchesBruteForce) {
  const Fixture f = MakeFixture(3);
  const auto& groups = f.index.snapshot().groups;
  ASSERT_GT(f.index.size(), 5u);

  const auto expected = SortByConfidence(AllIds(f.index), groups);
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        f.index.size(), f.index.size() + 10}) {
    const auto got = f.index.TopKByConfidence(k);
    const std::size_t want = std::min(k, f.index.size());
    ASSERT_EQ(got.size(), want) << "k=" << k;
    for (std::size_t i = 0; i < want; ++i) {
      EXPECT_EQ(got[i], expected[i]) << "k=" << k << " i=" << i;
    }
  }

  auto by_chi = AllIds(f.index);
  std::stable_sort(by_chi.begin(), by_chi.end(),
                   [&groups](std::uint32_t a, std::uint32_t b) {
                     if (groups[a].chi_square != groups[b].chi_square) {
                       return groups[a].chi_square > groups[b].chi_square;
                     }
                     return groups[a].support_pos > groups[b].support_pos;
                   });
  const auto got_chi = f.index.TopKByChiSquare(4);
  ASSERT_EQ(got_chi.size(), 4u);
  for (std::size_t i = 0; i < got_chi.size(); ++i) {
    EXPECT_EQ(groups[got_chi[i]].chi_square, groups[by_chi[i]].chi_square);
  }
}

TEST(RuleGroupIndexTest, AntecedentContainsMatchesBruteForce) {
  const Fixture f = MakeFixture(8);
  const auto& groups = f.index.snapshot().groups;
  Rng rng(17);
  const auto num_items =
      static_cast<ItemId>(f.index.snapshot().fingerprint.num_items);
  for (int probe = 0; probe < 50; ++probe) {
    ItemVector items;
    const int len = 1 + static_cast<int>(rng.NextU64() % 3);
    for (int j = 0; j < len; ++j) {
      items.push_back(static_cast<ItemId>(rng.NextU64() % num_items));
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());

    std::vector<std::uint32_t> expected;
    for (std::uint32_t g = 0; g < f.index.size(); ++g) {
      if (Contains(groups[g].antecedent, items)) expected.push_back(g);
    }
    expected = SortByConfidence(std::move(expected), groups);
    const auto got = f.index.AntecedentContains(items, 1000);
    EXPECT_EQ(got, expected) << "probe " << probe;
  }
  // Out-of-universe items can never match.
  EXPECT_TRUE(f.index.AntecedentContains({num_items}, 10).empty());
  // The empty probe matches everything.
  EXPECT_EQ(f.index.AntecedentContains({}, 1000).size(), f.index.size());
}

TEST(RuleGroupIndexTest, RowCoverMatchesClassifierRule) {
  const Fixture f = MakeFixture(12);
  const auto& groups = f.index.snapshot().groups;
  // Probe with the dataset's own rows plus synthetic ones.
  for (RowId r = 0; r < f.dataset.num_rows(); ++r) {
    const ItemVector& row = f.dataset.row(r);
    std::vector<std::uint32_t> expected;
    for (std::uint32_t g = 0; g < f.index.size(); ++g) {
      if (Matches(groups[g], row)) expected.push_back(g);
    }
    expected = SortByConfidence(std::move(expected), groups);
    EXPECT_EQ(f.index.RowCover(row, 100000), expected) << "row " << r;
  }
  // The empty sample matches only groups whose match sets are all empty.
  for (std::uint32_t g : f.index.RowCover({}, 100)) {
    EXPECT_TRUE(Matches(f.index.group(g), {}));
  }
}

TEST(RuleGroupIndexTest, FilterMatchesBruteForce) {
  const Fixture f = MakeFixture(23);
  const auto& groups = f.index.snapshot().groups;
  for (double minconf : {0.0, 0.4, 0.8, 1.0, 1.1}) {
    for (std::size_t minsup : {std::size_t{0}, std::size_t{2},
                               std::size_t{4}, std::size_t{100}}) {
      std::vector<std::uint32_t> expected;
      for (std::uint32_t g = 0; g < f.index.size(); ++g) {
        if (groups[g].confidence >= minconf &&
            groups[g].support_pos >= minsup) {
          expected.push_back(g);
        }
      }
      expected = SortByConfidence(std::move(expected), groups);
      EXPECT_EQ(f.index.Filter(minsup, minconf, 100000), expected)
          << "minconf=" << minconf << " minsup=" << minsup;
    }
  }
}

TEST(RuleGroupIndexTest, LimitsAreRespected) {
  const Fixture f = MakeFixture(5);
  ASSERT_GT(f.index.size(), 3u);
  EXPECT_EQ(f.index.Filter(0, 0.0, 2).size(), 2u);
  EXPECT_EQ(f.index.AntecedentContains({}, 3).size(), 3u);
  const ItemVector& row = f.dataset.row(0);
  EXPECT_LE(f.index.RowCover(row, 1).size(), 1u);
}

TEST(RuleGroupIndexTest, BankedPostingsAnswerIdenticallyForAnyBankCount) {
  // The server passes its shard count as the posting bank count; the
  // banking is purely a memory layout and must never change answers.
  BinaryDataset ds = RandomDataset(16, 18, 0.45, 29);
  MinerOptions opts;
  opts.min_support = 2;
  FarmerResult mined = MineFarmer(ds, opts);
  RuleGroupSnapshot snapshot;
  snapshot.groups = std::move(mined.groups);
  snapshot.num_rows = ds.num_rows();
  snapshot.params = SnapshotParams::FromMinerOptions(opts);
  snapshot.fingerprint = SnapshotFingerprint::FromDataset(ds);

  const RuleGroupIndex reference(RuleGroupSnapshot(snapshot), 1);
  ASSERT_GT(reference.size(), 3u);
  for (std::size_t banks : {std::size_t{0}, std::size_t{2}, std::size_t{3},
                            std::size_t{7}, std::size_t{64}}) {
    const RuleGroupIndex banked(RuleGroupSnapshot(snapshot), banks);
    EXPECT_EQ(banked.num_banks(), banks == 0 ? 1u : banks);
    EXPECT_EQ(banked.TopKByConfidence(5), reference.TopKByConfidence(5));
    Rng rng(7);
    const auto num_items =
        static_cast<ItemId>(snapshot.fingerprint.num_items);
    for (int probe = 0; probe < 20; ++probe) {
      ItemVector items;
      const int len = 1 + static_cast<int>(rng.NextU64() % 3);
      for (int j = 0; j < len; ++j) {
        items.push_back(static_cast<ItemId>(rng.NextU64() % num_items));
      }
      std::sort(items.begin(), items.end());
      items.erase(std::unique(items.begin(), items.end()), items.end());
      EXPECT_EQ(banked.AntecedentContains(items, 1000),
                reference.AntecedentContains(items, 1000))
          << "banks=" << banks << " probe=" << probe;
      EXPECT_EQ(banked.RowCover(items, 1000),
                reference.RowCover(items, 1000))
          << "banks=" << banks << " probe=" << probe;
    }
    for (RowId r = 0; r < ds.num_rows(); ++r) {
      EXPECT_EQ(banked.RowCover(ds.row(r), 100000),
                reference.RowCover(ds.row(r), 100000))
          << "banks=" << banks << " row=" << r;
    }
  }
}

TEST(RuleGroupIndexTest, EmptyStoreAnswersEverythingEmpty) {
  RuleGroupSnapshot snapshot;
  snapshot.num_rows = 4;
  snapshot.fingerprint.num_items = 8;
  RuleGroupIndex index(std::move(snapshot));
  EXPECT_TRUE(index.TopKByConfidence(5).empty());
  EXPECT_TRUE(index.TopKByChiSquare(5).empty());
  EXPECT_TRUE(index.AntecedentContains({1}, 5).empty());
  EXPECT_TRUE(index.RowCover({1, 2}, 5).empty());
  EXPECT_TRUE(index.Filter(0, 0.0, 5).empty());
}

}  // namespace
}  // namespace serve
}  // namespace farmer
