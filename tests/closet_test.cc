#include "baselines/closet.h"

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "baselines/charm.h"
#include "core/brute_force.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::MakeDataset;
using testing_util::RandomDataset;

std::set<std::pair<ItemVector, std::size_t>> Canon(
    const std::vector<FrequentClosed>& closed) {
  std::set<std::pair<ItemVector, std::size_t>> out;
  for (const FrequentClosed& c : closed) out.emplace(c.items, c.support);
  return out;
}

std::set<std::pair<ItemVector, std::size_t>> CanonBf(
    const std::vector<ClosedItemset>& closed) {
  std::set<std::pair<ItemVector, std::size_t>> out;
  for (const ClosedItemset& c : closed) out.emplace(c.items, c.rows.Count());
  return out;
}

TEST(ClosetTest, HandComputedExample) {
  BinaryDataset ds =
      MakeDataset({{{0, 1}, 1}, {{0, 1}, 0}, {{0, 2}, 1}});
  ClosetOptions opts;
  ClosetResult r = MineCloset(ds, opts);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(Canon(r.closed),
            (std::set<std::pair<ItemVector, std::size_t>>{
                {{0}, 3}, {{0, 1}, 2}, {{0, 2}, 1}}));
}

TEST(ClosetTest, SinglePathDataset) {
  // Nested rows produce a single-path FP-tree.
  BinaryDataset ds = MakeDataset(
      {{{0}, 1}, {{0, 1}, 1}, {{0, 1, 2}, 0}, {{0, 1, 2, 3}, 0}});
  ClosetOptions opts;
  ClosetResult r = MineCloset(ds, opts);
  EXPECT_EQ(Canon(r.closed),
            (std::set<std::pair<ItemVector, std::size_t>>{
                {{0}, 4}, {{0, 1}, 3}, {{0, 1, 2}, 2}, {{0, 1, 2, 3}, 1}}));
}

TEST(ClosetTest, DeadlineStops) {
  BinaryDataset ds = RandomDataset(14, 30, 0.6, 3);
  ClosetOptions opts;
  opts.deadline = Deadline::After(1e-9);
  EXPECT_TRUE(MineCloset(ds, opts).timed_out);
}

class ClosetSweepTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ClosetSweepTest, MatchesBruteForceAndCharm) {
  const auto [seed, minsup] = GetParam();
  for (double density : {0.15, 0.3, 0.55, 0.8, 0.9}) {
    BinaryDataset ds = RandomDataset(11, 13, density, seed);
    ClosetOptions opts;
    opts.min_support = static_cast<std::size_t>(minsup);
    ClosetResult mined = MineCloset(ds, opts);
    ASSERT_FALSE(mined.timed_out);
    EXPECT_EQ(Canon(mined.closed),
              CanonBf(BruteForceClosedItemsets(ds, opts.min_support)))
        << "seed=" << seed << " minsup=" << minsup
        << " density=" << density;

    CharmOptions charm_opts;
    charm_opts.min_support = opts.min_support;
    CharmResult charm = MineCharm(ds, charm_opts);
    std::set<std::pair<ItemVector, std::size_t>> charm_canon;
    for (const ClosedItemset& c : charm.closed) {
      charm_canon.emplace(c.items, c.rows.Count());
    }
    EXPECT_EQ(Canon(mined.closed), charm_canon);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatasets, ClosetSweepTest,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 9),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace farmer
