// FMP1 codec tests: every message round-trips exactly; every decoder is
// strict (truncation, trailing bytes, out-of-range counts, CRC damage
// all come back InvalidArgument, never a crash or over-allocation).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "farm/protocol.h"
#include "util/wire.h"

namespace farmer {
namespace farm {
namespace {

// Splits an Encode* frame into (opcode, payload) via the shared wire
// extractor, asserting it is a single complete frame.
void Unframe(const std::string& frame, std::uint8_t* opcode,
             std::string* payload) {
  std::size_t consumed = 0;
  std::string_view view;
  std::string error;
  ASSERT_EQ(wire::ExtractFrame(frame, kMaxFarmFramePayload, &consumed,
                               opcode, &view, &error),
            wire::FrameExtract::kComplete)
      << error;
  ASSERT_EQ(consumed, frame.size()) << "trailing bytes after the frame";
  *payload = std::string(view);
}

HelloMsg SampleHello() {
  HelloMsg msg;
  msg.fingerprint.dataset_hash = 0x1122334455667788ull;
  msg.fingerprint.num_rows = 40;
  msg.fingerprint.num_items = 613;
  msg.params.consequent = 1;
  msg.params.min_support = 3;
  msg.params.min_confidence = 0.7;
  msg.params.min_chi_square = 1.5;
  msg.params.top_k = 25;
  msg.params.mine_lower_bounds = true;
  msg.params.report_all_rule_groups = false;
  msg.simd_level = "avx2";
  msg.worker_name = "w-7";
  return msg;
}

std::vector<MineSegment> SampleSegments() {
  std::vector<MineSegment> segments;
  MineSegment a;
  a.id = {3, 7, kCloserRank};
  RuleGroup g;
  g.antecedent = {1, 4, 9};
  g.rows = Bitset(40);
  g.rows.Set(3);
  g.rows.Set(7);
  g.rows.Set(31);
  g.support_pos = 2;
  g.support_neg = 1;
  g.confidence = 2.0 / 3.0;
  g.chi_square = 0.625;
  a.groups.push_back(g);
  RuleGroup h;
  h.antecedent = {};  // Antecedent may legitimately be empty on the wire.
  h.rows = Bitset(40);
  h.rows.Set(0);
  h.support_pos = 1;
  h.support_neg = 0;
  h.confidence = 1.0;
  h.chi_square = 3.25;
  a.groups.push_back(h);
  segments.push_back(a);
  MineSegment b;
  b.id = {5};
  segments.push_back(b);  // Empty segment: id with no groups.
  return segments;
}

TEST(FarmProtocolTest, HelloRoundTrip) {
  const HelloMsg msg = SampleHello();
  std::uint8_t opcode = 0;
  std::string payload;
  Unframe(EncodeHello(msg), &opcode, &payload);
  EXPECT_EQ(static_cast<FarmOp>(opcode), FarmOp::kHello);
  HelloMsg got;
  ASSERT_TRUE(DecodeHello(payload, &got).ok());
  EXPECT_EQ(got.version, msg.version);
  EXPECT_TRUE(got.fingerprint == msg.fingerprint);
  EXPECT_TRUE(got.params == msg.params);
  EXPECT_EQ(got.simd_level, msg.simd_level);
  EXPECT_EQ(got.worker_name, msg.worker_name);
}

TEST(FarmProtocolTest, HelloAckRoundTrip) {
  for (const bool accepted : {true, false}) {
    HelloAckMsg msg;
    msg.accepted = accepted;
    msg.worker_id = accepted ? 12u : 0u;
    msg.reason = accepted ? "" : "dataset fingerprint mismatch";
    std::uint8_t opcode = 0;
    std::string payload;
    Unframe(EncodeHelloAck(msg), &opcode, &payload);
    EXPECT_EQ(static_cast<FarmOp>(opcode), FarmOp::kHelloAck);
    HelloAckMsg got;
    ASSERT_TRUE(DecodeHelloAck(payload, &got).ok());
    EXPECT_EQ(got.accepted, msg.accepted);
    EXPECT_EQ(got.worker_id, msg.worker_id);
    EXPECT_EQ(got.reason, msg.reason);
  }
}

TEST(FarmProtocolTest, LeaseGrantHeartbeatAckRevokeRoundTrip) {
  LeaseGrantMsg grant;
  grant.lease_id = 0x0102030405060708ull;
  grant.root_row = 17;
  std::uint8_t opcode = 0;
  std::string payload;
  Unframe(EncodeLeaseGrant(grant), &opcode, &payload);
  EXPECT_EQ(static_cast<FarmOp>(opcode), FarmOp::kLeaseGrant);
  LeaseGrantMsg grant2;
  ASSERT_TRUE(DecodeLeaseGrant(payload, &grant2).ok());
  EXPECT_EQ(grant2.lease_id, grant.lease_id);
  EXPECT_EQ(grant2.root_row, grant.root_row);

  HeartbeatMsg beat;
  beat.lease_id = 9;
  beat.nodes = 123456;
  beat.nodes_per_sec = 7890.5;
  beat.depth = 11;
  beat.groups = 42;
  Unframe(EncodeHeartbeat(beat), &opcode, &payload);
  EXPECT_EQ(static_cast<FarmOp>(opcode), FarmOp::kHeartbeat);
  HeartbeatMsg beat2;
  ASSERT_TRUE(DecodeHeartbeat(payload, &beat2).ok());
  EXPECT_EQ(beat2.lease_id, beat.lease_id);
  EXPECT_EQ(beat2.nodes, beat.nodes);
  EXPECT_EQ(beat2.nodes_per_sec, beat.nodes_per_sec);
  EXPECT_EQ(beat2.depth, beat.depth);
  EXPECT_EQ(beat2.groups, beat.groups);

  ResultAckMsg ack;
  ack.lease_id = 77;
  ack.fresh = true;
  Unframe(EncodeResultAck(ack), &opcode, &payload);
  EXPECT_EQ(static_cast<FarmOp>(opcode), FarmOp::kResultAck);
  ResultAckMsg ack2;
  ASSERT_TRUE(DecodeResultAck(payload, &ack2).ok());
  EXPECT_EQ(ack2.lease_id, ack.lease_id);
  EXPECT_EQ(ack2.fresh, ack.fresh);

  RevokeMsg revoke;
  revoke.lease_id = 31337;
  Unframe(EncodeRevoke(revoke), &opcode, &payload);
  EXPECT_EQ(static_cast<FarmOp>(opcode), FarmOp::kRevoke);
  RevokeMsg revoke2;
  ASSERT_TRUE(DecodeRevoke(payload, &revoke2).ok());
  EXPECT_EQ(revoke2.lease_id, revoke.lease_id);
}

TEST(FarmProtocolTest, EmptyFrames) {
  for (const FarmOp op :
       {FarmOp::kLeaseRequest, FarmOp::kNoWork, FarmOp::kDone}) {
    std::uint8_t opcode = 0;
    std::string payload;
    Unframe(EncodeEmptyFrame(op), &opcode, &payload);
    EXPECT_EQ(static_cast<FarmOp>(opcode), op);
    EXPECT_TRUE(payload.empty());
  }
}

TEST(FarmProtocolTest, SegmentsRoundTrip) {
  const std::vector<MineSegment> segments = SampleSegments();
  const std::string wire = EncodeSegments(segments);
  std::vector<MineSegment> got;
  ASSERT_TRUE(DecodeSegments(wire, 40, &got).ok());
  ASSERT_EQ(got.size(), segments.size());
  for (std::size_t s = 0; s < segments.size(); ++s) {
    EXPECT_EQ(got[s].id, segments[s].id);
    ASSERT_EQ(got[s].groups.size(), segments[s].groups.size());
    for (std::size_t g = 0; g < segments[s].groups.size(); ++g) {
      const RuleGroup& want = segments[s].groups[g];
      const RuleGroup& have = got[s].groups[g];
      EXPECT_EQ(have.antecedent, want.antecedent);
      EXPECT_EQ(have.rows, want.rows);
      EXPECT_EQ(have.support_pos, want.support_pos);
      EXPECT_EQ(have.support_neg, want.support_neg);
      EXPECT_EQ(have.confidence, want.confidence);
      EXPECT_EQ(have.chi_square, want.chi_square);
      EXPECT_TRUE(have.lower_bounds.empty());
    }
  }
}

TEST(FarmProtocolTest, SegmentsRejectBadInput) {
  const std::string wire = EncodeSegments(SampleSegments());
  std::vector<MineSegment> out;
  // Every strict prefix must be rejected, never crash.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        DecodeSegments(std::string_view(wire.data(), len), 40, &out).ok())
        << "prefix length " << len;
  }
  // Trailing garbage.
  EXPECT_FALSE(DecodeSegments(wire + "x", 40, &out).ok());
  // A row id out of range for the declared dataset.
  EXPECT_FALSE(DecodeSegments(wire, 8, &out).ok());
  // An absurd segment count cannot trigger a huge reserve.
  std::string hostile = "\xff\xff\xff\xff";
  EXPECT_FALSE(DecodeSegments(hostile, 40, &out).ok());
}

TEST(FarmProtocolTest, ResultRoundTripAndCrc) {
  ResultMsg msg;
  msg.lease_id = 5;
  msg.root_row = 3;
  msg.nodes_visited = 999;
  msg.mine_seconds = 0.25;
  msg.segments_wire = EncodeSegments(SampleSegments());
  std::uint8_t opcode = 0;
  std::string payload;
  Unframe(EncodeResult(msg), &opcode, &payload);
  EXPECT_EQ(static_cast<FarmOp>(opcode), FarmOp::kResult);
  ResultMsg got;
  ASSERT_TRUE(DecodeResult(payload, &got).ok());
  EXPECT_EQ(got.lease_id, msg.lease_id);
  EXPECT_EQ(got.root_row, msg.root_row);
  EXPECT_EQ(got.nodes_visited, msg.nodes_visited);
  EXPECT_EQ(got.mine_seconds, msg.mine_seconds);
  EXPECT_EQ(got.segments_wire, msg.segments_wire);

  // Flip one bit anywhere inside the segment bytes: the CRC check must
  // refuse the payload (corruption-in-transit is exactly what it's for).
  std::string damaged = payload;
  damaged[damaged.size() - 10] ^= 0x01;
  EXPECT_FALSE(DecodeResult(damaged, &got).ok());
}

TEST(FarmProtocolTest, DecodersRejectTruncation) {
  const std::string frames[] = {
      EncodeHello(SampleHello()),
      EncodeHelloAck(HelloAckMsg{true, 4, ""}),
      EncodeLeaseGrant(LeaseGrantMsg{1, 2}),
      EncodeHeartbeat(HeartbeatMsg{1, 2, 3.0, 4, 5}),
      EncodeResultAck(ResultAckMsg{1, true}),
      EncodeRevoke(RevokeMsg{1}),
  };
  for (const std::string& frame : frames) {
    std::uint8_t opcode = 0;
    std::string payload;
    Unframe(frame, &opcode, &payload);
    const auto decode = [op = static_cast<FarmOp>(opcode)](
                            std::string_view bytes) {
      HelloMsg hello;
      HelloAckMsg hello_ack;
      LeaseGrantMsg grant;
      HeartbeatMsg beat;
      ResultAckMsg ack;
      RevokeMsg revoke;
      switch (op) {
        case FarmOp::kHello:
          return DecodeHello(bytes, &hello);
        case FarmOp::kHelloAck:
          return DecodeHelloAck(bytes, &hello_ack);
        case FarmOp::kLeaseGrant:
          return DecodeLeaseGrant(bytes, &grant);
        case FarmOp::kHeartbeat:
          return DecodeHeartbeat(bytes, &beat);
        case FarmOp::kResultAck:
          return DecodeResultAck(bytes, &ack);
        case FarmOp::kRevoke:
          return DecodeRevoke(bytes, &revoke);
        default:
          return Status::InvalidArgument("unexpected opcode");
      }
    };
    SCOPED_TRACE("opcode " + std::to_string(opcode));
    for (std::size_t len = 0; len < payload.size(); ++len) {
      EXPECT_FALSE(decode(std::string_view(payload.data(), len)).ok())
          << "prefix length " << len;
    }
    EXPECT_FALSE(decode(payload + "x").ok()) << "trailing byte accepted";
    EXPECT_TRUE(decode(payload).ok());
  }
}

TEST(FarmProtocolTest, DetectFarmProtocol) {
  EXPECT_EQ(DetectFarmProtocol(""), FarmDetect::kNeedMore);
  EXPECT_EQ(DetectFarmProtocol("F"), FarmDetect::kNeedMore);
  EXPECT_EQ(DetectFarmProtocol("FMP"), FarmDetect::kNeedMore);
  EXPECT_EQ(DetectFarmProtocol("FMP1"), FarmDetect::kFarm);
  EXPECT_EQ(DetectFarmProtocol("FMP1extra"), FarmDetect::kFarm);
  EXPECT_EQ(DetectFarmProtocol("GET"), FarmDetect::kNeedMore);
  EXPECT_EQ(DetectFarmProtocol("GET /metrics"), FarmDetect::kHttp);
  EXPECT_EQ(DetectFarmProtocol("FQP1"), FarmDetect::kUnknown);
  EXPECT_EQ(DetectFarmProtocol("PUT "), FarmDetect::kUnknown);
  EXPECT_EQ(DetectFarmProtocol(std::string_view("\x00\x01\x02\x03", 4)),
            FarmDetect::kUnknown);
}

TEST(FarmProtocolTest, OversizedFrameIsAnError) {
  // A length prefix past the farm cap must classify as kError so the
  // coordinator can drop the connection instead of buffering 4 GiB.
  std::string frame;
  wire::AppendFrame(&frame, 0x01, std::string(16, 'x'));
  // Rewrite the length prefix to an absurd value.
  const std::uint32_t huge = 0x7fffffff;
  frame[0] = static_cast<char>(huge & 0xff);
  frame[1] = static_cast<char>((huge >> 8) & 0xff);
  frame[2] = static_cast<char>((huge >> 16) & 0xff);
  frame[3] = static_cast<char>((huge >> 24) & 0xff);
  std::size_t consumed = 0;
  std::uint8_t opcode = 0;
  std::string_view payload;
  std::string error;
  EXPECT_EQ(wire::ExtractFrame(frame, kMaxFarmFramePayload, &consumed,
                               &opcode, &payload, &error),
            wire::FrameExtract::kError);
}

}  // namespace
}  // namespace farm
}  // namespace farmer
