#include <cmath>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace farmer {
namespace {

TEST(RngTest, DeterministicStream) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100 && !differs; ++i) {
    differs = a2.NextU64() != c.NextU64();
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, NextBelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInt(-1, 1);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 1);
    saw_lo |= v == -1;
    saw_hi |= v == 1;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(9);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(d.Expired());
  }
}

TEST(DeadlineTest, ExpiresAfterDuration) {
  Deadline d = Deadline::After(0.02);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // The throttle checks the clock every 256 calls; loop enough times.
  bool expired = false;
  for (int i = 0; i < 1000 && !expired; ++i) expired = d.Expired();
  EXPECT_TRUE(expired);
  // Once expired, stays expired.
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, NonPositiveMeansNever) {
  Deadline d = Deadline::After(0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(d.Expired());
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t1 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.015);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), t1);
  EXPECT_NEAR(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3, 5.0);
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  Status s = Status::InvalidArgument("bad row");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsIoError());
  EXPECT_EQ(s.message(), "bad row");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad row");
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotFound("y").IsNotFound());
}

}  // namespace
}  // namespace farmer
