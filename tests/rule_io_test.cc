#include "core/rule_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/farmer.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

TEST(RuleIoTest, RoundTripMinedGroups) {
  BinaryDataset ds = testing_util::RandomDataset(10, 12, 0.5, 77);
  MinerOptions opts;
  opts.min_support = 2;
  FarmerResult mined = MineFarmer(ds, opts);
  ASSERT_FALSE(mined.groups.empty());

  const std::string path = ::testing::TempDir() + "/rules_roundtrip.txt";
  ASSERT_TRUE(SaveRuleGroups(mined.groups, ds.num_rows(), path).ok());

  std::vector<RuleGroup> loaded;
  std::size_t num_rows = 0;
  ASSERT_TRUE(LoadRuleGroups(path, &loaded, &num_rows).ok());
  EXPECT_EQ(num_rows, ds.num_rows());
  ASSERT_EQ(loaded.size(), mined.groups.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].antecedent, mined.groups[i].antecedent);
    EXPECT_EQ(loaded[i].rows, mined.groups[i].rows);
    EXPECT_EQ(loaded[i].support_pos, mined.groups[i].support_pos);
    EXPECT_EQ(loaded[i].support_neg, mined.groups[i].support_neg);
    EXPECT_DOUBLE_EQ(loaded[i].confidence, mined.groups[i].confidence);
    EXPECT_DOUBLE_EQ(loaded[i].chi_square, mined.groups[i].chi_square);
    EXPECT_EQ(loaded[i].lower_bounds, mined.groups[i].lower_bounds);
  }
  std::remove(path.c_str());
}

TEST(RuleIoTest, EmptyGroupListRoundTrips) {
  const std::string path = ::testing::TempDir() + "/rules_empty.txt";
  ASSERT_TRUE(SaveRuleGroups({}, 5, path).ok());
  std::vector<RuleGroup> loaded;
  std::size_t num_rows = 0;
  ASSERT_TRUE(LoadRuleGroups(path, &loaded, &num_rows).ok());
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(num_rows, 5u);
  std::remove(path.c_str());
}

TEST(RuleIoTest, RejectsMalformedFiles) {
  const std::string path = ::testing::TempDir() + "/rules_bad.txt";
  std::vector<RuleGroup> loaded;
  std::size_t num_rows = 0;

  const char* cases[] = {
      "not-a-header\n",
      "farmer-rules v2 10\n",                          // Wrong version.
      "farmer-rules v1 4\nrows 0 1\n",                 // rows before group.
      "farmer-rules v1 4\ngroup 1 0 1 0\nrows 9\nend\n",  // Row range.
      "farmer-rules v1 4\ngroup 1 0 1 0\nrows 0 1\nend\n",  // Count clash.
      "farmer-rules v1 4\ngroup 1 0 1 0\nrows 0\nupper 3\n",  // Truncated.
      "farmer-rules v1 4\ngroup 1 0 1 0\nwat 1\nend\n",   // Unknown tag.
  };
  for (const char* contents : cases) {
    {
      std::ofstream os(path);
      os << contents;
    }
    Status s = LoadRuleGroups(path, &loaded, &num_rows);
    EXPECT_FALSE(s.ok()) << "accepted malformed file:\n" << contents;
  }
  std::remove(path.c_str());

  EXPECT_TRUE(
      LoadRuleGroups("/nonexistent/rules.txt", &loaded, &num_rows)
          .IsIoError());
}

TEST(RuleIoTest, RejectsDuplicateRecordsWithinGroup) {
  const std::string path = ::testing::TempDir() + "/rules_dup.txt";
  std::vector<RuleGroup> loaded;
  std::size_t num_rows = 0;

  // Repeating an end-less record inside one group must fail rather than
  // silently merging the payloads (two `rows` lines used to OR their row
  // sets; two `upper` lines concatenated their antecedents).
  const char* cases[] = {
      "farmer-rules v1 4\n"
      "group 2 0 1 0\nrows 0\nrows 1\nupper 3\nend\n",
      "farmer-rules v1 4\n"
      "group 1 0 1 0\nrows 0\nupper 3\nupper 4\nend\n",
  };
  for (const char* contents : cases) {
    {
      std::ofstream os(path);
      os << contents;
    }
    Status s = LoadRuleGroups(path, &loaded, &num_rows);
    EXPECT_FALSE(s.ok()) << "accepted duplicate record:\n" << contents;
    EXPECT_TRUE(s.IsInvalidArgument());
  }
  // Multiple `lower` lines stay legal: one per lower bound.
  {
    std::ofstream os(path);
    os << "farmer-rules v1 4\n"
       << "group 1 0 1 0\nrows 0\nupper 3 4\nlower 3\nlower 4\nend\n";
  }
  ASSERT_TRUE(LoadRuleGroups(path, &loaded, &num_rows).ok());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].lower_bounds.size(), 2u);
  std::remove(path.c_str());
}

TEST(RuleIoTest, RejectsRowIndicesAtOrPastNumRows) {
  const std::string path = ::testing::TempDir() + "/rules_range.txt";
  std::vector<RuleGroup> loaded;
  std::size_t num_rows = 0;
  // Row ids are 0-based, so `num_rows` itself is already out of range —
  // the classic off-by-one a careless writer would produce.
  {
    std::ofstream os(path);
    os << "farmer-rules v1 4\ngroup 1 0 1 0\nrows 4\nupper 1\nend\n";
  }
  Status s = LoadRuleGroups(path, &loaded, &num_rows);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("out of range"), std::string::npos);
  {
    std::ofstream os(path);
    os << "farmer-rules v1 4\ngroup 1 0 1 0\nrows 3\nupper 1\nend\n";
  }
  EXPECT_TRUE(LoadRuleGroups(path, &loaded, &num_rows).ok());
  std::remove(path.c_str());
}

TEST(RuleIoTest, RejectsOverlongLines) {
  const std::string path = ::testing::TempDir() + "/rules_long.txt";
  {
    std::ofstream os(path);
    os << "farmer-rules v1 4\n"
       << "# " << std::string(kMaxRuleLineBytes + 1, 'x') << "\n";
  }
  std::vector<RuleGroup> loaded;
  std::size_t num_rows = 0;
  Status s = LoadRuleGroups(path, &loaded, &num_rows);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("line too long"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RuleIoTest, CommentsAndBlankLinesIgnored) {
  const std::string path = ::testing::TempDir() + "/rules_comment.txt";
  {
    std::ofstream os(path);
    os << "farmer-rules v1 3\n"
       << "# a comment\n"
       << "\n"
       << "group 1 1 0.5 0\n"
       << "rows 0 2\n"
       << "upper 4 7\n"
       << "lower 4\n"
       << "end\n";
  }
  std::vector<RuleGroup> loaded;
  std::size_t num_rows = 0;
  ASSERT_TRUE(LoadRuleGroups(path, &loaded, &num_rows).ok());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].antecedent, (ItemVector{4, 7}));
  EXPECT_EQ(loaded[0].lower_bounds,
            (std::vector<ItemVector>{{4}}));
  EXPECT_EQ(loaded[0].rows.ToVector(),
            (std::vector<std::size_t>{0, 2}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace farmer
