// Edge-case behaviour of the FARMER miner: degenerate datasets, duplicate
// rows, ubiquitous items, threshold boundary values.

#include <set>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/farmer.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::MakeDataset;

TEST(FarmerEdgeTest, MinSupportZeroIsTreatedAsOne) {
  BinaryDataset ds = MakeDataset({{{0}, 1}, {{1}, 0}});
  MinerOptions opts;
  opts.min_support = 0;
  FarmerResult r = MineFarmer(ds, opts);
  for (const RuleGroup& g : r.groups) {
    EXPECT_GE(g.support_pos, 1u);
  }
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].antecedent, (ItemVector{0}));
}

TEST(FarmerEdgeTest, DuplicateRowsFormOneGroup) {
  BinaryDataset ds = MakeDataset(
      {{{0, 1}, 1}, {{0, 1}, 1}, {{0, 1}, 0}, {{2}, 0}});
  MinerOptions opts;
  FarmerResult r = MineFarmer(ds, opts);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].antecedent, (ItemVector{0, 1}));
  EXPECT_EQ(r.groups[0].support_pos, 2u);
  EXPECT_EQ(r.groups[0].support_neg, 1u);
  EXPECT_EQ(r.groups[0].rows.Count(), 3u);
}

TEST(FarmerEdgeTest, AllRowsIdentical) {
  BinaryDataset ds = MakeDataset(
      {{{0, 1, 2}, 1}, {{0, 1, 2}, 1}, {{0, 1, 2}, 0}});
  MinerOptions opts;
  FarmerResult r = MineFarmer(ds, opts);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].antecedent, (ItemVector{0, 1, 2}));
  EXPECT_NEAR(r.groups[0].confidence, 2.0 / 3.0, 1e-12);
  // Lower bounds: every single item already pins the full row set.
  EXPECT_EQ(testing_util::AsSet(r.groups[0].lower_bounds),
            testing_util::AsSet({{0}, {1}, {2}}));
}

TEST(FarmerEdgeTest, UbiquitousItemJoinsEveryAntecedent) {
  // Item 9 occurs everywhere; every upper bound must contain it.
  BinaryDataset ds = MakeDataset(
      {{{0, 9}, 1}, {{1, 9}, 1}, {{0, 1, 9}, 0}});
  MinerOptions opts;
  opts.report_all_rule_groups = true;
  FarmerResult r = MineFarmer(ds, opts);
  ASSERT_FALSE(r.groups.empty());
  for (const RuleGroup& g : r.groups) {
    EXPECT_TRUE(std::binary_search(g.antecedent.begin(),
                                   g.antecedent.end(), ItemId{9}))
        << "antecedent missing the ubiquitous item";
  }
}

TEST(FarmerEdgeTest, ConfidenceExactlyAtThresholdIsKept) {
  // Rule {0} -> C has confidence exactly 0.5.
  BinaryDataset ds = MakeDataset({{{0}, 1}, {{0}, 0}});
  MinerOptions opts;
  opts.min_confidence = 0.5;
  FarmerResult r = MineFarmer(ds, opts);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_DOUBLE_EQ(r.groups[0].confidence, 0.5);

  opts.min_confidence = 0.5 + 1e-9;
  EXPECT_TRUE(MineFarmer(ds, opts).groups.empty());
}

TEST(FarmerEdgeTest, SupportExactlyAtThresholdIsKept) {
  BinaryDataset ds = MakeDataset({{{0}, 1}, {{0}, 1}, {{1}, 0}});
  MinerOptions opts;
  opts.min_support = 2;
  FarmerResult r = MineFarmer(ds, opts);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].support_pos, 2u);
  opts.min_support = 3;
  EXPECT_TRUE(MineFarmer(ds, opts).groups.empty());
}

TEST(FarmerEdgeTest, ItemsWithEmptyTuplesAreIgnored) {
  // Universe of 100 items, only 3 used.
  BinaryDataset ds(100);
  ds.AddRow({10, 50}, 1);
  ds.AddRow({10, 90}, 0);
  MinerOptions opts;
  FarmerResult r = MineFarmer(ds, opts);
  // Two IRGs: {10,50} -> C (conf 1) and the more general {10} -> C
  // (conf 1/2, lower but still undominated at its generality).
  ASSERT_EQ(r.groups.size(), 2u);
  std::set<ItemVector> antecedents;
  for (const RuleGroup& g : r.groups) antecedents.insert(g.antecedent);
  EXPECT_TRUE(antecedents.count({10, 50}));
  EXPECT_TRUE(antecedents.count({10}));
}

TEST(FarmerEdgeTest, SingleClassDatasetAllConfidenceOne) {
  BinaryDataset ds = MakeDataset({{{0, 1}, 1}, {{0, 2}, 1}, {{1, 2}, 1}});
  MinerOptions opts;
  FarmerResult r = MineFarmer(ds, opts);
  EXPECT_FALSE(r.groups.empty());
  for (const RuleGroup& g : r.groups) {
    EXPECT_DOUBLE_EQ(g.confidence, 1.0);
    EXPECT_EQ(g.support_neg, 0u);
    // Chi-square is degenerate (m == n) and must be 0.
    EXPECT_DOUBLE_EQ(g.chi_square, 0.0);
  }
  // And the IRG filter keeps only the most general groups (conf ties go to
  // the more general ones): every kept group must not be contained in
  // another kept group's row set.
  for (const RuleGroup& a : r.groups) {
    for (const RuleGroup& b : r.groups) {
      if (&a == &b) continue;
      EXPECT_FALSE(a.rows.IsProperSubsetOf(b.rows));
    }
  }
}

TEST(FarmerEdgeTest, TopKLargerThanResultIsHarmless) {
  BinaryDataset ds = MakeDataset({{{0}, 1}, {{1}, 0}});
  MinerOptions opts;
  opts.top_k = 1000;
  FarmerResult r = MineFarmer(ds, opts);
  EXPECT_EQ(r.groups.size(), 1u);
}

TEST(FarmerEdgeTest, MatchesOracleOnPathologicalShapes) {
  // Staircase rows: r_i = {0..i}.
  std::vector<std::pair<std::vector<int>, int>> stairs;
  for (int i = 0; i < 8; ++i) {
    std::vector<int> items;
    for (int j = 0; j <= i; ++j) items.push_back(j);
    stairs.push_back({items, i % 2});
  }
  BinaryDataset ds = MakeDataset(stairs);
  MinerOptions opts;
  opts.min_support = 1;
  FarmerResult mined = MineFarmer(ds, opts);
  std::vector<RuleGroup> expected = BruteForceIRGs(ds, opts);
  ASSERT_EQ(mined.groups.size(), expected.size());

  // Disjoint blocks: two item blocks never co-occurring.
  BinaryDataset blocks = MakeDataset({{{0, 1}, 1},
                                      {{0, 1}, 1},
                                      {{2, 3}, 0},
                                      {{2, 3}, 1}});
  FarmerResult mined2 = MineFarmer(blocks, opts);
  std::vector<RuleGroup> expected2 = BruteForceIRGs(blocks, opts);
  EXPECT_EQ(mined2.groups.size(), expected2.size());
}

}  // namespace
}  // namespace farmer
