#include "baselines/charm.h"

#include <algorithm>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "tests/test_util.h"

namespace farmer {
namespace {

using testing_util::MakeDataset;
using testing_util::RandomDataset;

std::set<std::pair<ItemVector, std::size_t>> Canon(
    const std::vector<ClosedItemset>& closed) {
  std::set<std::pair<ItemVector, std::size_t>> out;
  for (const ClosedItemset& c : closed) {
    out.emplace(c.items, c.rows.Count());
  }
  return out;
}

TEST(CharmTest, HandComputedExample) {
  // Rows: {0,1}, {0,1}, {0,2}. Closed sets: {0} sup 3, {0,1} sup 2,
  // {0,2} sup 1.
  BinaryDataset ds =
      MakeDataset({{{0, 1}, 1}, {{0, 1}, 0}, {{0, 2}, 1}});
  CharmOptions opts;
  opts.min_support = 1;
  CharmResult r = MineCharm(ds, opts);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(Canon(r.closed),
            (std::set<std::pair<ItemVector, std::size_t>>{
                {{0}, 3}, {{0, 1}, 2}, {{0, 2}, 1}}));
}

TEST(CharmTest, MinSupportFilters) {
  BinaryDataset ds =
      MakeDataset({{{0, 1}, 1}, {{0, 1}, 0}, {{0, 2}, 1}});
  CharmOptions opts;
  opts.min_support = 2;
  CharmResult r = MineCharm(ds, opts);
  EXPECT_EQ(Canon(r.closed),
            (std::set<std::pair<ItemVector, std::size_t>>{{{0}, 3},
                                                          {{0, 1}, 2}}));
}

TEST(CharmTest, TidsetsAreExact) {
  BinaryDataset ds = RandomDataset(12, 10, 0.5, 21);
  CharmOptions opts;
  CharmResult r = MineCharm(ds, opts);
  for (const ClosedItemset& c : r.closed) {
    EXPECT_EQ(c.rows, RowSupportSet(ds, c.items));
  }
}

TEST(CharmTest, DeadlineAndOverflowStops) {
  BinaryDataset ds = RandomDataset(14, 30, 0.6, 3);
  CharmOptions opts;
  opts.deadline = Deadline::After(1e-9);
  EXPECT_TRUE(MineCharm(ds, opts).timed_out);

  CharmOptions cap;
  cap.max_closed = 3;
  CharmResult r = MineCharm(ds, cap);
  EXPECT_TRUE(r.overflowed);
  EXPECT_LE(r.closed.size(), 4u);
}

class CharmSweepTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(CharmSweepTest, MatchesBruteForceClosedSets) {
  const auto [seed, minsup] = GetParam();
  for (double density : {0.15, 0.3, 0.55, 0.8, 0.9}) {
    BinaryDataset ds = RandomDataset(11, 13, density, seed);
    CharmOptions opts;
    opts.min_support = static_cast<std::size_t>(minsup);
    CharmResult mined = MineCharm(ds, opts);
    ASSERT_FALSE(mined.timed_out);
    std::vector<ClosedItemset> expected =
        BruteForceClosedItemsets(ds, opts.min_support);
    EXPECT_EQ(Canon(mined.closed), Canon(expected))
        << "seed=" << seed << " minsup=" << minsup
        << " density=" << density;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatasets, CharmSweepTest,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 9),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace farmer
