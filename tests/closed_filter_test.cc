#include "baselines/closed_filter.h"

#include <gtest/gtest.h>

namespace farmer {
namespace {

TEST(ClosedFilterTest, RemovesEqualSupportSubsets) {
  std::vector<FrequentClosed> candidates = {
      {{0, 1, 2}, 3},
      {{0, 1}, 3},     // Subsumed: subset with equal support.
      {{0, 1}, 4},     // Kept: different support.
      {{3}, 3},        // Kept: not a subset of {0,1,2}.
  };
  RemoveNonClosed(&candidates);
  ASSERT_EQ(candidates.size(), 3u);
  for (const FrequentClosed& c : candidates) {
    EXPECT_FALSE(c.items == ItemVector({0, 1}) && c.support == 3);
  }
}

TEST(ClosedFilterTest, RemovesDuplicates) {
  std::vector<FrequentClosed> candidates = {
      {{0, 1}, 2},
      {{0, 1}, 2},
      {{0, 1}, 2},
  };
  RemoveNonClosed(&candidates);
  EXPECT_EQ(candidates.size(), 1u);
}

TEST(ClosedFilterTest, EmptyAndSingletonInputs) {
  std::vector<FrequentClosed> empty;
  RemoveNonClosed(&empty);
  EXPECT_TRUE(empty.empty());

  std::vector<FrequentClosed> one = {{{5}, 1}};
  RemoveNonClosed(&one);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].items, ItemVector({5}));
}

TEST(ClosedFilterTest, ChainOfSubsets) {
  std::vector<FrequentClosed> candidates = {
      {{0}, 5},
      {{0, 1}, 5},
      {{0, 1, 2}, 5},
      {{0, 1, 2, 3}, 5},
  };
  RemoveNonClosed(&candidates);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].items, ItemVector({0, 1, 2, 3}));
}

TEST(ClosedFilterTest, IncomparableSetsAllSurvive) {
  std::vector<FrequentClosed> candidates = {
      {{0, 1}, 2},
      {{1, 2}, 2},
      {{0, 2}, 2},
  };
  RemoveNonClosed(&candidates);
  EXPECT_EQ(candidates.size(), 3u);
}

}  // namespace
}  // namespace farmer
