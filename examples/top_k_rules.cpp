// Extension features beyond the paper's headline algorithm: top-k IRG
// mining with a dynamic confidence floor, and the additional
// interestingness constraints from the paper's footnote 3 (lift,
// conviction, entropy gain) with their pruning bounds.
//
//   ./build/examples/top_k_rules

#include <cstdio>

#include "core/farmer.h"
#include "core/measures.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"

int main() {
  using namespace farmer;

  SyntheticSpec spec = PaperDatasetSpec("CT", 0.1);  // 62 x 200 genes.
  ExpressionMatrix matrix = GenerateSynthetic(spec);
  Discretization disc = Discretization::FitEqualDepth(matrix, 5);
  BinaryDataset ds = disc.Apply(matrix);
  const std::size_t n = ds.num_rows();
  const std::size_t m = ds.CountLabel(1);
  std::printf("CT-shaped dataset: %zu rows, %zu items\n\n", n,
              ds.num_items());

  // 1. Top-5 rule groups by confidence (support breaks ties): the k-th
  //    best confidence becomes an extra dynamic pruning threshold.
  MinerOptions topk;
  topk.consequent = 1;
  topk.min_support = 4;
  topk.top_k = 5;
  FarmerResult top = MineFarmer(ds, topk);
  std::printf("top-%zu IRGs (%zu nodes explored):\n", topk.top_k,
              top.stats.nodes_visited);
  for (const RuleGroup& g : top.groups) {
    std::printf("  conf %.3f sup %zu chi %.1f lift %.2f conviction %s\n",
                g.confidence, g.support_pos, g.chi_square,
                Lift(g.antecedent_support(), g.support_pos, n, m),
                g.confidence >= 1.0 ? "inf" : "finite");
  }

  // 2. The same mining with extension constraints: only rule groups at
  //    least 1.5x better than chance (lift), with conviction >= 2 and
  //    non-trivial entropy gain.
  MinerOptions ext;
  ext.consequent = 1;
  ext.min_support = 4;
  ext.min_lift = 1.5;
  ext.min_conviction = 2.0;
  ext.min_entropy_gain = 0.1;
  FarmerResult strict = MineFarmer(ds, ext);
  std::printf("\nwith lift>=1.5, conviction>=2, entropy-gain>=0.1: "
              "%zu IRGs (%zu nodes, %zu pruned by extension bounds)\n",
              strict.groups.size(), strict.stats.nodes_visited,
              strict.stats.pruned_by_extension);

  // 3. Without any constraint, for contrast.
  MinerOptions loose;
  loose.consequent = 1;
  loose.min_support = 4;
  FarmerResult all = MineFarmer(ds, loose);
  std::printf("unconstrained: %zu IRGs (%zu nodes)\n", all.groups.size(),
              all.stats.nodes_visited);
  return 0;
}
