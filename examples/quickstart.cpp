// Quickstart: generate a small synthetic microarray dataset, discretize
// it, mine interesting rule groups with FARMER, and print them.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/farmer.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"

int main() {
  using namespace farmer;

  // 1. A small microarray-shaped dataset: 40 samples x 200 genes with
  //    planted class-correlated gene blocks.
  SyntheticSpec spec;
  spec.name = "quickstart";
  spec.num_rows = 60;
  spec.num_genes = 200;
  spec.num_class1 = 30;
  spec.num_clusters = 4;
  spec.cluster_purity = 0.9;
  spec.seed = 2024;
  ExpressionMatrix matrix = GenerateSynthetic(spec);
  std::printf("dataset: %zu samples x %zu genes (%zu labeled class 1)\n",
              matrix.num_rows(), matrix.num_genes(), matrix.CountLabel(1));

  // 2. Discretize expression levels into items (equal-depth buckets, as in
  //    the paper's efficiency experiments). With 5 buckets over 60 rows
  //    each item covers 12 rows, so min_support = 8 is reachable.
  Discretization disc = Discretization::FitEqualDepth(matrix, 5);
  BinaryDataset dataset = disc.Apply(matrix);
  dataset.set_item_names(disc.MakeItemNames(matrix));
  std::printf("discretized: %zu items, avg row length %.1f\n",
              dataset.num_items(), dataset.AverageRowLength());

  // 3. Mine interesting rule groups with consequent "class 1".
  MinerOptions options;
  options.consequent = 1;
  options.min_support = 8;     // At least 8 class-1 samples.
  options.min_confidence = 0.9;
  options.min_chi_square = 10.0;
  options.mine_lower_bounds = true;
  FarmerResult result = MineFarmer(dataset, options);

  std::printf("\nmined %zu interesting rule groups "
              "(%zu enumeration nodes, %.3fs + %.3fs lower bounds)\n\n",
              result.groups.size(), result.stats.nodes_visited,
              result.stats.mine_seconds, result.stats.lower_bound_seconds);

  // 4. Show the strongest few groups.
  std::size_t shown = 0;
  for (const RuleGroup& g : result.groups) {
    if (++shown > 5) break;
    std::printf("group %zu: sup=%zu conf=%.2f chi=%.1f, antecedent %zu "
                "items, %zu lower bounds\n",
                shown, g.support_pos, g.confidence, g.chi_square,
                g.antecedent.size(), g.lower_bounds.size());
    if (!g.lower_bounds.empty()) {
      std::printf("  most general member: %s -> class1\n",
                  dataset.ItemName(g.lower_bounds[0][0]).c_str());
    }
  }
  return 0;
}
