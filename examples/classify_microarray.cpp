// End-to-end cancer classification on a synthetic microarray dataset:
// entropy-MDL discretization, IRG classifier vs CBA vs linear SVM —
// exactly the pipeline behind the paper's Table 2.
//
//   ./build/examples/classify_microarray

#include <cstdio>
#include <vector>

#include "classify/cba.h"
#include "classify/evaluation.h"
#include "classify/irg_classifier.h"
#include "classify/svm.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"

int main() {
  using namespace farmer;

  // An ALL/AML-leukemia-shaped dataset (72 samples), columns scaled down
  // for a quick run.
  SyntheticSpec spec = PaperDatasetSpec("ALL", 0.05);
  ExpressionMatrix matrix = GenerateSynthetic(spec);
  const TrainTestSizes sizes = PaperSplitSizes("ALL");
  Split split = StratifiedSplit(matrix.labels(), sizes.train, 1);
  ExpressionMatrix train_m = matrix.SelectRows(split.train);
  ExpressionMatrix test_m = matrix.SelectRows(split.test);
  std::printf("ALL-shaped dataset: %zu train / %zu test samples, %zu "
              "genes\n",
              train_m.num_rows(), test_m.num_rows(), matrix.num_genes());

  // Discretize with the training fold only; apply to both folds.
  Discretization disc = Discretization::FitEntropyMdl(train_m);
  BinaryDataset train = disc.Apply(train_m);
  BinaryDataset test = disc.Apply(test_m);
  std::printf("entropy-MDL kept %zu informative genes (%zu items)\n\n",
              disc.num_kept_genes(), disc.num_items());

  std::vector<ClassLabel> truth;
  for (RowId r = 0; r < test.num_rows(); ++r) {
    truth.push_back(test.label(r));
  }

  // IRG classifier.
  IrgClassifierOptions iopts;  // Paper settings: 0.7 * class size, conf 0.8.
  IrgClassifier irg = IrgClassifier::Train(train, iopts);
  std::vector<ClassLabel> irg_pred;
  for (RowId r = 0; r < test.num_rows(); ++r) {
    irg_pred.push_back(irg.Predict(test.row(r)));
  }
  std::printf("IRG classifier: %zu groups mined, %zu kept after coverage "
              "pruning, accuracy %.1f%%\n",
              irg.num_mined_groups(), irg.entries().size(),
              100 * Accuracy(truth, irg_pred));

  // CBA on FARMER-materialized rules.
  CbaClassifier cba =
      CbaClassifier::Train(train, GenerateRulesWithFarmer(train, 0.7, 0.8));
  std::vector<ClassLabel> cba_pred;
  for (RowId r = 0; r < test.num_rows(); ++r) {
    cba_pred.push_back(cba.Predict(test.row(r)));
  }
  std::printf("CBA:            %zu rules selected, accuracy %.1f%%\n",
              cba.rules().size(), 100 * Accuracy(truth, cba_pred));

  // Linear SVM on the raw expression values.
  LinearSvm svm = LinearSvm::Train(train_m, 1, SvmOptions{});
  std::vector<ClassLabel> svm_pred;
  for (std::size_t r = 0; r < test_m.num_rows(); ++r) {
    svm_pred.push_back(svm.Predict(test_m.row_data(r)));
  }
  std::printf("SVM:            converged in %zu passes, accuracy %.1f%%\n",
              svm.passes_run(), 100 * Accuracy(truth, svm_pred));
  return 0;
}
