// Gene-network discovery with rule groups: the paper's introduction
// (following Creighton & Hanash) suggests association rules to capture
// relations *among genes*. Here the consequent is not a clinical class but
// "target gene is highly expressed": the mined IRGs are directed edges
// {gene states} -> target, a building block of a gene network.
//
//   ./build/examples/gene_network

#include <cstdio>

#include "core/farmer.h"
#include "dataset/discretize.h"
#include "dataset/synthetic.h"

int main() {
  using namespace farmer;

  SyntheticSpec spec;
  spec.name = "network";
  spec.num_rows = 80;
  spec.num_genes = 150;
  spec.num_class1 = 40;
  spec.num_clusters = 5;
  spec.cluster_purity = 0.5;  // Co-expression independent of the class.
  spec.p_informative = 1.0;   // Every gene carries cluster structure.
  spec.shift = 3.0;
  spec.seed = 99;
  ExpressionMatrix matrix = GenerateSynthetic(spec);

  Discretization disc = Discretization::FitEqualDepth(matrix, 3);
  BinaryDataset items = disc.Apply(matrix);

  // Target: gene 0 (a member of the first planted block) in its top
  // expression bin. Relabel rows by that condition and drop gene 0's own
  // items from the antecedent side.
  const std::size_t target_gene = 0;
  const ItemId target_top = disc.ItemFor(
      target_gene, 1e9);  // Largest value -> highest bin.
  BinaryDataset relabeled(items.num_items());
  for (RowId r = 0; r < items.num_rows(); ++r) {
    ItemVector row;
    for (ItemId i : items.row(r)) {
      if (disc.GeneOfItem(i) != target_gene) row.push_back(i);
    }
    const bool target_high = items.RowContains(r, target_top);
    relabeled.AddRow(std::move(row), target_high ? 1 : 0);
  }
  std::printf("target: %s highly expressed in %zu of %zu samples\n\n",
              matrix.GeneName(target_gene).c_str(),
              relabeled.CountLabel(1), relabeled.num_rows());

  MinerOptions opts;
  opts.consequent = 1;
  opts.min_support = 12;
  opts.min_confidence = 0.8;
  opts.mine_lower_bounds = true;
  opts.top_k = 10;  // The ten strongest regulators suffice for the demo.
  FarmerResult result = MineFarmer(relabeled, opts);

  std::printf("%zu candidate network edges (top-k IRGs):\n",
              result.groups.size());
  const auto names = disc.MakeItemNames(matrix);
  for (const RuleGroup& g : result.groups) {
    std::printf("  conf %.2f sup %2zu:", g.confidence, g.support_pos);
    // Print one most-general member as the edge's source genes.
    const ItemVector& src =
        g.lower_bounds.empty() ? g.antecedent : g.lower_bounds.front();
    for (ItemId i : src) std::printf(" %s", names[i].c_str());
    std::printf(" -> %s high\n", matrix.GeneName(target_gene).c_str());
  }
  return 0;
}
