#!/usr/bin/env python3
"""Dependency-free formatting lint for the FARMER tree.

CI's format-check job runs the real clang-format against .clang-format;
this script enforces the subset of that style that can be checked without
a clang binary, so contributors (and the local build) get fast feedback:

  * no tab characters in C++ sources
  * no trailing whitespace
  * lines within the 80-column limit (URLs in comments exempt)
  * files end with exactly one newline
  * no CRLF line endings

Exit status 0 means clean; 1 prints one `path:line: problem` per finding.
"""

import sys
from pathlib import Path

COLUMN_LIMIT = 80
CXX_SUFFIXES = {".cc", ".h"}
ROOTS = ["src", "tests", "bench", "examples", "tools", "fuzz"]


def check_file(path: Path) -> list:
    problems = []
    raw = path.read_bytes()
    if b"\r" in raw:
        problems.append((0, "CRLF line ending"))
    if raw and not raw.endswith(b"\n"):
        problems.append((0, "missing trailing newline"))
    if raw.endswith(b"\n\n"):
        problems.append((0, "multiple trailing newlines"))
    for lineno, line in enumerate(raw.decode("utf-8").splitlines(), start=1):
        if "\t" in line:
            problems.append((lineno, "tab character"))
        if line != line.rstrip():
            problems.append((lineno, "trailing whitespace"))
        if len(line) > COLUMN_LIMIT and "http" not in line:
            problems.append(
                (lineno, f"line is {len(line)} columns (limit {COLUMN_LIMIT})")
            )
    return problems


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    targets = sys.argv[1:]
    if targets:
        files = [Path(t) for t in targets]
    else:
        files = sorted(
            f
            for root in ROOTS
            for f in (repo / root).rglob("*")
            if f.suffix in CXX_SUFFIXES and f.is_file()
        )
    failed = False
    for f in files:
        for lineno, problem in check_file(f):
            failed = True
            print(f"{f.relative_to(repo) if f.is_absolute() else f}:"
                  f"{lineno}: {problem}")
    if failed:
        print("format check failed; see .clang-format for the full style",
              file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
