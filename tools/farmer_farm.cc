// farmer_farm — distributed mining farm front end.
//
//   farmer_farm coordinator --in data.csv --port 7543 [mining flags]
//   farmer_farm worker      --in data.csv --port 7543 [mining flags]
//
// The coordinator loads the dataset, decomposes the search into
// per-root-subtree leases, and serves them to workers over FMP1 (see
// docs/FARM.md). Workers load the *same* dataset with the *same*
// discretization and mining flags — the coordinator verifies both via
// the hello's dataset fingerprint and parameter block and rejects
// mismatched workers. The merged farm output is byte-identical to
// `farmer_cli mine` with the same flags.

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/farmer.h"
#include "core/rule.h"
#include "dataset/discretize.h"
#include "dataset/io.h"
#include "farm/coordinator.h"
#include "farm/worker.h"
#include "obs/metrics.h"

namespace {

using namespace farmer;

// Minimal --flag value parser (same discipline as farmer_cli).
struct Args {
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atol(it->second.c_str());
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

bool ParseArgs(int argc, char** argv, int first,
               const std::vector<std::string>& allowed, Args* args,
               std::string* error) {
  for (int i = first; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      *error = "unexpected argument '" + key + "'";
      return false;
    }
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      *error = "unknown flag '" + key + "'";
      return false;
    }
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      args->flags[key] = argv[++i];
    } else {
      args->flags[key] = "1";
    }
  }
  return true;
}

// Mining + dataset flags shared by both sides; they must produce the
// same MinerOptions or the coordinator rejects the worker's hello.
const std::vector<std::string> kSharedFlags = {
    "--in",     "--minsup",     "--minconf",        "--minchi",
    "--consequent", "--buckets", "--entropy",       "--topk",
    "--all-groups", "--no-lower-bounds", "--host",  "--port"};

std::vector<std::string> WithExtra(std::vector<std::string> flags,
                                   const std::vector<std::string>& extra) {
  flags.insert(flags.end(), extra.begin(), extra.end());
  return flags;
}

const std::vector<std::string> kCoordinatorFlags = WithExtra(
    kSharedFlags,
    {"--heartbeat-timeout", "--max", "--out", "--stats", "--port-file"});
const std::vector<std::string> kWorkerFlags = WithExtra(
    kSharedFlags, {"--name", "--heartbeat", "--max-attempts"});

int Usage() {
  std::fprintf(
      stderr,
      "usage: farmer_farm <coordinator|worker> --in FILE [flags]\n\n"
      "shared mining flags (must match across the farm):\n"
      "  [--minsup N] [--minconf F] [--minchi F] [--consequent N]\n"
      "  [--buckets N | --entropy] [--topk K] [--all-groups] "
      "[--no-lower-bounds]\n\n"
      "coordinator: [--host H] [--port P] [--heartbeat-timeout S]\n"
      "             [--max N] [--out FILE] [--stats] [--port-file FILE]\n"
      "worker:      [--host H] [--port P] [--name NAME] "
      "[--heartbeat S] [--max-attempts N]\n");
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

bool LoadAndDiscretize(const Args& args, ExpressionMatrix* matrix,
                       BinaryDataset* dataset) {
  Status s = LoadExpressionCsv(args.Get("--in"), matrix);
  if (!s.ok()) {
    Fail(s);
    return false;
  }
  Discretization disc;
  if (args.Has("--entropy")) {
    disc = Discretization::FitEntropyMdl(*matrix);
  } else {
    disc = Discretization::FitEqualDepth(
        *matrix, static_cast<int>(args.GetInt("--buckets", 10)));
  }
  *dataset = disc.Apply(*matrix);
  dataset->set_item_names(disc.MakeItemNames(*matrix));
  return true;
}

MinerOptions MakeMinerOptions(const Args& args) {
  MinerOptions opts;
  opts.consequent = static_cast<ClassLabel>(args.GetInt("--consequent", 1));
  opts.min_support = static_cast<std::size_t>(args.GetInt("--minsup", 1));
  opts.min_confidence = args.GetDouble("--minconf", 0.0);
  opts.min_chi_square = args.GetDouble("--minchi", 0.0);
  opts.top_k = static_cast<std::size_t>(args.GetInt("--topk", 0));
  opts.report_all_rule_groups = args.Has("--all-groups");
  opts.mine_lower_bounds = !args.Has("--no-lower-bounds");
  return opts;
}

int CmdCoordinator(const Args& args) {
  if (!args.Has("--in")) return Usage();
  ExpressionMatrix matrix;
  BinaryDataset dataset;
  if (!LoadAndDiscretize(args, &matrix, &dataset)) return 1;
  const MinerOptions opts = MakeMinerOptions(args);

  obs::MetricsRegistry metrics;
  farm::Coordinator::Options copts;
  copts.host = args.Get("--host", "127.0.0.1");
  copts.port = static_cast<int>(args.GetInt("--port", 0));
  copts.heartbeat_timeout_s = args.GetDouble("--heartbeat-timeout", 10.0);
  copts.metrics = &metrics;

  farm::Coordinator coordinator(dataset, opts, copts);
  Status s = coordinator.Start();
  if (!s.ok()) return Fail(s);
  std::fprintf(stderr, "farm: coordinator on %s:%d, %zu leases\n",
               copts.host.c_str(), coordinator.port(),
               coordinator.lease_total());
  const std::string port_file = args.Get("--port-file");
  if (!port_file.empty()) {
    std::FILE* pf = std::fopen(port_file.c_str(), "w");
    if (pf == nullptr) {
      return Fail(Status::IoError("cannot open " + port_file));
    }
    std::fprintf(pf, "%d\n", coordinator.port());
    std::fclose(pf);
  }

  coordinator.WaitForCompletion(0);
  FarmerResult result = coordinator.Finalize();
  const farm::Coordinator::Stats fstats = coordinator.stats();
  std::fprintf(stderr,
               "farm: %llu leases granted, %llu re-leased, %llu results "
               "(%llu duplicate), %llu workers\n",
               static_cast<unsigned long long>(fstats.leases_granted),
               static_cast<unsigned long long>(fstats.releases),
               static_cast<unsigned long long>(fstats.results),
               static_cast<unsigned long long>(fstats.duplicate_results),
               static_cast<unsigned long long>(fstats.workers_seen));
  if (args.Has("--stats")) {
    std::fprintf(stderr, "%s\n", result.stats.ToJson().c_str());
  }
  std::fprintf(stderr,
               "%zu rule groups, %zu nodes, %.3fs mining + %.3fs lower "
               "bounds%s\n",
               result.groups.size(), result.stats.nodes_visited,
               result.stats.mine_seconds,
               result.stats.lower_bound_seconds,
               result.stats.timed_out ? " (TIMED OUT, partial)" : "");

  // The report below is byte-for-byte the `farmer_cli mine` output loop:
  // the farm-smoke CI job and the acceptance test diff the two files.
  std::FILE* out = stdout;
  const std::string out_path = args.Get("--out");
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      return Fail(Status::IoError("cannot open " + out_path));
    }
  }
  const std::size_t limit =
      static_cast<std::size_t>(args.GetInt("--max", 100));
  std::size_t shown = 0;
  const std::string consequent_name =
      "class" + std::to_string(opts.consequent);
  for (const RuleGroup& g : result.groups) {
    if (limit != 0 && ++shown > limit) {
      std::fprintf(out, "... (%zu more; raise --max)\n",
                   result.groups.size() - limit);
      break;
    }
    std::fprintf(out, "%s\n",
                 FormatRuleGroup(g, dataset, consequent_name).c_str());
    for (const ItemVector& lb : g.lower_bounds) {
      std::fprintf(out, "  lower:");
      for (ItemId i : lb) {
        std::fprintf(out, " %s", dataset.ItemName(i).c_str());
      }
      std::fprintf(out, "\n");
    }
  }
  if (out != stdout) std::fclose(out);
  return 0;
}

int CmdWorker(const Args& args) {
  if (!args.Has("--in") || !args.Has("--port")) return Usage();
  ExpressionMatrix matrix;
  BinaryDataset dataset;
  if (!LoadAndDiscretize(args, &matrix, &dataset)) return 1;
  const MinerOptions opts = MakeMinerOptions(args);

  farm::Worker::Options wopts;
  wopts.host = args.Get("--host", "127.0.0.1");
  wopts.port = static_cast<int>(args.GetInt("--port", 0));
  wopts.name = args.Get("--name");
  wopts.heartbeat_interval_s = args.GetDouble("--heartbeat", 1.0);
  wopts.max_connect_attempts =
      static_cast<int>(args.GetInt("--max-attempts", 10));

  farm::Worker worker(dataset, opts, wopts);
  Status s = worker.Run();
  if (!s.ok()) return Fail(s);
  std::fprintf(stderr, "farm: worker done, %llu leases (%llu revoked)\n",
               static_cast<unsigned long long>(worker.leases_completed()),
               static_cast<unsigned long long>(worker.leases_revoked()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];

  const std::vector<std::string>* allowed = nullptr;
  int (*handler)(const Args&) = nullptr;
  if (command == "coordinator") {
    allowed = &kCoordinatorFlags;
    handler = &CmdCoordinator;
  } else if (command == "worker") {
    allowed = &kWorkerFlags;
    handler = &CmdWorker;
  } else {
    std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
    return Usage();
  }

  Args args;
  std::string error;
  if (!ParseArgs(argc, argv, 2, *allowed, &args, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }
  try {
    return handler(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
