// farmer_serve — serves a mined rule-group snapshot over TCP.
//
//   farmer_cli mine --in data.csv --minsup 5 --snapshot-out rules.fsnap
//   farmer_serve --snapshot rules.fsnap --port 7437
//
// Speaks both wire framings of src/serve/protocol.h (line-delimited
// JSON and FQP1 binary frames, auto-detected per connection; see
// docs/SERVING.md). SIGINT/SIGTERM trigger a graceful shutdown: the
// listener closes, parsed requests finish, then the process exits.
// SIGHUP — like the "reload" request — re-reads the snapshot file and
// hot-swaps it in with zero downtime.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/index.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace {

using namespace farmer;

// Async-signal-safe flags, set by the handlers and polled by the main
// thread (which does the actual reload — handlers must not allocate).
volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_reload_requested = 0;

void HandleStopSignal(int /*signum*/) { g_stop_requested = 1; }
void HandleReloadSignal(int /*signum*/) { g_reload_requested = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: farmer_serve --snapshot FILE [--port N] [--host ADDR]\n"
      "                    [--shards N] [--max-connections N]\n"
      "                    [--cache-entries N] [--cache-mb N]\n"
      "                    [--deadline S] [--idle-timeout S]\n"
      "                    [--send-timeout S]\n"
      "                    [--metrics-out FILE] [--trace-out FILE]\n\n"
      "Serves a rule-group snapshot (from `farmer_cli mine\n"
      "--snapshot-out`) over TCP: line-delimited JSON or FQP1 binary\n"
      "frames, auto-detected per connection. --port 0 binds an\n"
      "ephemeral port (printed on startup). SIGINT/SIGTERM shut down\n"
      "gracefully; SIGHUP (or a \"reload\" request) re-reads the\n"
      "snapshot file and hot-swaps it without dropping connections.\n"
      "--metrics-out/--trace-out are written on exit.\n");
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", key.c_str());
      return Usage();
    }
    static const char* kKnown[] = {
        "--snapshot",      "--port",            "--host",
        "--shards",        "--workers",         "--max-connections",
        "--cache-entries", "--cache-mb",        "--deadline",
        "--idle-timeout",  "--send-timeout",    "--metrics-out",
        "--trace-out"};
    bool known = false;
    for (const char* f : kKnown) known = known || key == f;
    if (!known) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", key.c_str());
      return Usage();
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: flag '%s' needs a value\n", key.c_str());
      return Usage();
    }
    flags[key] = argv[++i];
  }
  if (flags.count("--snapshot") == 0) return Usage();

  const auto get_long = [&flags](const char* key, long fallback) {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atol(it->second.c_str());
  };

  serve::RuleGroupSnapshot snapshot;
  Status s = serve::LoadSnapshot(flags["--snapshot"], &snapshot);
  if (!s.ok()) return Fail(s);
  const std::size_t num_groups = snapshot.groups.size();

  serve::Server::Options options;
  if (flags.count("--host") != 0) options.host = flags["--host"];
  options.port = static_cast<int>(get_long("--port", 0));
  // --workers is the pre-event-loop spelling, kept as an alias.
  options.num_shards = static_cast<std::size_t>(
      std::max(1L, get_long("--shards", get_long("--workers", 4))));
  options.max_connections = static_cast<std::size_t>(
      std::max(1L, get_long("--max-connections", 64)));
  options.cache_entries = static_cast<std::size_t>(
      std::max(0L, get_long("--cache-entries", 1024)));
  options.cache_bytes = static_cast<std::size_t>(
      std::max(0L, get_long("--cache-mb", 16))) << 20;
  auto deadline_it = flags.find("--deadline");
  if (deadline_it != flags.end()) {
    options.default_deadline_s = std::atof(deadline_it->second.c_str());
  }
  auto idle_it = flags.find("--idle-timeout");
  if (idle_it != flags.end()) {
    options.idle_timeout_s = std::atof(idle_it->second.c_str());
  }
  auto send_it = flags.find("--send-timeout");
  if (send_it != flags.end()) {
    options.send_timeout_s = std::atof(send_it->second.c_str());
  }
  options.snapshot_path = flags["--snapshot"];

  obs::MetricsRegistry metrics;
  if (flags.count("--metrics-out") != 0) options.metrics = &metrics;
  std::unique_ptr<obs::TraceSession> trace;
  if (flags.count("--trace-out") != 0) {
    trace = std::make_unique<obs::TraceSession>(options.num_shards + 1);
    options.trace = trace.get();
  }

  serve::Server server(
      serve::RuleGroupIndex(std::move(snapshot), options.num_shards),
      options);
  s = server.Start();
  if (!s.ok()) return Fail(s);

  std::signal(SIGINT, &HandleStopSignal);
  std::signal(SIGTERM, &HandleStopSignal);
  std::signal(SIGHUP, &HandleReloadSignal);

  std::fprintf(stderr,
               "farmer_serve: %zu rule groups on %s:%d (%zu shards, "
               "max %zu connections)\n",
               num_groups, options.host.c_str(), server.port(),
               options.num_shards, options.max_connections);
  std::fflush(stderr);

  // Sleep in short ticks until a stop signal lands; shutdown latency is
  // bounded by one tick. SIGHUP reloads are serviced here, off the
  // signal handler.
  while (g_stop_requested == 0) {
    if (g_reload_requested != 0) {
      g_reload_requested = 0;
      s = server.ReloadFromFile(options.snapshot_path);
      if (s.ok()) {
        std::fprintf(stderr,
                     "farmer_serve: reloaded snapshot (version %llu, "
                     "%zu groups)\n",
                     static_cast<unsigned long long>(
                         server.snapshot_version()),
                     server.index()->size());
      } else {
        std::fprintf(stderr, "farmer_serve: reload failed: %s\n",
                     s.ToString().c_str());
      }
      std::fflush(stderr);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "farmer_serve: shutting down\n");
  server.Shutdown();

  if (flags.count("--metrics-out") != 0) {
    s = metrics.WriteJsonFile(flags["--metrics-out"]);
    if (!s.ok()) return Fail(s);
  }
  if (trace != nullptr) {
    s = trace->WriteJsonFile(flags["--trace-out"]);
    if (!s.ok()) return Fail(s);
  }
  return 0;
}
