// farmer_serve — serves a mined rule-group snapshot over TCP.
//
//   farmer_cli mine --in data.csv --minsup 5 --snapshot-out rules.fsnap
//   farmer_serve --snapshot rules.fsnap --port 7437
//
// Speaks both wire framings of src/serve/protocol.h (line-delimited
// JSON and FQP1 binary frames, auto-detected per connection; see
// docs/SERVING.md), plus plain-HTTP `GET /metrics` scrapes on the
// serve port and the optional --metrics-port listener. SIGINT/SIGTERM
// trigger a graceful shutdown: the listener closes, parsed requests
// finish, then the process exits. SIGHUP — like the "reload" request —
// re-reads the snapshot file and hot-swaps it in with zero downtime.
// SIGUSR1 dumps the metrics registry to stderr (and --metrics-out, if
// set) immediately; --metrics-interval-s does the same on a timer.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/index.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace {

using namespace farmer;

// Async-signal-safe flags, set by the handlers and polled by the main
// thread (which does the actual reload — handlers must not allocate).
volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_reload_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

void HandleStopSignal(int /*signum*/) { g_stop_requested = 1; }
void HandleReloadSignal(int /*signum*/) { g_reload_requested = 1; }
void HandleDumpSignal(int /*signum*/) { g_dump_requested = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: farmer_serve --snapshot FILE [--port N] [--host ADDR]\n"
      "                    [--shards N] [--max-connections N]\n"
      "                    [--cache-entries N] [--cache-mb N]\n"
      "                    [--deadline S] [--idle-timeout S]\n"
      "                    [--send-timeout S] [--metrics-port N]\n"
      "                    [--metrics-interval-s S]\n"
      "                    [--slow-query-ms MS] [--slow-query-every N]\n"
      "                    [--metrics-out FILE] [--trace-out FILE]\n\n"
      "Serves a rule-group snapshot (from `farmer_cli mine\n"
      "--snapshot-out`) over TCP: line-delimited JSON or FQP1 binary\n"
      "frames, auto-detected per connection, plus plain-HTTP\n"
      "`GET /metrics` (Prometheus text) on the serve port and on the\n"
      "optional --metrics-port listener (which bypasses the admission\n"
      "bound; 0 = ephemeral). --port 0 binds an ephemeral port\n"
      "(printed on startup). SIGINT/SIGTERM shut down gracefully;\n"
      "SIGHUP (or a \"reload\" request) re-reads the snapshot file and\n"
      "hot-swaps it without dropping connections; SIGUSR1 dumps the\n"
      "metrics registry now, --metrics-interval-s every S seconds.\n"
      "--slow-query-ms logs requests slower than MS as JSON lines on\n"
      "stderr (every Nth per shard with --slow-query-every N).\n"
      "--metrics-out/--trace-out are written on exit.\n");
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", key.c_str());
      return Usage();
    }
    static const char* kKnown[] = {
        "--snapshot",      "--port",            "--host",
        "--shards",        "--workers",         "--max-connections",
        "--cache-entries", "--cache-mb",        "--deadline",
        "--idle-timeout",  "--send-timeout",    "--metrics-out",
        "--trace-out",     "--metrics-port",    "--metrics-interval-s",
        "--slow-query-ms", "--slow-query-every"};
    bool known = false;
    for (const char* f : kKnown) known = known || key == f;
    if (!known) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", key.c_str());
      return Usage();
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: flag '%s' needs a value\n", key.c_str());
      return Usage();
    }
    flags[key] = argv[++i];
  }
  if (flags.count("--snapshot") == 0) return Usage();

  const auto get_long = [&flags](const char* key, long fallback) {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atol(it->second.c_str());
  };

  serve::RuleGroupSnapshot snapshot;
  Status s = serve::LoadSnapshot(flags["--snapshot"], &snapshot);
  if (!s.ok()) return Fail(s);
  const std::size_t num_groups = snapshot.groups.size();

  serve::Server::Options options;
  if (flags.count("--host") != 0) options.host = flags["--host"];
  options.port = static_cast<int>(get_long("--port", 0));
  // --workers is the pre-event-loop spelling, kept as an alias.
  options.num_shards = static_cast<std::size_t>(
      std::max(1L, get_long("--shards", get_long("--workers", 4))));
  options.max_connections = static_cast<std::size_t>(
      std::max(1L, get_long("--max-connections", 64)));
  options.cache_entries = static_cast<std::size_t>(
      std::max(0L, get_long("--cache-entries", 1024)));
  options.cache_bytes = static_cast<std::size_t>(
      std::max(0L, get_long("--cache-mb", 16))) << 20;
  auto deadline_it = flags.find("--deadline");
  if (deadline_it != flags.end()) {
    options.default_deadline_s = std::atof(deadline_it->second.c_str());
  }
  auto idle_it = flags.find("--idle-timeout");
  if (idle_it != flags.end()) {
    options.idle_timeout_s = std::atof(idle_it->second.c_str());
  }
  auto send_it = flags.find("--send-timeout");
  if (send_it != flags.end()) {
    options.send_timeout_s = std::atof(send_it->second.c_str());
  }
  options.snapshot_path = flags["--snapshot"];
  options.metrics_port = static_cast<int>(get_long("--metrics-port", -1));
  auto slow_it = flags.find("--slow-query-ms");
  if (slow_it != flags.end()) {
    options.slow_query_ms = std::atof(slow_it->second.c_str());
  }
  options.slow_query_every = static_cast<std::size_t>(
      std::max(1L, get_long("--slow-query-every", 1)));
  const double metrics_interval_s =
      flags.count("--metrics-interval-s") != 0
          ? std::atof(flags["--metrics-interval-s"].c_str())
          : 0.0;

  // The registry is always attached: scrapes (`GET /metrics`, the
  // "metrics" op) must work without any flag, and the disabled-path
  // savings don't matter for a CLI that exists to be observed.
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  std::unique_ptr<obs::TraceSession> trace;
  if (flags.count("--trace-out") != 0) {
    trace = std::make_unique<obs::TraceSession>(options.num_shards + 1);
    options.trace = trace.get();
  }

  serve::Server server(
      serve::RuleGroupIndex(std::move(snapshot), options.num_shards),
      options);
  s = server.Start();
  if (!s.ok()) return Fail(s);

  std::signal(SIGINT, &HandleStopSignal);
  std::signal(SIGTERM, &HandleStopSignal);
  std::signal(SIGHUP, &HandleReloadSignal);
  std::signal(SIGUSR1, &HandleDumpSignal);

  std::fprintf(stderr,
               "farmer_serve: %zu rule groups on %s:%d (%zu shards, "
               "max %zu connections)\n",
               num_groups, options.host.c_str(), server.port(),
               options.num_shards, options.max_connections);
  if (server.metrics_port() >= 0) {
    std::fprintf(stderr, "farmer_serve: metrics on %s:%d (GET /metrics)\n",
                 options.host.c_str(), server.metrics_port());
  }
  std::fflush(stderr);

  // Dumps the registry snapshot as one JSON line on stderr and, when
  // --metrics-out is set, refreshes the file too. Registry snapshots
  // are safe while shards keep serving; the trace is NOT dumped here —
  // its rings are single-producer and only readable once the server
  // has shut down, so --trace-out stays exit-only.
  const auto dump_metrics = [&metrics, &flags](const char* why) {
    std::fprintf(stderr, "farmer_serve metrics %s %s\n", why,
                 metrics.ToJson().c_str());
    std::fflush(stderr);
    if (flags.count("--metrics-out") != 0) {
      const Status written = metrics.WriteJsonFile(flags["--metrics-out"]);
      if (!written.ok()) {
        std::fprintf(stderr, "farmer_serve: metrics dump failed: %s\n",
                     written.ToString().c_str());
      }
    }
  };

  // Sleep in short ticks until a stop signal lands; shutdown latency is
  // bounded by one tick. SIGHUP reloads and SIGUSR1 dumps are serviced
  // here, off the signal handler.
  auto next_dump = std::chrono::steady_clock::now();
  if (metrics_interval_s > 0) {
    next_dump += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(metrics_interval_s));
  }
  while (g_stop_requested == 0) {
    if (g_reload_requested != 0) {
      g_reload_requested = 0;
      s = server.ReloadFromFile(options.snapshot_path);
      if (s.ok()) {
        std::fprintf(stderr,
                     "farmer_serve: reloaded snapshot (version %llu, "
                     "%zu groups)\n",
                     static_cast<unsigned long long>(
                         server.snapshot_version()),
                     server.index()->size());
      } else {
        std::fprintf(stderr, "farmer_serve: reload failed: %s\n",
                     s.ToString().c_str());
      }
      std::fflush(stderr);
    }
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      dump_metrics("signal");
    }
    if (metrics_interval_s > 0 &&
        std::chrono::steady_clock::now() >= next_dump) {
      dump_metrics("interval");
      next_dump = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(metrics_interval_s));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "farmer_serve: shutting down\n");
  server.Shutdown();

  if (flags.count("--metrics-out") != 0) {
    s = metrics.WriteJsonFile(flags["--metrics-out"]);
    if (!s.ok()) return Fail(s);
  }
  if (trace != nullptr) {
    s = trace->WriteJsonFile(flags["--trace-out"]);
    if (!s.ok()) return Fail(s);
  }
  return 0;
}
