// farmer_cli — command-line front end for the FARMER library.
//
//   farmer_cli generate --name BC --scale 0.05 --out data.csv
//   farmer_cli stats    --in data.csv
//   farmer_cli mine     --in data.csv --minsup 5 --minconf 0.9 --minchi 10
//   farmer_cli classify --in data.csv --train 60 --method irg
//
// Datasets are expression CSVs in the format of LoadExpressionCsv
// (`class,<gene>,...` header; one sample per line).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <algorithm>

#include "classify/cba.h"
#include "classify/evaluation.h"
#include "classify/irg_classifier.h"
#include "classify/svm.h"
#include "core/farmer.h"
#include "core/rule.h"
#include "core/rule_io.h"
#include "dataset/discretize.h"
#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "serve/snapshot.h"
#include "util/simd/simd.h"

namespace {

using namespace farmer;

// Minimal --flag value parser: flags["--in"] == "data.csv".
struct Args {
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atol(it->second.c_str());
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

// Parses `--flag [value]` pairs. A token that is neither a flag nor a
// flag's value is a usage error; so is a flag outside `allowed`. Exit
// code discipline: usage errors are reported by the caller with exit 2,
// runtime failures (unreadable files etc.) with exit 1.
bool ParseArgs(int argc, char** argv, int first,
               const std::vector<std::string>& allowed, Args* args,
               std::string* error) {
  for (int i = first; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      *error = "unexpected argument '" + key + "'";
      return false;
    }
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      *error = "unknown flag '" + key + "'";
      return false;
    }
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      args->flags[key] = argv[++i];
    } else {
      args->flags[key] = "1";
    }
  }
  return true;
}

// Per-command flag whitelists (usage below must list every entry).
const std::vector<std::string> kGenerateFlags = {
    "--out", "--name", "--scale", "--rows", "--genes", "--class1",
    "--seed"};
const std::vector<std::string> kStatsFlags = {"--in", "--buckets",
                                              "--entropy"};
const std::vector<std::string> kMineFlags = {
    "--in",          "--minsup",       "--minconf",
    "--minchi",      "--minlift",      "--minconviction",
    "--minentropy",  "--mingini",      "--mincorr",
    "--consequent",  "--buckets",      "--entropy",
    "--topk",        "--all-groups",   "--no-lower-bounds",
    "--timeout",     "--threads",      "--max",
    "--out",         "--model-out",    "--snapshot-out",
    "--trace-out",   "--metrics-out",  "--progress",
    "--stats",       "--simd"};
const std::vector<std::string> kPredictFlags = {"--in", "--model"};
const std::vector<std::string> kClassifyFlags = {
    "--in", "--train", "--method", "--seed", "--minsup-frac",
    "--minconf"};
const std::vector<std::string> kSimdFlags = {"--check"};

int Usage() {
  std::fprintf(stderr,
               "usage: farmer_cli <command> [flags]\n\n"
               "commands:\n"
               "  generate  --out FILE [--name BC|LC|CT|PC|ALL] "
               "[--scale F] [--rows N --genes N --class1 N] [--seed N]\n"
               "  stats     --in FILE [--buckets N | --entropy]\n"
               "  mine      --in FILE [--minsup N] [--minconf F] "
               "[--minchi F] [--minlift F] [--minconviction F]\n"
               "            [--minentropy F] [--mingini F] [--mincorr F] "
               "[--consequent N]\n"
               "            [--buckets N | --entropy] [--topk K] "
               "[--all-groups] [--no-lower-bounds]\n"
               "            [--timeout S] [--threads N] [--max N] "
               "[--out FILE] [--model-out PREFIX]\n"
               "            [--snapshot-out FILE] [--trace-out FILE] "
               "[--metrics-out FILE] [--progress [SECS]] [--stats]\n"
               "            [--simd auto|scalar|sse42|avx2|avx512]\n"
               "  predict   --in FILE --model PREFIX\n"
               "  classify  --in FILE --train N [--method irg|cba|svm] "
               "[--seed N] [--minsup-frac F] [--minconf F]\n"
               "  simd      [--check LEVEL]   (report / probe SIMD kernel "
               "tiers; --check exits 0 iff LEVEL is usable)\n");
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int CmdGenerate(const Args& args) {
  const std::string out = args.Get("--out");
  if (out.empty()) return Usage();
  SyntheticSpec spec;
  if (args.Has("--name")) {
    spec = PaperDatasetSpec(args.Get("--name"),
                            args.GetDouble("--scale", 0.05));
  } else {
    spec.num_rows = static_cast<std::size_t>(args.GetInt("--rows", 100));
    spec.num_genes = static_cast<std::size_t>(args.GetInt("--genes", 1000));
    spec.num_class1 =
        static_cast<std::size_t>(args.GetInt("--class1", spec.num_rows / 2));
  }
  if (args.Has("--seed")) {
    spec.seed = static_cast<std::uint64_t>(args.GetInt("--seed", 1));
  }
  ExpressionMatrix m = GenerateSynthetic(spec);
  Status s = SaveExpressionCsv(m, out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %zu samples x %zu genes (%zu class-1) to %s\n",
              m.num_rows(), m.num_genes(), m.CountLabel(1), out.c_str());
  return 0;
}

// Loads + discretizes per the shared flags; returns false on failure.
// A non-null `trace` records one span per phase on the control lane.
bool LoadAndDiscretize(const Args& args, ExpressionMatrix* matrix,
                       Discretization* disc, BinaryDataset* dataset,
                       obs::TraceSession* trace = nullptr) {
  {
    obs::ScopedSpan span(trace, obs::TraceSession::kMainLane, "load_csv");
    Status s = LoadExpressionCsv(args.Get("--in"), matrix);
    if (!s.ok()) {
      Fail(s);
      return false;
    }
    span.Arg("rows", static_cast<std::int64_t>(matrix->num_rows()));
    span.Arg("genes", static_cast<std::int64_t>(matrix->num_genes()));
  }
  obs::ScopedSpan span(trace, obs::TraceSession::kMainLane, "discretize");
  if (args.Has("--entropy")) {
    *disc = Discretization::FitEntropyMdl(*matrix);
  } else {
    *disc = Discretization::FitEqualDepth(
        *matrix, static_cast<int>(args.GetInt("--buckets", 10)));
  }
  *dataset = disc->Apply(*matrix);
  dataset->set_item_names(disc->MakeItemNames(*matrix));
  span.Arg("items", static_cast<std::int64_t>(dataset->num_items()));
  return true;
}

int CmdStats(const Args& args) {
  if (!args.Has("--in")) return Usage();
  ExpressionMatrix matrix;
  Discretization disc;
  BinaryDataset dataset;
  if (!LoadAndDiscretize(args, &matrix, &disc, &dataset)) return 1;
  std::printf("samples:        %zu\n", matrix.num_rows());
  std::printf("genes:          %zu\n", matrix.num_genes());
  std::printf("classes:        %zu\n", dataset.num_classes());
  for (std::size_t c = 0; c < dataset.num_classes(); ++c) {
    std::printf("  class %zu:      %zu rows\n", c,
                dataset.CountLabel(static_cast<ClassLabel>(c)));
  }
  std::printf("kept genes:     %zu\n", disc.num_kept_genes());
  std::printf("items:          %zu\n", dataset.num_items());
  std::printf("avg row length: %.1f\n", dataset.AverageRowLength());
  return 0;
}

int CmdMine(const Args& args) {
  if (!args.Has("--in")) return Usage();
  const std::size_t threads =
      static_cast<std::size_t>(std::max(1L, args.GetInt("--threads", 1)));

  // Observability hooks, each opt-in via its own flag.
  std::unique_ptr<obs::TraceSession> trace;
  if (args.Has("--trace-out")) {
    trace = std::make_unique<obs::TraceSession>(threads + 1);
  }
  obs::MetricsRegistry metrics;

  ExpressionMatrix matrix;
  Discretization disc;
  BinaryDataset dataset;
  if (!LoadAndDiscretize(args, &matrix, &disc, &dataset, trace.get())) {
    return 1;
  }

  MinerOptions opts;
  opts.consequent =
      static_cast<ClassLabel>(args.GetInt("--consequent", 1));
  opts.min_support = static_cast<std::size_t>(args.GetInt("--minsup", 1));
  opts.min_confidence = args.GetDouble("--minconf", 0.0);
  opts.min_chi_square = args.GetDouble("--minchi", 0.0);
  opts.min_lift = args.GetDouble("--minlift", 0.0);
  opts.min_conviction = args.GetDouble("--minconviction", 0.0);
  opts.min_entropy_gain = args.GetDouble("--minentropy", 0.0);
  opts.min_gini_gain = args.GetDouble("--mingini", 0.0);
  opts.min_correlation = args.GetDouble("--mincorr", 0.0);
  opts.top_k = static_cast<std::size_t>(args.GetInt("--topk", 0));
  opts.report_all_rule_groups = args.Has("--all-groups");
  opts.mine_lower_bounds = !args.Has("--no-lower-bounds");
  if (args.Has("--simd")) {
    // Validate up front for a usage-style error instead of the fatal
    // check the miner would fire on an unusable level.
    const std::string level = args.Get("--simd");
    if (level != "auto" && !simd::Configure(level)) {
      std::fprintf(stderr,
                   "error: --simd '%s' is not usable here (supported: "
                   "%s or auto)\n",
                   level.c_str(), simd::SupportedLevelsCsv().c_str());
      return 2;
    }
    opts.simd_level = level;
  }
  const double timeout = args.GetDouble("--timeout", 0.0);
  if (timeout > 0) opts.deadline = Deadline::After(timeout);
  opts.num_threads = threads;
  opts.trace = trace.get();
  if (args.Has("--metrics-out")) opts.metrics = &metrics;

  std::unique_ptr<obs::ProgressCounters> progress;
  std::unique_ptr<obs::ProgressReporter> reporter;
  if (args.Has("--progress")) {
    progress = std::make_unique<obs::ProgressCounters>();
    opts.progress = progress.get();
    obs::ProgressReporter::Options ropts;
    ropts.interval_seconds = args.GetDouble("--progress", 1.0);
    ropts.deadline = opts.deadline;
    reporter =
        std::make_unique<obs::ProgressReporter>(progress.get(), ropts);
  }

  FarmerResult result = MineFarmer(dataset, opts);
  if (reporter != nullptr) reporter->Stop();
  if (args.Has("--stats")) {
    std::fprintf(stderr, "%s\n", result.stats.ToJson().c_str());
  }
  if (trace != nullptr) {
    const std::string path = args.Get("--trace-out");
    Status s = trace->WriteJsonFile(path);
    if (!s.ok()) return Fail(s);
    std::fprintf(stderr, "trace written to %s (%llu events dropped)\n",
                 path.c_str(),
                 static_cast<unsigned long long>(trace->total_dropped()));
  }
  if (args.Has("--metrics-out")) {
    const std::string path = args.Get("--metrics-out");
    Status s = metrics.WriteJsonFile(path);
    if (!s.ok()) return Fail(s);
    std::fprintf(stderr, "metrics written to %s\n", path.c_str());
  }
  std::fprintf(stderr,
               "%zu rule groups, %zu nodes, %.3fs mining + %.3fs lower "
               "bounds%s\n",
               result.groups.size(), result.stats.nodes_visited,
               result.stats.mine_seconds,
               result.stats.lower_bound_seconds,
               result.stats.timed_out ? " (TIMED OUT, partial)" : "");

  std::FILE* out = stdout;
  const std::string out_path = args.Get("--out");
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      return Fail(Status::IoError("cannot open " + out_path));
    }
  }
  const std::size_t limit =
      static_cast<std::size_t>(args.GetInt("--max", 100));
  std::size_t shown = 0;
  const std::string consequent_name =
      "class" + std::to_string(opts.consequent);
  for (const RuleGroup& g : result.groups) {
    if (limit != 0 && ++shown > limit) {
      std::fprintf(out, "... (%zu more; raise --max)\n",
                   result.groups.size() - limit);
      break;
    }
    std::fprintf(out, "%s\n",
                 FormatRuleGroup(g, dataset, consequent_name).c_str());
    for (const ItemVector& lb : g.lower_bounds) {
      std::fprintf(out, "  lower:");
      for (ItemId i : lb) {
        std::fprintf(out, " %s", dataset.ItemName(i).c_str());
      }
      std::fprintf(out, "\n");
    }
  }
  if (out != stdout) std::fclose(out);

  // Optional model export: cut points + machine-readable rule groups.
  const std::string model = args.Get("--model-out");
  if (!model.empty()) {
    Status s = disc.Save(model + ".cuts");
    if (!s.ok()) return Fail(s);
    s = SaveRuleGroups(result.groups, dataset.num_rows(), model + ".rules");
    if (!s.ok()) return Fail(s);
    std::fprintf(stderr, "model written to %s.cuts / %s.rules\n",
                 model.c_str(), model.c_str());
  }

  // Optional binary snapshot for the query server (see docs/SERVING.md).
  const std::string snapshot_path = args.Get("--snapshot-out");
  if (!snapshot_path.empty()) {
    serve::RuleGroupSnapshot snapshot;
    snapshot.groups = result.groups;
    snapshot.num_rows = dataset.num_rows();
    snapshot.params = serve::SnapshotParams::FromMinerOptions(opts);
    snapshot.fingerprint = serve::SnapshotFingerprint::FromDataset(dataset);
    Status s = serve::SaveSnapshot(snapshot, snapshot_path);
    if (!s.ok()) return Fail(s);
    std::fprintf(stderr, "snapshot written to %s (%zu groups)\n",
                 snapshot_path.c_str(), result.groups.size());
  }
  return 0;
}

int CmdPredict(const Args& args) {
  if (!args.Has("--in") || !args.Has("--model")) return Usage();
  const std::string model = args.Get("--model");
  Discretization disc;
  Status s = Discretization::Load(model + ".cuts", &disc);
  if (!s.ok()) return Fail(s);
  std::vector<RuleGroup> groups;
  std::size_t train_rows = 0;
  s = LoadRuleGroups(model + ".rules", &groups, &train_rows);
  if (!s.ok()) return Fail(s);
  ExpressionMatrix matrix;
  s = LoadExpressionCsv(args.Get("--in"), &matrix);
  if (!s.ok()) return Fail(s);

  // Rank groups by (confidence, support) and predict by first match
  // against any lower bound (or the upper bound when absent).
  std::sort(groups.begin(), groups.end(),
            [](const RuleGroup& a, const RuleGroup& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.support_pos > b.support_pos;
            });
  BinaryDataset items = disc.Apply(matrix);
  std::size_t matched_rows = 0;
  for (RowId r = 0; r < items.num_rows(); ++r) {
    const ItemVector& row = items.row(r);
    const RuleGroup* hit = nullptr;
    for (const RuleGroup& g : groups) {
      const auto matches = [&row](const ItemVector& antecedent) {
        return std::includes(row.begin(), row.end(), antecedent.begin(),
                             antecedent.end());
      };
      bool match = g.lower_bounds.empty() ? matches(g.antecedent) : false;
      for (const ItemVector& lb : g.lower_bounds) {
        if (matches(lb)) {
          match = true;
          break;
        }
      }
      if (match) {
        hit = &g;
        break;
      }
    }
    if (hit != nullptr) {
      ++matched_rows;
      std::printf("row %u: MATCH conf=%.3f sup=%zu\n", r, hit->confidence,
                  hit->support_pos);
    } else {
      std::printf("row %u: no-match\n", r);
    }
  }
  std::fprintf(stderr, "%zu of %zu rows matched a rule group\n",
               matched_rows, items.num_rows());
  return 0;
}

int CmdSimd(const Args& args) {
  if (args.Has("--check")) {
    // Exit 0 iff the named level is usable in this binary on this host.
    // CI uses this to skip matrix entries the runner cannot execute.
    const std::string level = args.Get("--check");
    simd::Level parsed;
    const bool usable = level == "auto" ||
                        (simd::ParseLevel(level, &parsed) &&
                         simd::LevelSupported(parsed));
    std::printf("%s: %s\n", level.c_str(),
                usable ? "supported" : "unsupported");
    return usable ? 0 : 1;
  }
  std::printf("active: %s\n", simd::LevelName(simd::ActiveLevel()));
  std::printf("detected best: %s\n",
              simd::LevelName(simd::DetectBestLevel()));
  std::printf("supported: %s\n", simd::SupportedLevelsCsv().c_str());
  for (int i = 0; i < simd::kNumLevels; ++i) {
    const auto level = static_cast<simd::Level>(i);
    std::printf("  %-6s compiled=%s host=%s\n", simd::LevelName(level),
                simd::LevelCompiled(level) ? "yes" : "no",
                simd::LevelSupported(level) ? "yes" : "no");
  }
  return 0;
}

int CmdClassify(const Args& args) {
  if (!args.Has("--in") || !args.Has("--train")) return Usage();
  ExpressionMatrix matrix;
  Status s = LoadExpressionCsv(args.Get("--in"), &matrix);
  if (!s.ok()) return Fail(s);
  const auto train_size =
      static_cast<std::size_t>(args.GetInt("--train", 0));
  if (train_size == 0 || train_size >= matrix.num_rows()) {
    std::fprintf(stderr, "error: --train must be in (0, #rows)\n");
    return 2;
  }
  Split split = StratifiedSplit(
      matrix.labels(), train_size,
      static_cast<std::uint64_t>(args.GetInt("--seed", 1)));
  ExpressionMatrix train_m = matrix.SelectRows(split.train);
  ExpressionMatrix test_m = matrix.SelectRows(split.test);

  std::vector<ClassLabel> truth(test_m.labels());
  std::vector<ClassLabel> predicted;
  const std::string method = args.Get("--method", "irg");

  if (method == "svm") {
    LinearSvm svm = LinearSvm::Train(train_m, 1, SvmOptions{});
    for (std::size_t r = 0; r < test_m.num_rows(); ++r) {
      predicted.push_back(svm.Predict(test_m.row_data(r)));
    }
  } else {
    Discretization disc = Discretization::FitEntropyMdl(train_m);
    BinaryDataset train = disc.Apply(train_m);
    BinaryDataset test = disc.Apply(test_m);
    if (method == "cba") {
      CbaClassifier cba = CbaClassifier::Train(
          train,
          GenerateRulesWithFarmer(train,
                                  args.GetDouble("--minsup-frac", 0.7),
                                  args.GetDouble("--minconf", 0.8)));
      for (RowId r = 0; r < test.num_rows(); ++r) {
        predicted.push_back(cba.Predict(test.row(r)));
      }
    } else if (method == "irg") {
      IrgClassifierOptions opts;
      opts.min_support_fraction = args.GetDouble("--minsup-frac", 0.7);
      opts.min_confidence = args.GetDouble("--minconf", 0.8);
      IrgClassifier clf = IrgClassifier::Train(train, opts);
      for (RowId r = 0; r < test.num_rows(); ++r) {
        predicted.push_back(clf.Predict(test.row(r)));
      }
    } else {
      std::fprintf(stderr, "error: unknown --method '%s'\n",
                   method.c_str());
      return 2;
    }
  }
  std::printf("method=%s train=%zu test=%zu accuracy=%.2f%%\n",
              method.c_str(), split.train.size(), split.test.size(),
              100.0 * Accuracy(truth, predicted));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];

  const std::vector<std::string>* allowed = nullptr;
  int (*handler)(const Args&) = nullptr;
  if (command == "generate") {
    allowed = &kGenerateFlags;
    handler = &CmdGenerate;
  } else if (command == "stats") {
    allowed = &kStatsFlags;
    handler = &CmdStats;
  } else if (command == "mine") {
    allowed = &kMineFlags;
    handler = &CmdMine;
  } else if (command == "predict") {
    allowed = &kPredictFlags;
    handler = &CmdPredict;
  } else if (command == "classify") {
    allowed = &kClassifyFlags;
    handler = &CmdClassify;
  } else if (command == "simd") {
    allowed = &kSimdFlags;
    handler = &CmdSimd;
  } else {
    std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
    return Usage();
  }

  Args args;
  std::string error;
  if (!ParseArgs(argc, argv, 2, *allowed, &args, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }
  try {
    return handler(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
