#!/usr/bin/env python3
"""Project-specific lint for the FARMER tree.

Clang's -Wthread-safety proves the lock discipline *inside* the
annotated vocabulary (src/util/sync.h); this linter enforces the
project rules the compiler cannot express — that the vocabulary is the
only way to lock at all, that the SIMD kernel TUs stay pure, that the
event-loop regions never block, and that per-ISA -m flags stay confined
to their own translation units.

The engine is deliberately lexical (comments and string literals are
stripped before token rules run) and dependency-free: it needs only a
Python 3 interpreter, so it runs identically on a contributor laptop
without a clang toolchain, in CI, and as a ctest target. The one
context-sensitive rule (isa-flags) reads compile_commands.json, which
any CMake configure emits.

Rules (also: --list-rules):

  raw-sync
      No std::mutex / std::lock_guard / std::unique_lock /
      std::scoped_lock / std::condition_variable (or their headers)
      anywhere under src/ except src/util/sync.h. All locking goes
      through the annotated Mutex / MutexLock / CondVar wrappers so the
      thread-safety analysis sees every acquisition.

  kernel-purity
      The SIMD kernel TUs (src/util/simd/kernels_*.cc and the shared
      .inc) must not allocate or perform I/O: no new/delete/malloc, no
      containers, no stdio/iostream. They are called from the innermost
      mining loops and must stay branch-and-arithmetic only.

  nodiscard-contract
      The error-carrying types stay [[nodiscard]]: class Status and
      class StatusOr in src/util/status.h, and the Bitset count/query
      kernels in src/util/bitset.h. The compiler enforces call sites;
      this rule stops the attribute itself from quietly disappearing.

  event-loop-blocking
      Code between `// farmer-lint: begin(event-loop)` and
      `// farmer-lint: end(event-loop)` runs on a serve shard's epoll
      thread and must never block: no sleeps, no file streams, no
      fopen/system/popen, no thread joins, no snapshot loads.
      Unbalanced markers are themselves findings.

  isa-flags
      (compile_commands.json) Any TU compiled with -mavx*/-msse*/
      -mpopcnt/-mfma/-mbmi* must be one of the per-tier kernel TUs.
      A global ISA flag would license vector instructions outside the
      runtime-dispatch boundary and crash older hosts.

  suppression-justification
      A finding may be waived with
          // farmer-lint: allow(<rule>) -- <justification>
      on the flagged line or the line above. The rule name must exist
      and the justification must be at least 10 characters; bare or
      unknown `farmer-lint:` directives are findings.

Exit status: 0 clean, 1 findings (one `path:line: [rule] message` per
line), 2 usage/internal error.

Self-test: --self-test replays tools/lint_fixtures/ — each fixture
declares the path it pretends to live at and the exact rule set it must
trigger — so the linter's own regressions fail CI like any other test.
"""

import argparse
import json
import re
import sys
from pathlib import Path

LINT_SUFFIXES = {".cc", ".h", ".inc"}

RULE_DOCS = {
    "raw-sync": "raw <mutex>/<condition_variable> use outside util/sync.h",
    "kernel-purity": "allocation or I/O in a SIMD kernel TU",
    "nodiscard-contract": "[[nodiscard]] missing from an error-carrying API",
    "event-loop-blocking": "blocking call inside an event-loop region",
    "isa-flags": "per-ISA -m flag on a non-kernel TU",
    "suppression-justification": "malformed farmer-lint directive",
}

KERNEL_TU_RE = re.compile(
    r"src/util/simd/kernels_[a-z0-9_]+\.(cc|inc)$"
)

ISA_FLAG_RE = re.compile(r"^-m(avx|sse|popcnt|fma|bmi)")

DIRECTIVE_RE = re.compile(r"//\s*farmer-lint:\s*(?P<body>.*?)\s*$")
ALLOW_RE = re.compile(
    r"^allow\((?P<rule>[a-z0-9-]+)\)(?:\s*--\s*(?P<why>.*))?$"
)
REGION_RE = re.compile(r"^(?P<kind>begin|end)\((?P<region>[a-z-]+)\)$")

RAW_SYNC_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"
    r"|std::lock_guard\b|std::unique_lock\b|std::scoped_lock\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>"
)

KERNEL_PURITY_RE = re.compile(
    r"\bnew\b|\bdelete\b|\bmalloc\b|\bcalloc\b|\brealloc\b|\bfree\s*\("
    r"|std::vector\b|std::string\b|std::cout\b|std::cerr\b"
    r"|\bf?printf\s*\(|\bfopen\s*\(|\bfread\s*\(|\bfwrite\s*\("
    r"|#\s*include\s*<(?:cstdio|cstdlib|iostream|fstream|sstream"
    r"|string|vector|memory|new)>"
)

EVENT_LOOP_BLOCKING_RE = re.compile(
    r"std::this_thread::sleep\w*|\busleep\s*\(|\bnanosleep\s*\("
    r"|(?:::|\s|^)sleep\s*\(|\bsystem\s*\(|\bpopen\s*\(|\bfopen\s*\("
    r"|\bifstream\b|\bofstream\b|\bfstream\b"
    r"|\bLoadSnapshot\s*\(|\bSaveSnapshot\s*\(|\bReloadFromFile\s*\("
    r"|\.join\s*\(|\bgetline\s*\("
)

# Method names in src/util/bitset.h whose declarations must carry
# [[nodiscard]] (the count/query kernels — dropping their result is
# always a bug: they have no side effects).
BITSET_NODISCARD_METHODS = [
    "Test",
    "Count",
    "CountPrefix",
    "None",
    "Any",
    "IsSubsetOf",
    "IsProperSubsetOf",
    "Intersects",
    "IntersectCount",
    "AndCount",
    "AndCountPrefix",
    "IntersectsAllOf",
    "FindFirst",
    "FindNext",
    "Hash",
]


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text):
    """Blanks comments and string/char literals, preserving line
    structure, so token rules never fire on prose or log messages."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def parse_directives(raw_lines, path):
    """Returns (allows, regions, findings): allow map {line: rule},
    region events [(line, kind, region)], and malformed-directive
    findings."""
    allows = {}
    regions = []
    findings = []
    for lineno, line in enumerate(raw_lines, start=1):
        m = DIRECTIVE_RE.search(line)
        if not m:
            continue
        body = m.group("body")
        am = ALLOW_RE.match(body)
        if am:
            rule = am.group("rule")
            why = (am.group("why") or "").strip()
            if rule not in RULE_DOCS:
                findings.append(Finding(
                    path, lineno, "suppression-justification",
                    f"allow() names unknown rule '{rule}'"))
            elif len(why) < 10:
                findings.append(Finding(
                    path, lineno, "suppression-justification",
                    "allow() needs a justification of >= 10 chars "
                    "after ' -- '"))
            else:
                allows[lineno] = rule
            continue
        rm = REGION_RE.match(body)
        if rm:
            regions.append((lineno, rm.group("kind"), rm.group("region")))
            continue
        findings.append(Finding(
            path, lineno, "suppression-justification",
            f"unrecognized farmer-lint directive '{body}'"))
    return allows, regions, findings


def event_loop_spans(regions, path, findings):
    """Pairs begin/end markers into line spans; unbalanced markers are
    findings."""
    spans = []
    open_line = None
    for lineno, kind, region in regions:
        if region != "event-loop":
            findings.append(Finding(
                path, lineno, "suppression-justification",
                f"unknown lint region '{region}'"))
            continue
        if kind == "begin":
            if open_line is not None:
                findings.append(Finding(
                    path, lineno, "event-loop-blocking",
                    "nested begin(event-loop) marker"))
                continue
            open_line = lineno
        else:
            if open_line is None:
                findings.append(Finding(
                    path, lineno, "event-loop-blocking",
                    "end(event-loop) without a matching begin"))
                continue
            spans.append((open_line, lineno))
            open_line = None
    if open_line is not None:
        findings.append(Finding(
            path, open_line, "event-loop-blocking",
            "begin(event-loop) never closed"))
    return spans


def scan_regex(pattern, code_lines, path, rule, message):
    findings = []
    for lineno, line in enumerate(code_lines, start=1):
        m = pattern.search(line)
        if m:
            findings.append(Finding(
                path, lineno, rule, f"{message}: '{m.group(0).strip()}'"))
    return findings


def check_nodiscard_contract(path, code_text, raw_text):
    """status.h must keep its classes [[nodiscard]]; bitset.h must keep
    the attribute on every query kernel."""
    findings = []
    name = path.replace("\\", "/")
    if name.endswith("src/util/status.h"):
        for cls in ("Status", "StatusOr"):
            if not re.search(
                    r"class\s+\[\[nodiscard\]\]\s+" + cls + r"\b",
                    code_text):
                findings.append(Finding(
                    path, 1, "nodiscard-contract",
                    f"class {cls} must be declared "
                    f"'class [[nodiscard]] {cls}'"))
    if name.endswith("src/util/bitset.h"):
        for method in BITSET_NODISCARD_METHODS:
            decl = re.search(r"\b" + method + r"\s*\(", code_text)
            if decl is None:
                findings.append(Finding(
                    path, 1, "nodiscard-contract",
                    f"Bitset::{method} declaration not found"))
                continue
            # The declaration runs from the previous ; { } or access
            # specifier to the method name; [[nodiscard]] must appear
            # in that span.
            start = max(
                code_text.rfind(";", 0, decl.start()),
                code_text.rfind("{", 0, decl.start()),
                code_text.rfind("}", 0, decl.start()),
            )
            # Checked on stripped text so a commented-out
            # [[nodiscard]] cannot satisfy the contract.
            span = code_text[start + 1:decl.start()]
            if "[[nodiscard]]" not in span:
                line = code_text.count("\n", 0, decl.start()) + 1
                findings.append(Finding(
                    path, line, "nodiscard-contract",
                    f"Bitset::{method} lost its [[nodiscard]]"))
    return findings


def lint_text(path, raw_text):
    """Lints one file's content as if it lived at `path` (repo-relative,
    forward slashes). Returns surviving findings."""
    name = path.replace("\\", "/")
    raw_lines = raw_text.splitlines()
    code_text = strip_code(raw_text)
    code_lines = code_text.splitlines()

    allows, regions, findings = parse_directives(raw_lines, path)
    spans = event_loop_spans(regions, path, findings)

    in_src = name.startswith("src/") or "/src/" in name
    if in_src and not name.endswith("src/util/sync.h"):
        findings += scan_regex(
            RAW_SYNC_RE, code_lines, path, "raw-sync",
            "raw synchronization primitive (use util/sync.h)")

    if KERNEL_TU_RE.search(name):
        findings += scan_regex(
            KERNEL_PURITY_RE, code_lines, path, "kernel-purity",
            "allocation/I-O in a SIMD kernel TU")

    for begin, end in spans:
        for lineno in range(begin + 1, end):
            line = code_lines[lineno - 1] if lineno <= len(code_lines) \
                else ""
            m = EVENT_LOOP_BLOCKING_RE.search(line)
            if m:
                findings.append(Finding(
                    path, lineno, "event-loop-blocking",
                    "blocking call on the shard event loop: "
                    f"'{m.group(0).strip()}'"))

    findings += check_nodiscard_contract(path, code_text, raw_text)

    # Apply suppressions: an allow on the finding's line or the line
    # directly above waives findings of exactly that rule.
    kept = []
    used_allows = set()
    for f in findings:
        rule_here = allows.get(f.line)
        rule_above = allows.get(f.line - 1)
        if rule_here == f.rule:
            used_allows.add(f.line)
            continue
        if rule_above == f.rule:
            used_allows.add(f.line - 1)
            continue
        kept.append(f)
    for lineno in sorted(set(allows) - used_allows):
        kept.append(Finding(
            path, lineno, "suppression-justification",
            f"allow({allows[lineno]}) suppresses nothing (stale?)"))
    kept.sort(key=lambda f: (f.line, f.rule))
    return kept


def check_isa_flags(entries, root):
    """compile_commands.json entries: per-ISA -m flags only on kernel
    TUs."""
    findings = []
    for entry in entries:
        args = entry.get("arguments")
        if args is None:
            args = entry.get("command", "").split()
        flags = [a for a in args if ISA_FLAG_RE.match(a)]
        if not flags:
            continue
        file_path = entry.get("file", "")
        try:
            rel = str(Path(file_path).resolve().relative_to(root))
        except ValueError:
            rel = file_path
        rel = rel.replace("\\", "/")
        if not KERNEL_TU_RE.search(rel):
            findings.append(Finding(
                rel, 1, "isa-flags",
                f"ISA flags {' '.join(sorted(set(flags)))} on a "
                "non-kernel TU (confine -m flags to "
                "src/util/simd/kernels_*.cc)"))
    return findings


def iter_lintable(root):
    for sub in ("src",):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in LINT_SUFFIXES and path.is_file():
                yield path


def run_lint(root, compdb, explicit_paths):
    findings = []
    paths = ([Path(p) for p in explicit_paths]
             if explicit_paths else list(iter_lintable(root)))
    for path in paths:
        try:
            rel = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(path)
        rel = rel.replace("\\", "/")
        findings += lint_text(rel, path.read_text(encoding="utf-8"))
    if compdb is not None:
        if compdb.is_file():
            entries = json.loads(compdb.read_text(encoding="utf-8"))
            findings += check_isa_flags(entries, root.resolve())
        else:
            print(f"note: compdb {compdb} not found; "
                  "isa-flags rule skipped", file=sys.stderr)
    return findings


FIXTURE_RE = re.compile(
    r"//\s*farmer-lint-fixture:\s*path=(?P<path>\S+)\s+"
    r"expect=(?P<expect>\S+)")


def run_self_test(fixtures_dir):
    """Replays the fixture corpus: every fixture must produce exactly
    its declared rule set (order-insensitive, duplicates collapsed)."""
    failures = []
    ran = 0
    for path in sorted(fixtures_dir.iterdir()):
        if path.suffix == ".json":
            spec = json.loads(path.read_text(encoding="utf-8"))
            expected = set(spec.get("expect", []))
            found = {f.rule for f in check_isa_flags(
                spec.get("compdb", []), fixtures_dir)}
            ran += 1
            if found != expected:
                failures.append(
                    f"{path.name}: expected {sorted(expected) or 'clean'},"
                    f" got {sorted(found) or 'clean'}")
            continue
        if path.suffix not in LINT_SUFFIXES:
            continue
        text = path.read_text(encoding="utf-8")
        m = FIXTURE_RE.search(text)
        if not m:
            failures.append(f"{path.name}: missing farmer-lint-fixture "
                            "header")
            continue
        expected = (set() if m.group("expect") == "clean"
                    else set(m.group("expect").split(",")))
        unknown = expected - set(RULE_DOCS)
        if unknown:
            failures.append(
                f"{path.name}: expects unknown rules {sorted(unknown)}")
            continue
        # Drop the header so its own text cannot trip a rule.
        body = "\n".join(
            line for line in text.splitlines()
            if "farmer-lint-fixture:" not in line) + "\n"
        found = {f.rule for f in lint_text(m.group("path"), body)}
        ran += 1
        if found != expected:
            failures.append(
                f"{path.name}: expected {sorted(expected) or 'clean'}, "
                f"got {sorted(found) or 'clean'}")
    if ran == 0:
        failures.append(f"no fixtures found in {fixtures_dir}")
    for failure in failures:
        print(f"self-test FAIL: {failure}", file=sys.stderr)
    print(f"self-test: {ran} fixtures, {len(failures)} failures")
    return 0 if not failures else 1


def main(argv):
    parser = argparse.ArgumentParser(
        description="FARMER project lint (see module docstring)")
    parser.add_argument("--root", type=Path, default=Path("."),
                        help="repository root (default: cwd)")
    parser.add_argument("--compdb", type=Path, default=None,
                        help="compile_commands.json for the isa-flags "
                        "rule")
    parser.add_argument("--self-test", action="store_true",
                        help="replay the fixture corpus instead of "
                        "linting")
    parser.add_argument("--fixtures", type=Path, default=None,
                        help="fixture dir for --self-test (default: "
                        "tools/lint_fixtures next to this script)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="explicit files to lint (default: "
                        "<root>/src)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, doc in sorted(RULE_DOCS.items()):
            print(f"{rule:28s} {doc}")
        return 0

    if args.self_test:
        fixtures = args.fixtures or (
            Path(__file__).resolve().parent / "lint_fixtures")
        return run_self_test(fixtures)

    findings = run_lint(args.root, args.compdb, args.paths)
    for f in findings:
        print(f)
    if findings:
        print(f"farmer-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
