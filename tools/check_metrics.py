#!/usr/bin/env python3
"""Validate Prometheus text exposition (format 0.0.4), stdlib only.

Usage:
    check_metrics.py FILE [--require NAME[,NAME...]]
    check_metrics.py --self-test

Checks the scrape output of farmer_serve's `GET /metrics` (and the
"metrics" op's "exposition" field, once unescaped):

  * every line is a comment, blank, or `name[{labels}] value [ts]`;
  * metric and label names match the Prometheus charsets, label values
    use only the legal escapes (\\\\, \\", \\n);
  * each family has at most one TYPE, TYPE precedes its samples, TYPE
    is a known kind, and HELP/TYPE lines pair up with real samples;
  * a family's samples are consecutive (never interleaved with another
    family's);
  * no duplicate series (same name and label set);
  * counter values are non-negative and finite;
  * histograms: every series has `le` buckets that are cumulative
    (non-decreasing in `le` order), a final le="+Inf" bucket, a _sum,
    and a _count equal to the +Inf bucket (the overflow-inclusive
    total).

--require fails unless each named family is present. Exit status 0
when everything holds; 1 with a message on stderr otherwise. Used by
the serve-smoke CI job; `--self-test` runs the embedded fixtures and
is wired into ctest as check_metrics_selftest.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"   # metric name
    r"(?:\{(.*)\})?"                  # optional label block
    r"\s+(\S+)"                       # value
    r"(?:\s+(-?\d+))?\s*$")           # optional timestamp
LABEL = re.compile(
    r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"((?:[^"\\]|\\["\\n])*)"\s*(,|$)')
KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class Failure(Exception):
    pass


def fail(msg):
    raise Failure(msg)


def check(cond, msg):
    if not cond:
        fail(msg)


def parse_value(text, where):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        fail("%s: bad sample value %r" % (where, text))


def parse_labels(block, where):
    labels = []
    pos = 0
    while pos < len(block):
        m = LABEL.match(block, pos)
        check(m is not None, "%s: bad label block %r" % (where, block))
        labels.append((m.group(1), m.group(2)))
        pos = m.end()
        if m.group(3) != ",":
            break
    check(pos == len(block), "%s: trailing junk in labels %r" % (where, block))
    names = [n for n, _ in labels]
    check(len(names) == len(set(names)),
          "%s: duplicate label name in %r" % (where, block))
    return labels


def family_of(name):
    """The family a sample belongs to (histogram suffixes stripped)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def validate(text, require=()):
    helps = {}
    types = {}
    # family -> {series key} for duplicate detection, and the order the
    # families' samples appeared in (for the consecutiveness check).
    series_seen = {}
    sample_order = []
    # (family, labels-without-le) -> list of (le, value) for histograms,
    # plus their _sum/_count samples.
    hist_buckets = {}
    hist_sum = {}
    hist_count = {}
    families_with_samples = set()

    for lineno, raw in enumerate(text.splitlines(), 1):
        where = "line %d" % lineno
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                check(METRIC_NAME.match(name) is not None,
                      "%s: bad metric name %r in %s" % (where, name,
                                                        parts[1]))
                if parts[1] == "HELP":
                    check(name not in helps,
                          "%s: second HELP for %r" % (where, name))
                    helps[name] = parts[3] if len(parts) == 4 else ""
                else:
                    check(len(parts) == 4,
                          "%s: TYPE without a type" % where)
                    check(parts[3] in KNOWN_TYPES,
                          "%s: unknown TYPE %r" % (where, parts[3]))
                    check(name not in types,
                          "%s: second TYPE for %r" % (where, name))
                    check(name not in families_with_samples,
                          "%s: TYPE for %r after its samples" %
                          (where, name))
                    types[name] = parts[3]
            continue

        m = SAMPLE.match(line)
        check(m is not None, "%s: unparseable sample %r" % (where, line))
        name, block, value_text = m.group(1), m.group(2), m.group(3)
        labels = parse_labels(block, where) if block else []
        value = parse_value(value_text, where)

        family, suffix = family_of(name)
        ftype = types.get(family)
        if ftype != "histogram":
            # _bucket/_sum/_count only mean "histogram piece" when the
            # family is typed as one; otherwise the full name is the
            # family (e.g. a counter legitimately named foo_count).
            family, suffix = name, ""
            ftype = types.get(family)

        key = (name, tuple(sorted(labels)))
        seen = series_seen.setdefault(family, set())
        check(key not in seen,
              "%s: duplicate series %s%s" % (where, name, block or ""))
        seen.add(key)
        if family not in families_with_samples:
            families_with_samples.add(family)
            sample_order.append(family)
        else:
            check(sample_order[-1] == family,
                  "%s: family %r interleaved with %r" %
                  (where, family, sample_order[-1]))

        if ftype == "counter":
            check(value >= 0 and value == value and value != float("inf"),
                  "%s: counter %s has bad value %s" %
                  (where, name, value_text))
        if ftype == "histogram":
            rest = tuple(sorted(l for l in labels if l[0] != "le"))
            skey = (family, rest)
            if suffix == "_bucket":
                les = [l[1] for l in labels if l[0] == "le"]
                check(len(les) == 1,
                      "%s: bucket of %s needs exactly one le" %
                      (where, family))
                hist_buckets.setdefault(skey, []).append(
                    (parse_value(les[0], where), value))
            elif suffix == "_sum":
                hist_sum[skey] = value
            elif suffix == "_count":
                hist_count[skey] = value
            else:
                fail("%s: stray sample %r in histogram %r" %
                     (where, name, family))

    for name in types:
        check(name in families_with_samples or types[name] == "histogram"
              and any(f == name for f, _ in hist_buckets),
              "TYPE for %r but no samples" % name)
    for name in helps:
        check(name in types, "HELP for %r without a TYPE" % name)

    for (family, rest), buckets in hist_buckets.items():
        label_of = lambda: "%s{%s}" % (family, ",".join(
            "%s=%r" % l for l in rest)) if rest else family
        check((family, rest) in hist_count,
              "histogram %s has no _count" % label_of())
        check((family, rest) in hist_sum,
              "histogram %s has no _sum" % label_of())
        les = [le for le, _ in buckets]
        check(les == sorted(les),
              "histogram %s buckets out of le order" % label_of())
        check(les and les[-1] == float("inf"),
              "histogram %s missing le=\"+Inf\" bucket" % label_of())
        values = [v for _, v in buckets]
        check(all(a <= b for a, b in zip(values, values[1:])),
              "histogram %s buckets not cumulative: %r" %
              (label_of(), values))
        check(values[-1] == hist_count[(family, rest)],
              "histogram %s _count %r != +Inf bucket %r" %
              (label_of(), hist_count[(family, rest)], values[-1]))
    for skey in list(hist_count) + list(hist_sum):
        check(skey in hist_buckets,
              "histogram %s has _sum/_count but no buckets" % skey[0])

    for name in require:
        check(name in families_with_samples,
              "required family %r absent (got %s)" %
              (name, sorted(families_with_samples)))
    return len(families_with_samples)


GOOD = """\
# HELP serve_requests serve.requests
# TYPE serve_requests counter
serve_requests 42
# HELP serve_bytes_in serve.shard_bytes_in
# TYPE serve_bytes_in counter
serve_bytes_in{shard="0"} 10
serve_bytes_in{shard="1"} 0
# HELP up up
# TYPE up gauge
up 1
# HELP odd_value odd "quoted" value
# TYPE odd_value gauge
odd_value{path="C:\\\\x\\n",q="say \\"hi\\""} -0.5
# HELP lat serve.latency_seconds
# TYPE lat histogram
lat_bucket{le="0.01"} 1
lat_bucket{le="0.1"} 3
lat_bucket{le="+Inf"} 4
lat_sum 0.73
lat_count 4
# HELP lat2 labeled histogram
# TYPE lat2 histogram
lat2_bucket{op="topk",le="1"} 0
lat2_bucket{op="topk",le="+Inf"} 2
lat2_sum{op="topk"} 5.5
lat2_count{op="topk"} 2
"""

BAD = [
    # Non-cumulative buckets.
    """# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 3
h_sum 1
h_count 3
""",
    # _count disagrees with the +Inf bucket.
    """# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 4
h_sum 1
h_count 5
""",
    # Missing +Inf bucket.
    """# TYPE h histogram
h_bucket{le="1"} 1
h_sum 1
h_count 1
""",
    # Duplicate series.
    """# TYPE c counter
c{a="1"} 1
c{a="1"} 2
""",
    # Negative counter.
    """# TYPE c counter
c -1
""",
    # TYPE after its samples.
    """c 1
# TYPE c counter
""",
    # Two TYPE lines for one family.
    """# TYPE c counter
# TYPE c gauge
c 1
""",
    # HELP without TYPE.
    """# HELP c something
c 1
""",
    # Interleaved families.
    """# TYPE a counter
# TYPE b counter
a 1
b 1
a{x="2"} 1
""",
    # Unparseable sample line.
    """# TYPE c counter
c one
""",
    # Bad label escape (\\q is not a legal escape).
    """# TYPE c counter
c{a="\\q"} 1
""",
    # Unknown TYPE.
    """# TYPE c rate
c 1
""",
]


def self_test():
    n = validate(GOOD, require=("serve_requests", "lat2"))
    assert n > 0
    try:
        validate(GOOD, require=("absent_family",))
        raise AssertionError("--require of an absent family passed")
    except Failure:
        pass
    for i, text in enumerate(BAD):
        try:
            validate(text)
            raise AssertionError("bad fixture %d passed validation" % i)
        except Failure:
            pass
    print("check_metrics: self-test OK (%d bad fixtures rejected)"
          % len(BAD))
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) not in (2, 4):
        sys.stderr.write(__doc__)
        return 2
    require = ()
    if len(argv) == 4:
        if argv[2] != "--require":
            sys.stderr.write(__doc__)
            return 2
        require = tuple(n for n in argv[3].split(",") if n)
    with open(argv[1], "r", encoding="utf-8") as f:
        text = f.read()
    try:
        families = validate(text, require)
    except Failure as e:
        sys.stderr.write("check_metrics: FAIL: %s\n" % e)
        return 1
    print("check_metrics: OK: %d families" % families)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
