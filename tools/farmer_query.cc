// farmer_query — line-oriented client for the farmer_serve server.
//
//   echo '{"op":"topk","metric":"confidence","k":5}' |
//       farmer_query --port 7437
//   farmer_query --port 7437 '{"op":"stats"}'
//
// Sends each request line (from the positional argument, or stdin when
// none is given) to the server and prints one response line per request.
// Exit 0 when every request got a response line, 1 on connection or I/O
// failure, 2 on usage errors. Responses are printed verbatim — callers
// judge "ok" themselves (the CI smoke test greps for it).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: farmer_query [--host ADDR] --port N [REQUEST]\n\n"
               "Sends REQUEST (or each line of stdin) to a farmer_serve\n"
               "server and prints the response lines.\n");
  return 2;
}

bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads one '\n'-terminated line from `fd` into *line (newline
// stripped), carrying leftover bytes between calls in *buffer.
bool RecvLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const std::size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      *line = buffer->substr(0, nl);
      buffer->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // Server closed without a full line.
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string request;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (key == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (key.rfind("--", 0) != 0 && request.empty()) {
      request = key;
    } else {
      std::fprintf(stderr, "error: bad argument '%s'\n", key.c_str());
      return Usage();
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: --port must be in [1, 65535]\n");
    return Usage();
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "error: bad --host '%s'\n", host.c_str());
    ::close(fd);
    return 2;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::fprintf(stderr, "error: connect %s:%d: %s\n", host.c_str(), port,
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }

  std::vector<std::string> requests;
  if (!request.empty()) {
    requests.push_back(request);
  } else {
    std::string line;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
      line.append(buf);
      if (!line.empty() && line.back() == '\n') {
        line.pop_back();
        if (!line.empty()) requests.push_back(line);
        line.clear();
      }
    }
    if (!line.empty()) requests.push_back(line);
  }

  std::string recv_buffer;
  for (const std::string& r : requests) {
    if (!SendAll(fd, r + "\n")) {
      std::fprintf(stderr, "error: send failed: %s\n", std::strerror(errno));
      ::close(fd);
      return 1;
    }
    std::string response;
    if (!RecvLine(fd, &recv_buffer, &response)) {
      std::fprintf(stderr, "error: connection closed before response\n");
      ::close(fd);
      return 1;
    }
    std::printf("%s\n", response.c_str());
  }
  ::close(fd);
  return 0;
}
