// farmer_query — client for the farmer_serve server.
//
//   echo '{"op":"topk","metric":"confidence","k":5}' |
//       farmer_query --port 7437
//   farmer_query --port 7437 '{"op":"stats"}'
//   farmer_query --port 7437 --binary --pipeline 16 < queries.jsonl
//
// Sends each request line (from the positional argument, or stdin when
// none is given) over ONE connection and prints one response line per
// request, in request order. --binary speaks the FQP1 framed protocol
// instead of line-delimited JSON (requests are still written as JSON
// lines; they are parsed locally and encoded as frames). --pipeline N
// keeps up to N requests in flight instead of one round trip each.
// Exit 0 when every request got a response, 1 on connection or I/O
// failure, 2 on usage errors. Responses are printed verbatim — callers
// judge "ok" themselves (the CI smoke test greps for it).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.h"
#include "util/net.h"
#include "util/status.h"

namespace {

using farmer::Status;
namespace serve = farmer::serve;

int Usage() {
  std::fprintf(
      stderr,
      "usage: farmer_query [--host ADDR] --port N [--binary]\n"
      "                    [--pipeline N] [REQUEST]\n\n"
      "Sends REQUEST (or each line of stdin) to a farmer_serve server\n"
      "over one connection and prints the response lines in order.\n"
      "--binary uses FQP1 framing; --pipeline N keeps N requests in\n"
      "flight.\n");
  return 2;
}

using farmer::net::SendAll;

// Reads one '\n'-terminated line from `fd` into *line (newline
// stripped), carrying leftover bytes between calls in *buffer.
bool RecvLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const std::size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      *line = buffer->substr(0, nl);
      buffer->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // Server closed without a full line.
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

// Reads one FQP1 response frame and extracts its JSON text.
bool RecvFrame(int fd, std::string* buffer, std::string* json) {
  for (;;) {
    if (buffer->size() >= 4) {
      std::uint32_t len = 0;
      std::memcpy(&len, buffer->data(), sizeof(len));
      if (buffer->size() >= 4 + static_cast<std::size_t>(len)) {
        serve::FrameStatus status;
        std::uint64_t req_id = 0;
        const Status s = serve::DecodeResponseFrame(
            std::string_view(buffer->data() + 4, len), &status, &req_id,
            json);
        buffer->erase(0, 4 + static_cast<std::size_t>(len));
        if (!s.ok()) {
          std::fprintf(stderr, "error: bad response frame: %s\n",
                       s.ToString().c_str());
          return false;
        }
        return true;
      }
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  bool binary = false;
  std::size_t pipeline = 1;
  std::string request;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (key == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (key == "--binary") {
      binary = true;
    } else if (key == "--pipeline" && i + 1 < argc) {
      const long depth = std::atol(argv[++i]);
      if (depth < 1) {
        std::fprintf(stderr, "error: --pipeline must be >= 1\n");
        return Usage();
      }
      pipeline = static_cast<std::size_t>(depth);
    } else if (key.rfind("--", 0) != 0 && request.empty()) {
      request = key;
    } else {
      std::fprintf(stderr, "error: bad argument '%s'\n", key.c_str());
      return Usage();
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: --port must be in [1, 65535]\n");
    return Usage();
  }

  int fd = -1;
  {
    const Status connected = farmer::net::ConnectToHost(
        host, port, /*timeout_seconds=*/0.0, &fd);
    if (!connected.ok()) {
      std::fprintf(stderr, "error: %s\n", connected.ToString().c_str());
      return connected.IsInvalidArgument() ? 2 : 1;
    }
  }

  std::vector<std::string> requests;
  if (!request.empty()) {
    requests.push_back(request);
  } else {
    std::string line;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
      line.append(buf);
      if (!line.empty() && line.back() == '\n') {
        line.pop_back();
        if (!line.empty()) requests.push_back(line);
        line.clear();
      }
    }
    if (!line.empty()) requests.push_back(line);
  }

  // Encode every request up front. Binary mode parses the JSON lines
  // locally so malformed input fails here, not at the server.
  std::vector<std::string> wire;
  wire.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (binary) {
      serve::QueryRequest parsed;
      const Status s = serve::ParseRequest(requests[i], &parsed);
      if (!s.ok()) {
        std::fprintf(stderr, "error: request %zu: %s\n", i + 1,
                     s.ToString().c_str());
        ::close(fd);
        return 2;
      }
      parsed.bin_id = i + 1;
      wire.push_back(serve::EncodeBinaryRequest(parsed));
    } else {
      wire.push_back(requests[i] + "\n");
    }
  }

  if (binary) {
    if (!SendAll(fd, std::string(serve::kBinaryPreamble,
                                 serve::kBinaryPreambleSize))) {
      std::fprintf(stderr, "error: send failed: %s\n", std::strerror(errno));
      ::close(fd);
      return 1;
    }
  }

  // Sliding window of `pipeline` requests in flight on one connection.
  std::string recv_buffer;
  std::size_t next_send = 0;
  std::size_t next_recv = 0;
  while (next_recv < wire.size()) {
    while (next_send < wire.size() && next_send - next_recv < pipeline) {
      std::string burst;
      // Coalesce the whole window into one send.
      const std::size_t until =
          std::min(wire.size(), next_recv + pipeline);
      while (next_send < until) burst += wire[next_send++];
      if (!SendAll(fd, burst)) {
        std::fprintf(stderr, "error: send failed: %s\n",
                     std::strerror(errno));
        ::close(fd);
        return 1;
      }
    }
    std::string response;
    const bool got = binary ? RecvFrame(fd, &recv_buffer, &response)
                            : RecvLine(fd, &recv_buffer, &response);
    if (!got) {
      std::fprintf(stderr, "error: connection closed before response\n");
      ::close(fd);
      return 1;
    }
    ++next_recv;
    std::printf("%s\n", response.c_str());
  }
  ::close(fd);
  return 0;
}
