// farmer-lint-fixture: path=src/core/fine.cc expect=clean
// Uses the annotated vocabulary; nothing for any rule to object to.
#include "util/sync.h"

namespace farmer {

struct Guarded {
  Mutex mutex;
  int value FARMER_GUARDED_BY(mutex) = 0;
};

// Mentions of std::mutex in comments (like this one) never fire:
// token rules run on comment-stripped text.
void Bump(Guarded& g) {
  MutexLock lock(g.mutex);
  ++g.value;
}

}  // namespace farmer
