// farmer-lint-fixture: path=src/w.cc expect=suppression-justification,raw-sync
// A waiver with no real justification: the linter rejects the allow()
// AND still reports the raw-sync finding it failed to cover.
#include <mutex>  // farmer-lint: allow(raw-sync) -- nope

namespace farmer {}
