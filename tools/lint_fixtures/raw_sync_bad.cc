// farmer-lint-fixture: path=src/core/bad_locking.cc expect=raw-sync
// A std::mutex outside util/sync.h: the thread-safety analysis cannot
// see acquisitions through unannotated primitives.
#include <mutex>

namespace farmer {

std::mutex g_legacy_mutex;

void Touch() { std::lock_guard<std::mutex> lock(g_legacy_mutex); }

}  // namespace farmer
