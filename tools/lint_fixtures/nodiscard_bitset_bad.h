// farmer-lint-fixture: path=src/util/bitset.h expect=nodiscard-contract
// A bitset.h where Count() lost its attribute (and the other query
// kernels are missing outright — both are contract findings).
#ifndef FIXTURE_BITSET_H_
#define FIXTURE_BITSET_H_

#include <cstddef>

namespace farmer {

class Bitset {
 public:
  std::size_t Count() const;
};

}  // namespace farmer

#endif  // FIXTURE_BITSET_H_
