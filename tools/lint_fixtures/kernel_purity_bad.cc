// farmer-lint-fixture: path=src/util/simd/kernels_bad.cc expect=kernel-purity
// A kernel TU that allocates and logs: both are banned on the mining
// hot path.
#include <cstdio>
#include <vector>

namespace farmer {

int SumTable(int n) {
  std::vector<int> table(static_cast<unsigned>(n), 1);
  std::printf("table built\n");
  int sum = 0;
  for (int v : table) sum += v;
  return sum;
}

}  // namespace farmer
