// farmer-lint-fixture: path=src/core/justified.cc expect=clean
// A properly justified waiver: allow() names a real rule and explains
// itself, so the raw-sync finding on the next line is suppressed.
namespace farmer {

struct LegacyHandle {
  // farmer-lint: allow(raw-sync) -- interop: an external C API owns
  std::mutex* borrowed = nullptr;
};

}  // namespace farmer
