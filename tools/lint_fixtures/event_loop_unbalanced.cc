// farmer-lint-fixture: path=src/serve/unbalanced.cc expect=event-loop-blocking
// A begin(event-loop) that is never closed.
namespace farmer {

// farmer-lint: begin(event-loop)

void Spin() {}

}  // namespace farmer
