// farmer-lint-fixture: path=src/util/status.h expect=nodiscard-contract
// A status.h whose classes lost their [[nodiscard]]: dropped errors
// would no longer warn.
#ifndef FIXTURE_STATUS_H_
#define FIXTURE_STATUS_H_

namespace farmer {

class Status {
 public:
  bool ok() const { return true; }
};

template <typename T>
class StatusOr {
 public:
  bool ok() const { return true; }
};

}  // namespace farmer

#endif  // FIXTURE_STATUS_H_
