// farmer-lint-fixture: path=src/serve/bad_loop.cc expect=event-loop-blocking
// Sleeping and loading files inside a marked event-loop region.
#include <chrono>
#include <thread>

namespace farmer {

// farmer-lint: begin(event-loop)

void TickSlowly() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

// farmer-lint: end(event-loop)

}  // namespace farmer
