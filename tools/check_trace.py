#!/usr/bin/env python3
"""Validate farmer observability artifacts.

Usage:
    check_trace.py [--require NAME[,NAME...]] TRACE.json [METRICS.json]

Checks that TRACE.json is a well-formed Chrome Trace Event Format file
(loadable in chrome://tracing / Perfetto) produced by --trace-out:

  * top level is an object with a "traceEvents" array and a
    "farmer_dropped_events" count;
  * every event carries name/ph/pid/tid, ph is one of X / i / M;
  * complete events ('X') have a timestamp and a non-negative duration;
  * instants ('i') have a timestamp and a scope;
  * metadata ('M') names the process and every lane (thread), and lane
    names are unique;
  * the required span names are present — by default the ones the miner
    always emits ("mine", "merge"); pass --require for other producers
    (e.g. --require serve.parse,serve.topk for a farmer_serve trace) —
    and every "merge" span sits on the control lane (tid 0).

When METRICS.json is given, also checks the --metrics-out shape: the
counters / gauges / histograms objects exist, counter values are
non-negative integers, and each histogram has len(bounds) + 1 buckets
that sum to its count.

Exit status 0 when everything holds; 1 with a message on stderr
otherwise.  Used by the obs-artifacts CI job.
"""

import json
import sys


def fail(msg):
    sys.stderr.write("check_trace: FAIL: %s\n" % msg)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def check_trace(path, required=("mine", "merge")):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check(isinstance(doc, dict), "top level must be a JSON object")
    check("traceEvents" in doc, 'missing "traceEvents"')
    events = doc["traceEvents"]
    check(isinstance(events, list), '"traceEvents" must be an array')
    check(len(events) > 0, "trace contains no events")
    dropped = doc.get("farmer_dropped_events")
    check(isinstance(dropped, int) and dropped >= 0,
          '"farmer_dropped_events" must be a non-negative integer')

    names = set()
    thread_names = {}
    process_named = False
    for i, e in enumerate(events):
        where = "event %d" % i
        check(isinstance(e, dict), "%s is not an object" % where)
        for key in ("name", "ph", "pid", "tid"):
            check(key in e, "%s missing %r" % (where, key))
        ph = e["ph"]
        check(ph in ("X", "i", "M"), "%s has unknown ph %r" % (where, ph))
        if ph == "M":
            if e["name"] == "process_name":
                process_named = True
            elif e["name"] == "thread_name":
                tid = e["tid"]
                label = e.get("args", {}).get("name")
                check(isinstance(label, str) and label,
                      "%s thread_name has no label" % where)
                check(tid not in thread_names,
                      "lane %r named twice" % tid)
                thread_names[tid] = label
            continue
        names.add(e["name"])
        check(isinstance(e.get("ts"), (int, float)),
              "%s (%s) has no numeric ts" % (where, ph))
        if ph == "X":
            dur = e.get("dur")
            check(isinstance(dur, (int, float)) and dur >= 0,
                  "%s has bad dur %r" % (where, dur))
        if ph == "i":
            check(e.get("s") in ("t", "p", "g"),
                  "%s instant has bad scope %r" % (where, e.get("s")))
        if e["name"] == "merge":
            check(e["tid"] == 0,
                  "%s: merge span on lane %r, expected the control "
                  "lane 0" % (where, e["tid"]))

    check(process_named, "no process_name metadata event")
    check(len(thread_names) > 0, "no thread_name metadata events")
    check(len(set(thread_names.values())) == len(thread_names),
          "duplicate lane labels: %r" % thread_names)
    for name in required:
        check(name in names,
              "required span %r absent (got %s)" % (name, sorted(names)))
    print("check_trace: trace OK: %d events on %d lanes, names %s, "
          "%d dropped" % (len(events), len(thread_names), sorted(names),
                          dropped))


def check_metrics(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check(isinstance(doc, dict), "metrics top level must be a JSON object")
    for section in ("counters", "gauges", "histograms"):
        check(isinstance(doc.get(section), dict),
              'metrics missing object %r' % section)
    for name, value in doc["counters"].items():
        check(isinstance(value, int) and value >= 0,
              "counter %r has bad value %r" % (name, value))
    for name, value in doc["gauges"].items():
        check(isinstance(value, (int, float)),
              "gauge %r has bad value %r" % (name, value))
    for name, h in doc["histograms"].items():
        check(isinstance(h, dict), "histogram %r is not an object" % name)
        bounds, buckets = h.get("bounds"), h.get("buckets")
        check(isinstance(bounds, list) and len(bounds) > 0,
              "histogram %r has no bounds" % name)
        check(bounds == sorted(bounds),
              "histogram %r bounds not ascending" % name)
        check(isinstance(buckets, list) and
              len(buckets) == len(bounds) + 1,
              "histogram %r needs len(bounds)+1 buckets" % name)
        check(sum(buckets) == h.get("count"),
              "histogram %r buckets sum to %r, count says %r" %
              (name, sum(buckets), h.get("count")))
    print("check_trace: metrics OK: %d counters, %d gauges, %d histograms"
          % (len(doc["counters"]), len(doc["gauges"]),
             len(doc["histograms"])))


def main(argv):
    args = argv[1:]
    required = ("mine", "merge")
    if args and args[0] == "--require":
        if len(args) < 2:
            sys.stderr.write(__doc__)
            return 2
        required = tuple(n for n in args[1].split(",") if n)
        args = args[2:]
    if len(args) not in (1, 2):
        sys.stderr.write(__doc__)
        return 2
    check_trace(args[0], required)
    if len(args) == 2:
        check_metrics(args[1])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
