#ifndef FARMER_CLASSIFY_CBA_H_
#define FARMER_CLASSIFY_CBA_H_

#include <cstddef>
#include <vector>

#include "classify/rule_ranking.h"
#include "dataset/dataset.h"
#include "dataset/types.h"
#include "util/timer.h"

namespace farmer {

/// CBA-style associative classifier (Liu, Hsu & Ma, KDD 1998): class
/// association rules ranked by (confidence, support, generality) and
/// selected with database coverage; prediction fires the first matching
/// rule, falling back to the default class.
class CbaClassifier {
 public:
  /// Builds the classifier from candidate rules on the training data.
  /// `candidate_rules` need not be ranked or deduplicated.
  static CbaClassifier Train(const BinaryDataset& train,
                             std::vector<ClassRule> candidate_rules);

  /// Predicts the label of a row given as a sorted itemset.
  ClassLabel Predict(const ItemVector& row_items) const;

  /// The selected rules, in precedence order.
  const std::vector<ClassRule>& rules() const { return selected_.rules; }

  ClassLabel default_class() const { return selected_.default_class; }

 private:
  CoverageResult selected_;
};

/// Materializes candidate class association rules by running FARMER once
/// per class label and emitting every rule group's upper bound and lower
/// bounds as rules — the paper's workaround for CBA's own (column
/// enumeration) rule generator not terminating on microarray data.
///
/// `min_support_fraction` is relative to the consequent class size (the
/// paper uses 0.7); `min_confidence` is absolute (the paper uses 0.8).
/// `max_seconds` bounds each per-class FARMER run (0 = unlimited).
std::vector<ClassRule> GenerateRulesWithFarmer(const BinaryDataset& train,
                                               double min_support_fraction,
                                               double min_confidence,
                                               double max_seconds = 0.0);

}  // namespace farmer

#endif  // FARMER_CLASSIFY_CBA_H_
