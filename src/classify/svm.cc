#include "classify/svm.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace farmer {

LinearSvm LinearSvm::Train(const ExpressionMatrix& train,
                           ClassLabel positive_label,
                           const SvmOptions& options) {
  LinearSvm svm;
  svm.positive_label_ = positive_label;
  svm.standardize_ = options.standardize;
  const std::size_t n = train.num_rows();
  const std::size_t d = train.num_genes();

  // Negative label: most frequent non-positive training label.
  {
    std::vector<std::size_t> counts(256, 0);
    for (std::size_t r = 0; r < n; ++r) ++counts[train.label(r)];
    std::size_t best = 0, best_count = 0;
    for (std::size_t c = 0; c < counts.size(); ++c) {
      if (c == positive_label) continue;
      if (counts[c] > best_count) {
        best_count = counts[c];
        best = c;
      }
    }
    svm.negative_label_ = static_cast<ClassLabel>(best);
  }

  // Standardization parameters.
  svm.mean_.assign(d, 0.0);
  svm.scale_.assign(d, 1.0);
  if (options.standardize && n > 0) {
    for (std::size_t g = 0; g < d; ++g) {
      double sum = 0.0;
      for (std::size_t r = 0; r < n; ++r) sum += train.at(r, g);
      const double mean = sum / static_cast<double>(n);
      double var = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double delta = train.at(r, g) - mean;
        var += delta * delta;
      }
      var /= static_cast<double>(n);
      svm.mean_[g] = mean;
      svm.scale_[g] = var > 1e-12 ? 1.0 / std::sqrt(var) : 0.0;
    }
  }

  // Preprocessed training matrix with a trailing bias feature.
  std::vector<double> x(n * (d + 1));
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t g = 0; g < d; ++g) {
      double v = train.at(r, g);
      if (options.standardize) v = (v - svm.mean_[g]) * svm.scale_[g];
      x[r * (d + 1) + g] = v;
    }
    x[r * (d + 1) + d] = 1.0;  // Bias feature.
    y[r] = train.label(r) == positive_label ? 1.0 : -1.0;
  }

  // Dual coordinate descent for L1-loss SVM:
  //   min_α 0.5 αᵀQα − eᵀα  s.t. 0 ≤ α_i ≤ C,  Q_ij = y_i y_j x_iᵀx_j.
  std::vector<double> alpha(n, 0.0);
  std::vector<double> w(d + 1, 0.0);
  std::vector<double> qii(n);
  for (std::size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::size_t g = 0; g <= d; ++g) {
      const double v = x[r * (d + 1) + g];
      s += v * v;
    }
    qii[r] = s;
  }
  double c_value = options.c;
  if (c_value <= 0.0) {
    // SVM-light's default: C = 1 / avg(||x||^2).
    double avg_sq = 0.0;
    for (std::size_t r = 0; r < n; ++r) avg_sq += qii[r];
    avg_sq /= std::max<std::size_t>(1, n);
    c_value = avg_sq > 0.0 ? 1.0 / avg_sq : 1.0;
  }

  std::vector<std::size_t> order(n);
  for (std::size_t r = 0; r < n; ++r) order[r] = r;
  Rng rng(options.seed);

  std::size_t pass = 0;
  for (; pass < options.max_passes; ++pass) {
    // Shuffle the coordinate order each pass.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBelow(i)]);
    }
    double max_violation = 0.0;
    for (std::size_t idx = 0; idx < n; ++idx) {
      const std::size_t r = order[idx];
      if (qii[r] <= 0.0) continue;
      const double* xr = &x[r * (d + 1)];
      double wx = 0.0;
      for (std::size_t g = 0; g <= d; ++g) wx += w[g] * xr[g];
      const double grad = y[r] * wx - 1.0;
      double pg = grad;  // Projected gradient.
      if (alpha[r] <= 0.0) {
        pg = std::min(grad, 0.0);
      } else if (alpha[r] >= c_value) {
        pg = std::max(grad, 0.0);
      }
      max_violation = std::max(max_violation, std::fabs(pg));
      if (pg == 0.0) continue;
      const double old = alpha[r];
      alpha[r] = std::clamp(old - grad / qii[r], 0.0, c_value);
      const double delta = (alpha[r] - old) * y[r];
      if (delta != 0.0) {
        for (std::size_t g = 0; g <= d; ++g) w[g] += delta * xr[g];
      }
    }
    if (max_violation < options.tolerance) {
      ++pass;
      break;
    }
  }
  svm.passes_run_ = pass;
  svm.bias_ = w[d];
  w.pop_back();
  svm.w_ = std::move(w);
  return svm;
}

double LinearSvm::Decision(const double* sample) const {
  double s = bias_;
  for (std::size_t g = 0; g < w_.size(); ++g) {
    double v = sample[g];
    if (standardize_) v = (v - mean_[g]) * scale_[g];
    s += w_[g] * v;
  }
  return s;
}

ClassLabel LinearSvm::Predict(const double* sample) const {
  return Decision(sample) >= 0.0 ? positive_label_ : negative_label_;
}

}  // namespace farmer
