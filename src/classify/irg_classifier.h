#ifndef FARMER_CLASSIFY_IRG_CLASSIFIER_H_
#define FARMER_CLASSIFY_IRG_CLASSIFIER_H_

#include <cstddef>
#include <vector>

#include "classify/rule_ranking.h"
#include "core/farmer.h"
#include "dataset/dataset.h"
#include "dataset/types.h"

namespace farmer {

/// Prediction policy of the IRG classifier.
enum class IrgPrediction {
  /// CBA-style: the highest-ranked matching group decides (the paper's
  /// "predict the test data based on the IRGs that it covers").
  kFirstMatch,
  /// CMAR-style extension: every matching group votes with its confidence;
  /// the class with the largest total wins.
  kWeightedVote,
};

/// Training options for the IRG classifier.
struct IrgClassifierOptions {
  /// Per-class minimum support as a fraction of the class size (paper: the
  /// same 0.7 used for CBA).
  double min_support_fraction = 0.7;
  /// Minimum confidence of mined IRGs (paper: 0.8).
  double min_confidence = 0.8;
  /// Per-class FARMER time limit in seconds (0 = unlimited).
  double max_seconds_per_class = 0.0;
  IrgPrediction prediction = IrgPrediction::kFirstMatch;
};

/// The paper's IRG classifier (§4.2): mines interesting rule groups per
/// class, ranks them CBA-style by (confidence, support, generality),
/// applies database-coverage pruning, and predicts with the first-matching
/// group. A test row matches a group when it contains any of the group's
/// lower bounds (the group's most general member rules), falling back to
/// the upper bound when lower bounds are unavailable.
class IrgClassifier {
 public:
  /// The rule groups FARMER mined for one class (training intermediate;
  /// also what a serve/ snapshot stores per consequent).
  struct MinedClassGroups {
    ClassLabel label = 0;
    std::vector<RuleGroup> groups;
  };

  /// Mines IRGs on `train` and builds the classifier. Exactly
  /// BuildFromGroups(train, MineClassGroups(train, options), options).
  static IrgClassifier Train(const BinaryDataset& train,
                             const IrgClassifierOptions& options);

  /// The mining phase of Train(): one FARMER run per class with the
  /// options' per-class thresholds, in class order.
  static std::vector<MinedClassGroups> MineClassGroups(
      const BinaryDataset& train, const IrgClassifierOptions& options);

  /// The deterministic build phase of Train(): ranking, database-
  /// coverage pruning, and default-class selection over already-mined
  /// groups. Given the same `train` and the same groups in the same
  /// order — e.g. groups saved to and reloaded from a serve/ snapshot —
  /// the resulting classifier predicts identically.
  static IrgClassifier BuildFromGroups(
      const BinaryDataset& train,
      const std::vector<MinedClassGroups>& mined,
      const IrgClassifierOptions& options);

  /// Predicts the label of a row given as a sorted itemset.
  ClassLabel Predict(const ItemVector& row_items) const;

  /// One ranked entity: an IRG flattened to its matching antecedents.
  struct Entry {
    std::vector<ItemVector> match_sets;  // Lower bounds (or upper bound).
    ClassLabel label = 0;
    std::size_t support = 0;
    double confidence = 0.0;
  };

  const std::vector<Entry>& entries() const { return entries_; }
  ClassLabel default_class() const { return default_class_; }

  /// Number of IRGs mined before coverage pruning (diagnostics).
  std::size_t num_mined_groups() const { return num_mined_; }

 private:
  static bool EntryMatches(const Entry& entry, const ItemVector& row_items);

  std::vector<Entry> entries_;
  ClassLabel default_class_ = 0;
  std::size_t num_mined_ = 0;
  IrgPrediction prediction_ = IrgPrediction::kFirstMatch;
  std::size_t num_classes_ = 0;
};

}  // namespace farmer

#endif  // FARMER_CLASSIFY_IRG_CLASSIFIER_H_
