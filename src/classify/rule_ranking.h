#ifndef FARMER_CLASSIFY_RULE_RANKING_H_
#define FARMER_CLASSIFY_RULE_RANKING_H_

#include <cstddef>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/types.h"

namespace farmer {

/// A class association rule used for classification: `items -> label`.
struct ClassRule {
  ItemVector items;  // Sorted antecedent.
  ClassLabel label = 0;
  std::size_t support = 0;  // |R(items ∪ label)| on the training data.
  double confidence = 0.0;
};

/// CBA precedence: a rule ranks before another when it has higher
/// confidence; ties broken by higher support, then shorter antecedent,
/// then lexicographic antecedent (for determinism).
bool RulePrecedes(const ClassRule& a, const ClassRule& b);

/// Sorts rules by RulePrecedes (best first).
void RankRules(std::vector<ClassRule>* rules);

/// True when the rule's antecedent is contained in `row_items`.
bool RuleMatches(const ClassRule& rule, const ItemVector& row_items);

/// Result of database-coverage selection.
struct CoverageResult {
  std::vector<ClassRule> rules;  // Selected, in precedence order.
  ClassLabel default_class = 0;
};

/// CBA-CB (M1, simplified) database coverage: walks `ranked` (already in
/// precedence order), keeps each rule that correctly classifies at least
/// one still-uncovered training row, removes every row the kept rule
/// covers, and stops when all rows are covered. The default class is the
/// majority class of the rows left uncovered (or of the whole training set
/// when everything is covered).
CoverageResult SelectByCoverage(const BinaryDataset& train,
                                const std::vector<ClassRule>& ranked);

/// Majority class label of `dataset` (lowest label wins ties; 0 if empty).
ClassLabel MajorityClass(const BinaryDataset& dataset);

}  // namespace farmer

#endif  // FARMER_CLASSIFY_RULE_RANKING_H_
