#ifndef FARMER_CLASSIFY_SVM_H_
#define FARMER_CLASSIFY_SVM_H_

#include <cstddef>
#include <vector>

#include "dataset/expression_matrix.h"
#include "dataset/types.h"

namespace farmer {

/// Options for the linear SVM.
struct SvmOptions {
  /// Soft-margin penalty. Non-positive selects SVM-light's default,
  /// C = 1 / avg(||x||²) over the training samples — tiny on raw
  /// microarray intensities, which is exactly how the paper ran it.
  double c = 1.0;
  /// Maximum dual coordinate-descent passes over the data.
  std::size_t max_passes = 1000;
  /// Stop when the largest projected gradient in a pass drops below this.
  double tolerance = 1e-4;
  /// Standardize features (z-score fitted on the training data) — all but
  /// mandatory for raw microarray intensities.
  bool standardize = true;
  std::uint64_t seed = 7;  // Coordinate-order shuffling.
};

/// A linear two-class SVM trained by dual coordinate descent (Hsieh et
/// al., ICML 2008; L1 hinge loss). Substitutes for the paper's SVM-light
/// comparator (see DESIGN.md §3); with the linear kernel on n ≪ d
/// microarray data the two are equivalent learners.
class LinearSvm {
 public:
  /// Trains on `train` treating label `positive_label` as +1 and all other
  /// labels as -1. A bias term is folded in as a constant feature.
  static LinearSvm Train(const ExpressionMatrix& train,
                         ClassLabel positive_label, const SvmOptions& options);

  /// Decision value w·x + b for one sample (num_genes() doubles).
  double Decision(const double* sample) const;

  /// Predicted label: `positive_label` when the decision value is >= 0,
  /// otherwise `negative_label` (the most frequent other training label).
  ClassLabel Predict(const double* sample) const;

  /// Trained weights (one per gene, excluding the bias).
  const std::vector<double>& weights() const { return w_; }
  double bias() const { return bias_; }
  std::size_t passes_run() const { return passes_run_; }

 private:
  std::vector<double> w_;
  double bias_ = 0.0;
  std::vector<double> mean_;   // Standardization parameters.
  std::vector<double> scale_;
  bool standardize_ = false;
  ClassLabel positive_label_ = 1;
  ClassLabel negative_label_ = 0;
  std::size_t passes_run_ = 0;
};

}  // namespace farmer

#endif  // FARMER_CLASSIFY_SVM_H_
