#ifndef FARMER_CLASSIFY_EVALUATION_H_
#define FARMER_CLASSIFY_EVALUATION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "dataset/expression_matrix.h"
#include "dataset/types.h"
#include "util/thread_pool.h"

namespace farmer {

/// A train/test partition of a row index range.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Draws a stratified train/test split: `train_size` rows are sampled so
/// that each class contributes proportionally (largest-remainder rounding),
/// the rest go to the test fold. Deterministic in `seed`.
Split StratifiedSplit(const std::vector<ClassLabel>& labels,
                      std::size_t train_size, std::uint64_t seed);

/// Fraction of positions where `predicted[i] == truth[i]`; 0 on empty.
double Accuracy(const std::vector<ClassLabel>& truth,
                const std::vector<ClassLabel>& predicted);

/// K-fold cross-validation folds over `labels` (stratified). Returns k
/// splits whose test folds partition the rows.
std::vector<Split> StratifiedKFold(const std::vector<ClassLabel>& labels,
                                   std::size_t k, std::uint64_t seed);

/// Evaluates one cross-validation fold: trains on `split.train`, tests on
/// `split.test`, returns the accuracy. `fold` is the fold index. Called
/// concurrently from pool workers when CrossValidate runs on a pool, so
/// the callback must not mutate shared state.
using FoldEvaluator = std::function<double(const Split& split,
                                           std::size_t fold)>;

/// Result of a k-fold cross-validation run.
struct CrossValidationResult {
  std::vector<double> fold_accuracies;  // In fold order.
  double mean_accuracy = 0.0;
};

/// Runs stratified k-fold cross-validation over `labels`: builds the folds
/// with StratifiedKFold(labels, k, seed) and calls `evaluate` once per
/// fold. With a non-null `pool` the folds fan out across its workers;
/// each result lands in its fold's slot and CrossValidate drains the pool
/// before returning (so the pool must not be running unrelated work).
/// The returned accuracies are in fold order for every pool size —
/// including no pool at all — so results are deterministic as long as
/// `evaluate` itself is.
CrossValidationResult CrossValidate(const std::vector<ClassLabel>& labels,
                                    std::size_t k, std::uint64_t seed,
                                    const FoldEvaluator& evaluate,
                                    ThreadPool* pool = nullptr);

}  // namespace farmer

#endif  // FARMER_CLASSIFY_EVALUATION_H_
