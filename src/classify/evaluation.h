#ifndef FARMER_CLASSIFY_EVALUATION_H_
#define FARMER_CLASSIFY_EVALUATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dataset/expression_matrix.h"
#include "dataset/types.h"

namespace farmer {

/// A train/test partition of a row index range.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Draws a stratified train/test split: `train_size` rows are sampled so
/// that each class contributes proportionally (largest-remainder rounding),
/// the rest go to the test fold. Deterministic in `seed`.
Split StratifiedSplit(const std::vector<ClassLabel>& labels,
                      std::size_t train_size, std::uint64_t seed);

/// Fraction of positions where `predicted[i] == truth[i]`; 0 on empty.
double Accuracy(const std::vector<ClassLabel>& truth,
                const std::vector<ClassLabel>& predicted);

/// K-fold cross-validation folds over `labels` (stratified). Returns k
/// splits whose test folds partition the rows.
std::vector<Split> StratifiedKFold(const std::vector<ClassLabel>& labels,
                                   std::size_t k, std::uint64_t seed);

}  // namespace farmer

#endif  // FARMER_CLASSIFY_EVALUATION_H_
