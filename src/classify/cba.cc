#include "classify/cba.h"

#include <algorithm>
#include <cmath>

#include "core/farmer.h"

namespace farmer {

CbaClassifier CbaClassifier::Train(const BinaryDataset& train,
                                   std::vector<ClassRule> candidate_rules) {
  // Deduplicate identical (antecedent, label) rules.
  std::sort(candidate_rules.begin(), candidate_rules.end(),
            [](const ClassRule& a, const ClassRule& b) {
              if (a.items != b.items) return a.items < b.items;
              return a.label < b.label;
            });
  candidate_rules.erase(
      std::unique(candidate_rules.begin(), candidate_rules.end(),
                  [](const ClassRule& a, const ClassRule& b) {
                    return a.items == b.items && a.label == b.label;
                  }),
      candidate_rules.end());
  RankRules(&candidate_rules);
  CbaClassifier classifier;
  classifier.selected_ = SelectByCoverage(train, candidate_rules);
  return classifier;
}

ClassLabel CbaClassifier::Predict(const ItemVector& row_items) const {
  for (const ClassRule& rule : selected_.rules) {
    if (RuleMatches(rule, row_items)) return rule.label;
  }
  return selected_.default_class;
}

std::vector<ClassRule> GenerateRulesWithFarmer(const BinaryDataset& train,
                                               double min_support_fraction,
                                               double min_confidence,
                                               double max_seconds) {
  std::vector<ClassRule> rules;
  const std::size_t num_classes = train.num_classes();
  for (std::size_t c = 0; c < num_classes; ++c) {
    const auto label = static_cast<ClassLabel>(c);
    const std::size_t class_size = train.CountLabel(label);
    if (class_size == 0) continue;
    MinerOptions opts;
    opts.consequent = label;
    opts.min_support = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(min_support_fraction *
                          static_cast<double>(class_size))));
    opts.min_confidence = min_confidence;
    opts.mine_lower_bounds = true;
    opts.report_all_rule_groups = true;  // CBA wants all rules, not IRGs.
    if (max_seconds > 0.0) opts.deadline = Deadline::After(max_seconds);
    const FarmerResult result = MineFarmer(train, opts);
    for (const RuleGroup& g : result.groups) {
      ClassRule upper;
      upper.items = g.antecedent;
      upper.label = label;
      upper.support = g.support_pos;
      upper.confidence = g.confidence;
      rules.push_back(std::move(upper));
      for (const ItemVector& lb : g.lower_bounds) {
        ClassRule rule;
        rule.items = lb;
        rule.label = label;
        rule.support = g.support_pos;
        rule.confidence = g.confidence;
        rules.push_back(std::move(rule));
      }
    }
  }
  return rules;
}

}  // namespace farmer
