#include "classify/irg_classifier.h"

#include <algorithm>
#include <cmath>

#include "util/timer.h"

namespace farmer {

bool IrgClassifier::EntryMatches(const Entry& entry,
                                 const ItemVector& row_items) {
  for (const ItemVector& ms : entry.match_sets) {
    if (std::includes(row_items.begin(), row_items.end(), ms.begin(),
                      ms.end())) {
      return true;
    }
  }
  return false;
}

IrgClassifier IrgClassifier::Train(const BinaryDataset& train,
                                   const IrgClassifierOptions& options) {
  return BuildFromGroups(train, MineClassGroups(train, options), options);
}

std::vector<IrgClassifier::MinedClassGroups> IrgClassifier::MineClassGroups(
    const BinaryDataset& train, const IrgClassifierOptions& options) {
  std::vector<MinedClassGroups> mined;
  const std::size_t num_classes = train.num_classes();
  for (std::size_t c = 0; c < num_classes; ++c) {
    const auto label = static_cast<ClassLabel>(c);
    const std::size_t class_size = train.CountLabel(label);
    if (class_size == 0) continue;
    MinerOptions opts;
    opts.consequent = label;
    opts.min_support = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(options.min_support_fraction *
                          static_cast<double>(class_size))));
    opts.min_confidence = options.min_confidence;
    opts.mine_lower_bounds = true;
    if (options.max_seconds_per_class > 0.0) {
      opts.deadline = Deadline::After(options.max_seconds_per_class);
    }
    FarmerResult result = MineFarmer(train, opts);
    MinedClassGroups m;
    m.label = label;
    m.groups = std::move(result.groups);
    mined.push_back(std::move(m));
  }
  return mined;
}

IrgClassifier IrgClassifier::BuildFromGroups(
    const BinaryDataset& train, const std::vector<MinedClassGroups>& mined,
    const IrgClassifierOptions& options) {
  IrgClassifier classifier;
  classifier.prediction_ = options.prediction;
  const std::size_t num_classes = train.num_classes();
  classifier.num_classes_ = num_classes;
  std::vector<Entry> entries;
  for (const MinedClassGroups& m : mined) {
    classifier.num_mined_ += m.groups.size();
    for (const RuleGroup& g : m.groups) {
      Entry e;
      e.label = m.label;
      e.support = g.support_pos;
      e.confidence = g.confidence;
      if (!g.lower_bounds.empty()) {
        e.match_sets = g.lower_bounds;
      } else {
        e.match_sets = {g.antecedent};
      }
      entries.push_back(std::move(e));
    }
  }

  // Rank CBA-style; generality tie-break uses the shortest match set.
  auto shortest = [](const Entry& e) {
    std::size_t best = static_cast<std::size_t>(-1);
    for (const ItemVector& ms : e.match_sets) {
      best = std::min(best, ms.size());
    }
    return best;
  };
  std::stable_sort(entries.begin(), entries.end(),
                   [&](const Entry& a, const Entry& b) {
                     if (a.confidence != b.confidence) {
                       return a.confidence > b.confidence;
                     }
                     if (a.support != b.support) return a.support > b.support;
                     return shortest(a) < shortest(b);
                   });

  // Database-coverage pruning over the ranked groups.
  const std::size_t n = train.num_rows();
  std::vector<bool> covered(n, false);
  std::size_t num_covered = 0;
  for (Entry& e : entries) {
    if (num_covered == n) break;
    bool correct = false;
    std::vector<RowId> matched;
    for (RowId r = 0; r < n; ++r) {
      if (covered[r]) continue;
      if (!EntryMatches(e, train.row(r))) continue;
      matched.push_back(r);
      if (train.label(r) == e.label) correct = true;
    }
    if (!correct) continue;
    classifier.entries_.push_back(std::move(e));
    for (RowId r : matched) {
      covered[r] = true;
      ++num_covered;
    }
  }

  // Default class from the uncovered remainder.
  std::vector<std::size_t> uncovered(std::max<std::size_t>(1, num_classes),
                                     0);
  bool any = false;
  for (RowId r = 0; r < n; ++r) {
    if (!covered[r]) {
      ++uncovered[train.label(r)];
      any = true;
    }
  }
  classifier.default_class_ =
      any ? static_cast<ClassLabel>(
                std::max_element(uncovered.begin(), uncovered.end()) -
                uncovered.begin())
          : MajorityClass(train);
  return classifier;
}

ClassLabel IrgClassifier::Predict(const ItemVector& row_items) const {
  if (prediction_ == IrgPrediction::kFirstMatch) {
    for (const Entry& e : entries_) {
      if (EntryMatches(e, row_items)) return e.label;
    }
    return default_class_;
  }
  // Weighted vote: confidence-weighted sum per class over all matches.
  std::vector<double> score(std::max<std::size_t>(1, num_classes_), 0.0);
  bool any = false;
  for (const Entry& e : entries_) {
    if (EntryMatches(e, row_items)) {
      score[e.label] += e.confidence;
      any = true;
    }
  }
  if (!any) return default_class_;
  return static_cast<ClassLabel>(
      std::max_element(score.begin(), score.end()) - score.begin());
}

}  // namespace farmer
