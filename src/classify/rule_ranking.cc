#include "classify/rule_ranking.h"

#include <algorithm>

namespace farmer {

bool RulePrecedes(const ClassRule& a, const ClassRule& b) {
  if (a.confidence != b.confidence) return a.confidence > b.confidence;
  if (a.support != b.support) return a.support > b.support;
  if (a.items.size() != b.items.size()) {
    return a.items.size() < b.items.size();
  }
  if (a.items != b.items) return a.items < b.items;
  return a.label < b.label;
}

void RankRules(std::vector<ClassRule>* rules) {
  std::stable_sort(rules->begin(), rules->end(), RulePrecedes);
}

bool RuleMatches(const ClassRule& rule, const ItemVector& row_items) {
  return std::includes(row_items.begin(), row_items.end(),
                       rule.items.begin(), rule.items.end());
}

ClassLabel MajorityClass(const BinaryDataset& dataset) {
  const std::size_t num_classes = dataset.num_classes();
  if (num_classes == 0) return 0;
  std::vector<std::size_t> counts(num_classes, 0);
  for (RowId r = 0; r < dataset.num_rows(); ++r) ++counts[dataset.label(r)];
  return static_cast<ClassLabel>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

CoverageResult SelectByCoverage(const BinaryDataset& train,
                                const std::vector<ClassRule>& ranked) {
  CoverageResult result;
  const std::size_t n = train.num_rows();
  std::vector<bool> covered(n, false);
  std::size_t num_covered = 0;

  for (const ClassRule& rule : ranked) {
    if (num_covered == n) break;
    bool classifies_correctly = false;
    std::vector<RowId> matched;
    for (RowId r = 0; r < n; ++r) {
      if (covered[r]) continue;
      if (!RuleMatches(rule, train.row(r))) continue;
      matched.push_back(r);
      if (train.label(r) == rule.label) classifies_correctly = true;
    }
    if (!classifies_correctly) continue;
    result.rules.push_back(rule);
    for (RowId r : matched) {
      covered[r] = true;
      ++num_covered;
    }
  }

  // Default class: majority among rows no selected rule covers.
  const std::size_t num_classes = std::max<std::size_t>(
      1, train.num_classes());
  std::vector<std::size_t> uncovered_counts(num_classes, 0);
  bool any_uncovered = false;
  for (RowId r = 0; r < n; ++r) {
    if (!covered[r]) {
      ++uncovered_counts[train.label(r)];
      any_uncovered = true;
    }
  }
  if (any_uncovered) {
    result.default_class = static_cast<ClassLabel>(
        std::max_element(uncovered_counts.begin(), uncovered_counts.end()) -
        uncovered_counts.begin());
  } else {
    result.default_class = MajorityClass(train);
  }
  return result;
}

}  // namespace farmer
