#include "classify/evaluation.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace farmer {

namespace {

// Rows grouped by class, each group shuffled deterministically.
std::vector<std::vector<std::size_t>> ShuffledClassGroups(
    const std::vector<ClassLabel>& labels, std::uint64_t seed) {
  std::size_t num_classes = 0;
  for (ClassLabel l : labels) {
    num_classes = std::max<std::size_t>(num_classes, l + 1u);
  }
  std::vector<std::vector<std::size_t>> groups(num_classes);
  for (std::size_t r = 0; r < labels.size(); ++r) {
    groups[labels[r]].push_back(r);
  }
  Rng rng(seed);
  for (auto& g : groups) {
    for (std::size_t i = g.size(); i > 1; --i) {
      std::swap(g[i - 1], g[rng.NextBelow(i)]);
    }
  }
  return groups;
}

}  // namespace

Split StratifiedSplit(const std::vector<ClassLabel>& labels,
                      std::size_t train_size, std::uint64_t seed) {
  FARMER_CHECK(train_size <= labels.size())
      << train_size << " > " << labels.size() << " rows";
  auto groups = ShuffledClassGroups(labels, seed);
  const double frac = labels.empty()
                          ? 0.0
                          : static_cast<double>(train_size) /
                                static_cast<double>(labels.size());

  // Largest-remainder apportionment of the train quota across classes.
  std::vector<std::size_t> take(groups.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < groups.size(); ++c) {
    const double exact = frac * static_cast<double>(groups[c].size());
    take[c] = std::min<std::size_t>(groups[c].size(),
                                    static_cast<std::size_t>(exact));
    assigned += take[c];
    remainders.emplace_back(exact - static_cast<double>(take[c]), c);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [rem, c] : remainders) {
    if (assigned >= train_size) break;
    if (take[c] < groups[c].size()) {
      ++take[c];
      ++assigned;
    }
  }
  // If rounding still falls short (tiny classes), top up greedily.
  for (std::size_t c = 0; c < groups.size() && assigned < train_size; ++c) {
    while (take[c] < groups[c].size() && assigned < train_size) {
      ++take[c];
      ++assigned;
    }
  }

  Split split;
  for (std::size_t c = 0; c < groups.size(); ++c) {
    for (std::size_t i = 0; i < groups[c].size(); ++i) {
      (i < take[c] ? split.train : split.test).push_back(groups[c][i]);
    }
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

double Accuracy(const std::vector<ClassLabel>& truth,
                const std::vector<ClassLabel>& predicted) {
  FARMER_CHECK(truth.size() == predicted.size())
      << truth.size() << " labels vs " << predicted.size() << " predictions";
  if (truth.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

CrossValidationResult CrossValidate(const std::vector<ClassLabel>& labels,
                                    std::size_t k, std::uint64_t seed,
                                    const FoldEvaluator& evaluate,
                                    ThreadPool* pool) {
  const std::vector<Split> splits = StratifiedKFold(labels, k, seed);
  CrossValidationResult result;
  result.fold_accuracies.assign(splits.size(), 0.0);
  if (pool != nullptr) {
    for (std::size_t f = 0; f < splits.size(); ++f) {
      // Each task writes only its own slot; Wait() publishes the writes.
      pool->Submit([&result, &splits, &evaluate, f](std::size_t) {
        result.fold_accuracies[f] = evaluate(splits[f], f);
      });
    }
    pool->Wait();
  } else {
    for (std::size_t f = 0; f < splits.size(); ++f) {
      result.fold_accuracies[f] = evaluate(splits[f], f);
    }
  }
  double sum = 0.0;
  for (double a : result.fold_accuracies) sum += a;
  result.mean_accuracy =
      splits.empty() ? 0.0 : sum / static_cast<double>(splits.size());
  return result;
}

std::vector<Split> StratifiedKFold(const std::vector<ClassLabel>& labels,
                                   std::size_t k, std::uint64_t seed) {
  FARMER_CHECK(k >= 2) << "k=" << k;
  auto groups = ShuffledClassGroups(labels, seed);
  std::vector<std::vector<std::size_t>> folds(k);
  std::size_t next_fold = 0;
  for (const auto& g : groups) {
    for (std::size_t r : g) {
      folds[next_fold].push_back(r);
      next_fold = (next_fold + 1) % k;
    }
  }
  std::vector<Split> splits(k);
  for (std::size_t f = 0; f < k; ++f) {
    for (std::size_t other = 0; other < k; ++other) {
      auto& dst = (other == f) ? splits[f].test : splits[f].train;
      dst.insert(dst.end(), folds[other].begin(), folds[other].end());
    }
    std::sort(splits[f].train.begin(), splits[f].train.end());
    std::sort(splits[f].test.begin(), splits[f].test.end());
  }
  return splits;
}

}  // namespace farmer
