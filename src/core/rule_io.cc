#include "core/rule_io.h"

#include <fstream>
#include <sstream>

namespace farmer {

Status SaveRuleGroups(const std::vector<RuleGroup>& groups,
                      std::size_t num_rows, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IoError("cannot open " + path + " for writing");
  os << "farmer-rules v1 " << num_rows << '\n';
  os.precision(17);
  for (const RuleGroup& g : groups) {
    os << "group " << g.support_pos << ' ' << g.support_neg << ' '
       << g.confidence << ' ' << g.chi_square << '\n';
    os << "rows";
    g.rows.ForEach([&os](std::size_t r) { os << ' ' << r; });
    os << '\n';
    os << "upper";
    for (ItemId i : g.antecedent) os << ' ' << i;
    os << '\n';
    for (const ItemVector& lb : g.lower_bounds) {
      os << "lower";
      for (ItemId i : lb) os << ' ' << i;
      os << '\n';
    }
    os << "end\n";
  }
  if (!os) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

namespace {

// Parses the space-separated integers after the tag word of `line`.
template <typename Fn>
bool ParseIds(const std::string& line, Fn&& fn) {
  std::istringstream is(line);
  std::string tag;
  is >> tag;
  unsigned long v = 0;
  while (is >> v) fn(v);
  return is.eof();
}

}  // namespace

Status LoadRuleGroups(const std::string& path,
                      std::vector<RuleGroup>* groups,
                      std::size_t* num_rows) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(path + ": empty file");
  }
  std::istringstream header(line);
  std::string magic, version;
  std::size_t n = 0;
  header >> magic >> version >> n;
  if (magic != "farmer-rules" || version != "v1" || header.fail()) {
    return Status::InvalidArgument(path + ": bad header '" + line + "'");
  }
  *num_rows = n;

  std::vector<RuleGroup> out;
  RuleGroup current;
  bool in_group = false;
  bool has_rows = false;
  bool has_upper = false;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const auto err = [&](const std::string& msg) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + msg);
    };
    if (line.size() > kMaxRuleLineBytes) return err("line too long");
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("group ", 0) == 0) {
      if (in_group) return err("nested 'group'");
      in_group = true;
      has_rows = false;
      has_upper = false;
      current = RuleGroup();
      current.rows = Bitset(n);
      std::istringstream is(line.substr(6));
      is >> current.support_pos >> current.support_neg >>
          current.confidence >> current.chi_square;
      if (is.fail()) return err("bad group stats");
    } else if (line.rfind("rows", 0) == 0) {
      if (!in_group) return err("'rows' outside a group");
      if (has_rows) return err("duplicate 'rows' in one group");
      has_rows = true;
      bool ok = true;
      ParseIds(line, [&](unsigned long r) {
        if (r >= n) {
          ok = false;
        } else {
          current.rows.Set(r);
        }
      });
      if (!ok) return err("row id out of range");
    } else if (line.rfind("upper", 0) == 0) {
      if (!in_group) return err("'upper' outside a group");
      if (has_upper) return err("duplicate 'upper' in one group");
      has_upper = true;
      ParseIds(line, [&](unsigned long i) {
        current.antecedent.push_back(static_cast<ItemId>(i));
      });
    } else if (line.rfind("lower", 0) == 0) {
      if (!in_group) return err("'lower' outside a group");
      ItemVector lb;
      ParseIds(line, [&](unsigned long i) {
        lb.push_back(static_cast<ItemId>(i));
      });
      current.lower_bounds.push_back(std::move(lb));
    } else if (line == "end") {
      if (!in_group) return err("'end' outside a group");
      if (current.rows.Count() !=
          current.support_pos + current.support_neg) {
        return err("row count does not match supports");
      }
      out.push_back(std::move(current));
      in_group = false;
    } else {
      return err("unknown record '" + line + "'");
    }
  }
  if (in_group) {
    return Status::InvalidArgument(path + ": truncated final group");
  }
  *groups = std::move(out);
  return Status::Ok();
}

}  // namespace farmer
