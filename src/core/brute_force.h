#ifndef FARMER_CORE_BRUTE_FORCE_H_
#define FARMER_CORE_BRUTE_FORCE_H_

#include <cstddef>
#include <vector>

#include "core/miner_options.h"
#include "core/rule.h"
#include "dataset/dataset.h"
#include "dataset/types.h"
#include "util/bitset.h"

namespace farmer {

/// A closed itemset together with its row support set.
struct ClosedItemset {
  ItemVector items;
  Bitset rows;

  std::size_t support() const { return rows.Count(); }
};

/// Reference implementations used as testing oracles. They enumerate all
/// 2^n row subsets and are only feasible for small datasets (n <= ~16).

/// Every rule group of `dataset` with consequent `options.consequent`,
/// *without* any constraint filtering or interestingness test. Sorted by
/// row set for deterministic comparison. Lower bounds are found by
/// exhaustive minimal-subset search when `with_lower_bounds` is set
/// (feasible only for short antecedents).
std::vector<RuleGroup> BruteForceAllRuleGroups(const BinaryDataset& dataset,
                                               ClassLabel consequent,
                                               bool with_lower_bounds = false);

/// The constrained interesting rule groups, matching MineFarmer semantics:
/// a group qualifies iff it passes every threshold in `options` and no
/// threshold-passing group with a properly more general antecedent has
/// confidence >= its own. Ignores options.top_k/deadline/pruning toggles.
std::vector<RuleGroup> BruteForceIRGs(const BinaryDataset& dataset,
                                      const MinerOptions& options);

/// All closed itemsets with support >= max(1, min_support), class-blind —
/// the oracle for the CHARM and CLOSET+ baselines.
std::vector<ClosedItemset> BruteForceClosedItemsets(
    const BinaryDataset& dataset, std::size_t min_support);

/// The minimal subsets L of `antecedent` with R(L) = `rows` — the oracle
/// for MineLB. Exponential in |antecedent|.
std::vector<ItemVector> BruteForceLowerBounds(const BinaryDataset& dataset,
                                              const ItemVector& antecedent,
                                              const Bitset& rows);

/// Row support set R(items) of `items` in `dataset`.
Bitset RowSupportSet(const BinaryDataset& dataset, const ItemVector& items);

}  // namespace farmer

#endif  // FARMER_CORE_BRUTE_FORCE_H_
