#ifndef FARMER_CORE_CARPENTER_H_
#define FARMER_CORE_CARPENTER_H_

#include <cstddef>
#include <vector>

#include "core/brute_force.h"  // ClosedItemset
#include "dataset/dataset.h"
#include "util/timer.h"

namespace farmer {

/// Options for CARPENTER.
struct CarpenterOptions {
  /// Minimum absolute support (rows) of a closed itemset. Must be >= 1.
  std::size_t min_support = 1;
  Deadline deadline;
  /// Stop (with `overflowed`) once this many closed sets were found;
  /// 0 = unlimited.
  std::size_t max_closed = 0;
};

/// Result of a CARPENTER run.
struct CarpenterResult {
  std::vector<ClosedItemset> closed;
  std::size_t nodes_visited = 0;
  std::size_t pruned_by_backscan = 0;
  std::size_t pruned_by_support = 0;
  bool timed_out = false;
  bool overflowed = false;
  double seconds = 0.0;
};

/// CARPENTER (Pan, Cong, Tung, Yang & Zaki, KDD 2003): finds all frequent
/// closed itemsets by depth-first *row* enumeration — the paper's
/// predecessor that FARMER generalizes from closed-pattern mining to
/// interesting rule groups. Class labels are ignored.
///
/// Shares FARMER's machinery: conditional transposed tables, row
/// absorption (pruning 1), the back scan (pruning 2), and a support-based
/// bound (pruning 3 reduces to |X| + |candidates| < minsup).
CarpenterResult MineCarpenter(const BinaryDataset& dataset,
                              const CarpenterOptions& options);

}  // namespace farmer

#endif  // FARMER_CORE_CARPENTER_H_
