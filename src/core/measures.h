#ifndef FARMER_CORE_MEASURES_H_
#define FARMER_CORE_MEASURES_H_

#include <cstddef>

namespace farmer {

/// Interestingness measures of a class association rule `A -> C` and their
/// anti-monotone upper bounds over the row-enumeration subtree.
///
/// All measures are functions of the pair `(x, y)` with
///   x = |R(A)|        (rows containing the antecedent)
///   y = |R(A ∪ C)|    (rows containing the antecedent and labeled C)
/// plus the dataset constants
///   n = |R|           (all rows)
///   m = |R(C)|        (rows labeled C).
///
/// For any rule `A' -> C` discovered below a node whose rule is `A -> C`
/// (so `A' ⊂ A`), the feasible `(x', y')` pairs lie in the parallelogram
/// with vertices (x,y), (x-y+m, m), (n, m), (y+n-m, y) — the paper's
/// Figure 7. Convex measures are therefore maximized at a vertex, and since
/// they vanish at (n, m), the bound is the max over the other three
/// vertices (Lemma 3.9). This holds for chi-square and entropy gain
/// (Morishita & Sese); confidence, lift and conviction are monotone in
/// confidence and get their own direct bound.

/// Confidence y/x; 0 when x == 0.
double Confidence(std::size_t y, std::size_t x);

/// Pearson chi-square statistic of the 2x2 contingency table induced by
/// (x, y, n, m). Returns 0 for degenerate margins (x==0, x==n, m==0, m==n).
double ChiSquare(std::size_t x, std::size_t y, std::size_t n, std::size_t m);

/// Upper bound of ChiSquare over all rules below a node whose rule has
/// counts (x, y) — the max over the three non-trivial parallelogram
/// vertices (Lemma 3.9).
double ChiSquareUpperBound(std::size_t x, std::size_t y, std::size_t n,
                           std::size_t m);

/// Lift: confidence / base rate = (y/x) / (m/n); 0 when degenerate.
double Lift(std::size_t x, std::size_t y, std::size_t n, std::size_t m);

/// Conviction: (1 - m/n) / (1 - y/x). Returns +inf for 100%-confidence
/// rules; 0 when x == 0.
double Conviction(std::size_t x, std::size_t y, std::size_t n, std::size_t m);

/// Entropy gain of splitting the dataset on "row contains A":
/// H(m/n) - [x/n H(y/x) + (n-x)/n H((m-y)/(n-x))]. 0 when degenerate.
double EntropyGain(std::size_t x, std::size_t y, std::size_t n,
                   std::size_t m);

/// Upper bound of EntropyGain over the subtree, via the same three-vertex
/// convexity argument as chi-square.
double EntropyGainUpperBound(std::size_t x, std::size_t y, std::size_t n,
                             std::size_t m);

/// Gini gain of splitting the dataset on "row contains A":
/// gini(m/n) - [x/n gini(y/x) + (n-x)/n gini((m-y)/(n-x))] with
/// gini(p) = 2p(1-p). 0 when degenerate.
double GiniGain(std::size_t x, std::size_t y, std::size_t n, std::size_t m);

/// Upper bound of GiniGain over the subtree (three-vertex convexity).
double GiniGainUpperBound(std::size_t x, std::size_t y, std::size_t n,
                          std::size_t m);

/// Phi correlation coefficient of the 2x2 table: (ad - bc) /
/// sqrt(x m (n-x)(n-m)); positive when A and C are positively associated.
/// 0 for degenerate margins. Note phi^2 * n == chi-square.
double PhiCoefficient(std::size_t x, std::size_t y, std::size_t n,
                      std::size_t m);

/// Upper bound of PhiCoefficient over the subtree: phi is not convex, but
/// phi^2 = chi/n is, so sqrt(chi-bound / n) dominates it.
double PhiUpperBound(std::size_t x, std::size_t y, std::size_t n,
                     std::size_t m);

/// Given an upper bound `conf_ub` on the confidence reachable in a subtree,
/// the corresponding bounds for lift and conviction (both are increasing
/// functions of confidence).
double LiftUpperBound(double conf_ub, std::size_t n, std::size_t m);
double ConvictionUpperBound(double conf_ub, std::size_t n, std::size_t m);

}  // namespace farmer

#endif  // FARMER_CORE_MEASURES_H_
