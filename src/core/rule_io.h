#ifndef FARMER_CORE_RULE_IO_H_
#define FARMER_CORE_RULE_IO_H_

#include <string>
#include <vector>

#include "core/farmer.h"
#include "core/rule.h"
#include "util/status.h"

namespace farmer {

/// Serializes mined rule groups to a line-oriented text format and back,
/// so rules can be mined once and reused (e.g. by a classifier in another
/// process).
///
/// Format (one record per rule group):
///   group <support_pos> <support_neg> <confidence> <chi_square>
///   rows <row> <row> ...
///   upper <item> <item> ...
///   lower <item> ...                (zero or more lines)
///   end
/// Lines starting with '#' are comments. `num_rows` in the header line
/// `farmer-rules v1 <num_rows>` sizes the row bitsets on load.
Status SaveRuleGroups(const std::vector<RuleGroup>& groups,
                      std::size_t num_rows, const std::string& path);

/// Longest line LoadRuleGroups accepts. Generous for real stores (a
/// 4M-row `rows` line stays under it) while bounding what a hostile
/// file can make the parser buffer and re-scan.
inline constexpr std::size_t kMaxRuleLineBytes = std::size_t{1} << 25;

/// Loads rule groups written by SaveRuleGroups. Returns InvalidArgument
/// on malformed or version-mismatched input: bad header, records outside
/// a group, duplicate `rows`/`upper` records within one group, a group
/// missing its `end`, row indices >= the header's num_rows, supports
/// disagreeing with the row set, or lines over kMaxRuleLineBytes.
Status LoadRuleGroups(const std::string& path,
                      std::vector<RuleGroup>* groups,
                      std::size_t* num_rows);

}  // namespace farmer

#endif  // FARMER_CORE_RULE_IO_H_
