#ifndef FARMER_CORE_FARMER_H_
#define FARMER_CORE_FARMER_H_

#include <cstddef>
#include <vector>

#include "core/miner_options.h"
#include "core/rule.h"
#include "dataset/dataset.h"
#include "dataset/transpose.h"
#include "dataset/types.h"
#include "util/bitset.h"

namespace farmer {

/// Result of a FARMER run.
struct FarmerResult {
  /// The interesting rule groups satisfying all constraints, in discovery
  /// order (top-k mode: the k best by confidence, then support).
  std::vector<RuleGroup> groups;
  MinerStats stats;
  /// Dataset context: total rows and rows labeled with the consequent.
  std::size_t num_rows = 0;
  std::size_t num_consequent_rows = 0;
};

/// The FARMER algorithm (paper §3): finds all interesting rule groups with
/// the configured consequent by depth-first *row* enumeration over the
/// transposed table, with pruning strategies 1–3, and optionally computes
/// each group's lower bounds with MineLB.
///
/// Usage:
///   MinerOptions opts;
///   opts.consequent = 1;
///   opts.min_support = 3;
///   opts.min_confidence = 0.9;
///   FarmerResult result = MineFarmer(dataset, opts);
///
/// The input dataset may list rows in any order; the miner permutes them
/// into the consequent-first order internally and reports row sets in the
/// caller's original row ids.
FarmerResult MineFarmer(const BinaryDataset& dataset,
                        const MinerOptions& options);

namespace internal {

/// Implementation class exposed for white-box tests.
class FarmerMiner {
 public:
  FarmerMiner(const BinaryDataset& dataset, const MinerOptions& options);

  FarmerResult Mine();

 private:
  // One tuple of a conditional transposed table: the item plus the
  // candidate rows (a subset of the node's enumeration candidate list)
  // occurring in the item's tuple.
  struct NodeTuple {
    ItemId item;
    RowVector cand;
  };

  // Recursive MineIRGs (paper Figure 5). `tuples` is the node's conditional
  // transposed table, `cands` its enumeration candidate list (sorted row
  // ids, class-C rows first by construction of ORD), `supp`/`supn` the
  // identified counts of R(I(X) ∪ C) / R(I(X) ∪ ¬C), and `support_rows`
  // the rows identified so far as members of R(I(X)) (X plus rows absorbed
  // by Pruning 1 on the path).
  void MineIRGs(std::vector<NodeTuple> tuples, RowVector cands,
                std::size_t supp, std::size_t supn, Bitset support_rows);

  // Pruning 2: true when some row outside `support_rows` and outside the
  // candidate list occurs in every tuple — the subtree duplicates an
  // earlier one (Lemma 3.6).
  bool BackScanFindsForeignRow(const std::vector<NodeTuple>& tuples,
                               const RowVector& cands,
                               const Bitset& support_rows) const;

  // Step 7: applies the constraint checks and the IRG comparison, and
  // stores the group when it qualifies. In exact mode (ablation with
  // Pruning 1 or 2 disabled) recomputes the true row support first.
  void MaybeInsertGroup(const std::vector<NodeTuple>& tuples,
                        std::size_t supp, std::size_t supn,
                        const Bitset& support_rows);

  // True when all measure thresholds hold for a rule with the given exact
  // counts (x = supp + supn, y = supp).
  bool PassesThresholds(std::size_t supp, std::size_t supn) const;

  // The dynamic confidence floor: min_confidence, raised in top-k mode to
  // the current k-th best confidence.
  double EffectiveMinConfidence() const;

  MinerOptions options_;  // Copied: the miner may outlive the caller's copy.
  RowOrder order_;
  BinaryDataset permuted_;
  TransposedTable tt_;
  std::size_t n_ = 0;  // rows
  std::size_t m_ = 0;  // rows labeled with the consequent (first m_ ids)
  bool exact_mode_ = false;

  // Discovered groups (row sets in *permuted* ids until the final remap).
  std::vector<RuleGroup> store_;
  // store_ indices bucketed by row-set size: the IRG comparison only needs
  // groups with strictly larger row sets (equal-size sets are never proper
  // supersets), and most groups sit at the minimum support.
  std::vector<std::vector<std::size_t>> store_by_count_;
  // Sorted confidences of the current top-k groups (top-k mode only).
  std::vector<double> topk_confs_;
  // Row sets already inserted (exact mode deduplication).
  std::vector<Bitset> seen_exact_;

  MinerStats stats_;

  // Scratch counters for the per-node scan, epoch-cleared.
  std::vector<std::uint64_t> cnt_;
  std::vector<std::uint64_t> cnt_epoch_;
  std::uint64_t epoch_ = 0;
};

}  // namespace internal
}  // namespace farmer

#endif  // FARMER_CORE_FARMER_H_
