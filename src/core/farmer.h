#ifndef FARMER_CORE_FARMER_H_
#define FARMER_CORE_FARMER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/miner_options.h"
#include "core/rule.h"
#include "dataset/dataset.h"
#include "dataset/transpose.h"
#include "dataset/types.h"
#include "util/bitset.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace farmer {

/// Lexicographic id of a merge event in the parallel (and farm)
/// search: the row path of the node it belongs to. A task's id is the
/// path of its root node; a node's own step-7 record is ordered after
/// its whole subtree by appending kCloserRank (larger than any row
/// index). Paths ascend along every branch, so id order == sequential
/// (DFS post-order insertion) order.
using TaskId = std::vector<std::uint32_t>;
inline constexpr std::uint32_t kCloserRank = 0xFFFFFFFFu;

/// A contiguous run of the sequential insertion stream, tagged with the
/// id it merges at. Tasks emit one segment per uninterrupted inline
/// stretch plus one single-group segment per deferred step-7 record.
/// This is both the unit of the in-process deterministic merge and the
/// unit a farm worker uploads to its coordinator.
struct MineSegment {
  TaskId id;
  std::vector<RuleGroup> groups;
};

/// Result of a FARMER run.
struct FarmerResult {
  /// The interesting rule groups satisfying all constraints, in discovery
  /// order (top-k mode: the k best by confidence, then support).
  std::vector<RuleGroup> groups;
  MinerStats stats;
  /// Dataset context: total rows and rows labeled with the consequent.
  std::size_t num_rows = 0;
  std::size_t num_consequent_rows = 0;
};

/// The FARMER algorithm (paper §3): finds all interesting rule groups with
/// the configured consequent by depth-first *row* enumeration over the
/// transposed table, with pruning strategies 1–3, and optionally computes
/// each group's lower bounds with MineLB.
///
/// Usage:
///   MinerOptions opts;
///   opts.consequent = 1;
///   opts.min_support = 3;
///   opts.min_confidence = 0.9;
///   FarmerResult result = MineFarmer(dataset, opts);
///
/// The input dataset may list rows in any order; the miner permutes them
/// into the consequent-first order internally and reports row sets in the
/// caller's original row ids.
///
/// With `options.num_threads > 1` the enumeration tree runs on a
/// work-stealing thread pool with adaptive subtree splitting: whenever
/// the pool runs low on queued work, a mining worker re-enqueues the
/// remaining sibling branches of its current node as new tasks instead
/// of recursing into them. Every task carries a lexicographic id (its
/// row path) and per-task results are merged in id order, so the groups
/// are bit-identical to a sequential run for every thread count.
FarmerResult MineFarmer(const BinaryDataset& dataset,
                        const MinerOptions& options);

namespace internal {

/// Implementation class exposed for white-box tests.
///
/// The conditional transposed table of a node is represented word-parallel:
/// every item keeps one immutable Bitset over all rows (built once from the
/// transposed table), and a node is (alive item list, candidate-row mask,
/// identified-support mask). A tuple's conditional row list is then the
/// intersection of its full bitset with the candidate mask, computed on the
/// fly by the bitset kernels — no per-node row vectors exist at all.
class FarmerMiner {
 public:
  FarmerMiner(const BinaryDataset& dataset, const MinerOptions& options);

  FarmerResult Mine();

  // ---- Farm decomposition (distributed mining) -----------------------
  //
  // The farm splits the search exactly where the parallel scheme's
  // SpawnRemaining would split it at the tree root: one lease per root
  // candidate row surviving the root visit, plus the root's own deferred
  // step-7 closer. A worker process mines one lease with
  // MineFarmLease(); the coordinator replays every uploaded segment in
  // id order with FinalizeFarm(). Because the decomposition and the
  // merge are the in-process parallel ones verbatim, the farm output is
  // bit-identical to MineFarmer() on one machine.

  // The root split: which subtrees exist and what the root itself
  // contributed. Computed once, lazily, by PlanFarm().
  struct FarmPlan {
    // True when the root node itself was pruned: no leases, no root
    // segments — the result is empty (FinalizeFarm({} ...) handles it).
    bool root_pruned = false;
    // One lease per surviving root candidate row, ascending. Lease i
    // mines the subtree rooted at row lease_rows[i].
    std::vector<std::uint32_t> lease_rows;
    // The root's own segments: its deferred step-7 closer (when the
    // root pattern qualifies). Must be merged along with the workers'
    // uploads.
    std::vector<MineSegment> root_segments;
    // Stats of the root visit (nodes_visited etc.).
    MinerStats root_stats;
  };

  // Visits the root node once and returns the lease decomposition.
  // Idempotent; the plan is cached across calls.
  const FarmPlan& PlanFarm();

  // Mines the subtree of one lease (a row from FarmPlan::lease_rows)
  // and returns its segments. Reentrant with respect to distinct miner
  // instances, NOT thread-safe on one instance (workers are
  // single-threaded processes). `cancel` may be null; when it fires the
  // partial result must be discarded (stats->timed_out is set). `stats`
  // may be null.
  std::vector<MineSegment> MineFarmLease(std::uint32_t row,
                                         CancelFlag* cancel,
                                         MinerStats* stats);

  // Replays `segments` (the workers' uploads plus FarmPlan's
  // root_segments, in any order) through the deterministic id-ordered
  // merge and finishes exactly like Mine(): top-k cut, MineLB, row-id
  // remap, metrics export. `stats` seeds the result's counters (the
  // caller accumulates worker stats); the root visit's stats should be
  // included by the caller.
  FarmerResult FinalizeFarm(std::vector<MineSegment> segments,
                            MinerStats stats);

 private:
  // Scratch owned by one depth of the enumeration recursion. All bitsets
  // are sized to the row count once, so steady-state recursion allocates
  // nothing: a node reads its inputs (alive/cand/support, written by the
  // parent) and overwrites only its own depth's derived fields.
  struct DepthScratch {
    std::vector<ItemId> alive;            // Tuples of the conditional table.
    std::vector<const Bitset*> tuple_ptrs;  // Bitset views of `alive`.
    Bitset cand;      // Enumeration candidate rows of the node.
    Bitset support;   // Rows identified as R(I(X)) on entry (X + absorbed).
    Bitset common;    // Rows occurring in every alive tuple (full lists).
    Bitset occupied;  // Candidates occurring in >= 1 tuple.
    Bitset new_cands; // Candidates surviving the scan (not absorbed).
    Bitset scratch;   // Kernel scratch (back scan, absorption set).
    Bitset scratch2;  // Second kernel scratch (foreign-row universe).
  };

  // Groups discovered so far plus the superset index the IRG comparison
  // queries: for each row-set size, indices bucketed by the set's first
  // row. A proper superset of `rows` must be strictly larger and must
  // contain rows' first set row, so its own first row can only be <= it —
  // the two keys prune almost all candidates before any bitset test runs.
  struct GroupStore {
    std::vector<RuleGroup> groups;
    // by_count_first[count][first_row] -> indices into `groups`. Outer
    // entries are allocated lazily on first insert for that count.
    std::vector<std::vector<std::vector<std::uint32_t>>> by_count_first;
    std::size_t max_count = 0;  // Largest populated row-set size.
    // Sorted confidences of the current top-k groups (top-k mode only).
    std::vector<double> topk_confs;
    // Row sets already inserted (exact-mode deduplication): a hash set on
    // the bitset digest, with full equality verified on collision.
    std::unordered_set<Bitset, BitsetHash> seen_exact;
  };

  using TaskId = farmer::TaskId;
  static constexpr std::uint32_t kCloserRank = farmer::kCloserRank;

  // Immutable inputs shared by all sibling tasks spawned at one split
  // node: one snapshot allocation per split instead of one full bitset
  // copy per spawned task. Each task derives its own masks from it
  // inside the worker (into preallocated arena storage).
  struct SplitSnapshot {
    std::vector<ItemId> alive;  // Alive tuples of the split node.
    Bitset cands;               // The split node's surviving candidates.
    Bitset support;             // Identified support of the split node.
  };

  // One spawned subtree task: descend from the snapshot's node into
  // `row`. parent == nullptr marks the root task (mine from the tree
  // root; all other fields but `id` are ignored).
  struct SubtreeTask {
    std::shared_ptr<const SplitSnapshot> parent;
    std::uint32_t row = 0;
    std::size_t depth = 0;  // Tree depth of the task's root node.
    std::size_t supp = 0;   // Identified counts after descending into row.
    std::size_t supn = 0;
    TaskId id;
    // Worker whose deque the task was pushed to (kExternalWorker when
    // submitted from outside the pool). A task running on a different
    // worker was stolen — the trace annotates its span with that.
    std::uint32_t home_worker = kExternalWorker;
  };
  static constexpr std::uint32_t kExternalWorker = 0xFFFFFFFFu;

  using Segment = MineSegment;

  struct SearchContext;

  // State shared by all workers of one parallel run.
  struct ParallelShared {
    ThreadPool* pool = nullptr;
    std::vector<SearchContext>* contexts = nullptr;
    // Split when fewer tasks than this are queued (the pool is hungry).
    std::size_t hungry_below = 1;
    Mutex mutex;
    // All tasks' output, unordered (the merge sorts by id later).
    std::vector<Segment> segments FARMER_GUARDED_BY(mutex);
    // Aggregated task statistics.
    MinerStats stats FARMER_GUARDED_BY(mutex);
    // Per-task wall-time distribution (null unless metrics are wired).
    obs::Histogram* task_seconds = nullptr;
  };

  // Per-worker search state: recursion arena plus a private group store.
  // Sequential mining uses a single context for the whole search; with
  // num_threads > 1 each worker owns one, reuses it across tasks, and
  // publishes segments into the shared state after each task.
  struct SearchContext {
    std::vector<DepthScratch> arena;
    GroupStore store;
    MinerStats stats;
    Deadline deadline;           // Private copy: Expired() mutates state.
    CancelFlag* cancel = nullptr;  // Shared cross-worker stop signal.
    ParallelShared* shared = nullptr;  // Null in sequential runs.
    TaskId path;  // Row path of the current node (parallel runs only).
    // Trace lane of the thread running this context: 0 for the control
    // thread (sequential search), worker_id + 1 inside pool tasks.
    std::size_t lane = 0;
    // Progress baseline: the counter values already flushed to
    // MinerOptions::progress, so each flush publishes only the delta.
    MinerStats published;
    std::size_t published_groups = 0;
    // Segment boundaries of the running task: (segment id, index into
    // store.groups where the segment starts).
    std::vector<std::pair<TaskId, std::size_t>> seg_bounds;
    // Deferred step-7 records of nodes that spawned their children.
    std::vector<Segment> closers;
  };

  // Recursive MineIRGs (paper Figure 5). The node's conditional table and
  // row masks live in ctx.arena[depth] (written by the caller); supp/supn
  // are the identified counts of R(I(X) ∪ C) / R(I(X) ∪ ¬C).
  void MineIRGs(SearchContext& ctx, std::size_t depth, std::size_t supp,
                std::size_t supn);

  // Steps 1-4 of a node visit: back scan, loose bounds, conditional-table
  // scan (absorption), tight bounds. Returns false when the node was
  // pruned; otherwise arena[depth].new_cands holds the surviving
  // candidates and *supp/*supn the post-absorption counts.
  bool VisitNode(SearchContext& ctx, std::size_t depth, std::size_t* supp,
                 std::size_t* supn);

  // Step 7: applies the constraint checks and the IRG comparison against
  // ctx's store, and stores the group when it qualifies. In exact mode
  // (ablation with Pruning 1 or 2 disabled) recomputes the true row
  // support from arena[depth].common first.
  void MaybeInsertGroup(SearchContext& ctx, std::size_t depth,
                        std::size_t supp, std::size_t supn);

  // The dominance half of the IRG comparison (Definition 2.2): true when
  // `store` holds a group whose row set properly contains `rows` with
  // confidence >= `conf`.
  bool IsDominated(const GroupStore& store, const Bitset& rows,
                   double conf) const;

  // Appends `g` to the store and indexes it. Assumes dominance and
  // thresholds were already checked.
  void InsertGroup(GroupStore& store, RuleGroup g) const;

  // Replays one worker-local group against the global store during the
  // deterministic merge: global exact-mode dedup, dominance re-check,
  // insert. Mirrors the tail of MaybeInsertGroup.
  void MergeGroup(GroupStore& store, RuleGroup g) const;

  // True when all measure thresholds hold for a rule with the given exact
  // counts (x = supp + supn, y = supp).
  bool PassesThresholds(std::size_t supp, std::size_t supn) const;

  // verify_invariants: fatal-checks the store's structural invariants —
  // every group's counts/confidence agree with its row set, the
  // (count, first-row) index reaches every group, all row sets are
  // distinct closed patterns, and (unless report_all_rule_groups) no
  // stored group is dominated by another (Definition 2.2 soundness).
  // Runs after the sequential search and after every parallel segment
  // merge. O(groups²) bitset work.
  void ValidateStore(const GroupStore& store) const;

  // verify_invariants: fatal-checks that each group's stored antecedent
  // is the closed upper bound of its row set, I(rows) over the permuted
  // dataset. Groups must still be in permuted row ids.
  void ValidateClosedAntecedents(const std::vector<RuleGroup>& groups) const;

  // The dynamic confidence floor: min_confidence, raised in top-k mode to
  // the current k-th best confidence of the store — sequential runs only.
  // Parallel workers keep the static floor (a worker-local dynamic floor
  // can overshoot the sequential one and over-prune; see the .cc comment).
  double EffectiveMinConfidence(const SearchContext& ctx) const;

  // Builds a ready-to-recurse context (arena sized to the row count).
  SearchContext MakeContext(CancelFlag* cancel) const;

  // Builds the RuleGroup for `rows` with the given exact counts (shared
  // by the inline step 7 and the deferred closer path).
  RuleGroup MakeGroup(const DepthScratch& s, const Bitset& rows,
                      std::size_t supp, std::size_t supn) const;

  // True when a parallel worker at `depth` should convert its remaining
  // sibling branches into tasks (shallow enough, pool hungry).
  bool ShouldSplit(const SearchContext& ctx, std::size_t depth) const;

  // Spawns one task per remaining candidate (from `first_row` on) of the
  // node at `depth`, sharing one immutable snapshot between them.
  void SpawnRemaining(SearchContext& ctx, std::size_t depth,
                      std::size_t first_row, std::size_t supp,
                      std::size_t supn);

  // Step 7 of a node whose children were spawned: thresholds are checked
  // now (state-independent); the group is shipped as a closer segment at
  // id path+[kCloserRank] so dedup/dominance rerun after the children
  // merge. Opens a fresh inline segment at path+[kCloserRank,kCloserRank].
  void DeferStep7(SearchContext& ctx, std::size_t depth, std::size_t supp,
                  std::size_t supn);

  // Wraps `task` into a pool submission; `lane` is the submitting
  // thread's trace lane (for the enqueue event).
  void SubmitTask(ParallelShared& shared, SubtreeTask task,
                  std::size_t lane);

  // Flushes the delta between ctx.stats and the last flush into the
  // live progress counters (MinerOptions::progress must be non-null).
  void PublishProgress(SearchContext& ctx) const;

  // Publishes the end-of-run counters, timings, and per-group
  // distributions into MinerOptions::metrics (must be non-null).
  void ExportMetrics(const FarmerResult& result) const;

  // Executes one subtree task on worker `worker_id`: rebuilds the node
  // inputs from the snapshot, mines, then publishes segments + stats.
  void RunTask(ParallelShared& shared, const SubtreeTask& task,
               std::size_t worker_id);

  // Runs the search from the root: sequential recursion for
  // num_threads <= 1; otherwise a root task on the work-stealing pool
  // with adaptive subtree splitting, followed by the deterministic
  // id-ordered merge. Stats are accumulated into *stats.
  GroupStore RunSearch(MinerStats* stats);

  // Applies options_.simd_level (fatal on an unknown level). Mine() and
  // the farm entry points all route through this so a worker process
  // honors the override too.
  void ApplySimdOverride() const;

  // The shared tail of Mine() and FinalizeFarm(): takes the merged
  // store (plus stats_ already populated), and produces the final
  // result — validation, top-k cut, MineLB, row-id remap back to the
  // caller's ids, metrics export.
  FarmerResult FinalizeResult(GroupStore store);

  // Root-visit state backing the farm decomposition (PlanFarm /
  // MineFarmLease derive every lease from this snapshot).
  struct FarmRoot {
    FarmPlan plan;
    std::shared_ptr<const SplitSnapshot> snapshot;  // Null when pruned.
    std::size_t supp = 0;  // Identified counts after the root visit.
    std::size_t supn = 0;
  };

  // Visits the root once and fills farm_root_ (no-op when already done).
  void EnsureFarmRoot();

  std::unique_ptr<FarmRoot> farm_root_;
  // Reused across MineFarmLease calls (arena allocation is the dominant
  // per-lease cost for small subtrees).
  std::unique_ptr<SearchContext> farm_ctx_;
  // Dummy shared state handed to farm lease contexts: pool == nullptr
  // disables splitting, and a non-null ctx.shared keeps the static
  // top-k confidence floor (the same floor parallel workers use), so a
  // lease's pruning matches the in-process parallel task exactly.
  std::unique_ptr<ParallelShared> farm_shared_;

  MinerOptions options_;  // Copied: the miner may outlive the caller's copy.
  RowOrder order_;
  BinaryDataset permuted_;
  TransposedTable tt_;
  std::size_t n_ = 0;  // rows
  std::size_t m_ = 0;  // rows labeled with the consequent (first m_ ids)
  bool exact_mode_ = false;

  // One immutable bitset per item: the rows containing it (the transposed
  // table, word-parallel form).
  std::vector<Bitset> tuple_bits_;
  // All n_ bits set; complement base for the back scan's foreign universe.
  Bitset all_rows_;

  MinerStats stats_;
};

}  // namespace internal
}  // namespace farmer

#endif  // FARMER_CORE_FARMER_H_
