#include "core/carpenter.h"

#include <algorithm>

#include "dataset/transpose.h"
#include "util/bitset.h"

namespace farmer {

namespace {

class CarpenterImpl {
 public:
  CarpenterImpl(const BinaryDataset& dataset,
                const CarpenterOptions& options)
      : options_(options),
        min_support_(std::max<std::size_t>(1, options.min_support)),
        tt_(TransposedTable::Build(dataset)),
        n_(dataset.num_rows()) {
    cnt_.assign(n_, 0);
    cnt_epoch_.assign(n_, 0);
  }

  CarpenterResult Run() {
    Stopwatch sw;
    if (n_ > 0) {
      std::vector<NodeTuple> tuples;
      for (ItemId i = 0; i < tt_.num_items(); ++i) {
        if (!tt_.tuple(i).empty()) {
          tuples.push_back(NodeTuple{i, tt_.tuple(i)});
        }
      }
      RowVector cands(n_);
      for (RowId r = 0; r < n_; ++r) cands[r] = r;
      MinePattern(std::move(tuples), std::move(cands), Bitset(n_));
    }
    result_.seconds = sw.ElapsedSeconds();
    return std::move(result_);
  }

 private:
  struct NodeTuple {
    ItemId item;
    RowVector cand;
  };

  bool ShouldStop() {
    if (result_.timed_out || result_.overflowed) return true;
    if (options_.deadline.Expired()) {
      result_.timed_out = true;
      return true;
    }
    if (options_.max_closed != 0 &&
        result_.closed.size() >= options_.max_closed) {
      result_.overflowed = true;
      return true;
    }
    return false;
  }

  // Pruning 2, identical to FARMER's: a row outside the identified support
  // and the candidate list occurring in every tuple proves the subtree was
  // enumerated before.
  bool BackScanFindsForeignRow(const std::vector<NodeTuple>& tuples,
                               const RowVector& cands,
                               const Bitset& support_rows) const {
    const RowVector* shortest = &tt_.tuple(tuples[0].item);
    for (const NodeTuple& t : tuples) {
      const RowVector& full = tt_.tuple(t.item);
      if (full.size() < shortest->size()) shortest = &full;
    }
    for (RowId r : *shortest) {
      if (support_rows.Test(r)) continue;
      if (std::binary_search(cands.begin(), cands.end(), r)) continue;
      bool in_all = true;
      for (const NodeTuple& t : tuples) {
        const RowVector& full = tt_.tuple(t.item);
        if (&full == shortest) continue;
        if (!std::binary_search(full.begin(), full.end(), r)) {
          in_all = false;
          break;
        }
      }
      if (in_all) return true;
    }
    return false;
  }

  void MinePattern(std::vector<NodeTuple> tuples, RowVector cands,
                   Bitset support_rows) {
    if (ShouldStop()) return;
    ++result_.nodes_visited;
    if (tuples.empty()) return;

    if (BackScanFindsForeignRow(tuples, cands, support_rows)) {
      ++result_.pruned_by_backscan;
      return;
    }

    const std::size_t count_entry = support_rows.Count();
    // Loose support bound: every future support row is a candidate.
    if (count_entry + cands.size() < min_support_) {
      ++result_.pruned_by_support;
      return;
    }

    // Scan: occurrence counts, absorption of full-cover rows (pruning 1),
    // and the per-tuple maximum for the tight bound.
    ++epoch_;
    std::size_t max_in_tuple = 0;
    for (const NodeTuple& t : tuples) {
      max_in_tuple = std::max(max_in_tuple, t.cand.size());
      for (RowId r : t.cand) {
        if (cnt_epoch_[r] != epoch_) {
          cnt_epoch_[r] = epoch_;
          cnt_[r] = 0;
        }
        ++cnt_[r];
      }
    }
    RowVector new_cands;
    new_cands.reserve(cands.size());
    for (RowId r : cands) {
      const std::size_t c = (cnt_epoch_[r] == epoch_) ? cnt_[r] : 0;
      if (c == 0) continue;
      if (c == tuples.size()) {
        support_rows.Set(r);
      } else {
        new_cands.push_back(r);
      }
    }

    // Tight support bound: future rows must share at least one tuple.
    if (count_entry + max_in_tuple < min_support_) {
      ++result_.pruned_by_support;
      return;
    }

    for (std::size_t idx = 0; idx < new_cands.size(); ++idx) {
      const RowId ri = new_cands[idx];
      std::vector<NodeTuple> child_tuples;
      child_tuples.reserve(tuples.size());
      for (const NodeTuple& t : tuples) {
        if (!std::binary_search(t.cand.begin(), t.cand.end(), ri)) continue;
        NodeTuple ct;
        ct.item = t.item;
        for (RowId r : t.cand) {
          if (r > ri && !support_rows.Test(r)) ct.cand.push_back(r);
        }
        child_tuples.push_back(std::move(ct));
      }
      RowVector child_cands(new_cands.begin() +
                                static_cast<std::ptrdiff_t>(idx) + 1,
                            new_cands.end());
      Bitset child_support = support_rows;
      child_support.Set(ri);
      MinePattern(std::move(child_tuples), std::move(child_cands),
                  std::move(child_support));
      if (result_.timed_out || result_.overflowed) return;
    }

    if (support_rows.Count() >= min_support_) {
      ClosedItemset closed;
      closed.items.reserve(tuples.size());
      for (const NodeTuple& t : tuples) closed.items.push_back(t.item);
      closed.rows = std::move(support_rows);
      result_.closed.push_back(std::move(closed));
    }
  }

  const CarpenterOptions& options_;
  const std::size_t min_support_;
  TransposedTable tt_;
  const std::size_t n_;
  CarpenterResult result_;
  std::vector<std::uint64_t> cnt_;
  std::vector<std::uint64_t> cnt_epoch_;
  std::uint64_t epoch_ = 0;
};

}  // namespace

CarpenterResult MineCarpenter(const BinaryDataset& dataset,
                              const CarpenterOptions& options) {
  CarpenterImpl impl(dataset, options);
  return impl.Run();
}

}  // namespace farmer
