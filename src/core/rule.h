#ifndef FARMER_CORE_RULE_H_
#define FARMER_CORE_RULE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/types.h"
#include "util/bitset.h"

namespace farmer {

/// A rule group `A -> C` identified by its unique upper bound.
///
/// All rules whose antecedents occur in exactly the rows of `rows` form one
/// group (Definition 2.1); `antecedent` is the group's upper bound `I(rows)`
/// and `lower_bounds` its minimal members. All group members share the same
/// support, confidence and chi-square value.
struct RuleGroup {
  /// Upper-bound antecedent, sorted item ids. May be empty when the miner
  /// was configured not to store antecedents (see
  /// MinerOptions::store_antecedents); the row set always identifies the
  /// group and the antecedent can be recovered as I(rows).
  ItemVector antecedent;

  /// Antecedent support set R(antecedent) over the *original* dataset's row
  /// ids (one bit per row).
  Bitset rows;

  /// |R(A ∪ C)| — rows matching the rule (the rule's support).
  std::size_t support_pos = 0;

  /// |R(A ∪ ¬C)|.
  std::size_t support_neg = 0;

  /// support_pos / (support_pos + support_neg).
  double confidence = 0.0;

  /// Chi-square statistic of the rule.
  double chi_square = 0.0;

  /// Lower bounds of the group (most general antecedents); each is a sorted
  /// item vector. Filled only when lower-bound mining is enabled.
  std::vector<ItemVector> lower_bounds;

  /// True when the lower-bound list was truncated by the candidate cap.
  bool lower_bounds_truncated = false;

  /// |R(A)|.
  std::size_t antecedent_support() const { return support_pos + support_neg; }
};

/// Renders `group` as "a,b,c -> C (sup=…, conf=…, chi=…)" using the
/// dataset's item names.
std::string FormatRuleGroup(const RuleGroup& group,
                            const BinaryDataset& dataset,
                            const std::string& consequent_name);

}  // namespace farmer

#endif  // FARMER_CORE_RULE_H_
