#ifndef FARMER_CORE_MINER_OPTIONS_H_
#define FARMER_CORE_MINER_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "dataset/types.h"
#include "util/timer.h"

namespace farmer {

namespace obs {
class Histogram;
class TraceSession;
class MetricsRegistry;
struct ProgressCounters;
}  // namespace obs

/// Configuration shared by the FARMER miner and (where applicable) the
/// baseline miners.
struct MinerOptions {
  /// The consequent class `C`; rules take the form `A -> consequent`.
  ClassLabel consequent = 1;

  /// Minimum rule support: |R(A ∪ C)| >= min_support. Must be >= 1.
  std::size_t min_support = 1;

  /// Minimum confidence in [0, 1].
  double min_confidence = 0.0;

  /// Minimum chi-square value (0 disables the constraint).
  double min_chi_square = 0.0;

  /// Optional extension constraints (0 disables; footnote 3 of the paper).
  double min_lift = 0.0;
  double min_conviction = 0.0;
  double min_entropy_gain = 0.0;
  double min_gini_gain = 0.0;
  double min_correlation = 0.0;  // Phi coefficient.

  /// When > 0, keep only the top-k IRGs by (confidence, support) and use the
  /// running k-th confidence as an additional dynamic pruning threshold.
  std::size_t top_k = 0;

  /// Report every constraint-satisfying rule group instead of only the
  /// interesting ones (skips the confidence-dominance comparison). Used,
  /// e.g., to materialize CBA's candidate rules.
  bool report_all_rule_groups = false;

  /// Compute lower bounds of every reported IRG (MineLB). The paper's
  /// experiments include this in FARMER's runtime.
  bool mine_lower_bounds = true;

  /// Cap on MineLB candidate sets per group; prevents pathological
  /// combinatorial blow-up on extremely long antecedents. Groups that hit
  /// the cap are flagged `lower_bounds_truncated`.
  std::size_t max_lower_bound_candidates = 100000;

  /// Store each IRG's upper-bound antecedent. Disable to save memory in
  /// sweeps that only count IRGs; the row set is always stored.
  bool store_antecedents = true;

  /// Pruning toggles (for the ablation study; all on in normal use).
  bool enable_pruning1 = true;  // Remove rows found in every tuple.
  bool enable_pruning2 = true;  // Back-scan duplicate-subtree detection.
  bool enable_pruning3 = true;  // Measure-threshold bounds.

  /// Worker threads for the enumeration search. 1 (the default) runs the
  /// plain sequential miner; larger values mine subtrees of the
  /// row-enumeration tree on a work-stealing thread pool with adaptive
  /// subtree splitting: whenever the pool runs low on queued work, a
  /// worker converts the remaining sibling branches of its current node
  /// into new tasks instead of recursing into them. Each task carries a
  /// lexicographic id (the row path at its split points) and the
  /// per-task results are merged in id order, so every thread count
  /// produces bit-identical rule groups.
  std::size_t num_threads = 1;

  /// Maximum enumeration depth at which a parallel worker may split its
  /// remaining sibling branches into new tasks. Nodes deeper than this
  /// always recurse sequentially (small subtrees stay allocation-free).
  std::size_t max_split_depth = 12;

  /// Self-verification mode: cross-checks every word-parallel bitset
  /// kernel call in the enumeration hot path (AndCount/AndCountPrefix/
  /// IntersectsAllOf/AndInto/AndNotInto/OrAnd/CountPrefix) against scalar
  /// reference implementations, re-validates the rule-group store after
  /// every parallel segment merge (dominance soundness, distinct closed
  /// row sets, index consistency), verifies each reported antecedent is
  /// closed (I(R(A)) = A), checks every MineLB lower bound is a minimal
  /// generator of its group, and asserts the thread pool drained cleanly.
  /// Failures fire FARMER_CHECK (fatal). Orders of magnitude slower than
  /// a plain run — for tests and debugging only, never production.
  bool verify_invariants = false;

  /// SIMD kernel tier for the word-parallel bitset kernels. "" or
  /// "auto" keeps the process-wide selection (the FARMER_SIMD
  /// environment override when set, else the widest level the binary
  /// and host CPU support); "scalar" / "sse42" / "avx2" / "avx512"
  /// force that tier for testing and benchmarking. The selection is
  /// process-global (simd::Configure), so it outlives the run; a level
  /// this binary/host cannot execute is a fatal error, never a silent
  /// fallback. Every tier yields bit-identical rule groups.
  std::string simd_level;

  /// Cooperative time limit; the miner reports `timed_out` when it fires.
  /// Sampled between enumeration nodes and inside MineLB update steps,
  /// so even a run dominated by one long lower-bound computation stops
  /// close to the limit.
  Deadline deadline;

  /// Observability hooks (src/obs/), all optional and all owned by the
  /// caller. With every pointer null — the default — the miner touches
  /// no atomics beyond the scheduler's own counters: the instrumented
  /// paths are guarded by one predictable branch each.
  ///
  /// Tracing: per-worker spans and events (task run/steal/merge, MineLB,
  /// per-phase totals) recorded into the session's ring buffers. Build
  /// the session with at least `num_threads + 1` lanes.
  obs::TraceSession* trace = nullptr;
  /// Metrics: end-of-run counters, timings, and distribution histograms
  /// published under "farmer.*" names.
  obs::MetricsRegistry* metrics = nullptr;
  /// Progress: live counters flushed in small batches during the search,
  /// for a ProgressReporter (or any other sampler) to read.
  obs::ProgressCounters* progress = nullptr;
};

/// Search statistics reported by the miners.
struct MinerStats {
  std::size_t nodes_visited = 0;
  std::size_t pruned_by_backscan = 0;   // Pruning 2.
  std::size_t pruned_by_support = 0;    // Pruning 3, support bounds.
  std::size_t pruned_by_confidence = 0; // Pruning 3, confidence bounds.
  std::size_t pruned_by_chi = 0;        // Pruning 3, chi-square bound.
  std::size_t pruned_by_extension = 0;  // Extension-measure bounds.
  std::size_t rows_absorbed = 0;        // Pruning 1 removals.
  // Parallel-scheduler counters (0 in sequential runs). Unlike the tree
  // statistics above they depend on runtime timing, not on the input.
  std::size_t tasks_spawned = 0;        // Subtree tasks created.
  std::size_t task_steals = 0;          // Successful deque steals.
  std::size_t tasks_stolen = 0;         // Tasks transferred by steals.
  double mine_seconds = 0.0;            // Upper-bound search time.
  double lower_bound_seconds = 0.0;     // MineLB time.
  bool timed_out = false;
  /// Name of the SIMD kernel tier the run executed with ("scalar",
  /// "sse42", "avx2", "avx512"), so recorded perf numbers stay
  /// attributable to the ISA that produced them. Set by the miner at
  /// run start; empty in per-task partial stats.
  std::string simd_level;

  /// Adds every additive counter of `other` into this (the parallel
  /// miner's per-task aggregation); `timed_out` ORs, the phase timings
  /// are left alone (they are whole-run, not per-task, quantities).
  void MergeFrom(const MinerStats& other);

  /// The full stats block as one JSON object, e.g.
  /// {"nodes_visited": 12, ..., "timed_out": false}. Shared by the CLI's
  /// --stats flag and the benches, which embed it per measurement.
  std::string ToJson() const;
};

}  // namespace farmer

#endif  // FARMER_CORE_MINER_OPTIONS_H_
