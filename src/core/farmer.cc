#include "core/farmer.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "core/measures.h"
#include "core/minelb.h"
#include "util/timer.h"

namespace farmer {
namespace internal {

FarmerMiner::FarmerMiner(const BinaryDataset& dataset,
                         const MinerOptions& options)
    : options_(options),
      order_(OrderRowsByConsequent(dataset, options.consequent)),
      permuted_(PermuteRows(dataset, order_)),
      tt_(TransposedTable::Build(permuted_)),
      n_(dataset.num_rows()),
      m_(order_.num_positive),
      exact_mode_(!options.enable_pruning1 || !options.enable_pruning2) {
  cnt_.assign(n_, 0);
  cnt_epoch_.assign(n_, 0);
}

bool FarmerMiner::PassesThresholds(std::size_t supp, std::size_t supn) const {
  if (supp < std::max<std::size_t>(1, options_.min_support)) return false;
  const std::size_t x = supp + supn;
  const double conf = Confidence(supp, x);
  if (conf < options_.min_confidence) return false;
  if (options_.min_chi_square > 0.0 &&
      ChiSquare(x, supp, n_, m_) < options_.min_chi_square) {
    return false;
  }
  if (options_.min_lift > 0.0 &&
      Lift(x, supp, n_, m_) < options_.min_lift) {
    return false;
  }
  if (options_.min_conviction > 0.0 &&
      Conviction(x, supp, n_, m_) < options_.min_conviction) {
    return false;
  }
  if (options_.min_entropy_gain > 0.0 &&
      EntropyGain(x, supp, n_, m_) < options_.min_entropy_gain) {
    return false;
  }
  if (options_.min_gini_gain > 0.0 &&
      GiniGain(x, supp, n_, m_) < options_.min_gini_gain) {
    return false;
  }
  if (options_.min_correlation > 0.0 &&
      PhiCoefficient(x, supp, n_, m_) < options_.min_correlation) {
    return false;
  }
  return true;
}

double FarmerMiner::EffectiveMinConfidence() const {
  double floor = options_.min_confidence;
  if (options_.top_k > 0 && topk_confs_.size() == options_.top_k) {
    // topk_confs_ is sorted descending; back() is the k-th best. Subtrees
    // whose confidence bound is strictly below it cannot improve the top-k
    // (ties still enter via the support tie-break, so the prune below uses
    // a strict comparison).
    floor = std::max(floor, topk_confs_.back());
  }
  return floor;
}

bool FarmerMiner::BackScanFindsForeignRow(const std::vector<NodeTuple>& tuples,
                                          const RowVector& cands,
                                          const Bitset& support_rows) const {
  // A "foreign" row occurs in every tuple of the conditional table but is
  // neither part of the identified support (X ∪ absorbed) nor a candidate:
  // by Lemma 3.6 the node's whole subtree was then already enumerated
  // under an earlier node. Scan the shortest tuple's full row list (the
  // paper's back scan through the conditional pointer lists).
  const RowVector* shortest = &tt_.tuple(tuples[0].item);
  for (const NodeTuple& t : tuples) {
    const RowVector& full = tt_.tuple(t.item);
    if (full.size() < shortest->size()) shortest = &full;
  }
  for (RowId r : *shortest) {
    if (support_rows.Test(r)) continue;
    if (std::binary_search(cands.begin(), cands.end(), r)) continue;
    bool in_all = true;
    for (const NodeTuple& t : tuples) {
      const RowVector& full = tt_.tuple(t.item);
      if (&full == shortest) continue;
      if (!std::binary_search(full.begin(), full.end(), r)) {
        in_all = false;
        break;
      }
    }
    if (in_all) return true;
  }
  return false;
}

void FarmerMiner::MaybeInsertGroup(const std::vector<NodeTuple>& tuples,
                                   std::size_t supp, std::size_t supn,
                                   const Bitset& support_rows) {
  Bitset rows = support_rows;
  if (exact_mode_) {
    // With Pruning 1 or 2 disabled, the incremental counts undercount the
    // true support: recompute R(I(X)) as the rows occurring in every tuple
    // and deduplicate (the same group is then reached at several nodes).
    rows.Resize(n_);
    rows.ResetAll();
    for (RowId r : tt_.tuple(tuples[0].item)) rows.Set(r);
    Bitset tmp(n_);
    for (std::size_t t = 1; t < tuples.size(); ++t) {
      tmp.ResetAll();
      for (RowId r : tt_.tuple(tuples[t].item)) tmp.Set(r);
      rows &= tmp;
    }
    supp = 0;
    rows.ForEach([&](std::size_t r) {
      if (r < m_) ++supp;
    });
    supn = rows.Count() - supp;
    for (const Bitset& seen : seen_exact_) {
      if (seen == rows) return;
    }
    seen_exact_.push_back(rows);
  }

  if (!PassesThresholds(supp, supn)) return;
  const double conf = Confidence(supp, supp + supn);
  const std::size_t row_count = supp + supn;

  // The IRG comparison (Definition 2.2): a more general rule group exists
  // with confidence >= ours iff some stored group's row set is a proper
  // superset of ours (antecedent closure reverses inclusion). Lemma 3.4
  // plus the post-order insert guarantees all more general groups passing
  // the constraints are already stored.
  if (!options_.report_all_rule_groups) {
    for (std::size_t c = row_count + 1; c < store_by_count_.size(); ++c) {
      for (std::size_t idx : store_by_count_[c]) {
        const RuleGroup& g = store_[idx];
        if (g.confidence >= conf && rows.IsSubsetOf(g.rows)) return;
      }
    }
  }

  RuleGroup g;
  if (options_.store_antecedents) {
    g.antecedent.reserve(tuples.size());
    for (const NodeTuple& t : tuples) g.antecedent.push_back(t.item);
  }
  g.rows = std::move(rows);
  g.support_pos = supp;
  g.support_neg = supn;
  g.confidence = conf;
  g.chi_square = ChiSquare(supp + supn, supp, n_, m_);
  if (store_by_count_.size() <= row_count) {
    store_by_count_.resize(n_ + 1);
  }
  store_by_count_[row_count].push_back(store_.size());
  store_.push_back(std::move(g));

  if (options_.top_k > 0) {
    auto it = std::lower_bound(topk_confs_.begin(), topk_confs_.end(), conf,
                               [](double a, double b) { return a > b; });
    topk_confs_.insert(it, conf);
    if (topk_confs_.size() > options_.top_k) topk_confs_.pop_back();
  }
}

void FarmerMiner::MineIRGs(std::vector<NodeTuple> tuples, RowVector cands,
                           std::size_t supp, std::size_t supn,
                           Bitset support_rows) {
  if (stats_.timed_out) return;
  if (options_.deadline.Expired()) {
    stats_.timed_out = true;
    return;
  }
  ++stats_.nodes_visited;
  if (tuples.empty()) return;  // I(X) = ∅: no rule here or below.

  // Step 1 — Pruning 2 (back scan, Lemma 3.6).
  if (options_.enable_pruning2 &&
      BackScanFindsForeignRow(tuples, cands, support_rows)) {
    ++stats_.pruned_by_backscan;
    return;
  }

  // Step 2 — Pruning 3 with the loose bounds (before scanning).
  // Candidates are sorted and consequent rows have ids < m_, so the
  // class-C candidates form a prefix.
  std::size_t ep = 0;
  for (RowId r : cands) {
    if (r >= m_) break;
    ++ep;
  }
  const std::size_t supp_entry = supp;
  const std::size_t us2 = supp_entry + ep;
  if (options_.enable_pruning3) {
    if (us2 < std::max<std::size_t>(1, options_.min_support)) {
      ++stats_.pruned_by_support;
      return;
    }
    const double minconf = EffectiveMinConfidence();
    if (minconf > 0.0) {
      const double uc2 = Confidence(us2, us2 + supn);
      if (uc2 < minconf) {
        ++stats_.pruned_by_confidence;
        return;
      }
    }
  }

  // Step 3 — scan the conditional table: per-candidate occurrence counts,
  // U (>=1 occurrence), Y (in every tuple), and the per-tuple maximum of
  // class-C candidates for the tight support bound.
  ++epoch_;
  std::size_t max_ep_tuple = 0;
  for (const NodeTuple& t : tuples) {
    std::size_t ep_in_t = 0;
    for (RowId r : t.cand) {
      if (cnt_epoch_[r] != epoch_) {
        cnt_epoch_[r] = epoch_;
        cnt_[r] = 0;
      }
      ++cnt_[r];
      if (r < m_) ++ep_in_t;
    }
    max_ep_tuple = std::max(max_ep_tuple, ep_in_t);
  }
  const std::size_t num_tuples = tuples.size();
  RowVector new_cands;
  new_cands.reserve(cands.size());
  for (RowId r : cands) {
    const std::size_t c = (cnt_epoch_[r] == epoch_) ? cnt_[r] : 0;
    if (c == 0) continue;  // Not in U: occurs in no tuple.
    if (c == num_tuples && options_.enable_pruning1) {
      // Pruning 1: the row occurs in every tuple — absorb it (Lemma 3.5).
      ++stats_.rows_absorbed;
      support_rows.Set(r);
      if (r < m_) {
        ++supp;
      } else {
        ++supn;
      }
    } else {
      new_cands.push_back(r);
    }
  }

  // Step 4 — Pruning 3 with the tight bounds (after scanning).
  if (options_.enable_pruning3) {
    const std::size_t us1 = supp_entry + max_ep_tuple;
    if (us1 < std::max<std::size_t>(1, options_.min_support)) {
      ++stats_.pruned_by_support;
      return;
    }
    if (!exact_mode_) {
      // The tight confidence/chi-square bounds require supp/supn to be the
      // exact counts of R(I(X)); that only holds when Prunings 1 and 2 are
      // active (ablation runs fall back to the loose bounds above).
      const double uc1 = Confidence(us1, us1 + supn);
      const double minconf = EffectiveMinConfidence();
      if (minconf > 0.0 && uc1 < minconf) {
        ++stats_.pruned_by_confidence;
        return;
      }
      if (options_.min_chi_square > 0.0 &&
          ChiSquareUpperBound(supp + supn, supp, n_, m_) <
              options_.min_chi_square) {
        ++stats_.pruned_by_chi;
        return;
      }
      if (options_.min_lift > 0.0 &&
          LiftUpperBound(uc1, n_, m_) < options_.min_lift) {
        ++stats_.pruned_by_extension;
        return;
      }
      if (options_.min_conviction > 0.0 &&
          ConvictionUpperBound(uc1, n_, m_) < options_.min_conviction) {
        ++stats_.pruned_by_extension;
        return;
      }
      if (options_.min_entropy_gain > 0.0 &&
          EntropyGainUpperBound(supp + supn, supp, n_, m_) <
              options_.min_entropy_gain) {
        ++stats_.pruned_by_extension;
        return;
      }
      if (options_.min_gini_gain > 0.0 &&
          GiniGainUpperBound(supp + supn, supp, n_, m_) <
              options_.min_gini_gain) {
        ++stats_.pruned_by_extension;
        return;
      }
      if (options_.min_correlation > 0.0 &&
          PhiUpperBound(supp + supn, supp, n_, m_) <
              options_.min_correlation) {
        ++stats_.pruned_by_extension;
        return;
      }
    }
  }

  // Steps 5/6 — recurse into each remaining candidate, ascending. The ORD
  // order makes the class restriction implicit: after descending into a
  // ¬C row, every later row is ¬C as well.
  for (std::size_t idx = 0; idx < new_cands.size(); ++idx) {
    const RowId ri = new_cands[idx];
    std::vector<NodeTuple> child_tuples;
    child_tuples.reserve(tuples.size());
    for (const NodeTuple& t : tuples) {
      if (!std::binary_search(t.cand.begin(), t.cand.end(), ri)) continue;
      NodeTuple ct;
      ct.item = t.item;
      for (RowId r : t.cand) {
        // Keep candidates after ri that were not absorbed by Pruning 1.
        if (r > ri && !support_rows.Test(r)) ct.cand.push_back(r);
      }
      child_tuples.push_back(std::move(ct));
    }
    RowVector child_cands(new_cands.begin() +
                              static_cast<std::ptrdiff_t>(idx) + 1,
                          new_cands.end());
    Bitset child_support = support_rows;
    child_support.Set(ri);
    MineIRGs(std::move(child_tuples), std::move(child_cands),
             supp + (ri < m_ ? 1 : 0), supn + (ri >= m_ ? 1 : 0),
             std::move(child_support));
    if (stats_.timed_out) return;
  }

  // Step 7 — after the whole subtree (so every more general group is
  // already stored), decide whether I(X) -> C is an IRG.
  MaybeInsertGroup(tuples, supp, supn, support_rows);
}

FarmerResult FarmerMiner::Mine() {
  FarmerResult result;
  result.num_rows = n_;
  result.num_consequent_rows = m_;
  if (n_ == 0) return result;

  Stopwatch sw;
  std::vector<NodeTuple> root_tuples;
  for (ItemId i = 0; i < tt_.num_items(); ++i) {
    if (!tt_.tuple(i).empty()) {
      root_tuples.push_back(NodeTuple{i, tt_.tuple(i)});
    }
  }
  RowVector root_cands(n_);
  for (RowId r = 0; r < n_; ++r) root_cands[r] = r;
  MineIRGs(std::move(root_tuples), std::move(root_cands), 0, 0, Bitset(n_));
  stats_.mine_seconds = sw.ElapsedSeconds();

  // Top-k selection: best confidence first, support breaks ties.
  if (options_.top_k > 0 && store_.size() > options_.top_k) {
    std::stable_sort(store_.begin(), store_.end(),
                     [](const RuleGroup& a, const RuleGroup& b) {
                       if (a.confidence != b.confidence) {
                         return a.confidence > b.confidence;
                       }
                       return a.support_pos > b.support_pos;
                     });
    store_.resize(options_.top_k);
  }

  // Optional lower-bound mining (MineLB), still in permuted row ids.
  if (options_.mine_lower_bounds) {
    Stopwatch lb_sw;
    for (RuleGroup& g : store_) {
      if (options_.deadline.Expired()) {
        stats_.timed_out = true;
        break;
      }
      ItemVector antecedent = g.antecedent;
      if (antecedent.empty()) {
        // Antecedents were not stored: recover I(rows) by intersecting the
        // member rows' itemsets.
        const std::size_t first = g.rows.FindFirst();
        antecedent = permuted_.row(static_cast<RowId>(first));
        for (std::size_t r = g.rows.FindNext(first); r < g.rows.size();
             r = g.rows.FindNext(r)) {
          const ItemVector& row = permuted_.row(static_cast<RowId>(r));
          ItemVector merged;
          std::set_intersection(antecedent.begin(), antecedent.end(),
                                row.begin(), row.end(),
                                std::back_inserter(merged));
          antecedent = std::move(merged);
        }
      }
      LowerBoundResult lb = MineLowerBounds(
          permuted_, antecedent, g.rows,
          options_.max_lower_bound_candidates);
      g.lower_bounds = std::move(lb.lower_bounds);
      g.lower_bounds_truncated = lb.truncated;
    }
    stats_.lower_bound_seconds = lb_sw.ElapsedSeconds();
  }

  // Remap row sets from permuted to original row ids.
  for (RuleGroup& g : store_) {
    Bitset original(n_);
    g.rows.ForEach(
        [&](std::size_t pos) { original.Set(order_.order[pos]); });
    g.rows = std::move(original);
  }

  result.groups = std::move(store_);
  result.stats = stats_;
  return result;
}

}  // namespace internal

FarmerResult MineFarmer(const BinaryDataset& dataset,
                        const MinerOptions& options) {
  internal::FarmerMiner miner(dataset, options);
  return miner.Mine();
}

}  // namespace farmer
