#include "core/farmer.h"

#include <algorithm>
#include <utility>

#include "core/measures.h"
#include "core/minelb.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/bitset_ref.h"
#include "util/check.h"
#include "util/simd/simd.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace farmer {
namespace internal {

FarmerMiner::FarmerMiner(const BinaryDataset& dataset,
                         const MinerOptions& options)
    : options_(options),
      order_(OrderRowsByConsequent(dataset, options.consequent)),
      permuted_(PermuteRows(dataset, order_)),
      tt_(TransposedTable::Build(permuted_)),
      n_(dataset.num_rows()),
      m_(order_.num_positive),
      exact_mode_(!options.enable_pruning1 || !options.enable_pruning2) {
  tuple_bits_.resize(tt_.num_items());
  for (ItemId i = 0; i < tt_.num_items(); ++i) {
    tuple_bits_[i].Resize(n_);
    for (RowId r : tt_.tuple(i)) tuple_bits_[i].Set(r);
  }
  all_rows_.Resize(n_);
  all_rows_.SetAll();
}

bool FarmerMiner::PassesThresholds(std::size_t supp, std::size_t supn) const {
  if (supp < std::max<std::size_t>(1, options_.min_support)) return false;
  const std::size_t x = supp + supn;
  const double conf = Confidence(supp, x);
  if (conf < options_.min_confidence) return false;
  if (options_.min_chi_square > 0.0 &&
      ChiSquare(x, supp, n_, m_) < options_.min_chi_square) {
    return false;
  }
  if (options_.min_lift > 0.0 &&
      Lift(x, supp, n_, m_) < options_.min_lift) {
    return false;
  }
  if (options_.min_conviction > 0.0 &&
      Conviction(x, supp, n_, m_) < options_.min_conviction) {
    return false;
  }
  if (options_.min_entropy_gain > 0.0 &&
      EntropyGain(x, supp, n_, m_) < options_.min_entropy_gain) {
    return false;
  }
  if (options_.min_gini_gain > 0.0 &&
      GiniGain(x, supp, n_, m_) < options_.min_gini_gain) {
    return false;
  }
  if (options_.min_correlation > 0.0 &&
      PhiCoefficient(x, supp, n_, m_) < options_.min_correlation) {
    return false;
  }
  return true;
}

double FarmerMiner::EffectiveMinConfidence(const SearchContext& ctx) const {
  double floor = options_.min_confidence;
  if (options_.top_k > 0 && ctx.shared == nullptr &&
      ctx.store.topk_confs.size() == options_.top_k) {
    // topk_confs is sorted descending; back() is the k-th best. Subtrees
    // whose confidence bound is strictly below it cannot improve the top-k
    // (ties still enter via the support tie-break, so the prune below uses
    // a strict comparison).
    //
    // Parallel workers deliberately do NOT use their local store's floor:
    // a local store can hold groups a sequential run would have dropped
    // as dominated (their witness lives in another task), and those can
    // raise the local floor above the sequential one — over-pruning
    // subtrees the sequential miner explores. The static min_confidence
    // floor is always <= the sequential dynamic floor, so workers mine a
    // superset; every extra group's confidence is strictly below the
    // final k-th confidence and the top-k selection discards it, keeping
    // the reported groups bit-identical.
    floor = std::max(floor, ctx.store.topk_confs.back());
  }
  return floor;
}

bool FarmerMiner::IsDominated(const GroupStore& store, const Bitset& rows,
                              double conf) const {
  // The IRG comparison (Definition 2.2): a more general rule group exists
  // with confidence >= ours iff some stored group's row set is a proper
  // superset of ours (antecedent closure reverses inclusion). Lemma 3.4
  // plus the post-order insert guarantees all more general groups passing
  // the constraints are already stored. A proper superset must be strictly
  // larger and must cover our first set row, so only buckets with
  // count > ours and first_row <= ours can hold a witness.
  const std::size_t row_count = rows.Count();
  const std::size_t first = rows.FindFirst();
  for (std::size_t c = row_count + 1; c <= store.max_count; ++c) {
    if (c >= store.by_count_first.size()) break;
    const auto& per_first = store.by_count_first[c];
    if (per_first.empty()) continue;
    const std::size_t f_limit = std::min(first, per_first.size() - 1);
    for (std::size_t f = 0; f <= f_limit; ++f) {
      for (std::uint32_t idx : per_first[f]) {
        const RuleGroup& g = store.groups[idx];
        if (g.confidence >= conf && rows.IsSubsetOf(g.rows)) return true;
      }
    }
  }
  return false;
}

void FarmerMiner::InsertGroup(GroupStore& store, RuleGroup g) const {
  const std::size_t row_count = g.support_pos + g.support_neg;
  const std::size_t first = g.rows.FindFirst();
  const double conf = g.confidence;
  if (store.by_count_first.size() <= row_count) {
    store.by_count_first.resize(n_ + 1);
  }
  auto& per_first = store.by_count_first[row_count];
  if (per_first.empty()) per_first.resize(n_ > 0 ? n_ : 1);
  per_first[std::min(first, per_first.size() - 1)].push_back(
      static_cast<std::uint32_t>(store.groups.size()));
  store.max_count = std::max(store.max_count, row_count);
  store.groups.push_back(std::move(g));

  if (options_.top_k > 0) {
    auto it = std::lower_bound(store.topk_confs.begin(),
                               store.topk_confs.end(), conf,
                               [](double a, double b) { return a > b; });
    store.topk_confs.insert(it, conf);
    if (store.topk_confs.size() > options_.top_k) store.topk_confs.pop_back();
  }
}

void FarmerMiner::MaybeInsertGroup(SearchContext& ctx, std::size_t depth,
                                   std::size_t supp, std::size_t supn) {
  DepthScratch& s = ctx.arena[depth];
  const Bitset* rows = &s.support;
  if (exact_mode_) {
    // With Pruning 1 or 2 disabled, the incremental counts undercount the
    // true support: R(I(X)) is the rows occurring in every tuple, which
    // the scan already materialized as `common`. The same group is then
    // reached at several nodes, so deduplicate on the row set (hash set on
    // the bitset digest, equality verified on collision).
    rows = &s.common;
    supp = s.common.CountPrefix(m_);
    supn = s.common.Count() - supp;
    if (!ctx.store.seen_exact.insert(s.common).second) return;
  }

  if (!PassesThresholds(supp, supn)) return;
  const double conf = Confidence(supp, supp + supn);
  if (!options_.report_all_rule_groups &&
      IsDominated(ctx.store, *rows, conf)) {
    return;
  }
  InsertGroup(ctx.store, MakeGroup(s, *rows, supp, supn));
}

RuleGroup FarmerMiner::MakeGroup(const DepthScratch& s, const Bitset& rows,
                                 std::size_t supp, std::size_t supn) const {
  RuleGroup g;
  if (options_.store_antecedents) {
    g.antecedent.reserve(s.alive.size());
    for (ItemId it : s.alive) g.antecedent.push_back(it);
  }
  g.rows = rows;
  g.support_pos = supp;
  g.support_neg = supn;
  g.confidence = Confidence(supp, supp + supn);
  g.chi_square = ChiSquare(supp + supn, supp, n_, m_);
  return g;
}

void FarmerMiner::MergeGroup(GroupStore& store, RuleGroup g) const {
  // Replay of the global tail of MaybeInsertGroup: the worker already
  // checked the thresholds (state-independent), but exact-mode dedup and
  // the dominance comparison must rerun against the merged store so that
  // groups dominated by an earlier subtree are dropped exactly as the
  // sequential miner drops them.
  if (exact_mode_ && !store.seen_exact.insert(g.rows).second) return;
  if (!options_.report_all_rule_groups &&
      IsDominated(store, g.rows, g.confidence)) {
    return;
  }
  InsertGroup(store, std::move(g));
}

void FarmerMiner::ValidateStore(const GroupStore& store) const {
  const std::vector<RuleGroup>& gs = store.groups;
  for (std::size_t i = 0; i < gs.size(); ++i) {
    const RuleGroup& g = gs[i];
    g.rows.CheckInvariants();
    const std::size_t count = g.rows.Count();
    FARMER_CHECK(g.support_pos + g.support_neg == count)
        << "group " << i << ": support counts disagree with its row set";
    FARMER_CHECK(g.support_pos == ref::CountPrefix(g.rows, m_))
        << "group " << i << ": positive support disagrees with its row set";
    FARMER_CHECK(g.confidence ==
                 Confidence(g.support_pos, g.support_pos + g.support_neg))
        << "group " << i << ": stale confidence";
    FARMER_CHECK(count <= store.max_count)
        << "group " << i << ": row count above the indexed maximum";
    // The (count, first-row) index must reach the group, else the
    // dominance comparison would silently skip it.
    FARMER_CHECK(count < store.by_count_first.size())
        << "group " << i << ": row count not indexed";
    const auto& per_first = store.by_count_first[count];
    FARMER_CHECK(!per_first.empty())
        << "group " << i << ": empty first-row index for its count";
    const std::size_t f = std::min(g.rows.FindFirst(), per_first.size() - 1);
    const auto& bucket = per_first[f];
    FARMER_CHECK(std::find(bucket.begin(), bucket.end(),
                           static_cast<std::uint32_t>(i)) != bucket.end())
        << "group " << i << ": missing from its index bucket";
  }
  // Closed-pattern uniqueness: every stored row set identifies exactly one
  // group.
  for (std::size_t i = 0; i < gs.size(); ++i) {
    for (std::size_t j = i + 1; j < gs.size(); ++j) {
      FARMER_CHECK(gs[i].rows != gs[j].rows)
          << "groups " << i << " and " << j
          << " store the same closed row set";
    }
  }
  // Dominance soundness (Definition 2.2): no stored group may be
  // dominated by another stored group — a proper row superset with
  // confidence at least as high.
  if (!options_.report_all_rule_groups) {
    for (std::size_t i = 0; i < gs.size(); ++i) {
      for (std::size_t j = 0; j < gs.size(); ++j) {
        if (i == j || !gs[i].rows.IsProperSubsetOf(gs[j].rows)) continue;
        FARMER_CHECK(gs[j].confidence < gs[i].confidence)
            << "group " << i << " is dominated by stored group " << j;
      }
    }
  }
}

void FarmerMiner::ValidateClosedAntecedents(
    const std::vector<RuleGroup>& groups) const {
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const RuleGroup& g = groups[i];
    const std::size_t first = g.rows.FindFirst();
    FARMER_CHECK(first < g.rows.size()) << "group " << i << ": no rows";
    ItemVector closure = permuted_.row(static_cast<RowId>(first));
    for (std::size_t r = g.rows.FindNext(first); r < g.rows.size();
         r = g.rows.FindNext(r)) {
      const ItemVector& row = permuted_.row(static_cast<RowId>(r));
      ItemVector merged;
      std::set_intersection(closure.begin(), closure.end(), row.begin(),
                            row.end(), std::back_inserter(merged));
      closure = std::move(merged);
    }
    FARMER_CHECK(closure == g.antecedent)
        << "group " << i
        << ": stored antecedent is not the closed upper bound I(rows)";
  }
}

bool FarmerMiner::VisitNode(SearchContext& ctx, std::size_t depth,
                            std::size_t* supp, std::size_t* supn) {
  DepthScratch& s = ctx.arena[depth];

  // Step 1 — Pruning 2 (back scan, Lemma 3.6), word-parallel: a "foreign"
  // row lies outside both the identified support and the candidate list
  // yet occurs in every tuple — the node's whole subtree was then already
  // enumerated under an earlier node. The foreign universe is intersected
  // through the tuples with early exit instead of the paper's per-row
  // pointer-list scan.
  if (options_.enable_pruning2) {
    s.tuple_ptrs.clear();
    for (ItemId it : s.alive) s.tuple_ptrs.push_back(&tuple_bits_[it]);
    Bitset::AndNotInto(all_rows_, s.support, &s.scratch2);
    s.scratch2 -= s.cand;
    const bool duplicate_subtree = s.scratch2.IntersectsAllOf(
        s.tuple_ptrs.data(), s.tuple_ptrs.size(), &s.scratch);
    if (FARMER_PREDICT_FALSE(options_.verify_invariants)) {
      s.scratch2.CheckInvariants();
      FARMER_CHECK(s.scratch2 ==
                   ref::AndNotInto(ref::AndNotInto(all_rows_, s.support),
                                   s.cand))
          << "foreign-row universe diverged from the scalar reference";
      FARMER_CHECK(duplicate_subtree ==
                   ref::IntersectsAllOf(s.scratch2, s.tuple_ptrs.data(),
                                        s.tuple_ptrs.size()))
          << "IntersectsAllOf diverged from the scalar reference";
    }
    if (duplicate_subtree) {
      ++ctx.stats.pruned_by_backscan;
      return false;
    }
  }

  // Step 2 — Pruning 3 with the loose bounds (before scanning). Consequent
  // rows have ids < m_, so the class-C candidates are a bit prefix.
  const std::size_t ep = s.cand.CountPrefix(m_);
  if (FARMER_PREDICT_FALSE(options_.verify_invariants)) {
    FARMER_CHECK(ep == ref::CountPrefix(s.cand, m_))
        << "CountPrefix diverged from the scalar reference";
  }
  const std::size_t supp_entry = *supp;
  const std::size_t us2 = supp_entry + ep;
  if (options_.enable_pruning3) {
    if (us2 < std::max<std::size_t>(1, options_.min_support)) {
      ++ctx.stats.pruned_by_support;
      return false;
    }
    const double minconf = EffectiveMinConfidence(ctx);
    if (minconf > 0.0) {
      const double uc2 = Confidence(us2, us2 + *supn);
      if (uc2 < minconf) {
        ++ctx.stats.pruned_by_confidence;
        return false;
      }
    }
  }

  // Step 3 — scan the conditional table, one word-parallel pass per tuple:
  // `common` (rows in every tuple, the absorption set Y of Lemma 3.5 once
  // masked to the candidates), `occupied` (candidates in >= 1 tuple, the
  // set U), and the per-tuple maximum of class-C candidates for the tight
  // support bound.
  s.common = tuple_bits_[s.alive[0]];
  s.occupied.ResetAll();
  std::size_t max_ep_tuple = 0;
  for (ItemId it : s.alive) {
    const Bitset& t = tuple_bits_[it];
    s.common &= t;
    s.occupied.OrAnd(t, s.cand);
    if (options_.enable_pruning3) {
      const std::size_t ep_tuple = t.AndCountPrefix(s.cand, m_);
      if (FARMER_PREDICT_FALSE(options_.verify_invariants)) {
        FARMER_CHECK(ep_tuple == ref::AndCountPrefix(t, s.cand, m_))
            << "AndCountPrefix diverged from the scalar reference";
      }
      max_ep_tuple = std::max(max_ep_tuple, ep_tuple);
    }
  }
  if (FARMER_PREDICT_FALSE(options_.verify_invariants)) {
    // Replay the whole scan through the bit-by-bit reference kernels.
    Bitset expect_common = tuple_bits_[s.alive[0]];
    Bitset expect_occupied(n_);
    for (ItemId it : s.alive) {
      const Bitset& t = tuple_bits_[it];
      expect_common = ref::AndInto(expect_common, t);
      expect_occupied = ref::OrAnd(expect_occupied, t, s.cand);
    }
    s.common.CheckInvariants();
    s.occupied.CheckInvariants();
    FARMER_CHECK(s.common == expect_common)
        << "operator&= diverged from the scalar reference";
    FARMER_CHECK(s.occupied == expect_occupied)
        << "OrAnd diverged from the scalar reference";
  }
  Bitset::AndInto(s.common, s.cand, &s.scratch);  // Y: absorbable rows.
  if (FARMER_PREDICT_FALSE(options_.verify_invariants)) {
    FARMER_CHECK(s.scratch == ref::AndInto(s.common, s.cand))
        << "AndInto diverged from the scalar reference";
  }
  if (options_.enable_pruning1 && s.scratch.Any()) {
    // Pruning 1: rows occurring in every tuple are absorbed into the
    // support right now (Lemma 3.5) instead of spawning children.
    s.support |= s.scratch;
    const std::size_t absorbed = s.scratch.Count();
    const std::size_t absorbed_pos = s.scratch.CountPrefix(m_);
    if (FARMER_PREDICT_FALSE(options_.verify_invariants)) {
      FARMER_CHECK(absorbed == ref::AndCount(s.scratch, s.scratch))
          << "Count diverged from the scalar reference";
      FARMER_CHECK(absorbed_pos == ref::CountPrefix(s.scratch, m_))
          << "CountPrefix diverged from the scalar reference";
    }
    *supp += absorbed_pos;
    *supn += absorbed - absorbed_pos;
    ctx.stats.rows_absorbed += absorbed;
    Bitset::AndNotInto(s.occupied, s.scratch, &s.new_cands);
    if (FARMER_PREDICT_FALSE(options_.verify_invariants)) {
      FARMER_CHECK(s.new_cands == ref::AndNotInto(s.occupied, s.scratch))
          << "AndNotInto diverged from the scalar reference";
    }
  } else {
    s.new_cands = s.occupied;
  }

  // Step 4 — Pruning 3 with the tight bounds (after scanning).
  if (options_.enable_pruning3) {
    const std::size_t us1 = supp_entry + max_ep_tuple;
    if (us1 < std::max<std::size_t>(1, options_.min_support)) {
      ++ctx.stats.pruned_by_support;
      return false;
    }
    if (!exact_mode_) {
      // The tight confidence/chi-square bounds require supp/supn to be the
      // exact counts of R(I(X)); that only holds when Prunings 1 and 2 are
      // active (ablation runs fall back to the loose bounds above).
      const double uc1 = Confidence(us1, us1 + *supn);
      const double minconf = EffectiveMinConfidence(ctx);
      if (minconf > 0.0 && uc1 < minconf) {
        ++ctx.stats.pruned_by_confidence;
        return false;
      }
      if (options_.min_chi_square > 0.0 &&
          ChiSquareUpperBound(*supp + *supn, *supp, n_, m_) <
              options_.min_chi_square) {
        ++ctx.stats.pruned_by_chi;
        return false;
      }
      if (options_.min_lift > 0.0 &&
          LiftUpperBound(uc1, n_, m_) < options_.min_lift) {
        ++ctx.stats.pruned_by_extension;
        return false;
      }
      if (options_.min_conviction > 0.0 &&
          ConvictionUpperBound(uc1, n_, m_) < options_.min_conviction) {
        ++ctx.stats.pruned_by_extension;
        return false;
      }
      if (options_.min_entropy_gain > 0.0 &&
          EntropyGainUpperBound(*supp + *supn, *supp, n_, m_) <
              options_.min_entropy_gain) {
        ++ctx.stats.pruned_by_extension;
        return false;
      }
      if (options_.min_gini_gain > 0.0 &&
          GiniGainUpperBound(*supp + *supn, *supp, n_, m_) <
              options_.min_gini_gain) {
        ++ctx.stats.pruned_by_extension;
        return false;
      }
      if (options_.min_correlation > 0.0 &&
          PhiUpperBound(*supp + *supn, *supp, n_, m_) <
              options_.min_correlation) {
        ++ctx.stats.pruned_by_extension;
        return false;
      }
    }
  }
  return true;
}

void FarmerMiner::MineIRGs(SearchContext& ctx, std::size_t depth,
                           std::size_t supp, std::size_t supn) {
  if (ctx.stats.timed_out) return;
  if (ctx.cancel != nullptr && ctx.cancel->Cancelled()) {
    ctx.stats.timed_out = true;
    return;
  }
  if (ctx.deadline.Expired()) {
    ctx.stats.timed_out = true;
    if (ctx.cancel != nullptr) ctx.cancel->Cancel();
    return;
  }
  ++ctx.stats.nodes_visited;
  if (FARMER_PREDICT_FALSE(options_.progress != nullptr)) {
    options_.progress->RaiseMaxDepth(depth);
    // Flush counter deltas in batches so the live counters stay fresh
    // without putting an atomic RMW on every enumeration node.
    if ((ctx.stats.nodes_visited & 0x3F) == 0) PublishProgress(ctx);
  }
  DepthScratch& s = ctx.arena[depth];
  if (s.alive.empty()) return;  // I(X) = ∅: no rule here or below.

  // Steps 1-4: prunings, scan, absorption.
  if (!VisitNode(ctx, depth, &supp, &supn)) return;

  // Steps 5/6 — recurse into each remaining candidate, ascending. The ORD
  // order makes the class restriction implicit: after descending into a
  // ¬C row, every later row is ¬C as well. The child's candidate mask is
  // maintained incrementally: clearing each visited row leaves exactly the
  // rows after it. In parallel runs, a hungry pool converts the remaining
  // branches into stealable tasks instead (adaptive subtree splitting).
  DepthScratch& child = ctx.arena[depth + 1];
  child.cand = s.new_cands;
  bool spawned_children = false;
  // The root node publishes its branch count so the progress reporter
  // can estimate completion from first-level branches finished.
  const bool track_root =
      FARMER_PREDICT_FALSE(options_.progress != nullptr) && depth == 0;
  if (track_root) {
    options_.progress->root_total.store(s.new_cands.Count(),
                                        std::memory_order_relaxed);
  }
  for (std::size_t ri = s.new_cands.FindFirst(); ri < n_;
       ri = s.new_cands.FindNext(ri)) {
    if (ctx.shared != nullptr && ShouldSplit(ctx, depth)) {
      SpawnRemaining(ctx, depth, ri, supp, supn);
      spawned_children = true;
      break;
    }
    child.cand.Reset(ri);
    child.alive.clear();
    for (ItemId it : s.alive) {
      if (tuple_bits_[it].Test(ri)) child.alive.push_back(it);
    }
    child.support = s.support;
    child.support.Set(ri);
    if (ctx.shared != nullptr) {
      ctx.path.push_back(static_cast<std::uint32_t>(ri));
    }
    MineIRGs(ctx, depth + 1, supp + (ri < m_ ? 1 : 0),
             supn + (ri >= m_ ? 1 : 0));
    if (ctx.shared != nullptr) ctx.path.pop_back();
    if (ctx.stats.timed_out) return;
    if (track_root) {
      options_.progress->root_done.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Step 7 — after the whole subtree (so every more general group is
  // already stored), decide whether I(X) -> C is an IRG. When children
  // were spawned, the decision is deferred past their merge.
  if (spawned_children) {
    DeferStep7(ctx, depth, supp, supn);
  } else {
    MaybeInsertGroup(ctx, depth, supp, supn);
  }
}

bool FarmerMiner::ShouldSplit(const SearchContext& ctx,
                              std::size_t depth) const {
  // Farm lease contexts carry a shared block with no pool: they must
  // mine their whole subtree inline (the coordinator, not a local pool,
  // owns the decomposition).
  return ctx.shared->pool != nullptr && depth < options_.max_split_depth &&
         ctx.shared->pool->ApproxPending() < ctx.shared->hungry_below;
}

void FarmerMiner::SpawnRemaining(SearchContext& ctx, std::size_t depth,
                                 std::size_t first_row, std::size_t supp,
                                 std::size_t supn) {
  DepthScratch& s = ctx.arena[depth];
  auto snapshot = std::make_shared<SplitSnapshot>();
  snapshot->alive = s.alive;
  snapshot->cands = s.new_cands;
  snapshot->support = s.support;
  const std::size_t before = ctx.stats.tasks_spawned;
  for (std::size_t ri = first_row; ri < n_; ri = s.new_cands.FindNext(ri)) {
    SubtreeTask task;
    task.parent = snapshot;
    task.row = static_cast<std::uint32_t>(ri);
    task.depth = depth + 1;
    task.supp = supp + (ri < m_ ? 1 : 0);
    task.supn = supn + (ri >= m_ ? 1 : 0);
    task.id = ctx.path;
    task.id.push_back(task.row);
    task.home_worker = ctx.lane == 0
                           ? kExternalWorker
                           : static_cast<std::uint32_t>(ctx.lane - 1);
    ++ctx.stats.tasks_spawned;
    SubmitTask(*ctx.shared, std::move(task), ctx.lane);
  }
  if (options_.trace != nullptr) {
    options_.trace->Instant(
        ctx.lane, "spawn", "tasks",
        static_cast<std::int64_t>(ctx.stats.tasks_spawned - before),
        "depth", static_cast<std::int64_t>(depth));
  }
}

void FarmerMiner::DeferStep7(SearchContext& ctx, std::size_t depth,
                             std::size_t supp, std::size_t supn) {
  DepthScratch& s = ctx.arena[depth];
  const Bitset* rows = &s.support;
  if (exact_mode_) {
    // Same recomputation as MaybeInsertGroup; the local dedup is skipped —
    // the merge's global seen_exact handles duplicates in id order.
    rows = &s.common;
    supp = s.common.CountPrefix(m_);
    supn = s.common.Count() - supp;
  }
  TaskId closer_id = ctx.path;
  closer_id.push_back(kCloserRank);
  // Thresholds are state-independent: check now, ship only qualifying
  // groups. Dominance (and exact-mode dedup) rerun at merge time, where
  // the spawned children's groups are already in the store.
  if (PassesThresholds(supp, supn)) {
    Segment closer;
    closer.id = closer_id;
    closer.groups.push_back(MakeGroup(s, *rows, supp, supn));
    ctx.closers.push_back(std::move(closer));
  }
  // Later inline insertions (ancestors' later branches and their step-7
  // records) resume in a fresh segment ordered after this node's whole
  // subtree: path + [closer, closer] sorts after every descendant id and
  // after the closer itself, but before any later sibling's path.
  closer_id.push_back(kCloserRank);
  ctx.seg_bounds.emplace_back(std::move(closer_id), ctx.store.groups.size());
}

FarmerMiner::SearchContext FarmerMiner::MakeContext(CancelFlag* cancel) const {
  SearchContext ctx;
  ctx.arena.resize(n_ + 2);
  for (DepthScratch& s : ctx.arena) {
    s.cand.Resize(n_);
    s.support.Resize(n_);
    s.common.Resize(n_);
    s.occupied.Resize(n_);
    s.new_cands.Resize(n_);
    s.scratch.Resize(n_);
    s.scratch2.Resize(n_);
  }
  ctx.store.by_count_first.resize(n_ + 1);
  ctx.deadline = options_.deadline;
  ctx.cancel = cancel;
  return ctx;
}

void FarmerMiner::SubmitTask(ParallelShared& shared, SubtreeTask task,
                             std::size_t lane) {
  if (options_.trace != nullptr) {
    options_.trace->Instant(lane, "enqueue", "row",
                            static_cast<std::int64_t>(task.row), "depth",
                            static_cast<std::int64_t>(task.depth));
  }
  shared.pool->Submit(
      [this, &shared, task = std::move(task)](std::size_t worker_id) {
        RunTask(shared, task, worker_id);
      });
}

void FarmerMiner::RunTask(ParallelShared& shared, const SubtreeTask& task,
                          std::size_t worker_id) {
  SearchContext& ctx = (*shared.contexts)[worker_id];
  // Per-task reset; the arena bitsets and index storage are reused.
  ctx.store.groups.clear();
  ctx.store.by_count_first.assign(n_ + 1, {});
  ctx.store.max_count = 0;
  ctx.store.topk_confs.clear();
  ctx.store.seen_exact.clear();
  ctx.stats = MinerStats{};
  ctx.deadline = options_.deadline;
  ctx.path = task.id;
  ctx.seg_bounds.clear();
  ctx.seg_bounds.emplace_back(task.id, 0);
  ctx.closers.clear();
  ctx.lane = worker_id + 1;
  ctx.published = MinerStats{};
  ctx.published_groups = 0;
  const std::uint64_t span_start =
      options_.trace != nullptr ? options_.trace->NowNs() : 0;
  Stopwatch task_sw;

  DepthScratch& top = ctx.arena[task.depth];
  if (task.parent == nullptr) {
    // The root task mines from the tree root.
    top.alive.clear();
    for (ItemId i = 0; i < tt_.num_items(); ++i) {
      if (!tt_.tuple(i).empty()) top.alive.push_back(i);
    }
    top.cand.SetAll();
    top.support.ResetAll();
  } else {
    // Derive the node inputs from the shared split snapshot, inside the
    // worker and into preallocated storage: the spawner copied nothing.
    const SplitSnapshot& p = *task.parent;
    top.alive.clear();
    for (ItemId it : p.alive) {
      if (tuple_bits_[it].Test(task.row)) top.alive.push_back(it);
    }
    top.cand = p.cands;
    top.cand.ResetPrefix(task.row + 1);  // Candidates strictly after row.
    top.support = p.support;
    top.support.Set(task.row);
  }
  MineIRGs(ctx, task.depth, task.supp, task.supn);

  // Slice the task's inline insertions into their segments and publish
  // them together with the deferred closers and the task statistics.
  std::vector<Segment> out;
  out.reserve(ctx.seg_bounds.size() + ctx.closers.size());
  for (std::size_t b = 0; b < ctx.seg_bounds.size(); ++b) {
    const std::size_t begin = ctx.seg_bounds[b].second;
    const std::size_t end = b + 1 < ctx.seg_bounds.size()
                                ? ctx.seg_bounds[b + 1].second
                                : ctx.store.groups.size();
    if (begin == end) continue;
    Segment seg;
    seg.id = std::move(ctx.seg_bounds[b].first);
    seg.groups.assign(
        std::make_move_iterator(ctx.store.groups.begin() + begin),
        std::make_move_iterator(ctx.store.groups.begin() + end));
    out.push_back(std::move(seg));
  }
  for (Segment& closer : ctx.closers) out.push_back(std::move(closer));

  if (FARMER_PREDICT_FALSE(options_.progress != nullptr)) {
    PublishProgress(ctx);
    options_.progress->tasks_completed.fetch_add(
        1, std::memory_order_relaxed);
  }
  if (options_.trace != nullptr) {
    const bool stolen = task.home_worker != kExternalWorker &&
                        task.home_worker != worker_id;
    options_.trace->EndSpan(worker_id + 1, "task", span_start, "depth",
                            static_cast<std::int64_t>(task.depth),
                            "stolen", stolen ? 1 : 0);
  }
  if (shared.task_seconds != nullptr) {
    shared.task_seconds->Observe(task_sw.ElapsedSeconds());
  }

  MutexLock lock(shared.mutex);
  shared.stats.MergeFrom(ctx.stats);
  for (Segment& seg : out) shared.segments.push_back(std::move(seg));
}

FarmerMiner::GroupStore FarmerMiner::RunSearch(MinerStats* stats) {
  CancelFlag cancel;
  if (options_.num_threads <= 1) {
    SearchContext ctx = MakeContext(&cancel);
    DepthScratch& root = ctx.arena[0];
    for (ItemId i = 0; i < tt_.num_items(); ++i) {
      if (!tt_.tuple(i).empty()) root.alive.push_back(i);
    }
    root.cand.SetAll();
    MineIRGs(ctx, 0, 0, 0);
    if (FARMER_PREDICT_FALSE(options_.progress != nullptr)) {
      PublishProgress(ctx);
    }
    *stats = ctx.stats;
    if (FARMER_PREDICT_FALSE(options_.verify_invariants)) {
      ValidateStore(ctx.store);
    }
    return std::move(ctx.store);
  }

  // Parallel search: a single root task seeds the work-stealing pool;
  // workers split their subtrees adaptively whenever the pool runs low
  // on queued work (ShouldSplit), so one skewed subtree cannot serialize
  // the run. Every emitted segment carries the lexicographic id of its
  // position in the sequential insertion stream.
  const std::size_t num_workers = options_.num_threads;
  // Declared before the pool so it outlives the worker threads.
  obs::TracingPoolObserver steal_observer(options_.trace);
  ThreadPool pool(num_workers);
  if (options_.trace != nullptr) pool.SetObserver(&steal_observer);
  ParallelShared shared;
  shared.pool = &pool;
  shared.hungry_below = num_workers;
  if (options_.metrics != nullptr) {
    shared.task_seconds = options_.metrics->GetHistogram(
        "farmer.task.seconds",
        {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0});
  }
  std::vector<SearchContext> contexts;
  contexts.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    contexts.push_back(MakeContext(&cancel));
    contexts.back().shared = &shared;
  }
  shared.contexts = &contexts;

  SubtreeTask root_task;  // parent == nullptr, id == {}: the tree root.
  if (FARMER_PREDICT_FALSE(options_.progress != nullptr)) {
    // Count the root task too, so completed/spawned can reach 1.0.
    options_.progress->tasks_spawned.fetch_add(1,
                                               std::memory_order_relaxed);
  }
  SubmitTask(shared, std::move(root_task), obs::TraceSession::kMainLane);
  pool.Wait();
  if (FARMER_PREDICT_FALSE(options_.verify_invariants)) {
    pool.CheckQuiescent();
  }

  // pool.Wait() means no task can still touch `shared`, but that is a
  // scheduling argument the analysis cannot see — so take the (now
  // uncontended) lock once and move the guarded state into locals.
  std::vector<Segment> segments;
  {
    MutexLock lock(shared.mutex);
    *stats = shared.stats;
    segments = std::move(shared.segments);
  }
  stats->task_steals = pool.steal_count();
  stats->tasks_stolen = pool.stolen_task_count();

  // Deterministic merge: replay every segment's groups in id order
  // through the same dedup -> dominance -> insert path the sequential
  // miner uses, which reproduces its insertion stream exactly.
  std::stable_sort(
      segments.begin(), segments.end(),
      [](const Segment& a, const Segment& b) { return a.id < b.id; });
  obs::Counter* merge_segments =
      options_.metrics != nullptr
          ? options_.metrics->GetCounter("farmer.merge.segments")
          : nullptr;
  GroupStore merged;
  merged.by_count_first.resize(n_ + 1);
  for (Segment& seg : segments) {
    // One "merge" span per replayed segment on the control lane: the
    // pool has drained, so lane 0 has a single producer again.
    obs::ScopedSpan span(options_.trace, obs::TraceSession::kMainLane,
                         "merge");
    span.Arg("groups", static_cast<std::int64_t>(seg.groups.size()));
    if (merge_segments != nullptr) merge_segments->Increment();
    for (RuleGroup& g : seg.groups) MergeGroup(merged, std::move(g));
    // Debug mode: the store must satisfy its invariants after *every*
    // segment merge, not only at the end — this is the executable form of
    // the deterministic-merge argument (each merged segment leaves the
    // store exactly as some prefix of the sequential run would).
    if (FARMER_PREDICT_FALSE(options_.verify_invariants)) {
      ValidateStore(merged);
    }
  }
  return merged;
}

void FarmerMiner::PublishProgress(SearchContext& ctx) const {
  obs::ProgressCounters& p = *options_.progress;
  const MinerStats& s = ctx.stats;
  MinerStats& q = ctx.published;
  const auto relaxed = std::memory_order_relaxed;
  p.nodes.fetch_add(s.nodes_visited - q.nodes_visited, relaxed);
  p.pruned_backscan.fetch_add(
      s.pruned_by_backscan - q.pruned_by_backscan, relaxed);
  p.pruned_support.fetch_add(
      s.pruned_by_support - q.pruned_by_support, relaxed);
  p.pruned_confidence.fetch_add(
      s.pruned_by_confidence - q.pruned_by_confidence, relaxed);
  p.pruned_chi.fetch_add(s.pruned_by_chi - q.pruned_by_chi, relaxed);
  p.pruned_extension.fetch_add(
      s.pruned_by_extension - q.pruned_by_extension, relaxed);
  p.rows_absorbed.fetch_add(s.rows_absorbed - q.rows_absorbed, relaxed);
  p.tasks_spawned.fetch_add(s.tasks_spawned - q.tasks_spawned, relaxed);
  q = s;
  const std::size_t g = ctx.store.groups.size();
  if (g > ctx.published_groups) {
    p.groups.fetch_add(g - ctx.published_groups, relaxed);
    ctx.published_groups = g;
  }
}

void FarmerMiner::ExportMetrics(const FarmerResult& result) const {
  obs::MetricsRegistry& m = *options_.metrics;
  m.GetCounter("farmer.nodes_visited")->Add(stats_.nodes_visited);
  m.GetCounter("farmer.pruned.backscan")->Add(stats_.pruned_by_backscan);
  m.GetCounter("farmer.pruned.support")->Add(stats_.pruned_by_support);
  m.GetCounter("farmer.pruned.confidence")
      ->Add(stats_.pruned_by_confidence);
  m.GetCounter("farmer.pruned.chi")->Add(stats_.pruned_by_chi);
  m.GetCounter("farmer.pruned.extension")
      ->Add(stats_.pruned_by_extension);
  m.GetCounter("farmer.rows_absorbed")->Add(stats_.rows_absorbed);
  m.GetCounter("farmer.tasks.spawned")->Add(stats_.tasks_spawned);
  m.GetCounter("farmer.tasks.steals")->Add(stats_.task_steals);
  m.GetCounter("farmer.tasks.stolen")->Add(stats_.tasks_stolen);
  m.GetCounter("farmer.groups")->Add(result.groups.size());
  m.GetGauge("farmer.mine_seconds")->Set(stats_.mine_seconds);
  m.GetGauge("farmer.lower_bound_seconds")
      ->Set(stats_.lower_bound_seconds);
  m.GetGauge("farmer.timed_out")->Set(stats_.timed_out ? 1.0 : 0.0);
  m.GetGauge("farmer.num_threads")
      ->Set(static_cast<double>(options_.num_threads));
  obs::Histogram* support = m.GetHistogram(
      "farmer.group.rows", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  for (const RuleGroup& g : result.groups) {
    support->Observe(
        static_cast<double>(g.support_pos + g.support_neg));
  }
}

void FarmerMiner::ApplySimdOverride() const {
  // Apply the per-run kernel-tier override before any bitset kernel
  // runs; a level this binary/host cannot execute must fail loudly, not
  // quietly mine on the wrong tier. The stats record whichever tier the
  // run actually used.
  if (!options_.simd_level.empty()) {
    FARMER_CHECK(simd::Configure(options_.simd_level))
        << "MinerOptions::simd_level='" << options_.simd_level
        << "' is not usable here (supported: " << simd::SupportedLevelsCsv()
        << ")";
  }
}

FarmerResult FarmerMiner::Mine() {
  ApplySimdOverride();

  FarmerResult result;
  result.num_rows = n_;
  result.num_consequent_rows = m_;
  if (n_ == 0) return result;

  Stopwatch sw;
  GroupStore store;
  {
    obs::ScopedSpan span(options_.trace, obs::TraceSession::kMainLane,
                         "mine");
    store = RunSearch(&stats_);
    span.Arg("nodes", static_cast<std::int64_t>(stats_.nodes_visited));
    span.Arg("groups", static_cast<std::int64_t>(store.groups.size()));
  }
  stats_.mine_seconds = sw.ElapsedSeconds();
  return FinalizeResult(std::move(store));
}

FarmerResult FarmerMiner::FinalizeResult(GroupStore store) {
  FarmerResult result;
  result.num_rows = n_;
  result.num_consequent_rows = m_;
  std::vector<RuleGroup> groups = std::move(store.groups);
  // After RunSearch (and in farm merges): the search overwrites stats_
  // with the aggregated per-task counters, which never carry a level of
  // their own.
  stats_.simd_level = simd::LevelName(simd::ActiveLevel());

  // Debug mode: every reported upper bound must be the closed antecedent
  // of its row set (closed-pattern uniqueness — the property that makes a
  // rule-group representation lossless).
  if (FARMER_PREDICT_FALSE(options_.verify_invariants) &&
      options_.store_antecedents) {
    ValidateClosedAntecedents(groups);
  }

  // Top-k selection: best confidence first, support breaks ties.
  if (options_.top_k > 0 && groups.size() > options_.top_k) {
    std::stable_sort(groups.begin(), groups.end(),
                     [](const RuleGroup& a, const RuleGroup& b) {
                       if (a.confidence != b.confidence) {
                         return a.confidence > b.confidence;
                       }
                       return a.support_pos > b.support_pos;
                     });
    groups.resize(options_.top_k);
  }

  // Optional lower-bound mining (MineLB), still in permuted row ids.
  if (options_.mine_lower_bounds) {
    Stopwatch lb_sw;
    obs::ScopedSpan lb_phase(options_.trace, obs::TraceSession::kMainLane,
                             "minelb_phase");
    lb_phase.Arg("groups", static_cast<std::int64_t>(groups.size()));
    for (RuleGroup& g : groups) {
      // Unthrottled: one MineLB call can dwarf the check interval, so
      // each group re-samples the clock directly.
      if (options_.deadline.ExpiredNow()) {
        stats_.timed_out = true;
        break;
      }
      ItemVector antecedent = g.antecedent;
      if (antecedent.empty()) {
        // Antecedents were not stored: recover I(rows) by intersecting the
        // member rows' itemsets.
        const std::size_t first = g.rows.FindFirst();
        antecedent = permuted_.row(static_cast<RowId>(first));
        for (std::size_t r = g.rows.FindNext(first); r < g.rows.size();
             r = g.rows.FindNext(r)) {
          const ItemVector& row = permuted_.row(static_cast<RowId>(r));
          ItemVector merged;
          std::set_intersection(antecedent.begin(), antecedent.end(),
                                row.begin(), row.end(),
                                std::back_inserter(merged));
          antecedent = std::move(merged);
        }
      }
      LowerBoundResult lb;
      {
        obs::ScopedSpan span(options_.trace, obs::TraceSession::kMainLane,
                             "minelb");
        lb = MineLowerBounds(permuted_, antecedent, g.rows,
                             options_.max_lower_bound_candidates,
                             &options_.deadline);
        span.Arg("bounds",
                 static_cast<std::int64_t>(lb.lower_bounds.size()));
        span.Arg("truncated", lb.truncated ? 1 : 0);
      }
      if (FARMER_PREDICT_FALSE(options_.progress != nullptr)) {
        options_.progress->minelb_done.fetch_add(
            1, std::memory_order_relaxed);
      }
      if (FARMER_PREDICT_FALSE(options_.verify_invariants) &&
          !lb.truncated) {
        FARMER_CHECK_OK(ValidateLowerBounds(permuted_, antecedent, g.rows,
                                            lb.lower_bounds))
            << "MineLB produced a non-minimal or non-generating bound";
      }
      g.lower_bounds = std::move(lb.lower_bounds);
      g.lower_bounds_truncated = lb.truncated;
      if (lb.timed_out) {
        // The deadline fired inside the computation; the remaining
        // groups' MineLB calls would all time out instantly too.
        stats_.timed_out = true;
        break;
      }
    }
    stats_.lower_bound_seconds = lb_sw.ElapsedSeconds();
  }

  // Remap row sets from permuted to original row ids.
  {
    obs::ScopedSpan span(options_.trace, obs::TraceSession::kMainLane,
                         "remap");
    span.Arg("groups", static_cast<std::int64_t>(groups.size()));
    for (RuleGroup& g : groups) {
      Bitset original(n_);
      g.rows.ForEach(
          [&](std::size_t pos) { original.Set(order_.order[pos]); });
      g.rows = std::move(original);
    }
  }

  result.groups = std::move(groups);
  result.stats = stats_;
  if (options_.metrics != nullptr) ExportMetrics(result);
  return result;
}

void FarmerMiner::EnsureFarmRoot() {
  if (farm_root_ != nullptr) return;
  farm_root_ = std::make_unique<FarmRoot>();
  FarmRoot& fr = *farm_root_;
  if (n_ == 0) {
    fr.plan.root_pruned = true;
    return;
  }
  if (farm_shared_ == nullptr) {
    // pool == nullptr: ShouldSplit never fires, and a non-null
    // ctx.shared keeps EffectiveMinConfidence on the static floor — the
    // exact pruning behavior of an in-process parallel task.
    farm_shared_ = std::make_unique<ParallelShared>();
  }
  if (farm_ctx_ == nullptr) {
    farm_ctx_ =
        std::make_unique<SearchContext>(MakeContext(/*cancel=*/nullptr));
    farm_ctx_->shared = farm_shared_.get();
  }
  SearchContext& ctx = *farm_ctx_;
  ctx.stats = MinerStats{};
  ctx.deadline = options_.deadline;
  ctx.path.clear();
  ctx.seg_bounds.clear();
  ctx.closers.clear();

  // Mirror of the root visit MineIRGs performs at depth 0 (and of the
  // parallel root task): one node, then either prune or expose the
  // surviving candidates as subtrees.
  DepthScratch& root = ctx.arena[0];
  root.alive.clear();
  for (ItemId i = 0; i < tt_.num_items(); ++i) {
    if (!tt_.tuple(i).empty()) root.alive.push_back(i);
  }
  root.cand.SetAll();
  root.support.ResetAll();
  ++ctx.stats.nodes_visited;
  std::size_t supp = 0;
  std::size_t supn = 0;
  if (root.alive.empty() || !VisitNode(ctx, 0, &supp, &supn)) {
    fr.plan.root_pruned = true;
    fr.plan.root_stats = ctx.stats;
    return;
  }
  fr.supp = supp;
  fr.supn = supn;

  auto snapshot = std::make_shared<SplitSnapshot>();
  snapshot->alive = root.alive;
  snapshot->cands = root.new_cands;
  snapshot->support = root.support;
  fr.snapshot = std::move(snapshot);
  for (std::size_t ri = root.new_cands.FindFirst(); ri < n_;
       ri = root.new_cands.FindNext(ri)) {
    fr.plan.lease_rows.push_back(static_cast<std::uint32_t>(ri));
    ++ctx.stats.tasks_spawned;
  }

  // The root's own step 7, deferred past the leases' merge exactly as
  // SpawnRemaining + DeferStep7 would defer it: a closer segment at
  // [kCloserRank] (ctx.path is empty here).
  DeferStep7(ctx, 0, supp, supn);
  fr.plan.root_segments = std::move(ctx.closers);
  ctx.closers.clear();
  fr.plan.root_stats = ctx.stats;
  if (FARMER_PREDICT_FALSE(options_.progress != nullptr)) {
    options_.progress->root_total.store(fr.plan.lease_rows.size(),
                                        std::memory_order_relaxed);
  }
}

const FarmerMiner::FarmPlan& FarmerMiner::PlanFarm() {
  ApplySimdOverride();
  EnsureFarmRoot();
  return farm_root_->plan;
}

std::vector<MineSegment> FarmerMiner::MineFarmLease(std::uint32_t row,
                                                    CancelFlag* cancel,
                                                    MinerStats* stats) {
  ApplySimdOverride();
  EnsureFarmRoot();
  FarmRoot& fr = *farm_root_;
  FARMER_CHECK(!fr.plan.root_pruned)
      << "no farm leases exist: the root node was pruned";
  FARMER_CHECK(row < n_ && fr.snapshot->cands.Test(row))
      << "row " << row << " is not a farm lease root";

  // Per-lease reset, mirroring RunTask's per-task reset.
  SearchContext& ctx = *farm_ctx_;
  ctx.store.groups.clear();
  ctx.store.by_count_first.assign(n_ + 1, {});
  ctx.store.max_count = 0;
  ctx.store.topk_confs.clear();
  ctx.store.seen_exact.clear();
  ctx.stats = MinerStats{};
  ctx.deadline = options_.deadline;
  ctx.cancel = cancel;
  ctx.path.assign(1, row);
  ctx.seg_bounds.clear();
  ctx.seg_bounds.emplace_back(TaskId{row}, 0);
  ctx.closers.clear();
  ctx.lane = 0;
  ctx.published = MinerStats{};
  ctx.published_groups = 0;

  // Derive the lease's node inputs from the root snapshot exactly as
  // RunTask derives a spawned task's.
  const SplitSnapshot& p = *fr.snapshot;
  DepthScratch& top = ctx.arena[1];
  top.alive.clear();
  for (ItemId it : p.alive) {
    if (tuple_bits_[it].Test(row)) top.alive.push_back(it);
  }
  top.cand = p.cands;
  top.cand.ResetPrefix(row + 1);  // Candidates strictly after row.
  top.support = p.support;
  top.support.Set(row);
  MineIRGs(ctx, 1, fr.supp + (row < m_ ? 1 : 0),
           fr.supn + (row >= m_ ? 1 : 0));

  // Slice the inline insertions into their segments (mirrors RunTask).
  std::vector<MineSegment> out;
  out.reserve(ctx.seg_bounds.size() + ctx.closers.size());
  for (std::size_t b = 0; b < ctx.seg_bounds.size(); ++b) {
    const std::size_t begin = ctx.seg_bounds[b].second;
    const std::size_t end = b + 1 < ctx.seg_bounds.size()
                                ? ctx.seg_bounds[b + 1].second
                                : ctx.store.groups.size();
    if (begin == end) continue;
    MineSegment seg;
    seg.id = std::move(ctx.seg_bounds[b].first);
    seg.groups.assign(
        std::make_move_iterator(ctx.store.groups.begin() + begin),
        std::make_move_iterator(ctx.store.groups.begin() + end));
    out.push_back(std::move(seg));
  }
  for (MineSegment& closer : ctx.closers) out.push_back(std::move(closer));

  if (FARMER_PREDICT_FALSE(options_.progress != nullptr)) {
    PublishProgress(ctx);
    options_.progress->tasks_completed.fetch_add(1,
                                                 std::memory_order_relaxed);
  }
  if (stats != nullptr) *stats = ctx.stats;
  ctx.cancel = nullptr;
  return out;
}

FarmerResult FarmerMiner::FinalizeFarm(std::vector<MineSegment> segments,
                                       MinerStats stats) {
  ApplySimdOverride();
  FarmerResult result;
  result.num_rows = n_;
  result.num_consequent_rows = m_;
  if (n_ == 0) return result;
  stats_ = stats;

  // The deterministic merge of RunSearch, fed by uploads instead of the
  // pool's shared segment vector. Duplicate uploads of the same lease
  // must NOT reach this point (the coordinator dedups by lease id): two
  // copies of one segment would double-insert in report-all mode.
  std::stable_sort(segments.begin(), segments.end(),
                   [](const MineSegment& a, const MineSegment& b) {
                     return a.id < b.id;
                   });
  obs::Counter* merge_segments =
      options_.metrics != nullptr
          ? options_.metrics->GetCounter("farmer.merge.segments")
          : nullptr;
  GroupStore merged;
  merged.by_count_first.resize(n_ + 1);
  for (MineSegment& seg : segments) {
    obs::ScopedSpan span(options_.trace, obs::TraceSession::kMainLane,
                         "merge");
    span.Arg("groups", static_cast<std::int64_t>(seg.groups.size()));
    if (merge_segments != nullptr) merge_segments->Increment();
    for (RuleGroup& g : seg.groups) MergeGroup(merged, std::move(g));
    if (FARMER_PREDICT_FALSE(options_.verify_invariants)) {
      ValidateStore(merged);
    }
  }
  return FinalizeResult(std::move(merged));
}

}  // namespace internal

FarmerResult MineFarmer(const BinaryDataset& dataset,
                        const MinerOptions& options) {
  internal::FarmerMiner miner(dataset, options);
  return miner.Mine();
}

}  // namespace farmer
