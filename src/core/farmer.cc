#include "core/farmer.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/measures.h"
#include "core/minelb.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace farmer {
namespace internal {

FarmerMiner::FarmerMiner(const BinaryDataset& dataset,
                         const MinerOptions& options)
    : options_(options),
      order_(OrderRowsByConsequent(dataset, options.consequent)),
      permuted_(PermuteRows(dataset, order_)),
      tt_(TransposedTable::Build(permuted_)),
      n_(dataset.num_rows()),
      m_(order_.num_positive),
      exact_mode_(!options.enable_pruning1 || !options.enable_pruning2) {
  tuple_bits_.resize(tt_.num_items());
  for (ItemId i = 0; i < tt_.num_items(); ++i) {
    tuple_bits_[i].Resize(n_);
    for (RowId r : tt_.tuple(i)) tuple_bits_[i].Set(r);
  }
  all_rows_.Resize(n_);
  all_rows_.SetAll();
}

bool FarmerMiner::PassesThresholds(std::size_t supp, std::size_t supn) const {
  if (supp < std::max<std::size_t>(1, options_.min_support)) return false;
  const std::size_t x = supp + supn;
  const double conf = Confidence(supp, x);
  if (conf < options_.min_confidence) return false;
  if (options_.min_chi_square > 0.0 &&
      ChiSquare(x, supp, n_, m_) < options_.min_chi_square) {
    return false;
  }
  if (options_.min_lift > 0.0 &&
      Lift(x, supp, n_, m_) < options_.min_lift) {
    return false;
  }
  if (options_.min_conviction > 0.0 &&
      Conviction(x, supp, n_, m_) < options_.min_conviction) {
    return false;
  }
  if (options_.min_entropy_gain > 0.0 &&
      EntropyGain(x, supp, n_, m_) < options_.min_entropy_gain) {
    return false;
  }
  if (options_.min_gini_gain > 0.0 &&
      GiniGain(x, supp, n_, m_) < options_.min_gini_gain) {
    return false;
  }
  if (options_.min_correlation > 0.0 &&
      PhiCoefficient(x, supp, n_, m_) < options_.min_correlation) {
    return false;
  }
  return true;
}

double FarmerMiner::EffectiveMinConfidence(const GroupStore& store) const {
  double floor = options_.min_confidence;
  if (options_.top_k > 0 && store.topk_confs.size() == options_.top_k) {
    // topk_confs is sorted descending; back() is the k-th best. Subtrees
    // whose confidence bound is strictly below it cannot improve the top-k
    // (ties still enter via the support tie-break, so the prune below uses
    // a strict comparison). Workers only see their own store's floor in
    // parallel runs — a weaker prune than the sequential global floor, but
    // any extra groups they admit sort strictly below the final k-th
    // confidence and are dropped by the top-k selection, so the reported
    // groups stay bit-identical.
    floor = std::max(floor, store.topk_confs.back());
  }
  return floor;
}

bool FarmerMiner::IsDominated(const GroupStore& store, const Bitset& rows,
                              double conf) const {
  // The IRG comparison (Definition 2.2): a more general rule group exists
  // with confidence >= ours iff some stored group's row set is a proper
  // superset of ours (antecedent closure reverses inclusion). Lemma 3.4
  // plus the post-order insert guarantees all more general groups passing
  // the constraints are already stored. A proper superset must be strictly
  // larger and must cover our first set row, so only buckets with
  // count > ours and first_row <= ours can hold a witness.
  const std::size_t row_count = rows.Count();
  const std::size_t first = rows.FindFirst();
  for (std::size_t c = row_count + 1; c <= store.max_count; ++c) {
    if (c >= store.by_count_first.size()) break;
    const auto& per_first = store.by_count_first[c];
    if (per_first.empty()) continue;
    const std::size_t f_limit = std::min(first, per_first.size() - 1);
    for (std::size_t f = 0; f <= f_limit; ++f) {
      for (std::uint32_t idx : per_first[f]) {
        const RuleGroup& g = store.groups[idx];
        if (g.confidence >= conf && rows.IsSubsetOf(g.rows)) return true;
      }
    }
  }
  return false;
}

void FarmerMiner::InsertGroup(GroupStore& store, RuleGroup g) const {
  const std::size_t row_count = g.support_pos + g.support_neg;
  const std::size_t first = g.rows.FindFirst();
  const double conf = g.confidence;
  if (store.by_count_first.size() <= row_count) {
    store.by_count_first.resize(n_ + 1);
  }
  auto& per_first = store.by_count_first[row_count];
  if (per_first.empty()) per_first.resize(n_ > 0 ? n_ : 1);
  per_first[std::min(first, per_first.size() - 1)].push_back(
      static_cast<std::uint32_t>(store.groups.size()));
  store.max_count = std::max(store.max_count, row_count);
  store.groups.push_back(std::move(g));

  if (options_.top_k > 0) {
    auto it = std::lower_bound(store.topk_confs.begin(),
                               store.topk_confs.end(), conf,
                               [](double a, double b) { return a > b; });
    store.topk_confs.insert(it, conf);
    if (store.topk_confs.size() > options_.top_k) store.topk_confs.pop_back();
  }
}

void FarmerMiner::MaybeInsertGroup(SearchContext& ctx, std::size_t depth,
                                   std::size_t supp, std::size_t supn) {
  DepthScratch& s = ctx.arena[depth];
  const Bitset* rows = &s.support;
  if (exact_mode_) {
    // With Pruning 1 or 2 disabled, the incremental counts undercount the
    // true support: R(I(X)) is the rows occurring in every tuple, which
    // the scan already materialized as `common`. The same group is then
    // reached at several nodes, so deduplicate on the row set (hash set on
    // the bitset digest, equality verified on collision).
    rows = &s.common;
    supp = s.common.CountPrefix(m_);
    supn = s.common.Count() - supp;
    if (!ctx.store.seen_exact.insert(s.common).second) return;
  }

  if (!PassesThresholds(supp, supn)) return;
  const double conf = Confidence(supp, supp + supn);
  if (!options_.report_all_rule_groups &&
      IsDominated(ctx.store, *rows, conf)) {
    return;
  }

  RuleGroup g;
  if (options_.store_antecedents) {
    g.antecedent.reserve(s.alive.size());
    for (ItemId it : s.alive) g.antecedent.push_back(it);
  }
  g.rows = *rows;
  g.support_pos = supp;
  g.support_neg = supn;
  g.confidence = conf;
  g.chi_square = ChiSquare(supp + supn, supp, n_, m_);
  InsertGroup(ctx.store, std::move(g));
}

void FarmerMiner::MergeGroup(GroupStore& store, RuleGroup g) const {
  // Replay of the global tail of MaybeInsertGroup: the worker already
  // checked the thresholds (state-independent), but exact-mode dedup and
  // the dominance comparison must rerun against the merged store so that
  // groups dominated by an earlier subtree are dropped exactly as the
  // sequential miner drops them.
  if (exact_mode_ && !store.seen_exact.insert(g.rows).second) return;
  if (!options_.report_all_rule_groups &&
      IsDominated(store, g.rows, g.confidence)) {
    return;
  }
  InsertGroup(store, std::move(g));
}

bool FarmerMiner::VisitNode(SearchContext& ctx, std::size_t depth,
                            std::size_t* supp, std::size_t* supn) {
  DepthScratch& s = ctx.arena[depth];

  // Step 1 — Pruning 2 (back scan, Lemma 3.6), word-parallel: a "foreign"
  // row lies outside both the identified support and the candidate list
  // yet occurs in every tuple — the node's whole subtree was then already
  // enumerated under an earlier node. The foreign universe is intersected
  // through the tuples with early exit instead of the paper's per-row
  // pointer-list scan.
  if (options_.enable_pruning2) {
    s.tuple_ptrs.clear();
    for (ItemId it : s.alive) s.tuple_ptrs.push_back(&tuple_bits_[it]);
    Bitset::AndNotInto(all_rows_, s.support, &s.scratch2);
    s.scratch2 -= s.cand;
    if (s.scratch2.IntersectsAllOf(s.tuple_ptrs.data(), s.tuple_ptrs.size(),
                                   &s.scratch)) {
      ++ctx.stats.pruned_by_backscan;
      return false;
    }
  }

  // Step 2 — Pruning 3 with the loose bounds (before scanning). Consequent
  // rows have ids < m_, so the class-C candidates are a bit prefix.
  const std::size_t ep = s.cand.CountPrefix(m_);
  const std::size_t supp_entry = *supp;
  const std::size_t us2 = supp_entry + ep;
  if (options_.enable_pruning3) {
    if (us2 < std::max<std::size_t>(1, options_.min_support)) {
      ++ctx.stats.pruned_by_support;
      return false;
    }
    const double minconf = EffectiveMinConfidence(ctx.store);
    if (minconf > 0.0) {
      const double uc2 = Confidence(us2, us2 + *supn);
      if (uc2 < minconf) {
        ++ctx.stats.pruned_by_confidence;
        return false;
      }
    }
  }

  // Step 3 — scan the conditional table, one word-parallel pass per tuple:
  // `common` (rows in every tuple, the absorption set Y of Lemma 3.5 once
  // masked to the candidates), `occupied` (candidates in >= 1 tuple, the
  // set U), and the per-tuple maximum of class-C candidates for the tight
  // support bound.
  s.common = tuple_bits_[s.alive[0]];
  s.occupied.ResetAll();
  std::size_t max_ep_tuple = 0;
  for (ItemId it : s.alive) {
    const Bitset& t = tuple_bits_[it];
    s.common &= t;
    s.occupied.OrAnd(t, s.cand);
    if (options_.enable_pruning3) {
      max_ep_tuple = std::max(max_ep_tuple, t.AndCountPrefix(s.cand, m_));
    }
  }
  Bitset::AndInto(s.common, s.cand, &s.scratch);  // Y: absorbable rows.
  if (options_.enable_pruning1 && s.scratch.Any()) {
    // Pruning 1: rows occurring in every tuple are absorbed into the
    // support right now (Lemma 3.5) instead of spawning children.
    s.support |= s.scratch;
    const std::size_t absorbed = s.scratch.Count();
    const std::size_t absorbed_pos = s.scratch.CountPrefix(m_);
    *supp += absorbed_pos;
    *supn += absorbed - absorbed_pos;
    ctx.stats.rows_absorbed += absorbed;
    Bitset::AndNotInto(s.occupied, s.scratch, &s.new_cands);
  } else {
    s.new_cands = s.occupied;
  }

  // Step 4 — Pruning 3 with the tight bounds (after scanning).
  if (options_.enable_pruning3) {
    const std::size_t us1 = supp_entry + max_ep_tuple;
    if (us1 < std::max<std::size_t>(1, options_.min_support)) {
      ++ctx.stats.pruned_by_support;
      return false;
    }
    if (!exact_mode_) {
      // The tight confidence/chi-square bounds require supp/supn to be the
      // exact counts of R(I(X)); that only holds when Prunings 1 and 2 are
      // active (ablation runs fall back to the loose bounds above).
      const double uc1 = Confidence(us1, us1 + *supn);
      const double minconf = EffectiveMinConfidence(ctx.store);
      if (minconf > 0.0 && uc1 < minconf) {
        ++ctx.stats.pruned_by_confidence;
        return false;
      }
      if (options_.min_chi_square > 0.0 &&
          ChiSquareUpperBound(*supp + *supn, *supp, n_, m_) <
              options_.min_chi_square) {
        ++ctx.stats.pruned_by_chi;
        return false;
      }
      if (options_.min_lift > 0.0 &&
          LiftUpperBound(uc1, n_, m_) < options_.min_lift) {
        ++ctx.stats.pruned_by_extension;
        return false;
      }
      if (options_.min_conviction > 0.0 &&
          ConvictionUpperBound(uc1, n_, m_) < options_.min_conviction) {
        ++ctx.stats.pruned_by_extension;
        return false;
      }
      if (options_.min_entropy_gain > 0.0 &&
          EntropyGainUpperBound(*supp + *supn, *supp, n_, m_) <
              options_.min_entropy_gain) {
        ++ctx.stats.pruned_by_extension;
        return false;
      }
      if (options_.min_gini_gain > 0.0 &&
          GiniGainUpperBound(*supp + *supn, *supp, n_, m_) <
              options_.min_gini_gain) {
        ++ctx.stats.pruned_by_extension;
        return false;
      }
      if (options_.min_correlation > 0.0 &&
          PhiUpperBound(*supp + *supn, *supp, n_, m_) <
              options_.min_correlation) {
        ++ctx.stats.pruned_by_extension;
        return false;
      }
    }
  }
  return true;
}

void FarmerMiner::MineIRGs(SearchContext& ctx, std::size_t depth,
                           std::size_t supp, std::size_t supn) {
  if (ctx.stats.timed_out) return;
  if (ctx.cancel != nullptr && ctx.cancel->Cancelled()) {
    ctx.stats.timed_out = true;
    return;
  }
  if (ctx.deadline.Expired()) {
    ctx.stats.timed_out = true;
    if (ctx.cancel != nullptr) ctx.cancel->Cancel();
    return;
  }
  ++ctx.stats.nodes_visited;
  DepthScratch& s = ctx.arena[depth];
  if (s.alive.empty()) return;  // I(X) = ∅: no rule here or below.

  // Steps 1-4: prunings, scan, absorption.
  if (!VisitNode(ctx, depth, &supp, &supn)) return;

  // Steps 5/6 — recurse into each remaining candidate, ascending. The ORD
  // order makes the class restriction implicit: after descending into a
  // ¬C row, every later row is ¬C as well. The child's candidate mask is
  // maintained incrementally: clearing each visited row leaves exactly the
  // rows after it.
  DepthScratch& child = ctx.arena[depth + 1];
  child.cand = s.new_cands;
  for (std::size_t ri = s.new_cands.FindFirst(); ri < n_;
       ri = s.new_cands.FindNext(ri)) {
    child.cand.Reset(ri);
    child.alive.clear();
    for (ItemId it : s.alive) {
      if (tuple_bits_[it].Test(ri)) child.alive.push_back(it);
    }
    child.support = s.support;
    child.support.Set(ri);
    MineIRGs(ctx, depth + 1, supp + (ri < m_ ? 1 : 0),
             supn + (ri >= m_ ? 1 : 0));
    if (ctx.stats.timed_out) return;
  }

  // Step 7 — after the whole subtree (so every more general group is
  // already stored), decide whether I(X) -> C is an IRG.
  MaybeInsertGroup(ctx, depth, supp, supn);
}

FarmerMiner::SearchContext FarmerMiner::MakeContext(CancelFlag* cancel) const {
  SearchContext ctx;
  ctx.arena.resize(n_ + 2);
  for (DepthScratch& s : ctx.arena) {
    s.cand.Resize(n_);
    s.support.Resize(n_);
    s.common.Resize(n_);
    s.occupied.Resize(n_);
    s.new_cands.Resize(n_);
    s.scratch.Resize(n_);
    s.scratch2.Resize(n_);
  }
  ctx.store.by_count_first.resize(n_ + 1);
  ctx.deadline = options_.deadline;
  ctx.cancel = cancel;
  return ctx;
}

FarmerMiner::GroupStore FarmerMiner::RunSearch(MinerStats* stats) {
  CancelFlag cancel;
  SearchContext root_ctx = MakeContext(&cancel);
  DepthScratch& root = root_ctx.arena[0];
  for (ItemId i = 0; i < tt_.num_items(); ++i) {
    if (!tt_.tuple(i).empty()) root.alive.push_back(i);
  }
  root.cand.SetAll();

  if (options_.num_threads <= 1) {
    MineIRGs(root_ctx, 0, 0, 0);
    *stats = root_ctx.stats;
    return std::move(root_ctx.store);
  }

  // Parallel search: the root visit runs on this thread, then every
  // first-level subtree becomes one task. Workers mine into private
  // stores; the merge below replays them in root-candidate order, which
  // reproduces the sequential insertion stream exactly.
  auto finish = [&](GroupStore store) {
    *stats = root_ctx.stats;
    return store;
  };
  const auto fail_fast = [&]() -> bool {
    if (root_ctx.deadline.Expired()) {
      root_ctx.stats.timed_out = true;
      return true;
    }
    return false;
  };
  if (fail_fast()) return finish(std::move(root_ctx.store));
  ++root_ctx.stats.nodes_visited;
  if (root.alive.empty()) return finish(std::move(root_ctx.store));
  std::size_t supp = 0, supn = 0;
  if (!VisitNode(root_ctx, 0, &supp, &supn)) {
    return finish(std::move(root_ctx.store));
  }

  std::vector<SubtreeTask> tasks;
  Bitset remaining = root.new_cands;
  for (std::size_t ri = root.new_cands.FindFirst(); ri < n_;
       ri = root.new_cands.FindNext(ri)) {
    remaining.Reset(ri);
    SubtreeTask task;
    for (ItemId it : root.alive) {
      if (tuple_bits_[it].Test(ri)) task.alive.push_back(it);
    }
    task.cand = remaining;
    task.support = root.support;
    task.support.Set(ri);
    task.supp = supp + (ri < m_ ? 1 : 0);
    task.supn = supn + (ri >= m_ ? 1 : 0);
    tasks.push_back(std::move(task));
  }

  const std::size_t num_workers =
      std::max<std::size_t>(1, std::min(options_.num_threads, tasks.size()));
  std::vector<SearchContext> worker_ctxs;
  worker_ctxs.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    worker_ctxs.push_back(MakeContext(&cancel));
  }
  std::vector<GroupStore> task_stores(tasks.size());
  std::vector<MinerStats> task_stats(tasks.size());
  {
    ThreadPool pool(num_workers);
    for (std::size_t k = 0; k < tasks.size(); ++k) {
      pool.Submit([this, k, &tasks, &task_stores, &task_stats,
                   &worker_ctxs](std::size_t worker_id) {
        SearchContext& ctx = worker_ctxs[worker_id];
        ctx.store.groups.clear();
        ctx.store.by_count_first.assign(n_ + 1, {});
        ctx.store.max_count = 0;
        ctx.store.topk_confs.clear();
        ctx.store.seen_exact.clear();
        ctx.stats = MinerStats{};
        ctx.deadline = options_.deadline;
        DepthScratch& top = ctx.arena[1];
        top.alive = std::move(tasks[k].alive);
        top.cand = std::move(tasks[k].cand);
        top.support = std::move(tasks[k].support);
        MineIRGs(ctx, 1, tasks[k].supp, tasks[k].supn);
        task_stores[k] = std::move(ctx.store);
        task_stats[k] = ctx.stats;
      });
    }
    pool.Wait();
  }

  // Deterministic merge: accumulate stats and replay each subtree's groups
  // in root-candidate order against the global store.
  GroupStore merged;
  merged.by_count_first.resize(n_ + 1);
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    MinerStats& st = root_ctx.stats;
    const MinerStats& ts = task_stats[k];
    st.nodes_visited += ts.nodes_visited;
    st.pruned_by_backscan += ts.pruned_by_backscan;
    st.pruned_by_support += ts.pruned_by_support;
    st.pruned_by_confidence += ts.pruned_by_confidence;
    st.pruned_by_chi += ts.pruned_by_chi;
    st.pruned_by_extension += ts.pruned_by_extension;
    st.rows_absorbed += ts.rows_absorbed;
    st.timed_out = st.timed_out || ts.timed_out;
    for (RuleGroup& g : task_stores[k].groups) {
      MergeGroup(merged, std::move(g));
    }
  }

  // Step 7 at the root, post-order: only after every subtree is merged
  // (and only when none was cut short, matching the sequential miner).
  if (!root_ctx.stats.timed_out) {
    root_ctx.store = std::move(merged);
    MaybeInsertGroup(root_ctx, 0, supp, supn);
    merged = std::move(root_ctx.store);
  }
  return finish(std::move(merged));
}

FarmerResult FarmerMiner::Mine() {
  FarmerResult result;
  result.num_rows = n_;
  result.num_consequent_rows = m_;
  if (n_ == 0) return result;

  Stopwatch sw;
  GroupStore store = RunSearch(&stats_);
  std::vector<RuleGroup> groups = std::move(store.groups);
  stats_.mine_seconds = sw.ElapsedSeconds();

  // Top-k selection: best confidence first, support breaks ties.
  if (options_.top_k > 0 && groups.size() > options_.top_k) {
    std::stable_sort(groups.begin(), groups.end(),
                     [](const RuleGroup& a, const RuleGroup& b) {
                       if (a.confidence != b.confidence) {
                         return a.confidence > b.confidence;
                       }
                       return a.support_pos > b.support_pos;
                     });
    groups.resize(options_.top_k);
  }

  // Optional lower-bound mining (MineLB), still in permuted row ids.
  if (options_.mine_lower_bounds) {
    Stopwatch lb_sw;
    for (RuleGroup& g : groups) {
      if (options_.deadline.Expired()) {
        stats_.timed_out = true;
        break;
      }
      ItemVector antecedent = g.antecedent;
      if (antecedent.empty()) {
        // Antecedents were not stored: recover I(rows) by intersecting the
        // member rows' itemsets.
        const std::size_t first = g.rows.FindFirst();
        antecedent = permuted_.row(static_cast<RowId>(first));
        for (std::size_t r = g.rows.FindNext(first); r < g.rows.size();
             r = g.rows.FindNext(r)) {
          const ItemVector& row = permuted_.row(static_cast<RowId>(r));
          ItemVector merged;
          std::set_intersection(antecedent.begin(), antecedent.end(),
                                row.begin(), row.end(),
                                std::back_inserter(merged));
          antecedent = std::move(merged);
        }
      }
      LowerBoundResult lb = MineLowerBounds(
          permuted_, antecedent, g.rows,
          options_.max_lower_bound_candidates);
      g.lower_bounds = std::move(lb.lower_bounds);
      g.lower_bounds_truncated = lb.truncated;
    }
    stats_.lower_bound_seconds = lb_sw.ElapsedSeconds();
  }

  // Remap row sets from permuted to original row ids.
  for (RuleGroup& g : groups) {
    Bitset original(n_);
    g.rows.ForEach(
        [&](std::size_t pos) { original.Set(order_.order[pos]); });
    g.rows = std::move(original);
  }

  result.groups = std::move(groups);
  result.stats = stats_;
  return result;
}

}  // namespace internal

FarmerResult MineFarmer(const BinaryDataset& dataset,
                        const MinerOptions& options) {
  internal::FarmerMiner miner(dataset, options);
  return miner.Mine();
}

}  // namespace farmer
