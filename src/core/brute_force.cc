#include "core/brute_force.h"

#include <algorithm>
#include <map>

#include "core/measures.h"
#include "util/check.h"

namespace farmer {

namespace {

// Compares bitsets by their bit-vector contents for map keys.
struct BitsetLess {
  bool operator()(const Bitset& a, const Bitset& b) const {
    return a.ToVector() < b.ToVector();
  }
};

// I(X): items common to every row of `X` (as positions in `dataset`).
ItemVector CommonItems(const BinaryDataset& dataset,
                       const std::vector<RowId>& rows) {
  FARMER_DCHECK(!rows.empty());
  ItemVector common = dataset.row(rows[0]);
  for (std::size_t k = 1; k < rows.size() && !common.empty(); ++k) {
    const ItemVector& row = dataset.row(rows[k]);
    ItemVector merged;
    std::set_intersection(common.begin(), common.end(), row.begin(),
                          row.end(), std::back_inserter(merged));
    common = std::move(merged);
  }
  return common;
}

// All distinct closed itemsets with their supports, via closing every
// non-empty row subset.
std::map<Bitset, ItemVector, BitsetLess> AllClosedSets(
    const BinaryDataset& dataset) {
  const std::size_t n = dataset.num_rows();
  FARMER_CHECK(n <= 20) << "brute force is exponential in the row count";
  std::map<Bitset, ItemVector, BitsetLess> closed;  // R(I(X)) -> I(X)
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
    std::vector<RowId> subset;
    for (std::size_t r = 0; r < n; ++r) {
      if ((mask >> r) & 1) subset.push_back(static_cast<RowId>(r));
    }
    ItemVector items = CommonItems(dataset, subset);
    if (items.empty()) continue;
    Bitset support = RowSupportSet(dataset, items);
    closed.emplace(std::move(support), std::move(items));
  }
  return closed;
}

bool PassesThresholds(const RuleGroup& g, const MinerOptions& options,
                      std::size_t n, std::size_t m) {
  if (g.support_pos < std::max<std::size_t>(1, options.min_support)) {
    return false;
  }
  if (g.confidence < options.min_confidence) return false;
  const std::size_t x = g.antecedent_support();
  if (options.min_chi_square > 0.0 &&
      ChiSquare(x, g.support_pos, n, m) < options.min_chi_square) {
    return false;
  }
  if (options.min_lift > 0.0 &&
      Lift(x, g.support_pos, n, m) < options.min_lift) {
    return false;
  }
  if (options.min_conviction > 0.0 &&
      Conviction(x, g.support_pos, n, m) < options.min_conviction) {
    return false;
  }
  if (options.min_entropy_gain > 0.0 &&
      EntropyGain(x, g.support_pos, n, m) < options.min_entropy_gain) {
    return false;
  }
  if (options.min_gini_gain > 0.0 &&
      GiniGain(x, g.support_pos, n, m) < options.min_gini_gain) {
    return false;
  }
  if (options.min_correlation > 0.0 &&
      PhiCoefficient(x, g.support_pos, n, m) < options.min_correlation) {
    return false;
  }
  return true;
}

}  // namespace

Bitset RowSupportSet(const BinaryDataset& dataset, const ItemVector& items) {
  Bitset rows(dataset.num_rows());
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    const ItemVector& row = dataset.row(r);
    if (std::includes(row.begin(), row.end(), items.begin(), items.end())) {
      rows.Set(r);
    }
  }
  return rows;
}

std::vector<RuleGroup> BruteForceAllRuleGroups(const BinaryDataset& dataset,
                                               ClassLabel consequent,
                                               bool with_lower_bounds) {
  const std::size_t n = dataset.num_rows();
  const std::size_t m = dataset.CountLabel(consequent);
  std::vector<RuleGroup> groups;
  for (auto& [rows, items] : AllClosedSets(dataset)) {
    RuleGroup g;
    g.antecedent = items;
    g.rows = rows;
    rows.ForEach([&](std::size_t r) {
      if (dataset.label(static_cast<RowId>(r)) == consequent) {
        ++g.support_pos;
      } else {
        ++g.support_neg;
      }
    });
    g.confidence = Confidence(g.support_pos, g.antecedent_support());
    g.chi_square = ChiSquare(g.antecedent_support(), g.support_pos, n, m);
    if (with_lower_bounds) {
      g.lower_bounds = BruteForceLowerBounds(dataset, g.antecedent, g.rows);
    }
    groups.push_back(std::move(g));
  }
  return groups;
}

std::vector<RuleGroup> BruteForceIRGs(const BinaryDataset& dataset,
                                      const MinerOptions& options) {
  const std::size_t n = dataset.num_rows();
  const std::size_t m = dataset.CountLabel(options.consequent);
  std::vector<RuleGroup> all =
      BruteForceAllRuleGroups(dataset, options.consequent);
  std::vector<RuleGroup> passing;
  for (RuleGroup& g : all) {
    if (PassesThresholds(g, options, n, m)) passing.push_back(std::move(g));
  }
  std::vector<RuleGroup> result;
  for (const RuleGroup& g : passing) {
    bool interesting = true;
    for (const RuleGroup& other : passing) {
      if (other.antecedent_support() > g.antecedent_support() &&
          g.rows.IsSubsetOf(other.rows) && other.confidence >= g.confidence) {
        interesting = false;
        break;
      }
    }
    if (interesting) result.push_back(g);
  }
  return result;
}

std::vector<ClosedItemset> BruteForceClosedItemsets(
    const BinaryDataset& dataset, std::size_t min_support) {
  const std::size_t floor = std::max<std::size_t>(1, min_support);
  std::vector<ClosedItemset> result;
  for (auto& [rows, items] : AllClosedSets(dataset)) {
    if (rows.Count() < floor) continue;
    result.push_back(ClosedItemset{items, rows});
  }
  return result;
}

std::vector<ItemVector> BruteForceLowerBounds(const BinaryDataset& dataset,
                                              const ItemVector& antecedent,
                                              const Bitset& rows) {
  const std::size_t a = antecedent.size();
  FARMER_CHECK(a <= 20) << "brute force is exponential in the antecedent size";
  std::vector<ItemVector> matching;  // subsets with R(L) == rows
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << a); ++mask) {
    ItemVector subset;
    for (std::size_t p = 0; p < a; ++p) {
      if ((mask >> p) & 1) subset.push_back(antecedent[p]);
    }
    if (RowSupportSet(dataset, subset) == rows) {
      matching.push_back(std::move(subset));
    }
  }
  // Keep the minimal ones.
  std::vector<ItemVector> minimal;
  for (const ItemVector& candidate : matching) {
    bool is_minimal = true;
    for (const ItemVector& other : matching) {
      if (other.size() < candidate.size() &&
          std::includes(candidate.begin(), candidate.end(), other.begin(),
                        other.end())) {
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) minimal.push_back(candidate);
  }
  std::sort(minimal.begin(), minimal.end());
  return minimal;
}

}  // namespace farmer
