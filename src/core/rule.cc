#include "core/rule.h"

#include <iomanip>
#include <sstream>

namespace farmer {

std::string FormatRuleGroup(const RuleGroup& group,
                            const BinaryDataset& dataset,
                            const std::string& consequent_name) {
  std::ostringstream os;
  if (group.antecedent.empty()) {
    os << "<unstored antecedent of " << group.rows.Count() << " rows>";
  } else {
    for (std::size_t i = 0; i < group.antecedent.size(); ++i) {
      if (i > 0) os << ',';
      os << dataset.ItemName(group.antecedent[i]);
    }
  }
  os << " -> " << consequent_name << std::setprecision(4) << " (sup="
     << group.support_pos << ", conf=" << group.confidence
     << ", chi=" << group.chi_square << ')';
  if (!group.lower_bounds.empty()) {
    os << " lower_bounds=" << group.lower_bounds.size();
  }
  return os.str();
}

}  // namespace farmer
