#include "core/minelb.h"

#include <algorithm>

#include "util/check.h"

namespace farmer {

namespace {

// Keeps only itemsets that are maximal under inclusion. Input bitsets all
// have the same size; output order is by descending cardinality.
std::vector<Bitset> KeepMaximal(std::vector<Bitset> sets) {
  std::sort(sets.begin(), sets.end(), [](const Bitset& a, const Bitset& b) {
    return a.Count() > b.Count();
  });
  std::vector<Bitset> maximal;
  for (Bitset& s : sets) {
    bool subsumed = false;
    for (const Bitset& kept : maximal) {
      if (s.IsSubsetOf(kept)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) maximal.push_back(std::move(s));
  }
  return maximal;
}

// R(L): the rows of `dataset` containing every item of `itemset`.
Bitset SupportRows(const BinaryDataset& dataset, const ItemVector& itemset) {
  Bitset rows(dataset.num_rows());
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    bool all = true;
    for (ItemId i : itemset) {
      if (!dataset.RowContains(r, i)) {
        all = false;
        break;
      }
    }
    if (all) rows.Set(r);
  }
  return rows;
}

}  // namespace

LowerBoundResult MineLowerBounds(const BinaryDataset& dataset,
                                 const ItemVector& antecedent,
                                 const Bitset& rows,
                                 std::size_t max_candidates,
                                 const Deadline* deadline) {
  LowerBoundResult result;
  const std::size_t a_size = antecedent.size();
  if (a_size == 0) return result;

  // Step 1: Γ starts as the singletons of the antecedent. All bitsets use
  // positions local to `antecedent` (antecedent is sorted, so membership
  // maps via binary search).
  std::vector<Bitset> gamma;
  gamma.reserve(a_size);
  for (std::size_t p = 0; p < a_size; ++p) {
    Bitset b(a_size);
    b.Set(p);
    gamma.push_back(std::move(b));
  }

  // Step 2: collect Σ = the distinct proper subsets I(r) ∩ A for rows
  // outside R(A); by Lemma 3.11 only the maximal ones matter.
  std::vector<Bitset> sigma;
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    // The throttled check amortizes the clock read over this per-row
    // loop; a timeout here leaves Γ at the singleton stage, still a
    // valid under-approximation.
    if (deadline != nullptr && deadline->Expired()) {
      result.timed_out = result.truncated = true;
      break;
    }
    if (rows.Test(r)) continue;
    Bitset inter(a_size);
    const ItemVector& row = dataset.row(r);
    // Both `row` and `antecedent` are sorted: merge-intersect.
    std::size_t i = 0, j = 0;
    while (i < row.size() && j < a_size) {
      if (row[i] < antecedent[j]) {
        ++i;
      } else if (row[i] > antecedent[j]) {
        ++j;
      } else {
        inter.Set(j);
        ++i;
        ++j;
      }
    }
    // I(r) ∩ A ⊂ A is guaranteed: if it equaled A, r would be in R(A).
    FARMER_DCHECK(inter.Count() < a_size);
    sigma.push_back(std::move(inter));
  }
  sigma = KeepMaximal(std::move(sigma));

  // Step 3: incremental update of Γ per added closed set (Lemma 3.10).
  for (const Bitset& a_prime : sigma) {
    // One update step can be combinatorially heavy (Γ1 × missing
    // candidates), so each one re-samples the deadline unthrottled:
    // this is the checkpoint that keeps a near-deadline mining run from
    // overshooting inside a long MineLB call.
    if (deadline != nullptr && deadline->ExpiredNow()) {
      result.timed_out = result.truncated = true;
      break;
    }
    std::vector<Bitset> gamma1;  // bounds contained in A'
    std::vector<Bitset> gamma2;  // bounds that survive as-is
    for (Bitset& l : gamma) {
      if (l.IsSubsetOf(a_prime)) {
        gamma1.push_back(std::move(l));
      } else {
        gamma2.push_back(std::move(l));
      }
    }
    if (gamma1.empty()) {
      gamma = std::move(gamma2);
      continue;
    }

    // Candidates l1 ∪ {i}, l1 ∈ Γ1, i ∈ A − A'.
    std::vector<std::size_t> missing;  // positions of A − A'
    for (std::size_t p = 0; p < a_size; ++p) {
      if (!a_prime.Test(p)) missing.push_back(p);
    }
    if (max_candidates != 0 &&
        gamma1.size() * missing.size() > max_candidates) {
      result.truncated = true;
      gamma = std::move(gamma2);
      for (Bitset& l : gamma1) gamma.push_back(std::move(l));
      break;
    }
    std::vector<Bitset> candidates;
    candidates.reserve(gamma1.size() * missing.size());
    for (const Bitset& l1 : gamma1) {
      for (std::size_t p : missing) {
        Bitset c = l1;
        c.Set(p);
        candidates.push_back(std::move(c));
      }
    }
    // Deduplicate, then keep candidates that neither cover a surviving
    // bound from Γ2 nor another (smaller or equal) candidate.
    std::sort(candidates.begin(), candidates.end(),
              [](const Bitset& a, const Bitset& b) {
                if (a.Count() != b.Count()) return a.Count() < b.Count();
                return a.ToVector() < b.ToVector();
              });
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    std::vector<Bitset> accepted;
    bool step_timed_out = false;
    for (Bitset& c : candidates) {
      // Candidate filtering is quadratic in the candidate count; the
      // throttled per-candidate check bounds the overshoot of this one
      // loop. Γ1 was only copied into the candidates, so the cap-style
      // recovery below (Γ := Γ2 ∪ Γ1) stays available.
      if (deadline != nullptr && deadline->Expired()) {
        step_timed_out = true;
        break;
      }
      bool covers = false;
      for (const Bitset& l2 : gamma2) {
        if (l2.IsSubsetOf(c)) {
          covers = true;
          break;
        }
      }
      if (!covers) {
        // Candidates are sorted by ascending cardinality, so any candidate
        // covered by another has already been accepted before it.
        for (const Bitset& other : accepted) {
          if (other.IsSubsetOf(c)) {
            covers = true;
            break;
          }
        }
      }
      if (!covers) accepted.push_back(std::move(c));
    }
    if (step_timed_out) {
      result.timed_out = result.truncated = true;
      gamma = std::move(gamma2);
      for (Bitset& l : gamma1) gamma.push_back(std::move(l));
      break;
    }
    gamma = std::move(gamma2);
    for (Bitset& c : accepted) gamma.push_back(std::move(c));
  }

  // Convert local positions back to global item ids.
  result.lower_bounds.reserve(gamma.size());
  for (const Bitset& l : gamma) {
    ItemVector items;
    items.reserve(l.Count());
    l.ForEach([&](std::size_t p) { items.push_back(antecedent[p]); });
    result.lower_bounds.push_back(std::move(items));
  }
  std::sort(result.lower_bounds.begin(), result.lower_bounds.end());
  return result;
}

Status ValidateLowerBounds(const BinaryDataset& dataset,
                           const ItemVector& antecedent, const Bitset& rows,
                           const std::vector<ItemVector>& lower_bounds) {
  for (const ItemVector& lb : lower_bounds) {
    if (lb.empty()) return Status::InvalidArgument("empty lower bound");
    if (!std::includes(antecedent.begin(), antecedent.end(), lb.begin(),
                       lb.end())) {
      return Status::InvalidArgument(
          "lower bound is not a subset of the antecedent");
    }
    // Generator: L must select exactly the group's rows.
    if (SupportRows(dataset, lb) != rows) {
      return Status::InvalidArgument(
          "lower bound does not generate the group's row set");
    }
    // Minimal: dropping any one item must strictly enlarge the row set.
    for (std::size_t drop = 0; drop < lb.size(); ++drop) {
      ItemVector smaller;
      smaller.reserve(lb.size() - 1);
      for (std::size_t i = 0; i < lb.size(); ++i) {
        if (i != drop) smaller.push_back(lb[i]);
      }
      if (SupportRows(dataset, smaller) == rows) {
        return Status::InvalidArgument(
            "lower bound is not minimal: item " + std::to_string(lb[drop]) +
            " is redundant");
      }
    }
  }
  return Status::Ok();
}

}  // namespace farmer
