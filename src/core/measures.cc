#include "core/measures.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace farmer {

namespace {

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

}  // namespace

double Confidence(std::size_t y, std::size_t x) {
  if (x == 0) return 0.0;
  return static_cast<double>(y) / static_cast<double>(x);
}

double ChiSquare(std::size_t x, std::size_t y, std::size_t n, std::size_t m) {
  if (x == 0 || x >= n || m == 0 || m >= n) return 0.0;
  // chi = n (ad - bc)^2 / (x m (n-x) (n-m)) with
  // a = y, b = x-y, c = m-y, d = n-m-x+y.
  const double a = static_cast<double>(y);
  const double b = static_cast<double>(x - y);
  const double c = static_cast<double>(m - y);
  const double d = static_cast<double>(n - m - (x - y));
  const double det = a * d - b * c;
  const double denom = static_cast<double>(x) * static_cast<double>(m) *
                       static_cast<double>(n - x) *
                       static_cast<double>(n - m);
  return static_cast<double>(n) * det * det / denom;
}

double ChiSquareUpperBound(std::size_t x, std::size_t y, std::size_t n,
                           std::size_t m) {
  // Vertices of the feasible parallelogram other than (n, m), where the
  // statistic is 0 (Lemma 3.9). All three are valid count pairs by
  // construction: y <= m and x - y <= n - m.
  const double v1 = ChiSquare(x - y + m, m, n, m);
  const double v2 = ChiSquare(y + n - m, y, n, m);
  const double v3 = ChiSquare(x, y, n, m);
  return std::max({v1, v2, v3});
}

double Lift(std::size_t x, std::size_t y, std::size_t n, std::size_t m) {
  if (x == 0 || m == 0 || n == 0) return 0.0;
  return Confidence(y, x) * static_cast<double>(n) / static_cast<double>(m);
}

double Conviction(std::size_t x, std::size_t y, std::size_t n,
                  std::size_t m) {
  if (x == 0 || n == 0) return 0.0;
  const double conf = Confidence(y, x);
  const double base = 1.0 - static_cast<double>(m) / static_cast<double>(n);
  if (conf >= 1.0) return std::numeric_limits<double>::infinity();
  return base / (1.0 - conf);
}

double EntropyGain(std::size_t x, std::size_t y, std::size_t n,
                   std::size_t m) {
  if (x == 0 || x >= n || n == 0) return 0.0;
  const double nn = static_cast<double>(n);
  const double hm = BinaryEntropy(static_cast<double>(m) / nn);
  const double p_in = static_cast<double>(x) / nn;
  const double h_in = BinaryEntropy(static_cast<double>(y) /
                                    static_cast<double>(x));
  const double h_out = BinaryEntropy(static_cast<double>(m - y) /
                                     static_cast<double>(n - x));
  return hm - (p_in * h_in + (1.0 - p_in) * h_out);
}

double EntropyGainUpperBound(std::size_t x, std::size_t y, std::size_t n,
                             std::size_t m) {
  const double v1 = EntropyGain(x - y + m, m, n, m);
  const double v2 = EntropyGain(y + n - m, y, n, m);
  const double v3 = EntropyGain(x, y, n, m);
  return std::max({v1, v2, v3});
}

namespace {

double GiniImpurity(double p) { return 2.0 * p * (1.0 - p); }

}  // namespace

double GiniGain(std::size_t x, std::size_t y, std::size_t n,
                std::size_t m) {
  if (x == 0 || x >= n || n == 0) return 0.0;
  const double nn = static_cast<double>(n);
  const double base = GiniImpurity(static_cast<double>(m) / nn);
  const double p_in = static_cast<double>(x) / nn;
  const double g_in = GiniImpurity(static_cast<double>(y) /
                                   static_cast<double>(x));
  const double g_out = GiniImpurity(static_cast<double>(m - y) /
                                    static_cast<double>(n - x));
  return base - (p_in * g_in + (1.0 - p_in) * g_out);
}

double GiniGainUpperBound(std::size_t x, std::size_t y, std::size_t n,
                          std::size_t m) {
  const double v1 = GiniGain(x - y + m, m, n, m);
  const double v2 = GiniGain(y + n - m, y, n, m);
  const double v3 = GiniGain(x, y, n, m);
  return std::max({v1, v2, v3});
}

double PhiCoefficient(std::size_t x, std::size_t y, std::size_t n,
                      std::size_t m) {
  if (x == 0 || x >= n || m == 0 || m >= n) return 0.0;
  const double a = static_cast<double>(y);
  const double b = static_cast<double>(x - y);
  const double c = static_cast<double>(m - y);
  const double d = static_cast<double>(n - m - (x - y));
  const double denom = std::sqrt(
      static_cast<double>(x) * static_cast<double>(m) *
      static_cast<double>(n - x) * static_cast<double>(n - m));
  return (a * d - b * c) / denom;
}

double PhiUpperBound(std::size_t x, std::size_t y, std::size_t n,
                     std::size_t m) {
  // phi itself is not convex, but phi^2 = chi/n is, so the chi-square
  // vertex bound dominates |phi| everywhere in the feasible region.
  if (n == 0) return 0.0;
  return std::sqrt(ChiSquareUpperBound(x, y, n, m) /
                   static_cast<double>(n));
}

double LiftUpperBound(double conf_ub, std::size_t n, std::size_t m) {
  if (m == 0 || n == 0) return 0.0;
  return conf_ub * static_cast<double>(n) / static_cast<double>(m);
}

double ConvictionUpperBound(double conf_ub, std::size_t n, std::size_t m) {
  if (n == 0) return 0.0;
  const double base = 1.0 - static_cast<double>(m) / static_cast<double>(n);
  if (conf_ub >= 1.0) return std::numeric_limits<double>::infinity();
  return base / (1.0 - conf_ub);
}

}  // namespace farmer
