#ifndef FARMER_CORE_MINELB_H_
#define FARMER_CORE_MINELB_H_

#include <cstddef>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/types.h"
#include "util/bitset.h"
#include "util/status.h"
#include "util/timer.h"

namespace farmer {

/// Result of a lower-bound computation for one rule group.
struct LowerBoundResult {
  /// The minimal antecedents of the group, each sorted ascending.
  std::vector<ItemVector> lower_bounds;
  /// True when the computation stopped early because the candidate cap was
  /// hit; `lower_bounds` is then a (valid-prefix) under-approximation.
  bool truncated = false;
  /// True when the computation was abandoned because the caller's
  /// deadline fired mid-update; implies `truncated`.
  bool timed_out = false;
};

/// MineLB (paper §3.4, Figure 9): computes the lower bounds of the closed
/// set `antecedent`, i.e. the minimal itemsets L ⊆ antecedent with
/// R(L) = R(antecedent).
///
/// `rows` must be R(antecedent) over `dataset`'s row ids. The algorithm is
/// incremental: it starts from singleton bounds and updates them for each
/// maximal proper subset `I(r) ∩ antecedent` contributed by rows outside
/// `rows` (Lemmas 3.10/3.11). `max_candidates` caps the intermediate
/// candidate set per update step (0 = unlimited).
///
/// A non-null `deadline` is sampled before every update step (and
/// throttled inside the row scan), so a single long MineLB invocation
/// cannot overshoot a near-expired mining deadline: the computation
/// stops at the next checkpoint with `timed_out` (and `truncated`) set
/// and the bounds accumulated so far — a valid under-approximation.
LowerBoundResult MineLowerBounds(const BinaryDataset& dataset,
                                 const ItemVector& antecedent,
                                 const Bitset& rows,
                                 std::size_t max_candidates = 0,
                                 const Deadline* deadline = nullptr);

/// Invariant validator for a (non-truncated) MineLB result: every lower
/// bound must be a *minimal generator* of its rule group — a subset of
/// `antecedent` with R(L) = `rows` such that dropping any single item
/// strictly enlarges the row set. Returns the first violation found, or
/// Ok. Brute-force (O(bounds · |L| · rows · log)), intended for
/// MinerOptions::verify_invariants and tests, not production runs.
Status ValidateLowerBounds(const BinaryDataset& dataset,
                           const ItemVector& antecedent, const Bitset& rows,
                           const std::vector<ItemVector>& lower_bounds);

}  // namespace farmer

#endif  // FARMER_CORE_MINELB_H_
