#include <cstdio>
#include <string>

#include "core/miner_options.h"
#include "util/simd/simd.h"

namespace farmer {

void MinerStats::MergeFrom(const MinerStats& other) {
  nodes_visited += other.nodes_visited;
  pruned_by_backscan += other.pruned_by_backscan;
  pruned_by_support += other.pruned_by_support;
  pruned_by_confidence += other.pruned_by_confidence;
  pruned_by_chi += other.pruned_by_chi;
  pruned_by_extension += other.pruned_by_extension;
  rows_absorbed += other.rows_absorbed;
  tasks_spawned += other.tasks_spawned;
  task_steals += other.task_steals;
  tasks_stolen += other.tasks_stolen;
  timed_out = timed_out || other.timed_out;
  if (simd_level.empty()) simd_level = other.simd_level;
}

std::string MinerStats::ToJson() const {
  auto field = [](const char* key, std::size_t value) {
    return "\"" + std::string(key) + "\": " + std::to_string(value);
  };
  char buf[64];
  std::string out = "{";
  out += field("nodes_visited", nodes_visited) + ", ";
  out += field("pruned_by_backscan", pruned_by_backscan) + ", ";
  out += field("pruned_by_support", pruned_by_support) + ", ";
  out += field("pruned_by_confidence", pruned_by_confidence) + ", ";
  out += field("pruned_by_chi", pruned_by_chi) + ", ";
  out += field("pruned_by_extension", pruned_by_extension) + ", ";
  out += field("rows_absorbed", rows_absorbed) + ", ";
  out += field("tasks_spawned", tasks_spawned) + ", ";
  out += field("task_steals", task_steals) + ", ";
  out += field("tasks_stolen", tasks_stolen) + ", ";
  std::snprintf(buf, sizeof(buf), "\"mine_seconds\": %.6g, ",
                mine_seconds);
  out += buf;
  std::snprintf(buf, sizeof(buf), "\"lower_bound_seconds\": %.6g, ",
                lower_bound_seconds);
  out += buf;
  out += std::string("\"timed_out\": ") + (timed_out ? "true" : "false");
  // Level names are fixed identifier tokens; no JSON escaping needed.
  out += ", \"simd_level\": \"" +
         std::string(simd_level.empty() ? simd::LevelName(simd::ActiveLevel())
                                        : simd_level.c_str()) +
         "\"";
  out += "}";
  return out;
}

}  // namespace farmer
