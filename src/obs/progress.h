#ifndef FARMER_OBS_PROGRESS_H_
#define FARMER_OBS_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "util/sync.h"
#include "util/timer.h"

namespace farmer {
namespace obs {

/// Live counters the miner publishes while a search is running. All
/// fields are relaxed atomics updated in batches (the miner flushes
/// deltas every few dozen enumeration nodes), so a sampler thread can
/// read a consistent-enough picture at any time without slowing the
/// search down. With MinerOptions::progress == nullptr none of these
/// atomics is ever touched.
struct ProgressCounters {
  std::atomic<std::uint64_t> nodes{0};
  std::atomic<std::uint64_t> groups{0};  // Live (pre-merge) group count.
  std::atomic<std::uint64_t> pruned_backscan{0};
  std::atomic<std::uint64_t> pruned_support{0};
  std::atomic<std::uint64_t> pruned_confidence{0};
  std::atomic<std::uint64_t> pruned_chi{0};
  std::atomic<std::uint64_t> pruned_extension{0};
  std::atomic<std::uint64_t> rows_absorbed{0};
  std::atomic<std::uint64_t> tasks_spawned{0};
  std::atomic<std::uint64_t> tasks_completed{0};
  std::atomic<std::uint64_t> minelb_done{0};    // Groups with bounds mined.
  std::atomic<std::uint64_t> max_depth{0};      // Deepest node so far.
  std::atomic<std::uint64_t> root_done{0};      // First-level branches done.
  std::atomic<std::uint64_t> root_total{0};     // First-level branch count.

  void RaiseMaxDepth(std::uint64_t depth) {
    std::uint64_t cur = max_depth.load(std::memory_order_relaxed);
    while (cur < depth &&
           !max_depth.compare_exchange_weak(cur, depth,
                                            std::memory_order_relaxed)) {
    }
  }
};

/// A deadline-aware background sampler: every `interval_seconds` it
/// formats one status line — nodes/sec, deepest frontier, per-strategy
/// pruning shares, live rule-group count, completion estimate, deadline
/// budget — and hands it to `sink` (default: one line on stderr).
///
/// The reporter owns its thread; Stop() (or destruction) joins it. It
/// only ever *reads* the counters, so it may outlive the mining call
/// that fed them but must not outlive the counters object itself.
class ProgressReporter {
 public:
  struct Options {
    double interval_seconds = 1.0;
    /// When set, each report includes the share of the time budget
    /// already spent.
    Deadline deadline;
    /// Receives each formatted report line (without trailing newline).
    /// Defaults to writing "line\n" to stderr.
    std::function<void(const std::string&)> sink;
  };

  ProgressReporter(const ProgressCounters* counters, Options options);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Emits one final report and joins the sampler thread. Idempotent.
  void Stop();

  /// Builds one report line from the current counter values. Public so
  /// tests (and one-shot callers) can sample without a thread.
  std::string FormatSample();

 private:
  void SamplerLoop();

  const ProgressCounters* counters_;
  Options options_;
  Stopwatch elapsed_;

  Mutex mutex_;
  CondVar wake_;
  // Rate window of the previous sample. Nominally sampler-thread state,
  // but FormatSample() is public (tests, one-shot callers) and Stop()
  // emits the final line from the caller's thread, so the window is
  // lock-protected rather than merely confined.
  std::uint64_t last_nodes_ FARMER_GUARDED_BY(mutex_) = 0;
  double last_elapsed_ FARMER_GUARDED_BY(mutex_) = 0.0;
  bool stopping_ FARMER_GUARDED_BY(mutex_) = false;
  bool stopped_ FARMER_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace farmer

#endif  // FARMER_OBS_PROGRESS_H_
