#ifndef FARMER_OBS_TRACE_H_
#define FARMER_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace farmer {
namespace obs {

/// Tracing facility for the mining pipeline: per-lane single-producer
/// event ring buffers plus a Chrome Trace Event Format exporter, so a
/// run's `--trace-out` JSON loads directly into chrome://tracing or
/// Perfetto.
///
/// Lane 0 is the control thread (dataset loading, MineLB, the
/// deterministic merge); lane w+1 is pool worker w. Each lane is written
/// by exactly one thread at a time, which keeps Push() lock-free and
/// wait-free; export happens after the pool has drained (Wait()
/// establishes the necessary happens-before edge).

/// One trace event. All strings must be string literals (or otherwise
/// outlive the session): events are POD-copied into the ring, never
/// allocated.
struct TraceEvent {
  const char* name = nullptr;
  char phase = 'i';        // 'X' complete span, 'i' instant.
  std::uint32_t lane = 0;
  std::uint64_t ts_ns = 0;   // Session-relative start time.
  std::uint64_t dur_ns = 0;  // 'X' only.
  const char* arg1_name = nullptr;
  std::int64_t arg1 = 0;
  const char* arg2_name = nullptr;
  std::int64_t arg2 = 0;
};

/// Fixed-capacity single-producer ring. Overflow overwrites the oldest
/// events — the newest window always survives — and the number of
/// overwritten (dropped) events is reported so truncated traces are
/// detectable instead of silently misleading.
class EventRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit EventRing(std::size_t capacity);

  /// Single-producer append; wait-free.
  void Push(const TraceEvent& e);

  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t pushed() const {
    return next_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    const std::uint64_t n = pushed();
    return n > slots_.size() ? n - slots_.size() : 0;
  }

  /// The surviving events, oldest first. Only valid when the producer
  /// is quiescent (e.g. after ThreadPool::Wait()).
  std::vector<TraceEvent> Snapshot() const;

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> next_{0};
};

/// A tracing session: one EventRing per lane plus the wall-clock origin
/// all timestamps are relative to.
class TraceSession {
 public:
  static constexpr std::size_t kMainLane = 0;
  static constexpr std::size_t kDefaultEventsPerLane = 1 << 16;

  /// `num_lanes` = 1 control lane + worker lanes; a session built for a
  /// run with T mining threads wants `num_lanes = T + 1`.
  explicit TraceSession(
      std::size_t num_lanes,
      std::size_t events_per_lane = kDefaultEventsPerLane);

  std::size_t num_lanes() const { return lanes_.size(); }

  /// Nanoseconds since the session began (steady clock).
  std::uint64_t NowNs() const;

  /// Appends `e` to its lane's ring (lane clamped into range). Must be
  /// the only producer on that lane at the time of the call.
  void Emit(const TraceEvent& e);

  /// Convenience: an instant event at now.
  void Instant(std::size_t lane, const char* name,
               const char* arg1_name = nullptr, std::int64_t arg1 = 0,
               const char* arg2_name = nullptr, std::int64_t arg2 = 0);

  /// Convenience: a complete span from `start_ns` (a prior NowNs()) to
  /// now.
  void EndSpan(std::size_t lane, const char* name, std::uint64_t start_ns,
               const char* arg1_name = nullptr, std::int64_t arg1 = 0,
               const char* arg2_name = nullptr, std::int64_t arg2 = 0);

  std::uint64_t total_dropped() const;
  const EventRing& ring(std::size_t lane) const { return *lanes_[lane]; }

  /// Chrome Trace Event Format: {"traceEvents": [...], ...}. Includes
  /// process/thread metadata events naming each lane and a
  /// "farmer_dropped_events" top-level field (ignored by viewers).
  /// Call only while no producer is active.
  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point origin_;
  std::vector<std::unique_ptr<EventRing>> lanes_;
};

/// RAII complete-span: records the start time on construction and emits
/// one 'X' event on destruction. A null session makes every operation a
/// no-op, so call sites need no branching of their own.
class ScopedSpan {
 public:
  ScopedSpan(TraceSession* session, std::size_t lane, const char* name)
      : session_(session), lane_(lane), name_(name),
        start_ns_(session != nullptr ? session->NowNs() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches up to two numeric args to the span (extra calls ignored).
  void Arg(const char* name, std::int64_t value) {
    if (arg1_name_ == nullptr) {
      arg1_name_ = name;
      arg1_ = value;
    } else if (arg2_name_ == nullptr) {
      arg2_name_ = name;
      arg2_ = value;
    }
  }

  ~ScopedSpan() {
    if (session_ != nullptr) {
      session_->EndSpan(lane_, name_, start_ns_, arg1_name_, arg1_,
                        arg2_name_, arg2_);
    }
  }

 private:
  TraceSession* session_;
  std::size_t lane_;
  const char* name_;
  std::uint64_t start_ns_;
  const char* arg1_name_ = nullptr;
  std::int64_t arg1_ = 0;
  const char* arg2_name_ = nullptr;
  std::int64_t arg2_ = 0;
};

/// ThreadPool observer that records successful steals as instant events
/// on the thief's lane (worker w -> lane w + 1), annotated with the
/// victim worker and the number of tasks transferred.
class TracingPoolObserver : public PoolObserver {
 public:
  explicit TracingPoolObserver(TraceSession* session)
      : session_(session) {}

  void OnSteal(std::size_t thief, std::size_t victim,
               std::size_t tasks_taken) override;

 private:
  TraceSession* session_;
};

}  // namespace obs
}  // namespace farmer

#endif  // FARMER_OBS_TRACE_H_
