#ifndef FARMER_OBS_EXPOSITION_H_
#define FARMER_OBS_EXPOSITION_H_

#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.h"

namespace farmer {
namespace obs {

/// Prometheus text exposition (format version 0.0.4) rendered from a
/// MetricsSnapshot, so a registry can be scraped live: the snapshot is
/// safe to take while every producer keeps updating, and rendering is
/// pure string work on the copy.
///
/// The registry keys metrics by a single flat name. Labeled series use
/// the composed form produced by LabeledName():
///
///   serve.op_latency_seconds{op="topk_confidence"}
///
/// The renderer splits that back into the metric family and its label
/// block, sanitizes both names into the Prometheus charset, groups all
/// series of one family under a single # HELP / # TYPE pair, and emits
/// histograms with cumulative `_bucket` lines, an `le="+Inf"` bucket,
/// and `_sum` / `_count` samples. The `+Inf` bucket and `_count` are
/// rendered from the same bucket total, so the invariant the format
/// requires holds even when the snapshot raced concurrent observers.

/// Maps `name` into [a-zA-Z_:][a-zA-Z0-9_:]*: every illegal byte
/// becomes '_', and a leading digit gets a '_' prefix.
std::string SanitizeMetricName(std::string_view name);

/// Like SanitizeMetricName but for label names, where ':' is illegal
/// too (it is reserved for recording rules).
std::string SanitizeLabelName(std::string_view name);

/// Escapes a label value for the text format: backslash, double quote
/// and newline become \\, \" and \n.
std::string EscapeLabelValue(std::string_view value);

/// One label as (name, value) string views.
using LabelView = std::pair<std::string_view, std::string_view>;

/// Composes the registry name for a labeled series:
///   LabeledName("serve.bytes_in", {{"shard", "0"}})
///     == "serve.bytes_in{shard=\"0\"}"
/// Label names are sanitized and values escaped here, so the renderer
/// can pass the block through verbatim.
std::string LabeledName(std::string_view base,
                        std::initializer_list<LabelView> labels);

/// Splits a registry name back into its family and raw label block
/// (the text between the braces; empty when the name is unlabeled).
void SplitLabeledName(std::string_view name, std::string* base,
                      std::string* labels);

/// Renders the whole snapshot as Prometheus text exposition. Counters
/// and gauges map to their native types; histograms emit cumulative
/// buckets. The output always ends with a newline.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// The Content-Type an HTTP exposition endpoint should declare.
inline constexpr char kExpositionContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace obs
}  // namespace farmer

#endif  // FARMER_OBS_EXPOSITION_H_
