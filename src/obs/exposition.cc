#include "obs/exposition.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <vector>

namespace farmer {
namespace obs {

namespace {

bool LegalFirst(char c, bool allow_colon) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         (allow_colon && c == ':');
}

bool LegalRest(char c, bool allow_colon) {
  return LegalFirst(c, allow_colon) || (c >= '0' && c <= '9');
}

std::string Sanitize(std::string_view name, bool allow_colon) {
  std::string out;
  out.reserve(name.size() + 1);
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (i == 0) {
      if (c >= '0' && c <= '9') out.push_back('_');
      out.push_back(LegalRest(c, allow_colon) ? c : '_');
    } else {
      out.push_back(LegalRest(c, allow_colon) ? c : '_');
    }
  }
  if (out.empty()) out = "_";
  return out;
}

/// Sample values. The format spells non-finite doubles out (unlike the
/// JSON exporters, which have no representation for them).
std::string Number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// HELP text: backslash and newline get escaped; the text is the raw
/// registry name, which documents where the sample came from.
std::string EscapeHelp(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// One series of a family: its raw label block plus an index into the
/// snapshot's per-kind vector.
struct Series {
  std::string labels;
  std::size_t index = 0;
};

/// Family key -> (raw base name of the first series seen, series list).
struct Family {
  std::string raw_base;
  std::vector<Series> series;
};

using FamilyMap = std::map<std::string, Family>;

template <typename Vec>
FamilyMap GroupFamilies(const Vec& entries) {
  FamilyMap families;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::string base;
    std::string labels;
    SplitLabeledName(entries[i].name, &base, &labels);
    Family& fam = families[SanitizeMetricName(base)];
    if (fam.series.empty()) fam.raw_base = base;
    fam.series.push_back(Series{std::move(labels), i});
  }
  return families;
}

void AppendHeader(const std::string& name, const Family& fam,
                  const char* type, std::string* out) {
  *out += "# HELP " + name + " " + EscapeHelp(fam.raw_base) + "\n";
  *out += "# TYPE " + name + " ";
  *out += type;
  *out += "\n";
}

/// `name{labels} value` (or `name value` when unlabeled).
void AppendSample(const std::string& name, const std::string& labels,
                  const std::string& value, std::string* out) {
  *out += name;
  if (!labels.empty()) *out += "{" + labels + "}";
  *out += " " + value + "\n";
}

/// Joins a series' label block with one extra label (`le` for
/// histogram buckets).
std::string WithLabel(const std::string& labels, const std::string& extra) {
  return labels.empty() ? extra : labels + "," + extra;
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  return Sanitize(name, /*allow_colon=*/true);
}

std::string SanitizeLabelName(std::string_view name) {
  return Sanitize(name, /*allow_colon=*/false);
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string LabeledName(std::string_view base,
                        std::initializer_list<LabelView> labels) {
  std::string out(base);
  if (labels.size() == 0) return out;
  out.push_back('{');
  bool first = true;
  for (const LabelView& label : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += SanitizeLabelName(label.first);
    out += "=\"";
    out += EscapeLabelValue(label.second);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

void SplitLabeledName(std::string_view name, std::string* base,
                      std::string* labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    base->assign(name);
    labels->clear();
    return;
  }
  base->assign(name.substr(0, brace));
  labels->assign(name.substr(brace + 1, name.size() - brace - 2));
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  // A family name may only carry one TYPE; collisions across kinds
  // (a counter and a gauge sanitizing to the same family) are a
  // registry bug, flagged as a comment rather than emitted as a
  // format violation.
  std::map<std::string, char> seen;
  const auto claim = [&seen, &out](const std::string& name) {
    if (seen.emplace(name, 'x').second) return true;
    out += "# farmer: skipped family '" + name + "' (type collision)\n";
    return false;
  };

  for (const auto& [name, fam] : GroupFamilies(snapshot.counters)) {
    if (!claim(name)) continue;
    AppendHeader(name, fam, "counter", &out);
    for (const Series& s : fam.series) {
      AppendSample(name, s.labels,
                   std::to_string(snapshot.counters[s.index].value), &out);
    }
  }
  for (const auto& [name, fam] : GroupFamilies(snapshot.gauges)) {
    if (!claim(name)) continue;
    AppendHeader(name, fam, "gauge", &out);
    for (const Series& s : fam.series) {
      AppendSample(name, s.labels, Number(snapshot.gauges[s.index].value),
                   &out);
    }
  }
  for (const auto& [name, fam] : GroupFamilies(snapshot.histograms)) {
    if (!claim(name)) continue;
    AppendHeader(name, fam, "histogram", &out);
    for (const Series& s : fam.series) {
      const MetricsSnapshot::HistogramValue& h =
          snapshot.histograms[s.index];
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bounds.size(); ++b) {
        cumulative += b < h.buckets.size() ? h.buckets[b] : 0;
        AppendSample(
            name + "_bucket",
            WithLabel(s.labels, "le=\"" + Number(h.bounds[b]) + "\""),
            std::to_string(cumulative), &out);
      }
      if (h.buckets.size() > h.bounds.size()) {
        cumulative += h.buckets[h.bounds.size()];
      }
      // +Inf and _count render the same bucket total: the format
      // requires them equal, and the histogram's own count field can
      // lag the buckets when the snapshot races an Observe().
      AppendSample(name + "_bucket", WithLabel(s.labels, "le=\"+Inf\""),
                   std::to_string(cumulative), &out);
      AppendSample(name + "_sum", s.labels, Number(h.sum), &out);
      AppendSample(name + "_count", s.labels, std::to_string(cumulative),
                   &out);
    }
  }
  return out;
}

}  // namespace obs
}  // namespace farmer
