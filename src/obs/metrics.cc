#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace farmer {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  FARMER_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  FARMER_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must ascend";
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void Histogram::Observe(double v) {
  // NaN fits no bucket and would poison the running sum forever; the
  // observation is dropped. Infinities are ordered, so they land in
  // the overflow (or first) bucket like any other out-of-range value.
  if (std::isnan(v)) return;
  // lower_bound makes the edges inclusive: Observe(b) lands in the
  // bucket whose upper edge is b, as documented in the header.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + v),
      std::memory_order_relaxed)) {
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = name;
    hv.bounds = h->bounds();
    hv.buckets.reserve(h->num_buckets());
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      hv.buckets.push_back(h->bucket_count(i));
    }
    hv.count = h->count();
    hv.sum = h->sum();
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i > 0 ? ",\n    " : "\n    ";
    out += '"' + JsonEscape(counters[i].name) +
           "\": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i > 0 ? ",\n    " : "\n    ";
    out += '"' + JsonEscape(gauges[i].name) +
           "\": " + JsonNumber(gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += i > 0 ? ",\n    " : "\n    ";
    out += '"' + JsonEscape(h.name) + "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += JsonNumber(h.bounds[b]);
    }
    out += "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.buckets[b]);
    }
    out += "], \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + JsonNumber(h.sum) + "}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace farmer
