#include "obs/progress.h"

#include <algorithm>
#include <cstdio>

namespace farmer {
namespace obs {

namespace {

// "1234", "12.3k", "4.5M" — keeps the status line narrow.
std::string Compact(std::uint64_t n) {
  char buf[32];
  if (n >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fM",
                  static_cast<double>(n) / 1e6);
  } else if (n >= 10'000) {
    std::snprintf(buf, sizeof(buf), "%.1fk",
                  static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(n));
  }
  return buf;
}

}  // namespace

ProgressReporter::ProgressReporter(const ProgressCounters* counters,
                                   Options options)
    : counters_(counters), options_(std::move(options)) {
  if (!options_.sink) {
    options_.sink = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
  if (options_.interval_seconds <= 0.0) options_.interval_seconds = 1.0;
  thread_ = std::thread([this] { SamplerLoop(); });
}

ProgressReporter::~ProgressReporter() { Stop(); }

void ProgressReporter::Stop() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    wake_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
  bool emit_final = false;
  {
    MutexLock lock(mutex_);
    if (!stopped_) {
      stopped_ = true;
      emit_final = true;
    }
  }
  // FormatSample() takes mutex_ itself, so emit outside the lock.
  if (emit_final) options_.sink(FormatSample());  // Final totals line.
}

void ProgressReporter::SamplerLoop() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      // One sampling tick: sleep out the interval unless Stop() fires
      // first (spurious wakeups just re-wait the remaining budget).
      const Deadline tick = Deadline::After(options_.interval_seconds);
      while (!stopping_) {
        const double left = tick.SecondsRemaining();
        if (left <= 0.0) break;
        wake_.WaitForSeconds(mutex_, left);
      }
      if (stopping_) {
        return;  // Stop() emits the final line after the join.
      }
    }
    // The sink runs unlocked: it may be arbitrarily slow (stderr on a
    // blocked pipe) and must not hold up Stop().
    options_.sink(FormatSample());
  }
}

std::string ProgressReporter::FormatSample() {
  const ProgressCounters& c = *counters_;
  const double elapsed = elapsed_.ElapsedSeconds();
  const std::uint64_t nodes = c.nodes.load(std::memory_order_relaxed);

  // Nodes/sec over the window since the previous sample (whole-run
  // average for the first one).
  double rate = 0.0;
  {
    MutexLock lock(mutex_);
    const double window = elapsed - last_elapsed_;
    if (window > 1e-9) {
      rate = static_cast<double>(nodes - last_nodes_) / window;
    }
    last_nodes_ = nodes;
    last_elapsed_ = elapsed;
  }

  const std::uint64_t pruned[5] = {
      c.pruned_backscan.load(std::memory_order_relaxed),
      c.pruned_support.load(std::memory_order_relaxed),
      c.pruned_confidence.load(std::memory_order_relaxed),
      c.pruned_chi.load(std::memory_order_relaxed),
      c.pruned_extension.load(std::memory_order_relaxed)};
  std::uint64_t visited = nodes;
  if (visited == 0) visited = 1;  // Shares of zero work are zero.

  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "[farmer %6.1fs] nodes %s (%s/s) depth %llu groups %s",
                elapsed, Compact(nodes).c_str(),
                Compact(static_cast<std::uint64_t>(rate)).c_str(),
                static_cast<unsigned long long>(
                    c.max_depth.load(std::memory_order_relaxed)),
                Compact(c.groups.load(std::memory_order_relaxed)).c_str());
  std::string line = buf;

  std::snprintf(buf, sizeof(buf),
                " | prune%% bs %.0f sup %.0f conf %.0f chi %.0f ext %.0f",
                100.0 * static_cast<double>(pruned[0]) /
                    static_cast<double>(visited),
                100.0 * static_cast<double>(pruned[1]) /
                    static_cast<double>(visited),
                100.0 * static_cast<double>(pruned[2]) /
                    static_cast<double>(visited),
                100.0 * static_cast<double>(pruned[3]) /
                    static_cast<double>(visited),
                100.0 * static_cast<double>(pruned[4]) /
                    static_cast<double>(visited));
  line += buf;

  const std::uint64_t spawned =
      c.tasks_spawned.load(std::memory_order_relaxed);
  if (spawned > 0) {
    std::snprintf(
        buf, sizeof(buf), " | tasks %llu/%llu",
        static_cast<unsigned long long>(
            c.tasks_completed.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(spawned));
    line += buf;
  }
  const std::uint64_t lb = c.minelb_done.load(std::memory_order_relaxed);
  if (lb > 0) {
    line += " | minelb " + Compact(lb);
  }

  // Completion estimate from first-level branch progress — crude (the
  // tree is skewed) but monotone and cheap. Task progress stands in
  // once the run has split into subtree tasks.
  const std::uint64_t root_total =
      c.root_total.load(std::memory_order_relaxed);
  const std::uint64_t root_done =
      c.root_done.load(std::memory_order_relaxed);
  double frac = 0.0;
  if (root_total > 0) {
    frac = static_cast<double>(root_done) /
           static_cast<double>(root_total);
  }
  if (spawned > 0) {
    const double task_frac =
        static_cast<double>(
            c.tasks_completed.load(std::memory_order_relaxed)) /
        static_cast<double>(spawned);
    frac = std::max(frac, task_frac);
  }
  if (frac > 0.0 && frac < 1.0) {
    std::snprintf(buf, sizeof(buf), " | ~%.0f%% eta %.0fs", 100.0 * frac,
                  elapsed * (1.0 - frac) / frac);
    line += buf;
  }

  if (options_.deadline.has_deadline()) {
    const double left = options_.deadline.SecondsRemaining();
    if (left <= 0.0) {
      line += " | budget EXPIRED";
    } else {
      std::snprintf(buf, sizeof(buf), " | budget %.0fs left", left);
      line += buf;
    }
  }
  return line;
}

}  // namespace obs
}  // namespace farmer
