#ifndef FARMER_OBS_METRICS_H_
#define FARMER_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/sync.h"

namespace farmer {
namespace obs {

/// Lock-free observability primitives for the mining pipeline.
///
/// A MetricsRegistry hands out named Counters, Gauges, and Histograms
/// with stable addresses: callers resolve the pointer once (under the
/// registry mutex) and then update it with plain relaxed atomics, so the
/// hot path never locks and never allocates. A Snapshot() can be taken
/// at any time — including while other threads keep updating — and
/// renders to JSON for the CLI's `--metrics-out` and the benches.

/// A monotonically increasing event count.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(std::uint64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A last-writer-wins double value (plus an atomic-max variant for
/// watermarks such as the deepest enumeration node seen).
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v),
                std::memory_order_relaxed);
  }

  /// Raises the gauge to `v` if `v` is larger than the current value.
  void SetMax(double v) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (std::bit_cast<double>(cur) < v &&
           !bits_.compare_exchange_weak(
               cur, std::bit_cast<std::uint64_t>(v),
               std::memory_order_relaxed)) {
    }
  }

  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of
/// the finite buckets; one overflow bucket catches everything above the
/// last bound. Observe() is two relaxed atomic adds plus a CAS loop for
/// the running sum — no locks, no allocation. NaN observations are
/// dropped (they fit no bucket and would poison the sum); -inf lands in
/// the first bucket, +inf in the overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  std::size_t num_buckets() const { return counts_.size(); }
  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const {
    return std::bit_cast<double>(
        sum_bits_.load(std::memory_order_relaxed));
  }
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;  // Ascending upper edges.
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds + overflow.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double bits, CAS-updated.
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries.
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::vector<CounterValue> counters;    // Sorted by name.
  std::vector<GaugeValue> gauges;        // Sorted by name.
  std::vector<HistogramValue> histograms;  // Sorted by name.

  /// Renders the snapshot as one JSON object:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  std::string ToJson() const;
};

/// Name -> metric directory. Registration locks; updates through the
/// returned pointers are lock-free. Metric objects live as long as the
/// registry, so cached pointers never dangle.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first
  /// use. Repeated calls with the same name return the same object.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);

  /// `bounds` must be non-empty and ascending; it is fixed on first
  /// registration and ignored on later lookups of the same name.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// Writes ToJson() to `path` (atomically enough for CI consumers:
  /// single write + close).
  Status WriteJsonFile(const std::string& path) const;

 private:
  mutable Mutex mutex_;
  // The maps are guarded; the metric objects they own are not (their
  // updates are lock-free by design — FARMER_PT_GUARDED_BY would be
  // wrong here, and is why the pointers may be cached by callers).
  std::map<std::string, std::unique_ptr<Counter>> counters_
      FARMER_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      FARMER_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      FARMER_GUARDED_BY(mutex_);
};

/// Shared JSON-string escaping for the obs exporters (metrics + trace).
std::string JsonEscape(const std::string& s);

/// Formats a double the way the obs JSON exporters do: shortest form
/// that round-trips reasonably ("%.17g" is overkill for telemetry).
std::string JsonNumber(double v);

}  // namespace obs
}  // namespace farmer

#endif  // FARMER_OBS_METRICS_H_
