#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"
#include "util/check.h"

namespace farmer {
namespace obs {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EventRing::EventRing(std::size_t capacity)
    : slots_(RoundUpPow2(std::max<std::size_t>(2, capacity))) {}

void EventRing::Push(const TraceEvent& e) {
  // Single producer: the relaxed load/store pair on next_ is a plain
  // increment from the producer's point of view; readers only run after
  // an external synchronization point (pool drain / thread join).
  const std::uint64_t i = next_.load(std::memory_order_relaxed);
  slots_[i & (slots_.size() - 1)] = e;
  next_.store(i + 1, std::memory_order_release);
}

std::vector<TraceEvent> EventRing::Snapshot() const {
  const std::uint64_t n = next_.load(std::memory_order_acquire);
  const std::uint64_t kept = std::min<std::uint64_t>(n, slots_.size());
  std::vector<TraceEvent> out;
  out.reserve(kept);
  for (std::uint64_t i = n - kept; i < n; ++i) {
    out.push_back(slots_[i & (slots_.size() - 1)]);
  }
  return out;
}

TraceSession::TraceSession(std::size_t num_lanes,
                           std::size_t events_per_lane)
    : origin_(std::chrono::steady_clock::now()) {
  FARMER_CHECK(num_lanes > 0) << "a trace session needs at least one lane";
  lanes_.reserve(num_lanes);
  for (std::size_t i = 0; i < num_lanes; ++i) {
    lanes_.push_back(std::make_unique<EventRing>(events_per_lane));
  }
}

std::uint64_t TraceSession::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void TraceSession::Emit(const TraceEvent& e) {
  const std::size_t lane = std::min<std::size_t>(e.lane, num_lanes() - 1);
  lanes_[lane]->Push(e);
}

void TraceSession::Instant(std::size_t lane, const char* name,
                           const char* arg1_name, std::int64_t arg1,
                           const char* arg2_name, std::int64_t arg2) {
  TraceEvent e;
  e.name = name;
  e.phase = 'i';
  e.lane = static_cast<std::uint32_t>(lane);
  e.ts_ns = NowNs();
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  Emit(e);
}

void TraceSession::EndSpan(std::size_t lane, const char* name,
                           std::uint64_t start_ns, const char* arg1_name,
                           std::int64_t arg1, const char* arg2_name,
                           std::int64_t arg2) {
  TraceEvent e;
  e.name = name;
  e.phase = 'X';
  e.lane = static_cast<std::uint32_t>(lane);
  e.ts_ns = start_ns;
  const std::uint64_t now = NowNs();
  e.dur_ns = now > start_ns ? now - start_ns : 0;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  Emit(e);
}

std::uint64_t TraceSession::total_dropped() const {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->dropped();
  return total;
}

namespace {

// One Chrome Trace Event Format object. Timestamps are microseconds
// (the format's unit); fractional digits keep nanosecond precision.
void AppendEventJson(const TraceEvent& e, std::string* out) {
  char buf[64];
  *out += "{\"name\": \"";
  *out += JsonEscape(e.name != nullptr ? e.name : "?");
  *out += "\", \"cat\": \"farmer\", \"ph\": \"";
  *out += e.phase;
  std::snprintf(buf, sizeof(buf), "\", \"ts\": %.3f",
                static_cast<double>(e.ts_ns) / 1000.0);
  *out += buf;
  if (e.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    *out += buf;
  }
  if (e.phase == 'i') *out += ", \"s\": \"t\"";  // Thread-scoped instant.
  std::snprintf(buf, sizeof(buf), ", \"pid\": 1, \"tid\": %u", e.lane);
  *out += buf;
  if (e.arg1_name != nullptr || e.arg2_name != nullptr) {
    *out += ", \"args\": {";
    if (e.arg1_name != nullptr) {
      *out += '"' + JsonEscape(e.arg1_name) +
              "\": " + std::to_string(e.arg1);
    }
    if (e.arg2_name != nullptr) {
      if (e.arg1_name != nullptr) *out += ", ";
      *out += '"' + JsonEscape(e.arg2_name) +
              "\": " + std::to_string(e.arg2);
    }
    *out += "}";
  }
  *out += "}";
}

void AppendMetadataJson(const char* name, std::size_t tid,
                        const std::string& value, std::string* out) {
  *out += "{\"name\": \"";
  *out += name;
  *out += "\", \"ph\": \"M\", \"pid\": 1, \"tid\": ";
  *out += std::to_string(tid);
  *out += ", \"args\": {\"name\": \"" + JsonEscape(value) + "\"}}";
}

}  // namespace

std::string TraceSession::ToJson() const {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&first, &out]() {
    if (!first) out += ",\n";
    first = false;
    out += "  ";
  };
  sep();
  AppendMetadataJson("process_name", 0, "farmer", &out);
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    sep();
    AppendMetadataJson(
        "thread_name", lane,
        lane == kMainLane ? "main" : "worker-" + std::to_string(lane - 1),
        &out);
  }
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    for (const TraceEvent& e : lanes_[lane]->Snapshot()) {
      sep();
      AppendEventJson(e, &out);
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"farmer_dropped_events\": " +
         std::to_string(total_dropped()) + "}\n";
  return out;
}

Status TraceSession::WriteJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

void TracingPoolObserver::OnSteal(std::size_t thief, std::size_t victim,
                                  std::size_t tasks_taken) {
  session_->Instant(thief + 1, "steal", "victim",
                    static_cast<std::int64_t>(victim), "tasks",
                    static_cast<std::int64_t>(tasks_taken));
}

}  // namespace obs
}  // namespace farmer
