#ifndef FARMER_DATASET_DATASET_H_
#define FARMER_DATASET_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dataset/types.h"
#include "util/status.h"

namespace farmer {

/// A labeled binary transaction dataset: each row is a sorted set of items
/// plus a class label.
///
/// This is the input format of every miner in the library. For microarray
/// data, rows are samples and items are discretized gene intervals (see
/// `discretize.h`). Item ids are dense in [0, num_items()).
class BinaryDataset {
 public:
  BinaryDataset() = default;

  /// Creates an empty dataset over `num_items` items.
  explicit BinaryDataset(std::size_t num_items) : num_items_(num_items) {}

  /// Appends a row. `items` must be sorted and duplicate-free with every id
  /// < num_items(); enforced in debug builds and by Validate().
  void AddRow(ItemVector items, ClassLabel label);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_items() const { return num_items_; }

  /// Raises the item universe to at least `num_items`.
  void set_num_items(std::size_t num_items) {
    if (num_items > num_items_) num_items_ = num_items;
  }

  /// The items of row `r`, sorted ascending.
  const ItemVector& row(RowId r) const { return rows_[r]; }

  /// The class label of row `r`.
  ClassLabel label(RowId r) const { return labels_[r]; }

  /// All labels, indexed by row.
  const std::vector<ClassLabel>& labels() const { return labels_; }

  /// Number of rows carrying `label`.
  std::size_t CountLabel(ClassLabel label) const;

  /// Number of distinct labels present (max label + 1; 0 when empty).
  std::size_t num_classes() const;

  /// True when row `r` contains item `i` (binary search).
  bool RowContains(RowId r, ItemId i) const;

  /// Mean number of items per row.
  double AverageRowLength() const;

  /// Checks structural invariants: sorted duplicate-free rows, item ids in
  /// range. Returns the first violation found.
  Status Validate() const;

  /// Stable FNV-1a digest of the dataset contents (item universe, rows,
  /// labels; item names excluded). The serving snapshot stores it as the
  /// dataset fingerprint so a rule store can be matched back to the data
  /// it was mined from.
  std::uint64_t ContentHash() const;

  /// Optional human-readable item names (for rule printing). Either empty
  /// or exactly num_items() entries.
  const std::vector<std::string>& item_names() const { return item_names_; }
  void set_item_names(std::vector<std::string> names) {
    item_names_ = std::move(names);
  }

  /// Name of item `i`: the configured name, or "i<index>".
  std::string ItemName(ItemId i) const;

 private:
  std::size_t num_items_ = 0;
  std::vector<ItemVector> rows_;
  std::vector<ClassLabel> labels_;
  std::vector<std::string> item_names_;
};

/// A row permutation that places all rows labeled `consequent` before all
/// other rows — the order `ORD` FARMER's pruning bounds require.
///
/// `order[new_pos] = old_row`, `inverse[old_row] = new_pos`.
struct RowOrder {
  std::vector<RowId> order;
  std::vector<RowId> inverse;
  /// Number of rows labeled with the consequent (they occupy positions
  /// [0, num_positive) in the new order).
  std::size_t num_positive = 0;
};

/// Computes the consequent-first row order for `dataset`.
RowOrder OrderRowsByConsequent(const BinaryDataset& dataset,
                               ClassLabel consequent);

/// Returns `dataset` with its rows permuted by `order`.
BinaryDataset PermuteRows(const BinaryDataset& dataset, const RowOrder& order);

/// Returns `dataset` with every row duplicated `factor` times (the paper's
/// §4.1 row-scaling experiment). `factor` must be >= 1.
BinaryDataset ReplicateRows(const BinaryDataset& dataset, std::size_t factor);

}  // namespace farmer

#endif  // FARMER_DATASET_DATASET_H_
