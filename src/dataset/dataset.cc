#include "dataset/dataset.h"

#include <algorithm>

#include "util/check.h"

namespace farmer {

void BinaryDataset::AddRow(ItemVector items, ClassLabel label) {
  FARMER_DCHECK(std::is_sorted(items.begin(), items.end()));
  FARMER_DCHECK(std::adjacent_find(items.begin(), items.end()) ==
                items.end());
  FARMER_CHECK(items.empty() || items.back() < num_items_)
      << "item id " << (items.empty() ? 0 : items.back())
      << " out of range for universe of " << num_items_;
  rows_.push_back(std::move(items));
  labels_.push_back(label);
}

std::size_t BinaryDataset::CountLabel(ClassLabel label) const {
  return static_cast<std::size_t>(
      std::count(labels_.begin(), labels_.end(), label));
}

std::size_t BinaryDataset::num_classes() const {
  if (labels_.empty()) return 0;
  return static_cast<std::size_t>(
             *std::max_element(labels_.begin(), labels_.end())) +
         1;
}

bool BinaryDataset::RowContains(RowId r, ItemId i) const {
  const ItemVector& items = rows_[r];
  return std::binary_search(items.begin(), items.end(), i);
}

double BinaryDataset::AverageRowLength() const {
  if (rows_.empty()) return 0.0;
  std::size_t total = 0;
  for (const ItemVector& row : rows_) total += row.size();
  return static_cast<double>(total) / static_cast<double>(rows_.size());
}

Status BinaryDataset::Validate() const {
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const ItemVector& items = rows_[r];
    if (!std::is_sorted(items.begin(), items.end())) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     " is not sorted");
    }
    if (std::adjacent_find(items.begin(), items.end()) != items.end()) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     " has duplicate items");
    }
    if (!items.empty() && items.back() >= num_items_) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     " has item id out of range");
    }
  }
  if (!item_names_.empty() && item_names_.size() != num_items_) {
    return Status::InvalidArgument("item_names size mismatch");
  }
  return Status::Ok();
}

std::uint64_t BinaryDataset::ContentHash() const {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xFFu;
      h *= kPrime;
    }
  };
  mix(num_items_);
  mix(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    mix(static_cast<std::uint64_t>(labels_[r]));
    mix(rows_[r].size());
    for (ItemId i : rows_[r]) mix(i);
  }
  return h;
}

std::string BinaryDataset::ItemName(ItemId i) const {
  if (i < item_names_.size()) return item_names_[i];
  return "i" + std::to_string(i);
}

RowOrder OrderRowsByConsequent(const BinaryDataset& dataset,
                               ClassLabel consequent) {
  RowOrder out;
  const std::size_t n = dataset.num_rows();
  out.order.reserve(n);
  out.inverse.assign(n, 0);
  for (RowId r = 0; r < n; ++r) {
    if (dataset.label(r) == consequent) out.order.push_back(r);
  }
  out.num_positive = out.order.size();
  for (RowId r = 0; r < n; ++r) {
    if (dataset.label(r) != consequent) out.order.push_back(r);
  }
  for (std::size_t pos = 0; pos < n; ++pos) {
    out.inverse[out.order[pos]] = static_cast<RowId>(pos);
  }
  return out;
}

BinaryDataset PermuteRows(const BinaryDataset& dataset, const RowOrder& order) {
  BinaryDataset out(dataset.num_items());
  for (RowId r : order.order) {
    out.AddRow(dataset.row(r), dataset.label(r));
  }
  out.set_item_names(dataset.item_names());
  return out;
}

BinaryDataset ReplicateRows(const BinaryDataset& dataset, std::size_t factor) {
  FARMER_CHECK(factor >= 1);
  BinaryDataset out(dataset.num_items());
  for (std::size_t k = 0; k < factor; ++k) {
    for (RowId r = 0; r < dataset.num_rows(); ++r) {
      out.AddRow(dataset.row(r), dataset.label(r));
    }
  }
  out.set_item_names(dataset.item_names());
  return out;
}

}  // namespace farmer
