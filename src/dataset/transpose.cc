#include "dataset/transpose.h"

#include <algorithm>

namespace farmer {

TransposedTable TransposedTable::Build(const BinaryDataset& dataset) {
  TransposedTable tt;
  tt.num_rows_ = dataset.num_rows();
  tt.tuples_.assign(dataset.num_items(), RowVector{});
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    for (ItemId i : dataset.row(r)) {
      tt.tuples_[i].push_back(r);
    }
  }
  // Rows are visited in ascending order, so tuples are already sorted.
  return tt;
}

std::vector<ItemId> TransposedTable::ItemsByTupleLength() const {
  std::vector<ItemId> items;
  items.reserve(tuples_.size());
  for (ItemId i = 0; i < tuples_.size(); ++i) {
    if (!tuples_[i].empty()) items.push_back(i);
  }
  std::stable_sort(items.begin(), items.end(), [this](ItemId a, ItemId b) {
    return tuples_[a].size() < tuples_[b].size();
  });
  return items;
}

}  // namespace farmer
