#include "dataset/expression_matrix.h"

#include <algorithm>

namespace farmer {

std::size_t ExpressionMatrix::CountLabel(ClassLabel label) const {
  return static_cast<std::size_t>(
      std::count(labels_.begin(), labels_.end(), label));
}

std::string ExpressionMatrix::GeneName(std::size_t g) const {
  if (g < gene_names_.size()) return gene_names_[g];
  return "g" + std::to_string(g);
}

ExpressionMatrix ExpressionMatrix::SelectRows(
    const std::vector<std::size_t>& rows) const {
  ExpressionMatrix out(rows.size(), num_genes_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t src = rows[i];
    std::copy(row_data(src), row_data(src) + num_genes_,
              out.values_.data() + i * num_genes_);
    out.labels_[i] = labels_[src];
  }
  out.gene_names_ = gene_names_;
  out.class_names_ = class_names_;
  return out;
}

}  // namespace farmer
