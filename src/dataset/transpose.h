#ifndef FARMER_DATASET_TRANSPOSE_H_
#define FARMER_DATASET_TRANSPOSE_H_

#include <cstddef>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/types.h"

namespace farmer {

/// The transposed view of a BinaryDataset: one tuple per item listing the
/// rows that contain it (the table `TT` of the paper, Figure 1(b)).
///
/// Row ids inside tuples are sorted ascending; the caller is expected to
/// have permuted rows into the consequent-first order `ORD` beforehand
/// (see OrderRowsByConsequent), so ascending row id == ascending ORD rank.
class TransposedTable {
 public:
  TransposedTable() = default;

  /// Builds the transposed table of `dataset`.
  static TransposedTable Build(const BinaryDataset& dataset);

  std::size_t num_items() const { return tuples_.size(); }
  std::size_t num_rows() const { return num_rows_; }

  /// The sorted row ids containing item `i`.
  const RowVector& tuple(ItemId i) const { return tuples_[i]; }

  /// Items sorted by ascending tuple length (useful for intersection-order
  /// heuristics); empty tuples excluded.
  std::vector<ItemId> ItemsByTupleLength() const;

 private:
  std::size_t num_rows_ = 0;
  std::vector<RowVector> tuples_;
};

}  // namespace farmer

#endif  // FARMER_DATASET_TRANSPOSE_H_
