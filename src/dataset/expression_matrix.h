#ifndef FARMER_DATASET_EXPRESSION_MATRIX_H_
#define FARMER_DATASET_EXPRESSION_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dataset/types.h"
#include "util/status.h"

namespace farmer {

/// A real-valued gene expression matrix: `num_rows` samples ×
/// `num_genes` expression levels, plus one class label per sample.
///
/// This is the raw form of a microarray dataset before discretization.
/// Values are stored row-major.
class ExpressionMatrix {
 public:
  ExpressionMatrix() = default;

  /// Creates a zero matrix of the given shape.
  ExpressionMatrix(std::size_t num_rows, std::size_t num_genes)
      : num_rows_(num_rows),
        num_genes_(num_genes),
        values_(num_rows * num_genes, 0.0),
        labels_(num_rows, 0) {}

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_genes() const { return num_genes_; }

  double at(std::size_t row, std::size_t gene) const {
    return values_[row * num_genes_ + gene];
  }
  double& at(std::size_t row, std::size_t gene) {
    return values_[row * num_genes_ + gene];
  }

  ClassLabel label(std::size_t row) const { return labels_[row]; }
  void set_label(std::size_t row, ClassLabel label) { labels_[row] = label; }
  const std::vector<ClassLabel>& labels() const { return labels_; }

  /// Number of rows carrying `label`.
  std::size_t CountLabel(ClassLabel label) const;

  /// Pointer to the start of row `row` (num_genes() doubles).
  const double* row_data(std::size_t row) const {
    return values_.data() + row * num_genes_;
  }

  /// Optional gene names; either empty or num_genes() entries.
  const std::vector<std::string>& gene_names() const { return gene_names_; }
  void set_gene_names(std::vector<std::string> names) {
    gene_names_ = std::move(names);
  }

  /// Name of gene `g`: the configured name, or "g<index>".
  std::string GeneName(std::size_t g) const;

  /// Optional class names indexed by label value.
  const std::vector<std::string>& class_names() const { return class_names_; }
  void set_class_names(std::vector<std::string> names) {
    class_names_ = std::move(names);
  }

  /// Copies the selected rows into a new matrix (used for train/test
  /// splits). Row indices must be valid.
  ExpressionMatrix SelectRows(const std::vector<std::size_t>& rows) const;

 private:
  std::size_t num_rows_ = 0;
  std::size_t num_genes_ = 0;
  std::vector<double> values_;
  std::vector<ClassLabel> labels_;
  std::vector<std::string> gene_names_;
  std::vector<std::string> class_names_;
};

}  // namespace farmer

#endif  // FARMER_DATASET_EXPRESSION_MATRIX_H_
