#include "dataset/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.h"
#include "util/rng.h"

namespace farmer {

ExpressionMatrix GenerateSynthetic(const SyntheticSpec& spec) {
  FARMER_CHECK(spec.num_class1 <= spec.num_rows)
      << spec.num_class1 << " class-1 rows in " << spec.num_rows;
  FARMER_CHECK(spec.num_clusters >= 1);
  ExpressionMatrix m(spec.num_rows, spec.num_genes);
  Rng rng(spec.seed);

  // Labels: interleaved so downstream code cannot rely on input order.
  std::vector<ClassLabel> labels(spec.num_rows, 0);
  {
    std::vector<std::size_t> idx(spec.num_rows);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (std::size_t i = idx.size(); i > 1; --i) {
      std::swap(idx[i - 1], idx[rng.NextBelow(i)]);
    }
    for (std::size_t i = 0; i < spec.num_class1; ++i) labels[idx[i]] = 1;
  }
  for (std::size_t r = 0; r < spec.num_rows; ++r) m.set_label(r, labels[r]);

  // Clusters: the first half belongs to class 0, the second to class 1
  // (at least one each). A row picks a cluster of its own class with
  // probability cluster_purity, otherwise uniformly.
  const std::size_t k = std::max<std::size_t>(2, spec.num_clusters);
  const std::size_t class1_start = std::max<std::size_t>(1, k / 2);
  std::vector<std::size_t> cluster_of(spec.num_rows);
  for (std::size_t r = 0; r < spec.num_rows; ++r) {
    const bool own_class = rng.NextBool(spec.cluster_purity);
    std::size_t c;
    if (!own_class) {
      c = rng.NextBelow(k);
    } else if (labels[r] == 1) {
      c = class1_start + rng.NextBelow(k - class1_start);
    } else {
      c = rng.NextBelow(class1_start);
    }
    cluster_of[r] = c;
  }

  // Per-sample intensity bias (global brightness of the sample).
  std::vector<double> row_bias(spec.num_rows);
  for (std::size_t r = 0; r < spec.num_rows; ++r) {
    row_bias[r] = rng.NextGaussian();
  }

  // Per-gene cluster levels: informative genes carry one level in
  // {-shift, 0, +shift} per cluster; noise genes carry none. Every gene
  // also has a sensitivity to the sample intensity bias.
  // Differentially expressed genes: a fixed count spread evenly across
  // the matrix, their class means differing by `shift`.
  std::vector<double> class_dir(spec.num_genes, 0.0);
  if (spec.num_class_genes > 0 && spec.num_genes > 0) {
    const std::size_t count =
        std::min(spec.num_class_genes, spec.num_genes);
    const std::size_t stride = std::max<std::size_t>(
        1, spec.num_genes / count);
    for (std::size_t i = 0; i < count; ++i) {
      class_dir[(i * stride) % spec.num_genes] =
          rng.NextBool(0.5) ? 1.0 : -1.0;
    }
  }

  std::vector<double> levels(k);
  for (std::size_t g = 0; g < spec.num_genes; ++g) {
    const bool informative = rng.NextBool(spec.p_informative);
    for (std::size_t c = 0; c < k; ++c) {
      levels[c] = informative
                      ? spec.shift * static_cast<double>(rng.NextInt(-1, 1))
                      : 0.0;
    }
    const double sensitivity = 0.5 + rng.NextDouble();  // U[0.5, 1.5).
    for (std::size_t r = 0; r < spec.num_rows; ++r) {
      const double class_term =
          class_dir[g] * spec.shift * (labels[r] == 1 ? 0.5 : -0.5);
      m.at(r, g) = levels[cluster_of[r]] + class_term +
                   spec.row_effect * sensitivity * row_bias[r] +
                   spec.noise_sigma * rng.NextGaussian();
    }
  }

  m.set_class_names({spec.name + "/class0", spec.name + "/class1"});
  return m;
}

SyntheticSpec PaperDatasetSpec(const std::string& name, double column_scale) {
  SyntheticSpec spec;
  spec.name = name;
  // cluster_purity / p_informative / row_effect are calibrated per
  // dataset to the difficulty the paper's Table 2 exhibits: relapse
  // prediction on BC was genuinely hard (best classifier 78.9%, SVM below
  // chance), while LC and ALL were nearly saturated.
  if (name == "BC") {  // Breast cancer: relapse vs non-relapse.
    spec.num_rows = 97;
    spec.num_genes = 24481;
    spec.num_class1 = 46;
    spec.cluster_purity = 0.58;
    spec.p_informative = 0.35;
    spec.num_class_genes = 1;
    spec.row_effect = 1.8;
    spec.seed = 101;
  } else if (name == "LC") {  // Lung cancer: MPM vs ADCA.
    spec.num_rows = 181;
    spec.num_genes = 12533;
    spec.num_class1 = 31;
    spec.cluster_purity = 0.95;
    spec.p_informative = 0.6;
    spec.num_class_genes = 15;
    spec.seed = 102;
  } else if (name == "CT") {  // Colon tumor: negative vs positive.
    spec.num_rows = 62;
    spec.num_genes = 2000;
    spec.num_class1 = 40;
    spec.cluster_purity = 0.85;
    spec.num_class_genes = 4;
    spec.seed = 103;
  } else if (name == "PC") {  // Prostate cancer: tumor vs normal.
    spec.num_rows = 136;
    spec.num_genes = 12600;
    spec.num_class1 = 52;
    spec.cluster_purity = 0.85;
    spec.num_class_genes = 3;
    spec.seed = 104;
  } else if (name == "ALL") {  // Leukemia: ALL vs AML.
    spec.num_rows = 72;
    spec.num_genes = 7129;
    spec.num_class1 = 47;
    spec.cluster_purity = 0.9;
    spec.num_class_genes = 12;
    spec.seed = 105;
  } else {
    throw std::invalid_argument("unknown paper dataset: " + name);
  }
  spec.num_genes = std::max<std::size_t>(
      32, static_cast<std::size_t>(
              std::llround(static_cast<double>(spec.num_genes) *
                           column_scale)));
  // About one cluster per dozen samples, at least 4.
  spec.num_clusters = std::max<std::size_t>(4, spec.num_rows / 12);
  return spec;
}

const std::vector<std::string>& PaperDatasetNames() {
  static const std::vector<std::string> kNames = {"BC", "LC", "CT", "PC",
                                                  "ALL"};
  return kNames;
}

void ApplyBatchEffect(ExpressionMatrix* matrix, double sigma,
                      std::uint64_t seed) {
  if (sigma <= 0.0) return;
  Rng rng(seed);
  for (std::size_t g = 0; g < matrix->num_genes(); ++g) {
    const double offset = sigma * rng.NextGaussian();
    for (std::size_t r = 0; r < matrix->num_rows(); ++r) {
      matrix->at(r, g) += offset;
    }
  }
}

double PaperBatchSigma(const std::string& name) {
  if (name == "BC") return 2.5;   // Different patient cohorts.
  if (name == "LC") return 0.05;
  if (name == "CT") return 0.4;
  if (name == "PC") return 0.8;
  if (name == "ALL") return 0.5;
  throw std::invalid_argument("unknown paper dataset: " + name);
}

TrainTestSizes PaperSplitSizes(const std::string& name) {
  if (name == "BC") return {78, 19};
  if (name == "LC") return {32, 149};
  if (name == "CT") return {47, 15};
  if (name == "PC") return {102, 34};
  if (name == "ALL") return {38, 34};
  throw std::invalid_argument("unknown paper dataset: " + name);
}

}  // namespace farmer
