#include "dataset/io.h"

#include <algorithm>
#include <cerrno>
#include <istream>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace farmer {

namespace {

// Splits `line` on commas; no quoting support (the formats we define never
// need it).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) out.push_back(field);
  if (!line.empty() && line.back() == ',') out.emplace_back();
  return out;
}

bool ParseDouble(const std::string& s, double* out) {
  errno = 0;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return errno == 0 && end != s.c_str() && *end == '\0';
}

bool ParseUnsigned(const std::string& s, unsigned long* out) {
  errno = 0;
  char* end = nullptr;
  *out = std::strtoul(s.c_str(), &end, 10);
  return errno == 0 && end != s.c_str() && *end == '\0';
}

}  // namespace

Status LoadExpressionCsv(const std::string& path, ExpressionMatrix* out) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return LoadExpressionCsv(in, path, out);
}

Status LoadExpressionCsv(std::istream& in, const std::string& name,
                         ExpressionMatrix* out) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(name + ": empty file");
  }
  std::vector<std::string> header = SplitCsv(line);
  if (header.empty() || header[0] != "class") {
    return Status::InvalidArgument(name + ": header must start with 'class'");
  }
  const std::size_t num_genes = header.size() - 1;
  std::vector<std::string> gene_names(header.begin() + 1, header.end());

  std::vector<ClassLabel> labels;
  std::vector<double> values;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsv(line);
    if (fields.size() != num_genes + 1) {
      return Status::InvalidArgument(name + ":" + std::to_string(line_no) +
                                     ": expected " +
                                     std::to_string(num_genes + 1) +
                                     " fields, got " +
                                     std::to_string(fields.size()));
    }
    unsigned long label = 0;
    if (!ParseUnsigned(fields[0], &label) || label > 255) {
      return Status::InvalidArgument(name + ":" + std::to_string(line_no) +
                                     ": bad class label '" + fields[0] + "'");
    }
    labels.push_back(static_cast<ClassLabel>(label));
    for (std::size_t g = 0; g < num_genes; ++g) {
      double v = 0.0;
      if (!ParseDouble(fields[g + 1], &v)) {
        return Status::InvalidArgument(name + ":" + std::to_string(line_no) +
                                       ": bad value '" + fields[g + 1] + "'");
      }
      values.push_back(v);
    }
  }

  ExpressionMatrix m(labels.size(), num_genes);
  for (std::size_t r = 0; r < labels.size(); ++r) {
    m.set_label(r, labels[r]);
    for (std::size_t g = 0; g < num_genes; ++g) {
      m.at(r, g) = values[r * num_genes + g];
    }
  }
  m.set_gene_names(std::move(gene_names));
  *out = std::move(m);
  return Status::Ok();
}

Status SaveExpressionCsv(const ExpressionMatrix& matrix,
                         const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IoError("cannot open " + path + " for writing");
  os << "class";
  for (std::size_t g = 0; g < matrix.num_genes(); ++g) {
    os << ',' << matrix.GeneName(g);
  }
  os << '\n';
  os.precision(9);
  for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
    os << static_cast<unsigned>(matrix.label(r));
    for (std::size_t g = 0; g < matrix.num_genes(); ++g) {
      os << ',' << matrix.at(r, g);
    }
    os << '\n';
  }
  if (!os) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status LoadTransactions(const std::string& path, BinaryDataset* out) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return LoadTransactions(in, path, out);
}

Status LoadTransactions(std::istream& in, const std::string& name,
                        BinaryDataset* out) {
  BinaryDataset ds;
  std::string line;
  std::size_t line_no = 0;
  std::size_t declared_items = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    if (line.rfind("#items ", 0) == 0) {
      unsigned long n = 0;
      if (!ParseUnsigned(line.substr(7), &n)) {
        return Status::InvalidArgument(name + ":" + std::to_string(line_no) +
                                       ": bad #items directive");
      }
      if (n > kMaxTransactionItems) {
        return Status::InvalidArgument(
            name + ":" + std::to_string(line_no) + ": #items " +
            std::to_string(n) + " exceeds the cap of " +
            std::to_string(kMaxTransactionItems));
      }
      declared_items = n;
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(name + ":" + std::to_string(line_no) +
                                     ": missing ':' separator");
    }
    unsigned long label = 0;
    if (!ParseUnsigned(line.substr(0, colon), &label) || label > 255) {
      return Status::InvalidArgument(name + ":" + std::to_string(line_no) +
                                     ": bad class label");
    }
    ItemVector items;
    std::istringstream is(line.substr(colon + 1));
    std::string tok;
    while (is >> tok) {
      unsigned long item = 0;
      if (!ParseUnsigned(tok, &item)) {
        return Status::InvalidArgument(name + ":" + std::to_string(line_no) +
                                       ": bad item '" + tok + "'");
      }
      if (item >= kMaxTransactionItems) {
        return Status::InvalidArgument(name + ":" + std::to_string(line_no) +
                                       ": item id " + tok +
                                       " exceeds the cap of " +
                                       std::to_string(kMaxTransactionItems));
      }
      items.push_back(static_cast<ItemId>(item));
    }
    std::sort(items.begin(), items.end());
    if (std::adjacent_find(items.begin(), items.end()) != items.end()) {
      return Status::InvalidArgument(name + ":" + std::to_string(line_no) +
                                     ": duplicate item in row");
    }
    if (!items.empty()) {
      ds.set_num_items(static_cast<std::size_t>(items.back()) + 1);
    }
    ds.AddRow(std::move(items), static_cast<ClassLabel>(label));
  }
  ds.set_num_items(declared_items);
  Status s = ds.Validate();
  if (!s.ok()) return s;
  *out = std::move(ds);
  return Status::Ok();
}

Status SaveTransactions(const BinaryDataset& dataset,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IoError("cannot open " + path + " for writing");
  os << "#items " << dataset.num_items() << '\n';
  for (RowId r = 0; r < dataset.num_rows(); ++r) {
    os << static_cast<unsigned>(dataset.label(r)) << ':';
    for (ItemId i : dataset.row(r)) os << ' ' << i;
    os << '\n';
  }
  if (!os) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace farmer
