#ifndef FARMER_DATASET_SYNTHETIC_H_
#define FARMER_DATASET_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dataset/expression_matrix.h"

namespace farmer {

/// Parameters of the synthetic microarray generator.
///
/// The generator substitutes for the paper's five clinical datasets (whose
/// distribution URLs are dead; see DESIGN.md §3). It uses a latent
/// sample-cluster model that reproduces the two structural properties the
/// paper's experiments hinge on:
///
///  * **Pervasive inter-sample correlation.** Real microarray samples
///    cluster by tissue subtype, so two same-cluster samples agree on the
///    discretized level of *hundreds* of genes. Any subset of those shared
///    items is a frequent itemset — this is what makes the column
///    enumeration space (2^items) explode while the row enumeration space
///    (2^rows) stays small.
///  * **Class-correlated structure.** Clusters are biased towards one
///    class (`cluster_purity`), so cluster-marker item combinations form
///    high-confidence rules for the class consequent.
///
/// Each cluster-informative gene gets an independent per-cluster level in
/// {-shift, 0, +shift}; samples draw their gene values from their
/// cluster's levels plus Gaussian noise.
struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t num_rows = 100;
  std::size_t num_genes = 1000;
  /// Rows labeled class 1 (the mined consequent); the rest are class 0.
  std::size_t num_class1 = 50;
  /// Number of latent sample clusters (split between the classes).
  std::size_t num_clusters = 8;
  /// Probability a row's cluster is one of its own class's clusters.
  double cluster_purity = 0.85;
  /// Probability a gene is cluster-informative (carries per-cluster
  /// levels); the rest are pure noise.
  double p_informative = 0.5;
  /// Number of directly *class*-informative genes: their means differ
  /// between the classes by `shift` (differentially expressed genes, the
  /// signal classifiers and entropy discretization feed on). An absolute
  /// count — real datasets have a few dozen marker genes regardless of
  /// array size — spread evenly across the matrix.
  std::size_t num_class_genes = 10;
  /// Magnitude of the per-cluster expression levels.
  double shift = 2.5;
  /// Strength of the per-sample intensity effect (microarray samples have
  /// global brightness differences; a strongly biased sample lands in
  /// extreme buckets across most genes, which is what produces the long
  /// frequent itemsets that defeat column enumeration).
  double row_effect = 1.5;
  /// Standard deviation of the per-sample noise.
  double noise_sigma = 0.8;
  std::uint64_t seed = 1;
};

/// Generates an expression matrix according to `spec`. Deterministic in
/// `spec.seed`.
ExpressionMatrix GenerateSynthetic(const SyntheticSpec& spec);

/// The five datasets of the paper's Table 1 (shape only; content is
/// synthetic). `name` is one of "BC", "LC", "CT", "PC", "ALL".
///
/// `column_scale` scales the gene count: 1.0 reproduces the paper's column
/// counts (24481 for BC, ...), smaller values give faster bench runs while
/// preserving the rows ≪ columns regime. Row counts and class balance are
/// always exact.
SyntheticSpec PaperDatasetSpec(const std::string& name, double column_scale);

/// Names of all five paper datasets, in the paper's order.
const std::vector<std::string>& PaperDatasetNames();

/// Train/test split sizes used in the paper's Table 2 for `name`
/// (e.g. BC: 78 train / 19 test).
struct TrainTestSizes {
  std::size_t train = 0;
  std::size_t test = 0;
};
TrainTestSizes PaperSplitSizes(const std::string& name);

/// Adds a per-gene batch offset ~ N(0, sigma) to every row of `matrix` —
/// the cohort/batch shift real microarray studies exhibit between
/// independently collected folds (the van't Veer breast-cancer test set
/// being the canonical example). Deterministic in `seed`.
void ApplyBatchEffect(ExpressionMatrix* matrix, double sigma,
                      std::uint64_t seed);

/// Batch-shift strength between the paper's train and test folds for
/// `name` (large for BC, small elsewhere; see DESIGN.md §3).
double PaperBatchSigma(const std::string& name);

}  // namespace farmer

#endif  // FARMER_DATASET_SYNTHETIC_H_
