#include "dataset/discretize.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace farmer {

namespace {

// One (value, label) observation of a gene, sorted by value while fitting.
struct Obs {
  double value;
  ClassLabel label;
};

// Class histogram over obs[begin, end).
std::vector<std::size_t> CountClasses(const std::vector<Obs>& obs,
                                      std::size_t begin, std::size_t end,
                                      std::size_t num_classes) {
  std::vector<std::size_t> counts(num_classes, 0);
  for (std::size_t i = begin; i < end; ++i) ++counts[obs[i].label];
  return counts;
}

std::size_t DistinctClasses(const std::vector<std::size_t>& counts) {
  std::size_t k = 0;
  for (std::size_t c : counts) {
    if (c > 0) ++k;
  }
  return k;
}

// Recursive Fayyad–Irani MDL partitioning of obs[begin, end), appending
// accepted cut values to `cuts`.
void MdlPartition(const std::vector<Obs>& obs, std::size_t begin,
                  std::size_t end, std::size_t num_classes,
                  std::vector<double>* cuts) {
  const std::size_t n = end - begin;
  if (n < 2) return;

  const std::vector<std::size_t> total = CountClasses(obs, begin, end,
                                                      num_classes);
  const double ent_s = ClassEntropy(total);
  if (ent_s == 0.0) return;  // Pure already.

  // Scan boundary candidates: positions where the value changes. Maintain
  // left-side class counts incrementally.
  std::vector<std::size_t> left(num_classes, 0);
  std::vector<std::size_t> best_left;
  double best_score = -1.0;
  std::size_t best_pos = 0;  // Split between best_pos-1 and best_pos.
  std::vector<std::size_t> running(num_classes, 0);
  for (std::size_t i = begin; i + 1 < end; ++i) {
    ++running[obs[i].label];
    if (obs[i].value == obs[i + 1].value) continue;
    const std::size_t n1 = i + 1 - begin;
    const std::size_t n2 = end - i - 1;
    std::vector<std::size_t> right(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
      right[c] = total[c] - running[c];
    }
    const double e1 = ClassEntropy(running);
    const double e2 = ClassEntropy(right);
    const double weighted =
        (static_cast<double>(n1) * e1 + static_cast<double>(n2) * e2) /
        static_cast<double>(n);
    const double gain = ent_s - weighted;
    if (gain > best_score) {
      best_score = gain;
      best_pos = i + 1;
      best_left = running;
    }
  }
  if (best_score <= 0.0) return;  // No boundary found (constant values).

  // MDL acceptance test. Only the entropies of the two sides enter the
  // criterion; their sizes already went into best_score's weighting.
  std::vector<std::size_t> right(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    right[c] = total[c] - best_left[c];
  }
  const double e1 = ClassEntropy(best_left);
  const double e2 = ClassEntropy(right);
  const double k = static_cast<double>(DistinctClasses(total));
  const double k1 = static_cast<double>(DistinctClasses(best_left));
  const double k2 = static_cast<double>(DistinctClasses(right));
  const double delta = std::log2(std::pow(3.0, k) - 2.0) -
                       (k * ent_s - k1 * e1 - k2 * e2);
  const double threshold =
      (std::log2(static_cast<double>(n) - 1.0) + delta) /
      static_cast<double>(n);
  if (best_score <= threshold) return;

  // Cut midway between the adjacent distinct values.
  const double cut =
      0.5 * (obs[best_pos - 1].value + obs[best_pos].value);
  MdlPartition(obs, begin, best_pos, num_classes, cuts);
  cuts->push_back(cut);
  MdlPartition(obs, best_pos, end, num_classes, cuts);
}

}  // namespace

double ClassEntropy(const std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double ent = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    ent -= p * std::log2(p);
  }
  return ent;
}

Discretization Discretization::FitEqualDepth(const ExpressionMatrix& matrix,
                                             int buckets) {
  FARMER_CHECK(buckets >= 1) << "buckets=" << buckets;
  Discretization d;
  const std::size_t n = matrix.num_rows();
  d.cuts_.resize(matrix.num_genes());
  std::vector<double> column(n);
  for (std::size_t g = 0; g < matrix.num_genes(); ++g) {
    for (std::size_t r = 0; r < n; ++r) column[r] = matrix.at(r, g);
    std::sort(column.begin(), column.end());
    std::vector<double>& cuts = d.cuts_[g];
    for (int b = 1; b < buckets; ++b) {
      const std::size_t idx = (n * static_cast<std::size_t>(b)) /
                              static_cast<std::size_t>(buckets);
      if (idx == 0 || idx >= n) continue;
      const double cut = column[idx];
      // Skip degenerate cuts: a cut equal to the minimum puts nothing below
      // it; duplicates collapse.
      if (cut <= column.front()) continue;
      if (!cuts.empty() && cut <= cuts.back()) continue;
      cuts.push_back(cut);
    }
  }
  d.BuildItemIndex(/*keep_single_bin=*/true);
  return d;
}

Discretization Discretization::FitEntropyMdl(const ExpressionMatrix& matrix) {
  Discretization d;
  const std::size_t n = matrix.num_rows();
  const std::size_t num_classes =
      matrix.num_rows() == 0
          ? 0
          : static_cast<std::size_t>(*std::max_element(
                matrix.labels().begin(), matrix.labels().end())) +
                1;
  d.cuts_.resize(matrix.num_genes());
  std::vector<Obs> obs(n);
  for (std::size_t g = 0; g < matrix.num_genes(); ++g) {
    for (std::size_t r = 0; r < n; ++r) {
      obs[r] = Obs{matrix.at(r, g), matrix.label(r)};
    }
    std::sort(obs.begin(), obs.end(),
              [](const Obs& a, const Obs& b) { return a.value < b.value; });
    MdlPartition(obs, 0, n, num_classes, &d.cuts_[g]);
    std::sort(d.cuts_[g].begin(), d.cuts_[g].end());
  }
  d.BuildItemIndex(/*keep_single_bin=*/false);
  return d;
}

void Discretization::BuildItemIndex(bool keep_single_bin) {
  std::vector<bool> kept(cuts_.size());
  for (std::size_t g = 0; g < cuts_.size(); ++g) {
    kept[g] = !cuts_[g].empty() || keep_single_bin;
  }
  BuildItemIndexKept(kept);
}

void Discretization::BuildItemIndexKept(const std::vector<bool>& kept) {
  base_.assign(cuts_.size(), kNoItem);
  item_gene_.clear();
  item_bin_.clear();
  ItemId next = 0;
  for (std::size_t g = 0; g < cuts_.size(); ++g) {
    if (!kept[g]) continue;
    const std::size_t bins = cuts_[g].size() + 1;
    base_[g] = next;
    for (std::size_t b = 0; b < bins; ++b) {
      item_gene_.push_back(static_cast<std::uint32_t>(g));
      item_bin_.push_back(static_cast<std::uint32_t>(b));
    }
    next += static_cast<ItemId>(bins);
  }
  num_items_ = next;
}

ItemId Discretization::ItemFor(std::size_t g, double value) const {
  if (base_[g] == kNoItem) return kNoItem;
  const std::vector<double>& cuts = cuts_[g];
  const std::size_t bin = static_cast<std::size_t>(
      std::upper_bound(cuts.begin(), cuts.end(), value) - cuts.begin());
  return base_[g] + static_cast<ItemId>(bin);
}

BinaryDataset Discretization::Apply(const ExpressionMatrix& matrix) const {
  FARMER_CHECK(matrix.num_genes() == cuts_.size())
      << "matrix has " << matrix.num_genes()
      << " genes but the discretization was fitted on " << cuts_.size();
  BinaryDataset out(num_items_);
  for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
    ItemVector items;
    items.reserve(matrix.num_genes());
    for (std::size_t g = 0; g < matrix.num_genes(); ++g) {
      const ItemId item = ItemFor(g, matrix.at(r, g));
      if (item != kNoItem) items.push_back(item);
    }
    // Items are emitted in gene order and bases ascend, so already sorted.
    out.AddRow(std::move(items), matrix.label(r));
  }
  return out;
}

std::size_t Discretization::num_kept_genes() const {
  std::size_t kept = 0;
  for (ItemId b : base_) {
    if (b != kNoItem) ++kept;
  }
  return kept;
}

Status Discretization::Save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return Status::IoError("cannot open " + path + " for writing");
  os << "farmer-cuts v1 " << cuts_.size() << '\n';
  os.precision(17);
  for (std::size_t g = 0; g < cuts_.size(); ++g) {
    os << "gene " << g << ' '
       << (base_[g] == kNoItem ? "dropped" : "kept");
    for (double c : cuts_[g]) os << ' ' << c;
    os << '\n';
  }
  if (!os) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status Discretization::Load(const std::string& path, Discretization* out) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(path + ": empty file");
  }
  std::istringstream header(line);
  std::string magic, version;
  std::size_t num_genes = 0;
  header >> magic >> version >> num_genes;
  if (magic != "farmer-cuts" || version != "v1" || header.fail()) {
    return Status::InvalidArgument(path + ": bad header '" + line + "'");
  }
  Discretization d;
  d.cuts_.assign(num_genes, {});
  std::vector<bool> kept(num_genes, false);
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string tag, keep_word;
    std::size_t g = 0;
    is >> tag >> g >> keep_word;
    if (tag != "gene" || is.fail() || g >= num_genes ||
        (keep_word != "kept" && keep_word != "dropped")) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": bad gene record");
    }
    kept[g] = keep_word == "kept";
    double cut = 0.0;
    std::vector<double>& cuts = d.cuts_[g];
    while (is >> cut) {
      if (!cuts.empty() && cut <= cuts.back()) {
        return Status::InvalidArgument(
            path + ":" + std::to_string(line_no) + ": cuts not ascending");
      }
      cuts.push_back(cut);
    }
  }
  d.BuildItemIndexKept(kept);
  *out = std::move(d);
  return Status::Ok();
}

std::vector<std::string> Discretization::MakeItemNames(
    const ExpressionMatrix& matrix) const {
  std::vector<std::string> names(num_items_);
  for (ItemId i = 0; i < num_items_; ++i) {
    const std::size_t g = item_gene_[i];
    const std::size_t b = item_bin_[i];
    const std::vector<double>& cuts = cuts_[g];
    std::ostringstream os;
    os << matrix.GeneName(g) << ':';
    if (b == 0) {
      os << "(-inf,";
    } else {
      os << '[' << cuts[b - 1] << ',';
    }
    if (b == cuts.size()) {
      os << "+inf)";
    } else {
      os << cuts[b] << ')';
    }
    names[i] = os.str();
  }
  return names;
}

}  // namespace farmer
