#ifndef FARMER_DATASET_TYPES_H_
#define FARMER_DATASET_TYPES_H_

#include <cstdint>
#include <vector>

namespace farmer {

/// Index of a row (sample) in a dataset. Microarray datasets have at most a
/// few thousand rows, so 32 bits are ample.
using RowId = std::uint32_t;

/// Index of a binary item (a discretized gene interval).
using ItemId = std::uint32_t;

/// Class label of a row. The miners treat one label as the consequent `C`
/// and everything else as `¬C`, so any small integer domain works.
using ClassLabel = std::uint8_t;

/// A row's itemset: sorted, duplicate-free item ids.
using ItemVector = std::vector<ItemId>;

/// A set of rows as sorted, duplicate-free row ids.
using RowVector = std::vector<RowId>;

}  // namespace farmer

#endif  // FARMER_DATASET_TYPES_H_
