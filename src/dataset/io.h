#ifndef FARMER_DATASET_IO_H_
#define FARMER_DATASET_IO_H_

#include <cstddef>
#include <iosfwd>
#include <string>

#include "dataset/dataset.h"
#include "dataset/expression_matrix.h"
#include "util/status.h"

namespace farmer {

/// Hard cap on the item universe a transaction file may declare (via
/// `#items` or its largest item id). Parsers reject anything larger with
/// InvalidArgument before any proportional allocation happens, so a
/// hostile 20-byte file cannot demand gigabytes. Microarray datasets top
/// out around 10^5 discretized intervals; 2^26 leaves two orders of
/// magnitude of headroom.
inline constexpr std::size_t kMaxTransactionItems = std::size_t{1} << 26;

/// Loads an expression matrix from CSV.
///
/// Expected layout: a header line `class,<gene>,<gene>,...` followed by one
/// line per sample: `<label>,<value>,...`. Labels are small non-negative
/// integers. Returns InvalidArgument/IoError on malformed input.
Status LoadExpressionCsv(const std::string& path, ExpressionMatrix* out);

/// Stream variant of LoadExpressionCsv; `name` labels error messages.
/// Never crashes on malformed input — every parse failure is a Status
/// (the fuzz harnesses drive this entry point directly).
Status LoadExpressionCsv(std::istream& in, const std::string& name,
                         ExpressionMatrix* out);

/// Writes `matrix` in the format LoadExpressionCsv reads.
Status SaveExpressionCsv(const ExpressionMatrix& matrix,
                         const std::string& path);

/// Loads a labeled transaction dataset.
///
/// One line per row: `<label>: <item> <item> ...` with integer item ids
/// (any order; duplicates rejected). The item universe is
/// `max item id + 1` unless a larger universe is implied by a leading
/// `#items <n>` directive line; both are capped at kMaxTransactionItems.
Status LoadTransactions(const std::string& path, BinaryDataset* out);

/// Stream variant of LoadTransactions; `name` labels error messages.
Status LoadTransactions(std::istream& in, const std::string& name,
                        BinaryDataset* out);

/// Writes `dataset` in the format LoadTransactions reads.
Status SaveTransactions(const BinaryDataset& dataset, const std::string& path);

}  // namespace farmer

#endif  // FARMER_DATASET_IO_H_
