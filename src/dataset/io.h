#ifndef FARMER_DATASET_IO_H_
#define FARMER_DATASET_IO_H_

#include <string>

#include "dataset/dataset.h"
#include "dataset/expression_matrix.h"
#include "util/status.h"

namespace farmer {

/// Loads an expression matrix from CSV.
///
/// Expected layout: a header line `class,<gene>,<gene>,...` followed by one
/// line per sample: `<label>,<value>,...`. Labels are small non-negative
/// integers. Returns InvalidArgument/IoError on malformed input.
Status LoadExpressionCsv(const std::string& path, ExpressionMatrix* out);

/// Writes `matrix` in the format LoadExpressionCsv reads.
Status SaveExpressionCsv(const ExpressionMatrix& matrix,
                         const std::string& path);

/// Loads a labeled transaction dataset.
///
/// One line per row: `<label>: <item> <item> ...` with integer item ids
/// (any order; duplicates rejected). The item universe is
/// `max item id + 1` unless a larger universe is implied by a leading
/// `#items <n>` directive line.
Status LoadTransactions(const std::string& path, BinaryDataset* out);

/// Writes `dataset` in the format LoadTransactions reads.
Status SaveTransactions(const BinaryDataset& dataset, const std::string& path);

}  // namespace farmer

#endif  // FARMER_DATASET_IO_H_
