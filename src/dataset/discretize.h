#ifndef FARMER_DATASET_DISCRETIZE_H_
#define FARMER_DATASET_DISCRETIZE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/expression_matrix.h"
#include "dataset/types.h"

namespace farmer {

/// A per-gene interval discretization mapping real expression levels to
/// binary items.
///
/// For gene `g` with cut points `c_1 < ... < c_k`, values fall into bins
/// `(-inf,c_1), [c_1,c_2), ..., [c_k,+inf)`, and each (gene, bin) pair is a
/// distinct item. Genes may carry zero cut points; whether such single-bin
/// genes emit an item is decided at fit time (equal-depth keeps them,
/// entropy-MDL drops them as uninformative, matching common practice).
///
/// The same fitted Discretization must be applied to both the training and
/// the test matrix so that item ids agree — this is why fitting and applying
/// are separate steps.
class Discretization {
 public:
  /// Fits equal-depth (equi-frequency) cut points with `buckets` buckets per
  /// gene, the scheme the paper uses for the efficiency experiments
  /// (10 buckets). Duplicate quantile values collapse, so a gene can end up
  /// with fewer than `buckets` bins.
  static Discretization FitEqualDepth(const ExpressionMatrix& matrix,
                                      int buckets);

  /// Fits Fayyad–Irani entropy-minimized cut points with the MDL stopping
  /// criterion, the scheme the paper uses for the classification
  /// experiments. Uses the labels in `matrix`. Genes where MDL accepts no
  /// cut are dropped (they emit no items).
  static Discretization FitEntropyMdl(const ExpressionMatrix& matrix);

  /// Maps every row of `matrix` to its itemset. `matrix` must have the same
  /// gene count the discretization was fitted on.
  BinaryDataset Apply(const ExpressionMatrix& matrix) const;

  /// Total number of items (bins across all kept genes).
  std::size_t num_items() const { return num_items_; }

  /// Number of genes that emit at least one item.
  std::size_t num_kept_genes() const;

  /// Cut points of gene `g`, ascending (empty for single-bin genes).
  const std::vector<double>& cuts(std::size_t g) const { return cuts_[g]; }

  /// Item id for `value` of gene `g`, or `kNoItem` when the gene is dropped.
  static constexpr ItemId kNoItem = static_cast<ItemId>(-1);
  ItemId ItemFor(std::size_t g, double value) const;

  /// The gene a given item belongs to.
  std::size_t GeneOfItem(ItemId item) const { return item_gene_[item]; }

  /// The bin index (within its gene) of a given item.
  std::size_t BinOfItem(ItemId item) const { return item_bin_[item]; }

  /// Human-readable names like "g12:[0.35,1.2)" for every item, using
  /// `matrix`'s gene names.
  std::vector<std::string> MakeItemNames(const ExpressionMatrix& matrix) const;

  /// Persists the fitted cut points (and which genes emit items) so the
  /// same item universe can be applied in another process.
  Status Save(const std::string& path) const;

  /// Loads a discretization written by Save().
  static Status Load(const std::string& path, Discretization* out);

 private:
  // Assigns item ids from the fitted cuts. `keep_single_bin` controls
  // whether genes without cut points emit an item.
  void BuildItemIndex(bool keep_single_bin);

  // Assigns item ids with an explicit per-gene keep decision (Load path).
  void BuildItemIndexKept(const std::vector<bool>& kept);

  std::vector<std::vector<double>> cuts_;  // per gene, ascending
  // base_[g]: first item id of gene g, or kNoItem when the gene is dropped.
  std::vector<ItemId> base_;
  std::vector<std::uint32_t> item_gene_;  // per item: owning gene
  std::vector<std::uint32_t> item_bin_;   // per item: bin within the gene
  std::size_t num_items_ = 0;
};

/// Entropy (base 2) of a class histogram. Exposed for tests.
double ClassEntropy(const std::vector<std::size_t>& counts);

}  // namespace farmer

#endif  // FARMER_DATASET_DISCRETIZE_H_
