#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace farmer {
namespace serve {
namespace {

// Receive/send timeout on connection sockets. Handlers wake at this
// cadence to poll the stop flag, which bounds how long Shutdown() can
// block on an idle connection or a non-reading peer.
constexpr int kIoTimeoutMs = 100;

// A send() that makes no progress for this many timeout ticks in a row
// is talking to a dead or non-reading peer (full TCP window); the
// connection is dropped rather than blocking a worker indefinitely.
constexpr int kMaxSendStalls = 50;  // 5 s at 100 ms ticks.

// Latency buckets, seconds: 10us .. 1s plus overflow.
std::vector<double> LatencyBounds() {
  return {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0};
}

// Writes all of `data` to `fd`, retrying partial writes and EINTR.
// Returns false when the peer is gone. MSG_NOSIGNAL keeps a dead peer
// from raising SIGPIPE and killing the process. The socket's
// SO_SNDTIMEO turns a blocked send into an EAGAIN tick, at which the
// writer re-checks `stopping` and gives up on peers that have made no
// progress for kMaxSendStalls ticks — so neither a stalled client nor
// Shutdown() can leave a worker stuck in send() forever.
bool SendAll(int fd, const std::string& data,
             const std::atomic<bool>& stopping) {
  std::size_t sent = 0;
  int stalls = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (stopping.load(std::memory_order_acquire)) return false;
        if (++stalls >= kMaxSendStalls) return false;
        continue;
      }
      return false;
    }
    stalls = 0;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool SendLine(int fd, std::string line, const std::atomic<bool>& stopping) {
  line.push_back('\n');
  return SendAll(fd, line, stopping);
}

// Bounds both directions of socket I/O so handlers can poll the stop
// flag: recv() wakes to notice shutdown and the idle deadline, send()
// wakes to notice shutdown and dead peers.
void SetIoTimeouts(int fd) {
  timeval tv;
  tv.tv_sec = kIoTimeoutMs / 1000;
  tv.tv_usec = (kIoTimeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

const char* SpanName(QueryRequest::Op op) {
  switch (op) {
    case QueryRequest::Op::kPing:
      return "serve.ping";
    case QueryRequest::Op::kStats:
      return "serve.stats";
    case QueryRequest::Op::kTopkConfidence:
    case QueryRequest::Op::kTopkChiSquare:
      return "serve.topk";
    case QueryRequest::Op::kContains:
      return "serve.contains";
    case QueryRequest::Op::kCover:
      return "serve.cover";
    case QueryRequest::Op::kFilter:
      return "serve.filter";
  }
  return "serve.request";
}

}  // namespace

Server::Server(RuleGroupIndex index, const Options& options)
    : index_(std::move(index)),
      options_(options),
      cache_(options.cache_entries, options.cache_bytes) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_connections == 0) options_.max_connections = 1;
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    metrics_.requests = m->GetCounter("serve.requests");
    metrics_.responses_ok = m->GetCounter("serve.responses_ok");
    metrics_.responses_error = m->GetCounter("serve.responses_error");
    metrics_.cache_hits = m->GetCounter("serve.cache_hits");
    metrics_.cache_misses = m->GetCounter("serve.cache_misses");
    metrics_.overloaded = m->GetCounter("serve.overloaded");
    metrics_.deadline_exceeded = m->GetCounter("serve.deadline_exceeded");
    metrics_.active_connections = m->GetGauge("serve.active_connections");
    metrics_.latency =
        m->GetHistogram("serve.latency_seconds", LatencyBounds());
  }
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket(): " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind(): " + err);
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen(): " + err);
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname(): " + err);
  }
  port_ = ntohs(bound.sin_port);

  stopping_.store(false, std::memory_order_release);
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_.store(true, std::memory_order_release);
  return Status::Ok();
}

void Server::Shutdown() {
  // Serialized: concurrent Shutdown() calls (say, a signal-driven stop
  // racing the destructor) must not both join the accept thread.
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (!started_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock the accept() call with shutdown() rather than close(): a
  // close here could race a new accept on a reused fd number. The real
  // close happens after the accept thread is gone.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // In-flight handlers notice stopping_ within one I/O timeout tick —
  // whether they are blocked in recv() or in send() to a non-reading
  // peer — finish the request they are on, and return; Wait() drains
  // them all.
  pool_->Wait();
  pool_.reset();
  started_.store(false, std::memory_order_release);
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed or broken: stop accepting. Shutdown() handles
      // the rest.
      break;
    }
    SetIoTimeouts(fd);
    if (stopping_.load(std::memory_order_acquire)) {
      SendLine(fd, RenderError("shutting_down", "server is shutting down"),
               stopping_);
      ::close(fd);
      break;
    }

    // Admission control. The count is reserved here (before the task is
    // queued) and released when the handler finishes, so queued-but-not-
    // started connections occupy a slot too.
    std::size_t active = active_connections_.load(std::memory_order_relaxed);
    bool admitted = false;
    while (active < options_.max_connections) {
      if (active_connections_.compare_exchange_weak(
              active, active + 1, std::memory_order_relaxed)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.overloaded != nullptr) metrics_.overloaded->Increment();
      SendLine(fd, RenderError("overloaded", "connection limit reached"),
               stopping_);
      ::close(fd);
      continue;
    }
    if (metrics_.active_connections != nullptr) {
      metrics_.active_connections->Set(static_cast<double>(
          active_connections_.load(std::memory_order_relaxed)));
    }

    pool_->Submit([this, fd](std::size_t worker_id) {
      HandleConnection(fd, worker_id);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      if (metrics_.active_connections != nullptr) {
        metrics_.active_connections->Set(static_cast<double>(
            active_connections_.load(std::memory_order_relaxed)));
      }
    });
  }
}

void Server::HandleConnection(int fd, std::size_t worker_id) {
  // Timeouts (set at accept) double as the stop-flag polling interval.
  // The idle deadline is reset only when a complete request line is
  // processed, so a slow-loris peer trickling bytes of a never-finished
  // line cannot hold its admission slot past the bound.
  Deadline idle = Deadline::After(options_.idle_timeout_s);
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive && !stopping_.load(std::memory_order_acquire)) {
    if (idle.ExpiredNow()) {
      SendLine(fd, RenderError("idle_timeout", "connection idle too long"),
               stopping_);
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;  // Timeout tick: re-check the stop flag and deadline.
      }
      break;
    }
    if (n == 0) break;  // Peer closed.
    buffer.append(chunk, static_cast<std::size_t>(n));

    // Drain every complete line currently buffered.
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!SendLine(fd, ProcessRequest(line, worker_id), stopping_)) {
        alive = false;
        break;
      }
    }
    if (start > 0) {
      buffer.erase(0, start);
      idle = Deadline::After(options_.idle_timeout_s);
    }

    // A line longer than the request cap can never become valid; reject
    // it and drop the connection rather than buffering without bound.
    if (buffer.size() > kMaxRequestBytes) {
      SendLine(fd, RenderError("bad_request", "request line too long"),
               stopping_);
      break;
    }
  }
  ::close(fd);
}

std::string Server::ProcessRequest(const std::string& line,
                                   std::size_t worker_id) {
  Stopwatch watch;
  if (metrics_.requests != nullptr) metrics_.requests->Increment();

  QueryRequest request;
  const Status parsed = ParseRequest(line, &request);
  if (!parsed.ok()) {
    if (metrics_.responses_error != nullptr) {
      metrics_.responses_error->Increment();
    }
    return RenderError("bad_request", parsed.message());
  }

  obs::ScopedSpan span(options_.trace, worker_id + 1, SpanName(request.op));

  // The request's own budget only ever tightens the server default.
  double budget_s = options_.default_deadline_s;
  if (request.deadline_ms > 0 &&
      request.deadline_ms / 1000.0 < budget_s) {
    budget_s = request.deadline_ms / 1000.0;
  }
  const Deadline deadline = Deadline::After(budget_s);

  std::string response;
  bool is_error = false;
  bool cache_hit = false;
  const bool cacheable = IsCacheable(request);
  std::string key;
  if (cacheable) {
    key = CanonicalKey(request);
    std::string payload;
    if (cache_.Get(key, &payload)) {
      cache_hit = true;
      if (metrics_.cache_hits != nullptr) metrics_.cache_hits->Increment();
      response = FinishResponse(payload, /*cached=*/true, request.id);
    } else if (metrics_.cache_misses != nullptr) {
      metrics_.cache_misses->Increment();
    }
  }

  if (!cache_hit) {
    const std::string payload = ExecuteQuery(request, deadline, &is_error);
    if (is_error) {
      response = payload;  // Already a complete error line.
    } else {
      if (cacheable) cache_.Put(key, payload);
      response = FinishResponse(payload, /*cached=*/false, request.id);
    }
  }

  if (metrics_.latency != nullptr) {
    metrics_.latency->Observe(watch.ElapsedSeconds());
  }
  if (is_error) {
    if (metrics_.responses_error != nullptr) {
      metrics_.responses_error->Increment();
    }
  } else if (metrics_.responses_ok != nullptr) {
    metrics_.responses_ok->Increment();
  }
  span.Arg("cached", cache_hit ? 1 : 0);
  return response;
}

std::string Server::ExecuteQuery(const QueryRequest& request,
                                 const Deadline& deadline, bool* is_error) {
  *is_error = false;
  if (deadline.ExpiredNow()) {
    if (metrics_.deadline_exceeded != nullptr) {
      metrics_.deadline_exceeded->Increment();
    }
    *is_error = true;
    return RenderError("deadline_exceeded", "deadline expired before query",
                       request.id);
  }

  std::vector<std::uint32_t> ids;
  switch (request.op) {
    case QueryRequest::Op::kPing:
      return RenderPingPayload(request);
    case QueryRequest::Op::kStats:
      return RenderStatsPayload(request, index_);
    case QueryRequest::Op::kTopkConfidence:
      ids = index_.TopKByConfidence(request.k);
      break;
    case QueryRequest::Op::kTopkChiSquare:
      ids = index_.TopKByChiSquare(request.k);
      break;
    case QueryRequest::Op::kContains:
      ids = index_.AntecedentContains(request.items, request.limit);
      break;
    case QueryRequest::Op::kCover:
      ids = index_.RowCover(request.items, request.limit);
      break;
    case QueryRequest::Op::kFilter:
      ids = index_.Filter(request.min_support, request.min_confidence,
                          request.limit);
      break;
  }
  if (ids.size() > request.limit) ids.resize(request.limit);

  if (deadline.ExpiredNow()) {
    if (metrics_.deadline_exceeded != nullptr) {
      metrics_.deadline_exceeded->Increment();
    }
    *is_error = true;
    return RenderError("deadline_exceeded", "deadline expired during query",
                       request.id);
  }
  return RenderGroupsPayload(request, index_, ids);
}

}  // namespace serve
}  // namespace farmer
