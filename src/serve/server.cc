#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/exposition.h"
#include "serve/snapshot.h"
#include "util/net.h"

namespace farmer {
namespace serve {
namespace {

// epoll_wait timeout: how often a shard scans its connections for idle
// and send-stall expiry, and how quickly it notices Shutdown() without
// an eventfd wake.
constexpr int kTickMs = 50;

// recv() chunk size and the per-wake read cap. The cap keeps one
// fire-hosing connection from starving its shard's siblings: leftover
// bytes stay in the kernel buffer and level-triggered epoll reports the
// socket readable again on the next wait.
constexpr std::size_t kReadChunk = 16384;
constexpr std::size_t kMaxReadPerWake = 256 * 1024;

// Responses coalesced into one vectored send (well under IOV_MAX).
constexpr int kMaxIov = 64;

constexpr int kMaxEpollEvents = 128;

// Send timeout on sockets still in blocking mode (the reject path runs
// before the fd goes non-blocking).
constexpr int kRejectIoTimeoutMs = 100;

// Latency buckets, seconds: 10us .. 1s plus overflow.
std::vector<double> LatencyBounds() {
  return {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0};
}

// Snapshot-swap timing buckets, seconds: reloads read a file and build
// an index, so the interesting range sits well above request latency.
std::vector<double> ReloadBounds() {
  return {1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0};
}

// The POSIX socket plumbing (errno rendering, non-blocking mode,
// listener setup, HTTP responses) lives in util/net, shared with the
// farm layer and the CLI clients.
using net::ErrnoString;
using net::HttpResponse;
using net::OpenListener;
using net::SetNonBlocking;

// Blocking best-effort send for the reject path (overloaded /
// shutting-down replies on not-yet-admitted sockets). SO_SNDTIMEO
// bounds each attempt; a stalled peer just loses the courtesy reply.
void SendRejectLine(int fd, std::string line) {
  line.push_back('\n');
  net::SendAll(fd, line);
}

void SetRejectTimeout(int fd) {
  net::SetSendTimeoutMs(fd, kRejectIoTimeoutMs);
}

const char* SpanName(QueryRequest::Op op) {
  switch (op) {
    case QueryRequest::Op::kPing:
      return "serve.ping";
    case QueryRequest::Op::kStats:
      return "serve.stats";
    case QueryRequest::Op::kTopkConfidence:
    case QueryRequest::Op::kTopkChiSquare:
      return "serve.topk";
    case QueryRequest::Op::kContains:
      return "serve.contains";
    case QueryRequest::Op::kCover:
      return "serve.cover";
    case QueryRequest::Op::kFilter:
      return "serve.filter";
    case QueryRequest::Op::kReload:
      return "serve.reload";
    case QueryRequest::Op::kMetrics:
      return "serve.metrics";
  }
  return "serve.request";
}

}  // namespace

Server::Server(RuleGroupIndex index, const Options& options)
    : options_(options),
      cache_(options.cache_entries, options.cache_bytes),
      current_(std::make_shared<const VersionedIndex>(
          VersionedIndex{std::move(index), 1})) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.max_connections == 0) options_.max_connections = 1;
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    metrics_.requests = m->GetCounter("serve.requests");
    metrics_.responses_ok = m->GetCounter("serve.responses_ok");
    metrics_.responses_error = m->GetCounter("serve.responses_error");
    metrics_.cache_hits = m->GetCounter("serve.cache_hits");
    metrics_.cache_misses = m->GetCounter("serve.cache_misses");
    metrics_.overloaded = m->GetCounter("serve.overloaded");
    metrics_.deadline_exceeded = m->GetCounter("serve.deadline_exceeded");
    metrics_.reloads = m->GetCounter("serve.reloads");
    metrics_.slow_queries = m->GetCounter("serve.slow_queries");
    metrics_.active_connections = m->GetGauge("serve.active_connections");
    metrics_.snapshot_version = m->GetGauge("serve.snapshot_version");
    metrics_.snapshot_version->Set(1.0);
    metrics_.cache_entries = m->GetGauge("serve.cache_entries");
    metrics_.cache_bytes = m->GetGauge("serve.cache_bytes");
    metrics_.cache_evictions = m->GetGauge("serve.cache_evictions");
    metrics_.cache_hit_ratio = m->GetGauge("serve.cache_hit_ratio");
    metrics_.latency =
        m->GetHistogram("serve.latency_seconds", LatencyBounds());
    metrics_.reload_seconds =
        m->GetHistogram("serve.reload_seconds", ReloadBounds());
    static_assert(static_cast<std::size_t>(QueryRequest::Op::kMetrics) + 1 ==
                      kOpCount,
                  "op_latency slot count out of sync with QueryRequest::Op");
    for (std::size_t i = 0; i < kOpCount; ++i) {
      const auto op = static_cast<QueryRequest::Op>(i);
      metrics_.op_latency[i] = m->GetHistogram(
          obs::LabeledName("serve.op_latency_seconds", {{"op", OpName(op)}}),
          LatencyBounds());
    }
    shard_metrics_.resize(options_.num_shards);
    for (std::size_t i = 0; i < options_.num_shards; ++i) {
      const std::string shard = std::to_string(i);
      ShardMetrics& sm = shard_metrics_[i];
      sm.connections = m->GetGauge(
          obs::LabeledName("serve.shard_connections", {{"shard", shard}}));
      sm.wakeups = m->GetCounter(
          obs::LabeledName("serve.shard_wakeups", {{"shard", shard}}));
      sm.loop_seconds = m->GetHistogram(
          obs::LabeledName("serve.shard_loop_seconds", {{"shard", shard}}),
          LatencyBounds());
      sm.pending_frames = m->GetGauge(
          obs::LabeledName("serve.shard_pending_frames", {{"shard", shard}}));
      sm.bytes_in = m->GetCounter(
          obs::LabeledName("serve.shard_bytes_in", {{"shard", shard}}));
      sm.bytes_out = m->GetCounter(
          obs::LabeledName("serve.shard_bytes_out", {{"shard", shard}}));
      sm.write_stalls = m->GetCounter(
          obs::LabeledName("serve.shard_write_stalls", {{"shard", shard}}));
    }
  }
}

Server::~Server() { Shutdown(); }

std::shared_ptr<const Server::VersionedIndex> Server::Current() const {
  return current_.load(std::memory_order_acquire);
}

std::shared_ptr<const RuleGroupIndex> Server::index() const {
  std::shared_ptr<const VersionedIndex> vi = Current();
  return std::shared_ptr<const RuleGroupIndex>(vi, &vi->index);
}

std::uint64_t Server::snapshot_version() const { return Current()->version; }

void Server::InstallIndex(RuleGroupIndex index) {
  // Serialize writers; readers never block. The new VersionedIndex is
  // fully built before the pointer flips, and old versions stay alive
  // until the last in-flight request drops its shared_ptr.
  MutexLock lock(swap_mutex_);
  const std::uint64_t version = Current()->version + 1;
  auto next = std::make_shared<const VersionedIndex>(
      VersionedIndex{std::move(index), version});
  current_.store(next, std::memory_order_release);
  cache_.DropVersionsBelow(version);
  if (metrics_.reloads != nullptr) metrics_.reloads->Increment();
  if (metrics_.snapshot_version != nullptr) {
    metrics_.snapshot_version->Set(static_cast<double>(version));
  }
}

Status Server::ReloadFromFile(const std::string& path) {
  Stopwatch watch;
  StatusOr<RuleGroupSnapshot> snapshot = LoadSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  InstallIndex(
      RuleGroupIndex(std::move(snapshot).value(), options_.num_shards));
  // Load + index build + install: the full client-visible swap time.
  if (metrics_.reload_seconds != nullptr) {
    metrics_.reload_seconds->Observe(watch.ElapsedSeconds());
  }
  return Status::Ok();
}

Status Server::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }

  const Status listening =
      OpenListener(options_.host, options_.port, &listen_fd_, &port_);
  if (!listening.ok()) return listening;

  if (options_.metrics_port >= 0) {
    const Status scrape = OpenListener(options_.host, options_.metrics_port,
                                       &metrics_listen_fd_, &metrics_port_);
    if (!scrape.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return scrape;
    }
  }

  const auto abort_start = [this](const std::string& what) {
    const std::string err = ErrnoString(errno);
    for (auto& shard : shards_) {
      if (shard->wake_fd >= 0) ::close(shard->wake_fd);
      if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
    }
    shards_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (metrics_listen_fd_ >= 0) {
      ::close(metrics_listen_fd_);
      metrics_listen_fd_ = -1;
    }
    return Status::IoError(what + "(): " + err);
  };

  shards_.clear();
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    shard->sm = shard_metrics_.empty() ? nullptr : &shard_metrics_[i];
    shards_.push_back(std::move(shard));
    Shard& s = *shards_.back();
    if (s.epoll_fd < 0) return abort_start("epoll_create1");
    if (s.wake_fd < 0) return abort_start("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = s.wake_fd;
    if (::epoll_ctl(s.epoll_fd, EPOLL_CTL_ADD, s.wake_fd, &ev) != 0) {
      return abort_start("epoll_ctl");
    }
  }

  stopping_.store(false, std::memory_order_release);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->thread = std::thread([this, i] { ShardLoop(i); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_.store(true, std::memory_order_release);
  return Status::Ok();
}

void Server::Shutdown() {
  // Serialized: concurrent Shutdown() calls (say, a signal-driven stop
  // racing the destructor) must not both join the threads.
  MutexLock lock(shutdown_mutex_);
  if (!started_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock the accept() call with shutdown() rather than close(): a
  // close here could race a new accept on a reused fd number. The real
  // close happens after the accept thread is gone — which also means no
  // new fds can land in a shard inbox once the shards start exiting.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (metrics_listen_fd_ >= 0) ::shutdown(metrics_listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (metrics_listen_fd_ >= 0) {
    ::close(metrics_listen_fd_);
    metrics_listen_fd_ = -1;
  }
  for (auto& shard : shards_) WakeShard(*shard);
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
    ::close(shard->wake_fd);
    ::close(shard->epoll_fd);
  }
  shards_.clear();
  started_.store(false, std::memory_order_release);
}

void Server::AcceptLoop() {
  std::size_t next_shard = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    // The listeners stay blocking; poll() multiplexes the serve port
    // and the optional dedicated scrape port without a second thread.
    pollfd pfds[2];
    nfds_t nfds = 0;
    pfds[nfds].fd = listen_fd_;
    pfds[nfds].events = POLLIN;
    pfds[nfds].revents = 0;
    ++nfds;
    const bool scrape = metrics_listen_fd_ >= 0;
    if (scrape) {
      pfds[nfds].fd = metrics_listen_fd_;
      pfds[nfds].events = POLLIN;
      pfds[nfds].revents = 0;
      ++nfds;
    }
    const int rc = ::poll(pfds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Shutdown() shuts the main listener down; its POLLHUP lands here
    // and the failed accept ends the loop.
    if ((pfds[0].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      if (!AcceptOne(listen_fd_, /*admission_exempt=*/false, &next_shard)) {
        break;
      }
    }
    if (scrape && (pfds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      if (!AcceptOne(metrics_listen_fd_, /*admission_exempt=*/true,
                     &next_shard)) {
        break;
      }
    }
  }
}

bool Server::AcceptOne(int lfd, bool admission_exempt,
                       std::size_t* next_shard) {
  const int fd = ::accept(lfd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;
    }
    // Listener closed or broken: stop accepting. Shutdown() handles
    // the rest.
    return false;
  }
  SetRejectTimeout(fd);
  if (stopping_.load(std::memory_order_acquire)) {
    SendRejectLine(fd,
                   RenderError("shutting_down", "server is shutting down"));
    ::close(fd);
    return false;
  }

  // Admission control. The slot is reserved here and released by the
  // owning shard when the connection closes. Scrape-listener
  // connections always get a slot (telemetry must work mid-overload)
  // but are still counted, so the gauge never lies.
  if (admission_exempt) {
    active_connections_.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::size_t active = active_connections_.load(std::memory_order_relaxed);
    bool admitted = false;
    while (active < options_.max_connections) {
      if (active_connections_.compare_exchange_weak(
              active, active + 1, std::memory_order_relaxed)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_.overloaded != nullptr) metrics_.overloaded->Increment();
      SendRejectLine(fd,
                     RenderError("overloaded", "connection limit reached"));
      ::close(fd);
      return true;
    }
  }
  PublishActiveGauge();

  if (!SetNonBlocking(fd)) {
    ::close(fd);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    PublishActiveGauge();
    return true;
  }
  // Responses are coalesced into full frames before sending; Nagle
  // would only add latency on the last partial segment.
  net::SetTcpNoDelay(fd);

  Shard& shard = *shards_[*next_shard];
  *next_shard = (*next_shard + 1) % shards_.size();
  {
    MutexLock inbox_lock(shard.inbox_mutex);
    shard.inbox.push_back(fd);
  }
  WakeShard(shard);
  return true;
}

void Server::WakeShard(Shard& shard) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(shard.wake_fd, &one, sizeof(one));
  // EAGAIN means the counter is already non-zero: the shard is waking.
}

void Server::PublishActiveGauge() {
  if (metrics_.active_connections != nullptr) {
    metrics_.active_connections->Set(static_cast<double>(
        active_connections_.load(std::memory_order_relaxed)));
  }
}

// farmer-lint: begin(event-loop)
// Everything between these markers runs on a shard's event-loop thread
// and must never block: no file I/O, no sleeps, no blocking sockets
// (tools/farmer_lint.py, rule `event-loop-blocking`). The sockets here
// are non-blocking; recv/sendmsg return EAGAIN instead of parking the
// loop. Request execution (ExecutePending and below) sits outside the
// region: the reload admin op deliberately reads a snapshot file on
// the shard thread, stalling only its own shard.

void Server::AdoptInbox(Shard& shard) {
  FARMER_DCHECK_CALLED_ON(shard.checker);
  std::vector<int> fresh;
  {
    MutexLock lock(shard.inbox_mutex);
    fresh.swap(shard.inbox);
  }
  for (const int fd : fresh) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conn.idle = Deadline::After(options_.idle_timeout_s);
    shard.conns.emplace(fd, std::move(conn));
    shard.owned.fetch_add(1, std::memory_order_relaxed);
  }
  if (!fresh.empty()) {
    PublishActiveGauge();
    if (shard.sm != nullptr && shard.sm->connections != nullptr) {
      shard.sm->connections->Set(static_cast<double>(shard.conns.size()));
    }
  }
}

void Server::ShardLoop(std::size_t shard_id) {
  Shard& shard = *shards_[shard_id];
  // First touch binds the checker to this thread; every shard-confined
  // method below then asserts it runs here.
  FARMER_DCHECK_CALLED_ON(shard.checker);
  std::array<epoll_event, kMaxEpollEvents> events;
  while (true) {
    const int n = ::epoll_wait(shard.epoll_fd, events.data(),
                               kMaxEpollEvents, kTickMs);
    // One wake = one loop iteration; the Stopwatch below times the
    // work between this wait and the next one (loop stall signal).
    if (shard.sm != nullptr && shard.sm->wakeups != nullptr) {
      shard.sm->wakeups->Increment();
    }
    Stopwatch loop_watch;
    // Adopt first so handed-off fds are owned (and get closed on the
    // drain path below) even when the wake races shutdown.
    AdoptInbox(shard);
    if (stopping_.load(std::memory_order_acquire)) break;
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      const int fd = ev.data.fd;
      if (fd == shard.wake_fd) {
        std::uint64_t junk;
        while (::read(shard.wake_fd, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      auto it = shard.conns.find(fd);
      if (it == shard.conns.end()) continue;
      Conn& conn = it->second;
      bool alive = (ev.events & (EPOLLERR | EPOLLHUP)) == 0;
      if (alive && (ev.events & EPOLLOUT) != 0) {
        alive = FlushConn(shard, conn);
      }
      if (alive && (ev.events & EPOLLIN) != 0) {
        alive = HandleReadable(shard_id, shard, conn);
      }
      if (!alive) CloseConn(shard, fd);
    }
    TickTimeouts(shard);
    if (shard.sm != nullptr && shard.sm->loop_seconds != nullptr) {
      shard.sm->loop_seconds->Observe(loop_watch.ElapsedSeconds());
    }
  }
  // Graceful drain: give each connection one best-effort flush (peers
  // that are reading get their queued responses), then close.
  for (auto& entry : shard.conns) {
    FlushConn(shard, entry.second);
    ::close(entry.second.fd);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    shard.owned.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.conns.clear();
  PublishActiveGauge();
  if (shard.sm != nullptr && shard.sm->connections != nullptr) {
    shard.sm->connections->Set(0.0);
  }
}

bool Server::HandleReadable(std::size_t shard_id, Shard& shard, Conn& conn) {
  FARMER_DCHECK_CALLED_ON(shard.checker);
  char chunk[kReadChunk];
  std::size_t got = 0;
  bool peer_closed = false;
  while (got < kMaxReadPerWake) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.rbuf.append(chunk, static_cast<std::size_t>(n));
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  if (got > 0 && shard.sm != nullptr && shard.sm->bytes_in != nullptr) {
    shard.sm->bytes_in->Add(got);
  }
  ProcessBuffered(shard_id, shard, conn);
  if (!FlushConn(shard, conn)) return false;
  if (peer_closed) {
    // Half-closed peer (shutdown(SHUT_WR)): deliver what's still
    // queued, then close once it drains.
    if (!HasPending(conn)) return false;
    conn.want_close = true;
  }
  return true;
}

void Server::ProcessBuffered(std::size_t shard_id, Shard& shard, Conn& conn) {
  FARMER_DCHECK_CALLED_ON(shard.checker);
  if (conn.mode == Conn::Mode::kDetect) {
    switch (DetectProtocol(conn.rbuf)) {
      case ProtocolDetect::kNeedMore:
        return;
      case ProtocolDetect::kJson:
        conn.mode = Conn::Mode::kJson;
        break;
      case ProtocolDetect::kBinary:
        conn.mode = Conn::Mode::kBinary;
        conn.rbuf.erase(0, kBinaryPreambleSize);
        break;
      case ProtocolDetect::kHttp:
        conn.mode = Conn::Mode::kHttp;
        break;
    }
  }
  if (conn.mode == Conn::Mode::kHttp) {
    HandleHttp(conn);
    conn.idle = Deadline::After(options_.idle_timeout_s);
    return;
  }

  // Request-scoped instrumentation is paid only when something will
  // consume it: the trace (parse span) or the slow-query log (parse
  // timing in the breakdown).
  const bool instr =
      options_.trace != nullptr || options_.slow_query_ms > 0;

  // Parse-then-execute: every complete request is cut off the buffer
  // and deadline-stamped before any of them runs, so the budget of a
  // pipelined request queued behind a slow one burns while it waits —
  // exactly as if the client had sent them one at a time.
  const auto stamp = [this](PendingRequest& p) {
    if (!p.parse.ok()) return;
    double budget_s = options_.default_deadline_s;
    if (p.request.deadline_ms > 0 &&
        p.request.deadline_ms / 1000.0 < budget_s) {
      budget_s = p.request.deadline_ms / 1000.0;
    }
    p.deadline = Deadline::After(budget_s);
  };

  std::vector<PendingRequest> batch;
  if (conn.mode == Conn::Mode::kJson) {
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = conn.rbuf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = conn.rbuf.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      PendingRequest p;
      if (instr) {
        p.parse_start_ns =
            options_.trace != nullptr ? options_.trace->NowNs() : 0;
        Stopwatch parse_watch;
        p.parse = ParseRequest(line, &p.request);
        p.parse_s = parse_watch.ElapsedSeconds();
        p.trace_id = ++conn.trace_seq;
      } else {
        p.parse = ParseRequest(line, &p.request);
      }
      stamp(p);
      batch.push_back(std::move(p));
    }
    if (start > 0) conn.rbuf.erase(0, start);
    // A line longer than the request cap can never become valid;
    // reject it and close rather than buffering without bound.
    if (conn.rbuf.size() > kMaxRequestBytes) {
      Enqueue(conn, FrameStatus::kBadRequest, 0,
              RenderError("bad_request", "request line too long"));
      conn.want_close = true;
      conn.rbuf.clear();
    }
  } else {
    std::size_t pos = 0;
    for (;;) {
      const std::string_view rest(conn.rbuf.data() + pos,
                                  conn.rbuf.size() - pos);
      std::size_t consumed = 0;
      std::uint8_t opcode = 0;
      std::string_view payload;
      std::string error;
      const FrameExtract got =
          ExtractFrame(rest, &consumed, &opcode, &payload, &error);
      if (got == FrameExtract::kNeedMore) break;
      if (got == FrameExtract::kError) {
        Enqueue(conn, FrameStatus::kBadRequest, 0,
                RenderError("bad_request", error));
        conn.want_close = true;
        conn.rbuf.clear();
        pos = 0;
        break;
      }
      PendingRequest p;
      p.binary = true;
      if (instr) {
        p.parse_start_ns =
            options_.trace != nullptr ? options_.trace->NowNs() : 0;
        Stopwatch parse_watch;
        p.parse = ParseBinaryRequest(opcode, payload, &p.request);
        p.parse_s = parse_watch.ElapsedSeconds();
        p.trace_id = p.request.bin_id != 0 ? p.request.bin_id
                                           : ++conn.trace_seq;
      } else {
        p.parse = ParseBinaryRequest(opcode, payload, &p.request);
      }
      stamp(p);
      batch.push_back(std::move(p));
      pos += consumed;
    }
    if (pos > 0) conn.rbuf.erase(0, pos);
  }

  if (batch.empty()) return;
  for (PendingRequest& p : batch) {
    ExecutePending(shard_id, conn, p);
  }
  conn.idle = Deadline::After(options_.idle_timeout_s);
  if (shard.sm != nullptr && shard.sm->pending_frames != nullptr) {
    // Responses queued behind the socket after this wake's batch — a
    // last-writer snapshot across the shard's connections, enough to
    // see pipelining back-pressure build.
    shard.sm->pending_frames->Set(
        static_cast<double>(conn.outq.size() - conn.out_head));
  }
}

void Server::HandleHttp(Conn& conn) {
  // Answer only once the request head is fully buffered so the
  // response never races the peer's own send; headers are ignored.
  std::size_t consumed = conn.rbuf.find("\r\n\r\n");
  if (consumed != std::string::npos) {
    consumed += 4;
  } else {
    consumed = conn.rbuf.find("\n\n");
    if (consumed != std::string::npos) consumed += 2;
  }
  if (consumed == std::string::npos) {
    if (conn.rbuf.size() > kMaxRequestBytes) {
      EnqueueRaw(conn, HttpResponse("431 Request Header Fields Too Large",
                                    "text/plain", "request too large\n"));
      conn.want_close = true;
      conn.rbuf.clear();
    }
    return;
  }
  const std::size_t line_end = conn.rbuf.find_first_of("\r\n");
  const std::string line = conn.rbuf.substr(0, line_end);
  // One response per connection, HTTP/1.0 style: drop any pipelined
  // bytes and close after the flush.
  conn.rbuf.clear();
  // Request line: "GET <path> <version>". The detector guaranteed the
  // method, so only the path matters.
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  std::string path = sp2 == std::string::npos
                         ? line.substr(sp1 + 1)
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (path != "/metrics") {
    EnqueueRaw(conn, HttpResponse("404 Not Found", "text/plain",
                                  "try GET /metrics\n"));
  } else if (options_.metrics == nullptr) {
    EnqueueRaw(conn, HttpResponse("503 Service Unavailable", "text/plain",
                                  "no metrics registry attached\n"));
  } else {
    EnqueueRaw(conn, HttpResponse("200 OK", obs::kExpositionContentType,
                                  RenderExposition()));
  }
  conn.want_close = true;
}

// farmer-lint: end(event-loop)

void Server::ExecutePending(std::size_t shard_id, Conn& conn,
                            PendingRequest& p) {
  Stopwatch watch;
  shards_[shard_id]->requests.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.requests != nullptr) metrics_.requests->Increment();

  if (!p.parse.ok()) {
    if (metrics_.responses_error != nullptr) {
      metrics_.responses_error->Increment();
    }
    Enqueue(conn, FrameStatus::kBadRequest, p.request.bin_id,
            RenderError("bad_request", p.parse.message(),
                        p.binary ? "" : p.request.id));
    return;
  }

  const bool slow_log = options_.slow_query_ms > 0;
  RequestScope scope;
  RequestScope* scope_ptr = nullptr;
  if (options_.trace != nullptr || slow_log) {
    scope.trace = options_.trace;
    scope.lane = shard_id + 1;
    scope.req_id = p.trace_id;
    scope_ptr = &scope;
    if (options_.trace != nullptr && p.parse_start_ns != 0) {
      // The parse phase happened in ProcessBuffered; emit its span here
      // with the recorded timing (same lane, same producer thread).
      obs::TraceEvent parse_event;
      parse_event.name = "serve.parse";
      parse_event.phase = 'X';
      parse_event.lane = static_cast<std::uint32_t>(shard_id + 1);
      parse_event.ts_ns = p.parse_start_ns;
      parse_event.dur_ns = static_cast<std::uint64_t>(p.parse_s * 1e9);
      parse_event.arg1_name = "req_id";
      parse_event.arg1 = static_cast<std::int64_t>(p.trace_id);
      options_.trace->Emit(parse_event);
    }
  }

  obs::ScopedSpan span(options_.trace, shard_id + 1, SpanName(p.request.op));
  span.Arg("req_id", static_cast<std::int64_t>(p.trace_id));
  QueryOutcome out =
      p.request.op == QueryRequest::Op::kReload
          ? RunReload(p.request)
          : RunQuery(p.request, p.deadline, shard_id, scope_ptr);

  double elapsed_s = 0.0;
  if (metrics_.latency != nullptr || slow_log) {
    elapsed_s = watch.ElapsedSeconds();
  }
  if (metrics_.latency != nullptr) {
    metrics_.latency->Observe(elapsed_s);
    const auto opi = static_cast<std::size_t>(p.request.op);
    if (opi < kOpCount && metrics_.op_latency[opi] != nullptr) {
      metrics_.op_latency[opi]->Observe(elapsed_s);
    }
  }
  if (out.error) {
    if (metrics_.responses_error != nullptr) {
      metrics_.responses_error->Increment();
    }
  } else if (metrics_.responses_ok != nullptr) {
    metrics_.responses_ok->Increment();
  }
  span.Arg("cached", out.cached ? 1 : 0);

  if (slow_log && elapsed_s * 1000.0 >= options_.slow_query_ms) {
    slow_queries_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.slow_queries != nullptr) metrics_.slow_queries->Increment();
    Shard& shard = *shards_[shard_id];
    const std::size_t every =
        options_.slow_query_every == 0 ? 1 : options_.slow_query_every;
    if (shard.slow_seen++ % every == 0) {
      EmitSlowQuery(shard_id, p, scope, out, elapsed_s * 1000.0);
    }
  }
  Enqueue(conn, out.status, p.request.bin_id, std::move(out.json));
}

Server::QueryOutcome Server::RunQuery(const QueryRequest& request,
                                      const Deadline& deadline,
                                      std::size_t shard_id,
                                      RequestScope* scope) {
  (void)shard_id;
  // Phase timing, active only when `scope` is non-null: one elapsed
  // time into the scope (for the slow-query breakdown) and one span
  // per phase when a trace session is attached. The disabled path
  // takes zero clock reads.
  struct PhaseTimer {
    RequestScope* scope;
    const char* name;
    double RequestScope::*field;
    std::chrono::steady_clock::time_point start;
    std::uint64_t start_ns = 0;

    PhaseTimer(RequestScope* s, const char* n, double RequestScope::*f)
        : scope(s), name(n), field(f) {
      if (scope == nullptr) return;
      start = std::chrono::steady_clock::now();
      if (scope->trace != nullptr) start_ns = scope->trace->NowNs();
    }
    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;
    ~PhaseTimer() {
      if (scope == nullptr) return;
      scope->*field += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      if (scope->trace != nullptr) {
        scope->trace->EndSpan(scope->lane, name, start_ns, "req_id",
                              static_cast<std::int64_t>(scope->req_id));
      }
    }
  };

  QueryOutcome out;
  // One acquire per request: everything below sees a single coherent
  // (index, version) pair, no matter how many swaps land meanwhile.
  const std::shared_ptr<const VersionedIndex> vi = Current();
  const RuleGroupIndex& index = vi->index;
  out.version = vi->version;

  const bool cacheable = IsCacheable(request);
  std::string key;
  if (cacheable) {
    PhaseTimer cache_phase(scope, "serve.cache_lookup",
                           &RequestScope::cache_s);
    key = CanonicalKey(request);
    std::string payload;
    if (cache_.Get(vi->version, key, &payload)) {
      if (metrics_.cache_hits != nullptr) metrics_.cache_hits->Increment();
      out.cached = true;
      out.json = FinishResponse(payload, /*cached=*/true, request.id);
      return out;
    }
    if (metrics_.cache_misses != nullptr) metrics_.cache_misses->Increment();
  }

  if (deadline.ExpiredNow()) {
    if (metrics_.deadline_exceeded != nullptr) {
      metrics_.deadline_exceeded->Increment();
    }
    out.error = true;
    out.status = FrameStatus::kDeadlineExceeded;
    out.json = RenderError("deadline_exceeded",
                           "deadline expired before query", request.id);
    return out;
  }

  std::vector<std::uint32_t> ids;
  {
    PhaseTimer index_phase(scope, "serve.index", &RequestScope::index_s);
    switch (request.op) {
      case QueryRequest::Op::kPing:
        out.json =
            FinishResponse(RenderPingPayload(request), /*cached=*/false,
                           request.id);
        return out;
      case QueryRequest::Op::kStats: {
        const ServeLiveStats live = GatherLiveStats();
        out.json = FinishResponse(RenderStatsPayload(request, index,
                                                     vi->version, &live),
                                  /*cached=*/false, request.id);
        return out;
      }
      case QueryRequest::Op::kMetrics:
        if (options_.metrics == nullptr) {
          out.error = true;
          out.status = FrameStatus::kBadRequest;
          out.json = RenderError(
              "bad_request", "metrics unavailable: no registry attached",
              request.id);
          return out;
        }
        out.json = FinishResponse(RenderMetricsPayload(RenderExposition()),
                                  /*cached=*/false, request.id);
        return out;
      case QueryRequest::Op::kReload:
        return RunReload(request);  // Dispatched earlier; kept total.
      case QueryRequest::Op::kTopkConfidence:
        ids = index.TopKByConfidence(request.k);
        break;
      case QueryRequest::Op::kTopkChiSquare:
        ids = index.TopKByChiSquare(request.k);
        break;
      case QueryRequest::Op::kContains:
        ids = index.AntecedentContains(request.items, request.limit);
        break;
      case QueryRequest::Op::kCover:
        ids = index.RowCover(request.items, request.limit);
        break;
      case QueryRequest::Op::kFilter:
        ids = index.Filter(request.min_support, request.min_confidence,
                           request.limit);
        break;
    }
    if (ids.size() > request.limit) ids.resize(request.limit);
  }

  if (deadline.ExpiredNow()) {
    if (metrics_.deadline_exceeded != nullptr) {
      metrics_.deadline_exceeded->Increment();
    }
    out.error = true;
    out.status = FrameStatus::kDeadlineExceeded;
    out.json = RenderError("deadline_exceeded",
                           "deadline expired during query", request.id);
    return out;
  }

  {
    PhaseTimer encode_phase(scope, "serve.encode", &RequestScope::encode_s);
    std::string payload = RenderGroupsPayload(request, index, ids);
    if (cacheable) cache_.Put(vi->version, key, payload);
    out.json = FinishResponse(payload, /*cached=*/false, request.id);
  }
  return out;
}

Server::QueryOutcome Server::RunReload(const QueryRequest& request) {
  QueryOutcome out;
  if (options_.snapshot_path.empty()) {
    out.error = true;
    out.status = FrameStatus::kBadRequest;
    out.json = RenderError("bad_request",
                           "reload unavailable: no snapshot path configured",
                           request.id);
    return out;
  }
  const Status swapped = ReloadFromFile(options_.snapshot_path);
  if (!swapped.ok()) {
    out.error = true;
    out.status = FrameStatus::kInternal;
    out.json = RenderError("internal", swapped.message(), request.id);
    return out;
  }
  const std::shared_ptr<const VersionedIndex> vi = Current();
  out.version = vi->version;
  out.json = FinishResponse(RenderReloadPayload(vi->version,
                                                vi->index.size()),
                            /*cached=*/false, request.id);
  return out;
}

std::string Server::RenderExposition() {
  if (options_.metrics == nullptr) return std::string();
  // The cache gauges are pull-model: refreshed from the ResponseCache's
  // own counters at scrape time rather than updated on every hit.
  const std::uint64_t hits = cache_.hits();
  const std::uint64_t misses = cache_.misses();
  if (metrics_.cache_entries != nullptr) {
    metrics_.cache_entries->Set(static_cast<double>(cache_.size()));
  }
  if (metrics_.cache_bytes != nullptr) {
    metrics_.cache_bytes->Set(static_cast<double>(cache_.bytes()));
  }
  if (metrics_.cache_evictions != nullptr) {
    metrics_.cache_evictions->Set(static_cast<double>(cache_.evictions()));
  }
  if (metrics_.cache_hit_ratio != nullptr) {
    const std::uint64_t lookups = hits + misses;
    metrics_.cache_hit_ratio->Set(
        lookups == 0 ? 0.0
                     : static_cast<double>(hits) /
                           static_cast<double>(lookups));
  }
  return obs::RenderPrometheus(options_.metrics->Snapshot());
}

ServeLiveStats Server::GatherLiveStats() const {
  ServeLiveStats live;
  live.active_connections =
      active_connections_.load(std::memory_order_relaxed);
  live.overloaded = overloaded_.load(std::memory_order_relaxed);
  live.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  live.shard_connections.reserve(shards_.size());
  for (const auto& shard : shards_) {
    live.requests += shard->requests.load(std::memory_order_relaxed);
    live.shard_connections.push_back(
        shard->owned.load(std::memory_order_relaxed));
  }
  live.cache_hits = cache_.hits();
  live.cache_misses = cache_.misses();
  live.cache_entries = cache_.size();
  live.cache_bytes = cache_.bytes();
  live.cache_evictions = cache_.evictions();
  return live;
}

void Server::EmitSlowQuery(std::size_t shard_id, const PendingRequest& p,
                           const RequestScope& scope, const QueryOutcome& out,
                           double total_ms) {
  std::string line = "{\"ts\":";
  line += std::to_string(static_cast<long long>(std::time(nullptr)));
  line += ",\"shard\":";
  line += std::to_string(shard_id);
  line += ",\"req_id\":";
  line += std::to_string(scope.req_id);
  line += ",\"op\":\"";
  line += OpName(p.request.op);
  line += "\",\"query\":\"";
  line += obs::JsonEscape(CanonicalKey(p.request));
  line += "\",\"latency_ms\":";
  line += obs::JsonNumber(total_ms);
  line += ",\"parse_ms\":";
  line += obs::JsonNumber(p.parse_s * 1e3);
  line += ",\"cache_ms\":";
  line += obs::JsonNumber(scope.cache_s * 1e3);
  line += ",\"index_ms\":";
  line += obs::JsonNumber(scope.index_s * 1e3);
  line += ",\"encode_ms\":";
  line += obs::JsonNumber(scope.encode_s * 1e3);
  line += ",\"snapshot_version\":";
  line += std::to_string(out.version);
  line += ",\"cached\":";
  line += out.cached ? "true" : "false";
  line += ",\"status\":\"";
  line += out.error ? FrameStatusCode(out.status) : "ok";
  line += "\"}";
  if (options_.slow_query_log) {
    options_.slow_query_log(line);
  } else {
    std::fprintf(stderr, "farmer_serve slow-query %s\n", line.c_str());
  }
}

void Server::Enqueue(Conn& conn, FrameStatus status, std::uint64_t bin_id,
                     std::string json) {
  const bool was_idle = !HasPending(conn);
  if (conn.mode == Conn::Mode::kBinary) {
    conn.outq.push_back(EncodeResponseFrame(status, bin_id, json));
  } else if (conn.mode == Conn::Mode::kHttp) {
    // Server-initiated errors on a scrape connection (idle timeout)
    // still have to be HTTP for the peer to parse them.
    json.push_back('\n');
    conn.outq.push_back(
        HttpResponse("408 Request Timeout", "application/json", json));
  } else {
    // kDetect (no protocol spoken yet, e.g. an idle timeout before the
    // first byte) answers in JSON, like the old line-only server.
    json.push_back('\n');
    conn.outq.push_back(std::move(json));
  }
  if (was_idle) conn.stall.Restart();
}

void Server::EnqueueRaw(Conn& conn, std::string bytes) {
  const bool was_idle = !HasPending(conn);
  conn.outq.push_back(std::move(bytes));
  if (was_idle) conn.stall.Restart();
}

// farmer-lint: begin(event-loop)

bool Server::FlushConn(Shard& shard, Conn& conn) {
  FARMER_DCHECK_CALLED_ON(shard.checker);
  while (HasPending(conn)) {
    iovec iov[kMaxIov];
    int cnt = 0;
    for (std::size_t i = conn.out_head;
         i < conn.outq.size() && cnt < kMaxIov; ++i) {
      const std::string& s = conn.outq[i];
      const std::size_t off = (i == conn.out_head) ? conn.out_off : 0;
      iov[cnt].iov_base = const_cast<char*>(s.data() + off);
      iov[cnt].iov_len = s.size() - off;
      ++cnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(cnt);
    const ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (shard.sm != nullptr && shard.sm->bytes_out != nullptr) {
      shard.sm->bytes_out->Add(static_cast<std::uint64_t>(n));
    }
    conn.stall.Restart();
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      const std::size_t remain =
          conn.outq[conn.out_head].size() - conn.out_off;
      if (left >= remain) {
        left -= remain;
        conn.out_off = 0;
        ++conn.out_head;
      } else {
        conn.out_off += left;
        left = 0;
      }
    }
  }
  if (!HasPending(conn)) {
    conn.outq.clear();
    conn.out_head = 0;
    conn.out_off = 0;
    SetWriteInterest(shard, conn, false);
    return !conn.want_close;
  }
  // Socket full: reclaim the fully-sent prefix once it grows, then wait
  // for EPOLLOUT.
  if (conn.out_head >= 64) {
    conn.outq.erase(conn.outq.begin(),
                    conn.outq.begin() +
                        static_cast<std::ptrdiff_t>(conn.out_head));
    conn.out_head = 0;
  }
  // Count stall transitions (not every full-socket retry): the moment
  // a connection first blocks on the peer's receive window.
  if (!conn.out_armed && shard.sm != nullptr &&
      shard.sm->write_stalls != nullptr) {
    shard.sm->write_stalls->Increment();
  }
  SetWriteInterest(shard, conn, true);
  return true;
}

void Server::TickTimeouts(Shard& shard) {
  FARMER_DCHECK_CALLED_ON(shard.checker);
  std::vector<int> doomed;
  for (auto& entry : shard.conns) {
    Conn& conn = entry.second;
    if (HasPending(conn)) {
      // Pending output and no send progress: the peer stopped reading
      // (its TCP window is full). Drop it rather than holding the
      // buffers and the admission slot.
      if (options_.send_timeout_s > 0 &&
          conn.stall.ElapsedSeconds() > options_.send_timeout_s) {
        doomed.push_back(entry.first);
      }
      continue;
    }
    if (!conn.want_close && conn.idle.ExpiredNow()) {
      Enqueue(conn, FrameStatus::kIdleTimeout, 0,
              RenderError("idle_timeout", "connection idle too long"));
      conn.want_close = true;
      if (!FlushConn(shard, conn)) doomed.push_back(entry.first);
    }
  }
  for (const int fd : doomed) CloseConn(shard, fd);
}

void Server::CloseConn(Shard& shard, int fd) {
  FARMER_DCHECK_CALLED_ON(shard.checker);
  auto it = shard.conns.find(fd);
  if (it == shard.conns.end()) return;
  ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  shard.conns.erase(it);
  shard.owned.fetch_sub(1, std::memory_order_relaxed);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  PublishActiveGauge();
  if (shard.sm != nullptr && shard.sm->connections != nullptr) {
    shard.sm->connections->Set(static_cast<double>(shard.conns.size()));
  }
}

void Server::SetWriteInterest(Shard& shard, Conn& conn, bool want) {
  FARMER_DCHECK_CALLED_ON(shard.checker);
  if (conn.out_armed == want) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn.fd;
  if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.out_armed = want;
  }
}

// farmer-lint: end(event-loop)

}  // namespace serve
}  // namespace farmer
