#include "serve/index.h"

#include <algorithm>

namespace farmer {
namespace serve {

namespace {

/// Keeps only ids present in `allowed` (both sorted ascending).
void IntersectSorted(std::vector<std::uint32_t>* ids,
                     const std::vector<std::uint32_t>& allowed) {
  std::vector<std::uint32_t> out;
  std::set_intersection(ids->begin(), ids->end(), allowed.begin(),
                        allowed.end(), std::back_inserter(out));
  *ids = std::move(out);
}

}  // namespace

PostingBanks::PostingBanks(std::size_t universe, std::size_t num_banks)
    : universe_(universe), num_banks_(num_banks == 0 ? 1 : num_banks) {
  banks_.resize(num_banks_);
  // Sized so id / num_banks is always in range for id < universe: the
  // largest slot index any bank sees is (universe - 1) / num_banks.
  const std::size_t per_bank = (universe + num_banks_ - 1) / num_banks_;
  for (auto& bank : banks_) bank.resize(per_bank);
}

bool RuleGroupIndex::IsSubset(const ItemVector& sub,
                              const ItemVector& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

RuleGroupIndex::RuleGroupIndex(RuleGroupSnapshot snapshot,
                               std::size_t num_banks)
    : snap_(std::move(snapshot)) {
  const std::size_t n = snap_.groups.size();
  by_confidence_.resize(n);
  by_chi_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    by_confidence_[i] = static_cast<std::uint32_t>(i);
    by_chi_[i] = static_cast<std::uint32_t>(i);
  }
  const auto& groups = snap_.groups;
  std::stable_sort(by_confidence_.begin(), by_confidence_.end(),
                   [&groups](std::uint32_t a, std::uint32_t b) {
                     if (groups[a].confidence != groups[b].confidence) {
                       return groups[a].confidence > groups[b].confidence;
                     }
                     return groups[a].support_pos > groups[b].support_pos;
                   });
  std::stable_sort(by_chi_.begin(), by_chi_.end(),
                   [&groups](std::uint32_t a, std::uint32_t b) {
                     if (groups[a].chi_square != groups[b].chi_square) {
                       return groups[a].chi_square > groups[b].chi_square;
                     }
                     return groups[a].support_pos > groups[b].support_pos;
                   });
  conf_rank_.resize(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    conf_rank_[by_confidence_[rank]] = static_cast<std::uint32_t>(rank);
  }

  const std::size_t num_items =
      static_cast<std::size_t>(snap_.fingerprint.num_items);
  antecedent_postings_ = PostingBanks(num_items, num_banks);
  ms_postings_ = PostingBanks(num_items, num_banks);
  for (std::size_t g = 0; g < n; ++g) {
    for (ItemId item : groups[g].antecedent) {
      antecedent_postings_.Mutable(item).push_back(
          static_cast<std::uint32_t>(g));
    }
    const auto add_match_set = [this, g](const ItemVector& items) {
      if (items.empty()) {
        always_match_.push_back(static_cast<std::uint32_t>(g));
        return;
      }
      const auto ms_id = static_cast<std::uint32_t>(ms_group_.size());
      ms_group_.push_back(static_cast<std::uint32_t>(g));
      ms_size_.push_back(static_cast<std::uint32_t>(items.size()));
      for (ItemId item : items) ms_postings_.Mutable(item).push_back(ms_id);
    };
    if (groups[g].lower_bounds.empty()) {
      add_match_set(groups[g].antecedent);
    } else {
      for (const ItemVector& lb : groups[g].lower_bounds) {
        add_match_set(lb);
      }
    }
  }
}

std::vector<std::uint32_t> RuleGroupIndex::TopKByConfidence(
    std::size_t k) const {
  k = std::min(k, by_confidence_.size());
  return {by_confidence_.begin(), by_confidence_.begin() + k};
}

std::vector<std::uint32_t> RuleGroupIndex::TopKByChiSquare(
    std::size_t k) const {
  k = std::min(k, by_chi_.size());
  return {by_chi_.begin(), by_chi_.begin() + k};
}

std::vector<std::uint32_t> RuleGroupIndex::AntecedentContains(
    const ItemVector& items, std::size_t limit) const {
  std::vector<std::uint32_t> candidates;
  if (items.empty()) {
    // Every group contains the empty itemset.
    candidates = TopKByConfidence(limit);
    return candidates;
  }
  for (ItemId item : items) {
    if (item >= antecedent_postings_.universe()) return {};
  }
  // Intersect posting lists, shortest first so the running set shrinks
  // as fast as possible.
  ItemVector probe = items;
  std::sort(probe.begin(), probe.end(), [this](ItemId a, ItemId b) {
    return antecedent_postings_.Get(a).size() <
           antecedent_postings_.Get(b).size();
  });
  candidates = antecedent_postings_.Get(probe[0]);
  for (std::size_t k = 1; k < probe.size() && !candidates.empty(); ++k) {
    IntersectSorted(&candidates, antecedent_postings_.Get(probe[k]));
  }
  std::sort(candidates.begin(), candidates.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return conf_rank_[a] < conf_rank_[b];
            });
  if (candidates.size() > limit) candidates.resize(limit);
  return candidates;
}

std::vector<std::uint32_t> RuleGroupIndex::RowCover(
    const ItemVector& row_items, std::size_t limit) const {
  // Counting join: a match set of size s is covered by the sample iff
  // exactly s of the sample's items hit it, so only match sets touched
  // by some sample item can qualify. The dense count vector keeps the
  // per-hit cost at one array bump (its zero-fill is a memset of one
  // byte-per-match-set — cheap next to the posting walk).
  std::vector<std::uint32_t> touched;
  std::vector<std::uint32_t> counts(ms_group_.size(), 0);
  for (ItemId item : row_items) {
    if (item >= ms_postings_.universe()) continue;
    for (std::uint32_t ms : ms_postings_.Get(item)) {
      if (counts[ms] == 0) touched.push_back(ms);
      ++counts[ms];
    }
  }
  std::vector<std::uint32_t> out = always_match_;
  for (std::uint32_t ms : touched) {
    if (counts[ms] == ms_size_[ms]) out.push_back(ms_group_[ms]);
  }
  // Several lower bounds of one group may match; dedupe on group id.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  std::sort(out.begin(), out.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return conf_rank_[a] < conf_rank_[b];
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<std::uint32_t> RuleGroupIndex::Filter(
    std::size_t min_support, double min_confidence,
    std::size_t limit) const {
  // Groups with confidence >= min_confidence form a prefix of the
  // confidence projection; binary-search its end, then filter the prefix
  // by support.
  const auto& groups = snap_.groups;
  const auto end = std::partition_point(
      by_confidence_.begin(), by_confidence_.end(),
      [&groups, min_confidence](std::uint32_t g) {
        return groups[g].confidence >= min_confidence;
      });
  std::vector<std::uint32_t> out;
  for (auto it = by_confidence_.begin(); it != end; ++it) {
    if (groups[*it].support_pos >= min_support) {
      out.push_back(*it);
      if (out.size() == limit) break;
    }
  }
  return out;
}

}  // namespace serve
}  // namespace farmer
