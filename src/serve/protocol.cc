#include "serve/protocol.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "util/simd/simd.h"
#include "util/wire.h"

namespace farmer {
namespace serve {

namespace {

// ---------------------------------------------------------------------
// Minimal strict JSON parser. Supports exactly what the wire protocol
// needs — objects, arrays, strings, numbers, booleans, null — with a
// recursion depth cap so deeply nested hostile input cannot blow the
// stack. Parse failures carry no position info; the server answers
// "bad_request" either way.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

constexpr int kMaxJsonDepth = 8;

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out, 0)) return false;
    SkipSpace();
    return pos_ == text_.size();  // No trailing garbage.
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxJsonDepth) return false;
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        out->type = JsonValue::Type::kNumber;
        return ParseNumber(&out->number);
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // Opening quote.
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return false;
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_ + k];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogates rejected — the
          // protocol never needs them).
          if (code >= 0xD800 && code <= 0xDFFF) return false;
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // Unterminated.
  }

  bool ParseNumber(double* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    return errno == 0 && end == token.c_str() + token.size() &&
           std::isfinite(*out);
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['.
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      SkipSpace();
      if (!ParseValue(&element, depth + 1)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'.
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') return false;
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      if (out->object.count(key) != 0) return false;  // Duplicate key.
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Request validation.

Status BadRequest(const std::string& msg) {
  return Status::InvalidArgument(msg);
}

bool GetSize(const JsonValue& v, std::size_t max, std::size_t* out) {
  if (v.type != JsonValue::Type::kNumber) return false;
  if (v.number < 0 || v.number > static_cast<double>(max) ||
      v.number != std::floor(v.number)) {
    return false;
  }
  *out = static_cast<std::size_t>(v.number);
  return true;
}

bool GetItems(const JsonValue& v, ItemVector* out) {
  if (v.type != JsonValue::Type::kArray) return false;
  if (v.array.size() > kMaxQueryItems) return false;
  out->clear();
  out->reserve(v.array.size());
  for (const JsonValue& e : v.array) {
    std::size_t item = 0;
    if (!GetSize(e, 0xFFFFFFFFu, &item)) return false;
    out->push_back(static_cast<ItemId>(item));
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

// ---------------------------------------------------------------------
// Little-endian scalar encoding shared by the FQP1 frame functions:
// one implementation in util/wire, shared with the farm protocol
// (FMP1), so both protocols run the same fuzzed codec.

using wire::PutF64;
using wire::PutU32;
using wire::PutU64;
using PayloadReader = wire::Reader;

}  // namespace

const char* OpName(QueryRequest::Op op) {
  switch (op) {
    case QueryRequest::Op::kPing: return "ping";
    case QueryRequest::Op::kStats: return "stats";
    case QueryRequest::Op::kTopkConfidence: return "topk_confidence";
    case QueryRequest::Op::kTopkChiSquare: return "topk_chi_square";
    case QueryRequest::Op::kContains: return "contains";
    case QueryRequest::Op::kCover: return "cover";
    case QueryRequest::Op::kFilter: return "filter";
    case QueryRequest::Op::kReload: return "reload";
    case QueryRequest::Op::kMetrics: return "metrics";
  }
  return "unknown";
}

const char* FrameStatusCode(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kBadRequest: return "bad_request";
    case FrameStatus::kOverloaded: return "overloaded";
    case FrameStatus::kDeadlineExceeded: return "deadline_exceeded";
    case FrameStatus::kShuttingDown: return "shutting_down";
    case FrameStatus::kIdleTimeout: return "idle_timeout";
    case FrameStatus::kInternal: return "internal";
  }
  return "internal";
}

ProtocolDetect DetectProtocol(std::string_view prefix) {
  if (prefix.empty()) return ProtocolDetect::kNeedMore;
  const std::string_view binary(kBinaryPreamble, kBinaryPreambleSize);
  const std::string_view http(kHttpPreamble, kHttpPreambleSize);
  const std::size_t nb = std::min(prefix.size(), kBinaryPreambleSize);
  if (prefix.substr(0, nb) == binary.substr(0, nb)) {
    return prefix.size() >= kBinaryPreambleSize ? ProtocolDetect::kBinary
                                                : ProtocolDetect::kNeedMore;
  }
  const std::size_t nh = std::min(prefix.size(), kHttpPreambleSize);
  if (prefix.substr(0, nh) == http.substr(0, nh)) {
    return prefix.size() >= kHttpPreambleSize ? ProtocolDetect::kHttp
                                              : ProtocolDetect::kNeedMore;
  }
  return ProtocolDetect::kJson;
}

FrameExtract ExtractFrame(std::string_view buffer, std::size_t* consumed,
                          std::uint8_t* opcode, std::string_view* payload,
                          std::string* error) {
  switch (wire::ExtractFrame(buffer, kMaxFramePayload, consumed, opcode,
                             payload, error)) {
    case wire::FrameExtract::kComplete:
      return FrameExtract::kComplete;
    case wire::FrameExtract::kNeedMore:
      return FrameExtract::kNeedMore;
    case wire::FrameExtract::kError:
      break;
  }
  return FrameExtract::kError;
}

Status ParseBinaryRequest(std::uint8_t opcode, std::string_view payload,
                          QueryRequest* out) {
  QueryRequest req;
  switch (static_cast<FrameOp>(opcode)) {
    case FrameOp::kPing: req.op = QueryRequest::Op::kPing; break;
    case FrameOp::kStats: req.op = QueryRequest::Op::kStats; break;
    case FrameOp::kTopk: req.op = QueryRequest::Op::kTopkConfidence; break;
    case FrameOp::kContains: req.op = QueryRequest::Op::kContains; break;
    case FrameOp::kCover: req.op = QueryRequest::Op::kCover; break;
    case FrameOp::kFilter: req.op = QueryRequest::Op::kFilter; break;
    case FrameOp::kReload: req.op = QueryRequest::Op::kReload; break;
    case FrameOp::kMetrics: req.op = QueryRequest::Op::kMetrics; break;
    default:
      return Status::InvalidArgument("unknown frame opcode " +
                                     std::to_string(opcode));
  }

  PayloadReader reader(payload);
  std::uint32_t limit = 0;
  if (!reader.ReadU64(&req.bin_id) || !reader.ReadF64(&req.deadline_ms) ||
      !reader.ReadU32(&limit)) {
    return Status::InvalidArgument("truncated frame header");
  }
  if (!(req.deadline_ms >= 0) || !std::isfinite(req.deadline_ms)) {
    return Status::InvalidArgument("deadline_ms must be finite and >= 0");
  }
  if (limit > kMaxResultLimit) {
    return Status::InvalidArgument("limit exceeds " +
                                   std::to_string(kMaxResultLimit));
  }
  req.limit = limit;

  switch (req.op) {
    case QueryRequest::Op::kPing:
    case QueryRequest::Op::kStats:
    case QueryRequest::Op::kReload:
    case QueryRequest::Op::kMetrics:
      break;
    case QueryRequest::Op::kTopkConfidence:
    case QueryRequest::Op::kTopkChiSquare: {
      std::uint8_t metric = 0;
      std::uint32_t k = 0;
      if (!reader.ReadU8(&metric) || !reader.ReadU32(&k)) {
        return Status::InvalidArgument("truncated topk frame");
      }
      if (metric > 1) {
        return Status::InvalidArgument("unknown topk metric " +
                                       std::to_string(metric));
      }
      if (k > kMaxResultLimit) {
        return Status::InvalidArgument("k exceeds " +
                                       std::to_string(kMaxResultLimit));
      }
      req.op = metric == 0 ? QueryRequest::Op::kTopkConfidence
                           : QueryRequest::Op::kTopkChiSquare;
      req.k = k;
      break;
    }
    case QueryRequest::Op::kContains:
    case QueryRequest::Op::kCover: {
      std::uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return Status::InvalidArgument("truncated items frame");
      }
      if (count > kMaxQueryItems) {
        return Status::InvalidArgument("item count exceeds " +
                                       std::to_string(kMaxQueryItems));
      }
      req.items.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t item = 0;
        if (!reader.ReadU32(&item)) {
          return Status::InvalidArgument("truncated item list");
        }
        req.items.push_back(static_cast<ItemId>(item));
      }
      std::sort(req.items.begin(), req.items.end());
      req.items.erase(std::unique(req.items.begin(), req.items.end()),
                      req.items.end());
      break;
    }
    case QueryRequest::Op::kFilter: {
      std::uint64_t minsup = 0;
      if (!reader.ReadU64(&minsup) || !reader.ReadF64(&req.min_confidence)) {
        return Status::InvalidArgument("truncated filter frame");
      }
      if (minsup > static_cast<std::uint64_t>(
                       static_cast<std::size_t>(-1) / 2)) {
        return Status::InvalidArgument("minsup out of range");
      }
      if (!std::isfinite(req.min_confidence)) {
        return Status::InvalidArgument("minconf must be finite");
      }
      req.min_support = static_cast<std::size_t>(minsup);
      break;
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after frame payload");
  }
  *out = std::move(req);
  return Status::Ok();
}

std::string EncodeBinaryRequest(const QueryRequest& request) {
  FrameOp opcode = FrameOp::kPing;
  switch (request.op) {
    case QueryRequest::Op::kPing: opcode = FrameOp::kPing; break;
    case QueryRequest::Op::kStats: opcode = FrameOp::kStats; break;
    case QueryRequest::Op::kTopkConfidence:
    case QueryRequest::Op::kTopkChiSquare:
      opcode = FrameOp::kTopk;
      break;
    case QueryRequest::Op::kContains: opcode = FrameOp::kContains; break;
    case QueryRequest::Op::kCover: opcode = FrameOp::kCover; break;
    case QueryRequest::Op::kFilter: opcode = FrameOp::kFilter; break;
    case QueryRequest::Op::kReload: opcode = FrameOp::kReload; break;
    case QueryRequest::Op::kMetrics: opcode = FrameOp::kMetrics; break;
  }

  std::string body;
  body.push_back(static_cast<char>(opcode));
  PutU64(&body, request.bin_id);
  PutF64(&body, request.deadline_ms);
  PutU32(&body, static_cast<std::uint32_t>(request.limit));
  switch (request.op) {
    case QueryRequest::Op::kPing:
    case QueryRequest::Op::kStats:
    case QueryRequest::Op::kReload:
    case QueryRequest::Op::kMetrics:
      break;
    case QueryRequest::Op::kTopkConfidence:
    case QueryRequest::Op::kTopkChiSquare:
      body.push_back(
          request.op == QueryRequest::Op::kTopkConfidence ? '\0' : '\1');
      PutU32(&body, static_cast<std::uint32_t>(request.k));
      break;
    case QueryRequest::Op::kContains:
    case QueryRequest::Op::kCover:
      PutU32(&body, static_cast<std::uint32_t>(request.items.size()));
      for (ItemId item : request.items) {
        PutU32(&body, static_cast<std::uint32_t>(item));
      }
      break;
    case QueryRequest::Op::kFilter:
      PutU64(&body, static_cast<std::uint64_t>(request.min_support));
      PutF64(&body, request.min_confidence);
      break;
  }

  std::string frame;
  frame.reserve(4 + body.size());
  PutU32(&frame, static_cast<std::uint32_t>(body.size()));
  frame += body;
  return frame;
}

std::string EncodeResponseFrame(FrameStatus status, std::uint64_t req_id,
                                std::string_view json) {
  std::string frame;
  frame.reserve(4 + 9 + json.size());
  PutU32(&frame, static_cast<std::uint32_t>(9 + json.size()));
  frame.push_back(static_cast<char>(status));
  PutU64(&frame, req_id);
  frame.append(json.data(), json.size());
  return frame;
}

Status DecodeResponseFrame(std::string_view body, FrameStatus* status,
                           std::uint64_t* req_id, std::string* json) {
  if (body.size() < 9) {
    return Status::InvalidArgument("response frame shorter than 9 bytes");
  }
  *status = static_cast<FrameStatus>(static_cast<std::uint8_t>(body[0]));
  PayloadReader reader(body.substr(1, 8));
  if (!reader.ReadU64(req_id)) {
    return Status::InvalidArgument("truncated response id");
  }
  json->assign(body.substr(9));
  return Status::Ok();
}

Status ParseRequest(const std::string& line, QueryRequest* out) {
  if (line.size() > kMaxRequestBytes) {
    return BadRequest("request exceeds " +
                      std::to_string(kMaxRequestBytes) + " bytes");
  }
  JsonValue root;
  if (!JsonParser(line).Parse(&root) ||
      root.type != JsonValue::Type::kObject) {
    return BadRequest("request is not a JSON object");
  }
  const auto find = [&root](const char* key) -> const JsonValue* {
    auto it = root.object.find(key);
    return it == root.object.end() ? nullptr : &it->second;
  };

  const JsonValue* op = find("op");
  if (op == nullptr || op->type != JsonValue::Type::kString) {
    return BadRequest("missing string field 'op'");
  }
  QueryRequest req;
  bool wants_metric = false;
  if (op->string == "ping") {
    req.op = QueryRequest::Op::kPing;
  } else if (op->string == "stats") {
    req.op = QueryRequest::Op::kStats;
  } else if (op->string == "topk") {
    req.op = QueryRequest::Op::kTopkConfidence;
    wants_metric = true;
  } else if (op->string == "contains") {
    req.op = QueryRequest::Op::kContains;
  } else if (op->string == "cover") {
    req.op = QueryRequest::Op::kCover;
  } else if (op->string == "filter") {
    req.op = QueryRequest::Op::kFilter;
  } else if (op->string == "reload") {
    req.op = QueryRequest::Op::kReload;
  } else if (op->string == "metrics") {
    req.op = QueryRequest::Op::kMetrics;
  } else {
    return BadRequest("unknown op '" + op->string + "'");
  }

  for (const auto& [key, value] : root.object) {
    if (key == "op") continue;
    if (key == "id") {
      if (value.type != JsonValue::Type::kString ||
          value.string.size() > 256) {
        return BadRequest("'id' must be a short string");
      }
      req.id = value.string;
    } else if (key == "deadline_ms") {
      if (value.type != JsonValue::Type::kNumber || value.number < 0) {
        return BadRequest("'deadline_ms' must be a non-negative number");
      }
      req.deadline_ms = value.number;
    } else if (key == "limit") {
      if (!GetSize(value, kMaxResultLimit, &req.limit)) {
        return BadRequest("'limit' must be an integer in [0, " +
                          std::to_string(kMaxResultLimit) + "]");
      }
    } else if (key == "k" && wants_metric) {
      if (!GetSize(value, kMaxResultLimit, &req.k)) {
        return BadRequest("'k' must be an integer in [0, " +
                          std::to_string(kMaxResultLimit) + "]");
      }
    } else if (key == "metric" && wants_metric) {
      if (value.type != JsonValue::Type::kString) {
        return BadRequest("'metric' must be a string");
      }
      if (value.string == "confidence") {
        req.op = QueryRequest::Op::kTopkConfidence;
      } else if (value.string == "chi_square") {
        req.op = QueryRequest::Op::kTopkChiSquare;
      } else {
        return BadRequest("unknown metric '" + value.string + "'");
      }
    } else if (key == "items" && (req.op == QueryRequest::Op::kContains ||
                                  req.op == QueryRequest::Op::kCover)) {
      if (!GetItems(value, &req.items)) {
        return BadRequest("'items' must be an array of at most " +
                          std::to_string(kMaxQueryItems) + " item ids");
      }
    } else if (key == "minsup" && req.op == QueryRequest::Op::kFilter) {
      if (!GetSize(value, static_cast<std::size_t>(-1) / 2,
                   &req.min_support)) {
        return BadRequest("'minsup' must be a non-negative integer");
      }
    } else if (key == "minconf" && req.op == QueryRequest::Op::kFilter) {
      if (value.type != JsonValue::Type::kNumber) {
        return BadRequest("'minconf' must be a number");
      }
      req.min_confidence = value.number;
    } else {
      return BadRequest("unknown field '" + key + "' for op '" +
                        op->string + "'");
    }
  }
  *out = std::move(req);
  return Status::Ok();
}

std::string CanonicalKey(const QueryRequest& request) {
  std::string key = OpName(request.op);
  switch (request.op) {
    case QueryRequest::Op::kPing:
    case QueryRequest::Op::kStats:
    case QueryRequest::Op::kReload:
    case QueryRequest::Op::kMetrics:
      break;
    case QueryRequest::Op::kTopkConfidence:
    case QueryRequest::Op::kTopkChiSquare:
      key += " k=" + std::to_string(request.k);
      break;
    case QueryRequest::Op::kContains:
    case QueryRequest::Op::kCover:
      key += " items=";
      for (std::size_t i = 0; i < request.items.size(); ++i) {
        if (i > 0) key += ',';
        key += std::to_string(request.items[i]);
      }
      break;
    case QueryRequest::Op::kFilter:
      key += " minsup=" + std::to_string(request.min_support) +
             " minconf=" + obs::JsonNumber(request.min_confidence);
      break;
  }
  key += " limit=" + std::to_string(request.limit);
  return key;
}

bool IsCacheable(const QueryRequest& request) {
  return request.op != QueryRequest::Op::kPing &&
         request.op != QueryRequest::Op::kStats &&
         request.op != QueryRequest::Op::kReload &&
         request.op != QueryRequest::Op::kMetrics;
}

std::string RenderGroupsPayload(const QueryRequest& request,
                                const RuleGroupIndex& index,
                                const std::vector<std::uint32_t>& ids) {
  std::string out = "{\"ok\":true,\"op\":\"";
  out += OpName(request.op);
  out += "\",\"count\":" + std::to_string(ids.size());
  out += ",\"groups\":[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const RuleGroup& g = index.group(ids[i]);
    if (i > 0) out += ',';
    out += "{\"index\":" + std::to_string(ids[i]);
    out += ",\"support_pos\":" + std::to_string(g.support_pos);
    out += ",\"support_neg\":" + std::to_string(g.support_neg);
    out += ",\"confidence\":" + obs::JsonNumber(g.confidence);
    out += ",\"chi_square\":" + obs::JsonNumber(g.chi_square);
    out += ",\"antecedent\":[";
    for (std::size_t k = 0; k < g.antecedent.size(); ++k) {
      if (k > 0) out += ',';
      out += std::to_string(g.antecedent[k]);
    }
    out += "],\"lower_bounds\":[";
    for (std::size_t lb = 0; lb < g.lower_bounds.size(); ++lb) {
      if (lb > 0) out += ',';
      out += '[';
      for (std::size_t k = 0; k < g.lower_bounds[lb].size(); ++k) {
        if (k > 0) out += ',';
        out += std::to_string(g.lower_bounds[lb][k]);
      }
      out += ']';
    }
    out += "]}";
  }
  out += ']';
  return out;
}

std::string RenderStatsPayload(const QueryRequest& request,
                               const RuleGroupIndex& index,
                               std::uint64_t version,
                               const ServeLiveStats* live) {
  (void)request;
  const RuleGroupSnapshot& snap = index.snapshot();
  std::string out = "{\"ok\":true,\"op\":\"stats\"";
  out += ",\"version\":" + std::to_string(version);
  out += std::string(",\"simd_level\":\"") +
         simd::LevelName(simd::ActiveLevel()) + "\"";
  out += ",\"groups\":" + std::to_string(snap.groups.size());
  out += ",\"num_rows\":" + std::to_string(snap.num_rows);
  out += ",\"params\":{\"consequent\":" +
         std::to_string(snap.params.consequent);
  out += ",\"min_support\":" + std::to_string(snap.params.min_support);
  out += ",\"min_confidence\":" + obs::JsonNumber(snap.params.min_confidence);
  out += ",\"min_chi_square\":" + obs::JsonNumber(snap.params.min_chi_square);
  out += ",\"top_k\":" + std::to_string(snap.params.top_k);
  out += std::string(",\"mine_lower_bounds\":") +
         (snap.params.mine_lower_bounds ? "true" : "false");
  out += "},\"fingerprint\":{\"dataset_hash\":" +
         std::to_string(snap.fingerprint.dataset_hash);
  out += ",\"num_rows\":" + std::to_string(snap.fingerprint.num_rows);
  out += ",\"num_items\":" + std::to_string(snap.fingerprint.num_items);
  out += "}";
  if (live != nullptr) {
    const std::uint64_t looked_up = live->cache_hits + live->cache_misses;
    const double hit_ratio =
        looked_up == 0
            ? 0.0
            : static_cast<double>(live->cache_hits) /
                  static_cast<double>(looked_up);
    out += ",\"serve\":{\"requests\":" + std::to_string(live->requests);
    out += ",\"active_connections\":" +
           std::to_string(live->active_connections);
    out += ",\"shard_connections\":[";
    for (std::size_t i = 0; i < live->shard_connections.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(live->shard_connections[i]);
    }
    out += "],\"overloaded\":" + std::to_string(live->overloaded);
    out += ",\"slow_queries\":" + std::to_string(live->slow_queries);
    out += ",\"cache\":{\"hits\":" + std::to_string(live->cache_hits);
    out += ",\"misses\":" + std::to_string(live->cache_misses);
    out += ",\"hit_ratio\":" + obs::JsonNumber(hit_ratio);
    out += ",\"entries\":" + std::to_string(live->cache_entries);
    out += ",\"bytes\":" + std::to_string(live->cache_bytes);
    out += ",\"evictions\":" + std::to_string(live->cache_evictions);
    out += "}}";
  }
  return out;
}

std::string RenderMetricsPayload(const std::string& exposition) {
  return "{\"ok\":true,\"op\":\"metrics\",\"exposition\":\"" +
         obs::JsonEscape(exposition) + "\"";
}

std::string RenderPingPayload(const QueryRequest& request) {
  (void)request;
  return "{\"ok\":true,\"op\":\"ping\"";
}

std::string RenderReloadPayload(std::uint64_t version, std::size_t groups) {
  return "{\"ok\":true,\"op\":\"reload\",\"version\":" +
         std::to_string(version) + ",\"groups\":" + std::to_string(groups);
}

std::string RenderError(const std::string& code, const std::string& message,
                        const std::string& id) {
  std::string out = "{\"ok\":false,\"error\":\"" + obs::JsonEscape(code) +
                    "\",\"message\":\"" + obs::JsonEscape(message) + "\"";
  if (!id.empty()) out += ",\"id\":\"" + obs::JsonEscape(id) + "\"";
  out += "}";
  return out;
}

std::string FinishResponse(const std::string& payload, bool cached,
                           const std::string& id) {
  std::string out = payload;
  out += cached ? ",\"cached\":true" : ",\"cached\":false";
  if (!id.empty()) out += ",\"id\":\"" + obs::JsonEscape(id) + "\"";
  out += "}";
  return out;
}

}  // namespace serve
}  // namespace farmer
