#ifndef FARMER_SERVE_PROTOCOL_H_
#define FARMER_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dataset/types.h"
#include "serve/index.h"
#include "util/status.h"

namespace farmer {
namespace serve {

/// Wire protocols of the rule-group server. Two framings share one
/// request/response model, auto-detected per connection from its first
/// bytes (see DetectProtocol):
///
/// 1. Line-delimited JSON (the original protocol, kept for
///    compatibility). One request object per line in, one response
///    object per line out:
///      {"op":"ping"}
///      {"op":"stats"}
///      {"op":"topk","metric":"confidence"|"chi_square","k":10}
///      {"op":"contains","items":[3,17]}
///      {"op":"cover","items":[1,2,5,9]}
///      {"op":"filter","minsup":5,"minconf":0.9}
///      {"op":"reload"}
///      {"op":"metrics"}
///    Optional on any request: "limit" (result cap, default 100, max
///    10000), "id" (opaque string echoed back), "deadline_ms"
///    (per-request budget). Responses: {"ok":true,...,"cached":false}
///    or {"ok":false,"error":"<code>","message":"..."}.
///
/// 2. FQP1 binary framing. A connection opts in by sending the 4-byte
///    preamble "FQP1" immediately after connect; every subsequent
///    request is a length-prefixed frame, and every response comes back
///    as one. Frames need no newline scanning, pipeline trivially, and
///    carry a fixed-width header the server parses without touching a
///    JSON parser. See the Frame* declarations below for the layout.
///
/// Both framings allow any number of pipelined requests per connection;
/// responses are always delivered in arrival order.
///
/// A third, read-only surface rides on the same detector: a connection
/// whose first bytes are "GET " is a plain-HTTP scrape. The server
/// answers `GET /metrics` with Prometheus text exposition and closes —
/// enough HTTP for curl and a Prometheus scraper, with no new listener
/// required (see docs/OBSERVABILITY.md).

/// A parsed, validated request (either framing).
struct QueryRequest {
  enum class Op {
    kPing,
    kStats,
    kTopkConfidence,
    kTopkChiSquare,
    kContains,
    kCover,
    kFilter,
    kReload,
    kMetrics,
  };

  Op op = Op::kPing;
  std::size_t k = 10;           // topk
  ItemVector items;             // contains / cover (sorted, deduped)
  std::size_t min_support = 0;  // filter
  double min_confidence = 0.0;  // filter
  std::size_t limit = 100;      // all group-returning ops
  double deadline_ms = 0.0;     // 0 = server default
  std::string id;               // JSON echo id ("" = absent)
  std::uint64_t bin_id = 0;     // FQP1 echo id (0 = absent)
};

/// Caps keeping hostile requests bounded.
inline constexpr std::size_t kMaxRequestBytes = 1 << 16;
inline constexpr std::size_t kMaxResultLimit = 10000;
inline constexpr std::size_t kMaxQueryItems = 4096;

// ---------------------------------------------------------------------
// FQP1 binary framing.
//
// Preamble (client -> server, once, immediately after connect):
//   "FQP1" (4 bytes)
//
// Request frame (client -> server):
//   u32 length   bytes that follow the length field (opcode + payload)
//   u8  opcode   FrameOp
//   payload      common header, then op-specific fields:
//     u64 req_id        echoed in the response frame
//     f64 deadline_ms   0 = server default
//     u32 limit         result cap (<= kMaxResultLimit)
//     -- op kTopk:            u8 metric (0 = confidence, 1 = chi_square),
//                             u32 k
//     -- op kContains/kCover: u32 count, count x u32 item ids
//     -- op kFilter:          u64 minsup, f64 minconf
//     -- op kPing/kStats/kReload: nothing
//
// Response frame (server -> client):
//   u32 length   bytes that follow the length field
//   u8  status   FrameStatus (0 = ok, else the error class)
//   u64 req_id   echoed from the request (0 for connection-level errors)
//   payload      the JSON response text the line protocol would have
//                sent (no trailing newline) — so both framings share the
//                renderer and the response cache byte-for-byte.
//
// All integers little-endian; f64 is the IEEE-754 bit pattern. A frame
// whose length field is 0 or exceeds 1 + kMaxFramePayload is a framing
// error and closes the connection.

inline constexpr char kBinaryPreamble[4] = {'F', 'Q', 'P', '1'};
inline constexpr std::size_t kBinaryPreambleSize = 4;
/// Payload bound (excludes the opcode byte), mirroring the JSON cap.
inline constexpr std::size_t kMaxFramePayload = kMaxRequestBytes;

enum class FrameOp : std::uint8_t {
  kPing = 0x01,
  kStats = 0x02,
  kTopk = 0x03,
  kContains = 0x04,
  kCover = 0x05,
  kFilter = 0x06,
  kReload = 0x10,
  kMetrics = 0x11,
};

enum class FrameStatus : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,
  kOverloaded = 2,
  kDeadlineExceeded = 3,
  kShuttingDown = 4,
  kIdleTimeout = 5,
  kInternal = 6,
};

/// The wire error-code string for a non-ok status ("bad_request", ...).
const char* FrameStatusCode(FrameStatus status);

/// The HTTP-scrape preamble ("GET " — method plus its space).
inline constexpr char kHttpPreamble[4] = {'G', 'E', 'T', ' '};
inline constexpr std::size_t kHttpPreambleSize = 4;

/// Result of scanning a connection's first bytes.
enum class ProtocolDetect {
  kNeedMore,  // Prefix of a preamble so far; read more.
  kJson,      // Neither preamble: line-delimited JSON.
  kBinary,    // The full FQP1 preamble: binary frames follow it.
  kHttp,      // "GET ": a plain-HTTP metrics scrape.
};

/// Decides the framing from the first bytes of a connection. Returns
/// kBinary only on the exact 4-byte FQP1 preamble and kHttp only on
/// the exact "GET " prefix; any first bytes that can no longer become
/// either preamble select JSON (where a non-object line is answered
/// with bad_request, keeping the boundary total).
ProtocolDetect DetectProtocol(std::string_view prefix);

/// Result of trying to cut one frame off a buffer.
enum class FrameExtract {
  kComplete,  // *opcode/*payload set, *consumed bytes were used.
  kNeedMore,  // The buffer holds a prefix of a valid frame.
  kError,     // Unfixable framing (zero/oversized length): close.
};

/// Extracts the first complete frame from `buffer`. On kComplete sets
/// *consumed to the frame's total size, *opcode to its opcode byte and
/// *payload to a view into `buffer` (valid until the buffer mutates).
/// On kError fills *error.
FrameExtract ExtractFrame(std::string_view buffer, std::size_t* consumed,
                          std::uint8_t* opcode, std::string_view* payload,
                          std::string* error);

/// Parses and validates a binary request payload (the bytes after the
/// opcode). Strict like the JSON path: truncated or trailing bytes,
/// unknown opcodes, out-of-range counts all come back InvalidArgument.
/// Items are sorted and deduplicated, mirroring the JSON parser.
Status ParseBinaryRequest(std::uint8_t opcode, std::string_view payload,
                          QueryRequest* out);

/// Renders `request` as a complete FQP1 request frame (length field
/// included) — the exact inverse of ParseBinaryRequest for in-range
/// requests. Used by farmer_query --binary, the tests, and the fuzz
/// seed corpus.
std::string EncodeBinaryRequest(const QueryRequest& request);

/// Renders a complete FQP1 response frame wrapping the JSON text.
std::string EncodeResponseFrame(FrameStatus status, std::uint64_t req_id,
                                std::string_view json);

/// Splits a response frame body (the bytes after the length field) back
/// into status / req_id / JSON text. InvalidArgument when too short.
Status DecodeResponseFrame(std::string_view body, FrameStatus* status,
                           std::uint64_t* req_id, std::string* json);

// ---------------------------------------------------------------------
// Shared request/response model.

/// The wire spelling of an op ("ping", "topk_confidence", ...).
const char* OpName(QueryRequest::Op op);

/// Parses one JSON request line. InvalidArgument on anything malformed:
/// bad JSON, unknown op or field, wrong type, out-of-range value. Never
/// crashes on arbitrary bytes.
Status ParseRequest(const std::string& line, QueryRequest* out);

/// Deterministic cache key: the request re-rendered with fields in fixed
/// order, excluding "id"/"req_id" and "deadline_ms" (which don't affect
/// the answer). Two requests with equal keys have byte-identical
/// payloads against one snapshot version; the server additionally keys
/// its cache by the snapshot version so entries die on hot swap.
std::string CanonicalKey(const QueryRequest& request);

/// True when responses to `request` are cacheable (everything except
/// ping/stats/reload/metrics, whose answers are trivial or
/// time-varying).
bool IsCacheable(const QueryRequest& request);

/// Renders the payload of a successful group-returning response, WITHOUT
/// the trailing "cached" field and closing brace — the server appends
/// `,"cached":true}` or `,"cached":false}` so one cached payload serves
/// both cases. `ids` are group indices into the index's snapshot.
std::string RenderGroupsPayload(const QueryRequest& request,
                                const RuleGroupIndex& index,
                                const std::vector<std::uint32_t>& ids);

/// Live serve-side values surfaced in the "stats" op, so JSON clients
/// see the server's health without the metrics endpoint. Filled by the
/// server from its own counters; everything here is available whether
/// or not a MetricsRegistry is attached.
struct ServeLiveStats {
  std::uint64_t requests = 0;
  std::size_t active_connections = 0;
  /// Connections currently owned by each shard, indexed by shard id.
  std::vector<std::size_t> shard_connections;
  std::uint64_t overloaded = 0;
  std::uint64_t slow_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  std::uint64_t cache_evictions = 0;
};

/// Payload of a "stats" response (store size, params, fingerprint, the
/// serving snapshot version). When `live` is non-null a "serve" object
/// with the live server-side values is included.
std::string RenderStatsPayload(const QueryRequest& request,
                               const RuleGroupIndex& index,
                               std::uint64_t version,
                               const ServeLiveStats* live = nullptr);

/// Payload of a "metrics" response: the Prometheus text exposition as
/// one JSON string field ("exposition").
std::string RenderMetricsPayload(const std::string& exposition);

/// Payload of a "ping" response.
std::string RenderPingPayload(const QueryRequest& request);

/// Payload of a successful "reload" response: the new snapshot version
/// and the group count now being served.
std::string RenderReloadPayload(std::uint64_t version, std::size_t groups);

/// A complete (self-closed) error response line, no trailing newline.
std::string RenderError(const std::string& code, const std::string& message,
                        const std::string& id = "");

/// Appends the cached flag and the request's echo id to a payload from
/// the Render*Payload functions, producing a complete response line (no
/// newline). The id lives here, not in the payload, so one cached
/// payload can serve requests that differ only in their ids.
std::string FinishResponse(const std::string& payload, bool cached,
                           const std::string& id = "");

}  // namespace serve
}  // namespace farmer

#endif  // FARMER_SERVE_PROTOCOL_H_
