#ifndef FARMER_SERVE_PROTOCOL_H_
#define FARMER_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataset/types.h"
#include "serve/index.h"
#include "util/status.h"

namespace farmer {
namespace serve {

/// Wire protocol of the rule-group server: line-delimited JSON. One
/// request object per line in, one response object per line out.
///
/// Requests:
///   {"op":"ping"}
///   {"op":"stats"}
///   {"op":"topk","metric":"confidence"|"chi_square","k":10}
///   {"op":"contains","items":[3,17]}
///   {"op":"cover","items":[1,2,5,9]}
///   {"op":"filter","minsup":5,"minconf":0.9}
/// Optional on any request: "limit" (result cap, default 100, max 10000),
/// "id" (opaque string echoed back), "deadline_ms" (per-request budget).
///
/// Responses: {"ok":true,...,"cached":false} or
/// {"ok":false,"error":"<code>","message":"..."}. Error codes:
/// "bad_request", "overloaded", "deadline_exceeded", "shutting_down".

/// A parsed, validated request.
struct QueryRequest {
  enum class Op {
    kPing,
    kStats,
    kTopkConfidence,
    kTopkChiSquare,
    kContains,
    kCover,
    kFilter,
  };

  Op op = Op::kPing;
  std::size_t k = 10;           // topk
  ItemVector items;             // contains / cover (sorted, deduped)
  std::size_t min_support = 0;  // filter
  double min_confidence = 0.0;  // filter
  std::size_t limit = 100;      // all group-returning ops
  double deadline_ms = 0.0;     // 0 = server default
  std::string id;               // echoed verbatim ("" = absent)
};

/// Caps keeping hostile requests bounded.
inline constexpr std::size_t kMaxRequestBytes = 1 << 16;
inline constexpr std::size_t kMaxResultLimit = 10000;
inline constexpr std::size_t kMaxQueryItems = 4096;

/// Parses one request line. InvalidArgument on anything malformed: bad
/// JSON, unknown op or field, wrong type, out-of-range value. Never
/// crashes on arbitrary bytes.
Status ParseRequest(const std::string& line, QueryRequest* out);

/// Deterministic cache key: the request re-rendered with fields in fixed
/// order, excluding "id" and "deadline_ms" (which don't affect the
/// answer). Two requests with equal keys have byte-identical payloads.
std::string CanonicalKey(const QueryRequest& request);

/// True when responses to `request` are cacheable (everything except
/// ping/stats, whose answers are trivial or time-varying).
bool IsCacheable(const QueryRequest& request);

/// Renders the payload of a successful group-returning response, WITHOUT
/// the trailing "cached" field and closing brace — the server appends
/// `,"cached":true}` or `,"cached":false}` so one cached payload serves
/// both cases. `ids` are group indices into the index's snapshot.
std::string RenderGroupsPayload(const QueryRequest& request,
                                const RuleGroupIndex& index,
                                const std::vector<std::uint32_t>& ids);

/// Payload of a "stats" response (store size, params, fingerprint).
std::string RenderStatsPayload(const QueryRequest& request,
                               const RuleGroupIndex& index);

/// Payload of a "ping" response.
std::string RenderPingPayload(const QueryRequest& request);

/// A complete (self-closed) error response line, no trailing newline.
std::string RenderError(const std::string& code, const std::string& message,
                        const std::string& id = "");

/// Appends the cached flag and the request's echo id to a payload from
/// the Render*Payload functions, producing a complete response line (no
/// newline). The id lives here, not in the payload, so one cached
/// payload can serve requests that differ only in their ids.
std::string FinishResponse(const std::string& payload, bool cached,
                           const std::string& id = "");

}  // namespace serve
}  // namespace farmer

#endif  // FARMER_SERVE_PROTOCOL_H_
