#include "serve/snapshot.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/bitset.h"
#include "util/crc32.h"

namespace farmer {
namespace serve {

namespace {

constexpr char kMagic[4] = {'F', 'S', 'N', 'P'};
constexpr std::size_t kHeaderBytes = 16;
constexpr std::uint32_t kTagMeta = 0x4154454Du;    // "META" little-endian.
constexpr std::uint32_t kTagGroups = 0x53505247u;  // "GRPS" little-endian.
constexpr std::size_t kMetaPayloadBytes = 70;
// Smallest possible group encoding: stats + flags + three zero counts.
constexpr std::size_t kMinGroupBytes = 8 + 8 + 8 + 8 + 1 + 4 + 4 + 4;

void AppendU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, std::uint32_t v) {
  for (int byte = 0; byte < 4; ++byte) {
    out->push_back(static_cast<char>((v >> (byte * 8)) & 0xFFu));
  }
}

void AppendU64(std::string* out, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    out->push_back(static_cast<char>((v >> (byte * 8)) & 0xFFu));
  }
}

void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian cursor over the input buffer. Every Read
/// fails (returns false) instead of running past the end, so the parser
/// below can never over-read regardless of what the counts claim.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }

  bool ReadU8(std::uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(std::uint32_t* v) {
    if (remaining() < 4) return false;
    std::uint32_t out = 0;
    for (int byte = 0; byte < 4; ++byte) {
      out |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(data_[pos_ + byte]))
             << (byte * 8);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool ReadU64(std::uint64_t* v) {
    if (remaining() < 8) return false;
    std::uint64_t out = 0;
    for (int byte = 0; byte < 8; ++byte) {
      out |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(data_[pos_ + byte]))
             << (byte * 8);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool ReadF64(double* v) {
    std::uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }

  bool ReadView(std::size_t n, std::string_view* view) {
    if (remaining() < n) return false;
    *view = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

Status Err(const std::string& name, const std::string& msg) {
  return Status::InvalidArgument(name + ": " + msg);
}

/// Compact row-set encoding: the bitset's 64-bit words with trailing
/// zero words trimmed, prefixed by the surviving word count.
void AppendRowSet(std::string* out, const Bitset& rows) {
  const Bitset::WordVector& words = rows.words();
  std::size_t count = words.size();
  while (count > 0 && words[count - 1] == 0) --count;
  AppendU32(out, static_cast<std::uint32_t>(count));
  for (std::size_t w = 0; w < count; ++w) AppendU64(out, words[w]);
}

bool ParseRowSet(ByteReader* reader, std::size_t num_rows, Bitset* rows,
                 std::string* why) {
  std::uint32_t word_count = 0;
  if (!reader->ReadU32(&word_count)) {
    *why = "truncated row-set word count";
    return false;
  }
  const std::size_t max_words = (num_rows + 63) / 64;
  if (word_count > max_words) {
    *why = "row-set word count " + std::to_string(word_count) +
           " exceeds " + std::to_string(max_words) + " words for " +
           std::to_string(num_rows) + " rows";
    return false;
  }
  *rows = Bitset(num_rows);
  std::uint64_t last_word = 0;
  for (std::uint32_t w = 0; w < word_count; ++w) {
    std::uint64_t word = 0;
    if (!reader->ReadU64(&word)) {
      *why = "truncated row-set words";
      return false;
    }
    last_word = word;
    for (std::uint64_t bits = word; bits != 0; bits &= bits - 1) {
      const std::size_t pos =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      if (pos >= num_rows) {
        *why = "row-set bit " + std::to_string(pos) + " out of range";
        return false;
      }
      rows->Set(pos);
    }
  }
  // Writers trim trailing zero words; require the same of readers so
  // every accepted buffer has exactly one serialized form.
  if (word_count > 0 && last_word == 0) {
    *why = "non-canonical row-set encoding (trailing zero word)";
    return false;
  }
  return true;
}

void AppendItems(std::string* out, const ItemVector& items) {
  AppendU32(out, static_cast<std::uint32_t>(items.size()));
  for (ItemId i : items) AppendU32(out, i);
}

bool ParseItems(ByteReader* reader, std::uint64_t num_items,
                ItemVector* items, std::string* why) {
  std::uint32_t count = 0;
  if (!reader->ReadU32(&count)) {
    *why = "truncated item count";
    return false;
  }
  if (count > reader->remaining() / 4) {
    *why = "item count " + std::to_string(count) + " exceeds payload";
    return false;
  }
  items->clear();
  items->reserve(count);
  ItemId prev = 0;
  for (std::uint32_t k = 0; k < count; ++k) {
    std::uint32_t item = 0;
    if (!reader->ReadU32(&item)) {
      *why = "truncated items";
      return false;
    }
    if (item >= num_items) {
      *why = "item id " + std::to_string(item) + " out of range";
      return false;
    }
    if (k > 0 && item <= prev) {
      *why = "items not strictly ascending";
      return false;
    }
    prev = item;
    items->push_back(item);
  }
  return true;
}

std::string SerializeMeta(const RuleGroupSnapshot& snapshot) {
  std::string out;
  out.reserve(kMetaPayloadBytes);
  AppendU64(&out, snapshot.num_rows);
  AppendU64(&out, snapshot.fingerprint.dataset_hash);
  AppendU64(&out, snapshot.fingerprint.num_rows);
  AppendU64(&out, snapshot.fingerprint.num_items);
  AppendU32(&out, snapshot.params.consequent);
  AppendU64(&out, snapshot.params.min_support);
  AppendF64(&out, snapshot.params.min_confidence);
  AppendF64(&out, snapshot.params.min_chi_square);
  AppendU64(&out, snapshot.params.top_k);
  AppendU8(&out, snapshot.params.mine_lower_bounds ? 1 : 0);
  AppendU8(&out, snapshot.params.report_all_rule_groups ? 1 : 0);
  return out;
}

Status ParseMeta(std::string_view payload, const std::string& name,
                 RuleGroupSnapshot* out) {
  if (payload.size() != kMetaPayloadBytes) {
    return Err(name, "META payload is " + std::to_string(payload.size()) +
                         " bytes, want " +
                         std::to_string(kMetaPayloadBytes));
  }
  ByteReader reader(payload);
  std::uint64_t num_rows = 0;
  std::uint32_t consequent = 0;
  std::uint64_t min_support = 0;
  std::uint64_t top_k = 0;
  std::uint8_t mine_lb = 0;
  std::uint8_t report_all = 0;
  (void)reader.ReadU64(&num_rows);
  (void)reader.ReadU64(&out->fingerprint.dataset_hash);
  (void)reader.ReadU64(&out->fingerprint.num_rows);
  (void)reader.ReadU64(&out->fingerprint.num_items);
  (void)reader.ReadU32(&consequent);
  (void)reader.ReadU64(&min_support);
  (void)reader.ReadF64(&out->params.min_confidence);
  (void)reader.ReadF64(&out->params.min_chi_square);
  (void)reader.ReadU64(&top_k);
  (void)reader.ReadU8(&mine_lb);
  (void)reader.ReadU8(&report_all);
  if (num_rows > kMaxSnapshotRows) {
    return Err(name, "num_rows " + std::to_string(num_rows) +
                         " exceeds cap " +
                         std::to_string(kMaxSnapshotRows));
  }
  if (out->fingerprint.num_items > kMaxSnapshotItems) {
    return Err(name, "num_items " +
                         std::to_string(out->fingerprint.num_items) +
                         " exceeds cap " +
                         std::to_string(kMaxSnapshotItems));
  }
  if (consequent > 0xFF) {
    return Err(name, "consequent " + std::to_string(consequent) +
                         " is not a class label");
  }
  if (mine_lb > 1 || report_all > 1) {
    return Err(name, "boolean field is not 0/1");
  }
  if (!std::isfinite(out->params.min_confidence) ||
      !std::isfinite(out->params.min_chi_square)) {
    return Err(name, "non-finite threshold");
  }
  out->num_rows = static_cast<std::size_t>(num_rows);
  out->params.consequent = static_cast<ClassLabel>(consequent);
  out->params.min_support = static_cast<std::size_t>(min_support);
  out->params.top_k = static_cast<std::size_t>(top_k);
  out->params.mine_lower_bounds = mine_lb == 1;
  out->params.report_all_rule_groups = report_all == 1;
  return Status::Ok();
}

std::string SerializeGroups(const RuleGroupSnapshot& snapshot) {
  std::string out;
  AppendU64(&out, snapshot.groups.size());
  for (const RuleGroup& g : snapshot.groups) {
    AppendU64(&out, g.support_pos);
    AppendU64(&out, g.support_neg);
    AppendF64(&out, g.confidence);
    AppendF64(&out, g.chi_square);
    AppendU8(&out, g.lower_bounds_truncated ? 1 : 0);
    AppendItems(&out, g.antecedent);
    AppendRowSet(&out, g.rows);
    AppendU32(&out, static_cast<std::uint32_t>(g.lower_bounds.size()));
    for (const ItemVector& lb : g.lower_bounds) AppendItems(&out, lb);
  }
  return out;
}

Status ParseGroups(std::string_view payload, const std::string& name,
                   RuleGroupSnapshot* out) {
  ByteReader reader(payload);
  std::uint64_t group_count = 0;
  if (!reader.ReadU64(&group_count)) {
    return Err(name, "truncated group count");
  }
  if (group_count > payload.size() / kMinGroupBytes) {
    return Err(name, "group count " + std::to_string(group_count) +
                         " exceeds payload");
  }
  out->groups.clear();
  out->groups.reserve(static_cast<std::size_t>(group_count));
  std::string why;
  for (std::uint64_t gi = 0; gi < group_count; ++gi) {
    const auto err = [&](const std::string& msg) {
      return Err(name, "group " + std::to_string(gi) + ": " + msg);
    };
    RuleGroup g;
    std::uint64_t support_pos = 0;
    std::uint64_t support_neg = 0;
    std::uint8_t flags = 0;
    if (!reader.ReadU64(&support_pos) || !reader.ReadU64(&support_neg) ||
        !reader.ReadF64(&g.confidence) || !reader.ReadF64(&g.chi_square) ||
        !reader.ReadU8(&flags)) {
      return err("truncated stats");
    }
    if (flags > 1) return err("unknown flag bits");
    if (!std::isfinite(g.confidence) || !std::isfinite(g.chi_square)) {
      return err("non-finite measure");
    }
    g.lower_bounds_truncated = flags == 1;
    // Bound each support by num_rows before summing: with raw u64s the
    // sum below could wrap and collide with the true row count.
    if (support_pos > out->num_rows || support_neg > out->num_rows) {
      return err("support exceeds num_rows");
    }
    g.support_pos = static_cast<std::size_t>(support_pos);
    g.support_neg = static_cast<std::size_t>(support_neg);
    if (!ParseItems(&reader, out->fingerprint.num_items, &g.antecedent,
                    &why)) {
      return err(why);
    }
    if (!ParseRowSet(&reader, out->num_rows, &g.rows, &why)) {
      return err(why);
    }
    if (g.rows.Count() != g.support_pos + g.support_neg) {
      return err("row count does not match supports");
    }
    std::uint32_t lb_count = 0;
    if (!reader.ReadU32(&lb_count)) return err("truncated lower bounds");
    if (lb_count > reader.remaining() / 4) {
      return err("lower-bound count exceeds payload");
    }
    g.lower_bounds.reserve(lb_count);
    for (std::uint32_t k = 0; k < lb_count; ++k) {
      ItemVector lb;
      if (!ParseItems(&reader, out->fingerprint.num_items, &lb, &why)) {
        return err(why);
      }
      g.lower_bounds.push_back(std::move(lb));
    }
    out->groups.push_back(std::move(g));
  }
  if (reader.remaining() != 0) {
    return Err(name, "trailing bytes in GRPS payload");
  }
  return Status::Ok();
}

void AppendSection(std::string* out, std::uint32_t tag,
                   const std::string& payload) {
  AppendU32(out, tag);
  AppendU64(out, payload.size());
  out->append(payload);
  AppendU32(out, Crc32(payload.data(), payload.size()));
}

}  // namespace

SnapshotParams SnapshotParams::FromMinerOptions(const MinerOptions& options) {
  SnapshotParams p;
  p.consequent = options.consequent;
  p.min_support = options.min_support;
  p.min_confidence = options.min_confidence;
  p.min_chi_square = options.min_chi_square;
  p.top_k = options.top_k;
  p.mine_lower_bounds = options.mine_lower_bounds;
  p.report_all_rule_groups = options.report_all_rule_groups;
  return p;
}

SnapshotFingerprint SnapshotFingerprint::FromDataset(
    const BinaryDataset& dataset) {
  SnapshotFingerprint fp;
  fp.dataset_hash = dataset.ContentHash();
  fp.num_rows = dataset.num_rows();
  fp.num_items = dataset.num_items();
  return fp;
}

std::string SerializeSnapshot(const RuleGroupSnapshot& snapshot) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kSnapshotVersion);
  AppendU32(&out, 2);  // META + GRPS.
  AppendU32(&out, Crc32(out.data(), out.size()));
  AppendSection(&out, kTagMeta, SerializeMeta(snapshot));
  AppendSection(&out, kTagGroups, SerializeGroups(snapshot));
  return out;
}

Status SaveSnapshot(const RuleGroupSnapshot& snapshot,
                    const std::string& path) {
  if (snapshot.num_rows > kMaxSnapshotRows) {
    return Status::InvalidArgument(
        "snapshot num_rows " + std::to_string(snapshot.num_rows) +
        " exceeds cap " + std::to_string(kMaxSnapshotRows));
  }
  if (snapshot.fingerprint.num_items > kMaxSnapshotItems) {
    return Status::InvalidArgument(
        "snapshot num_items " +
        std::to_string(snapshot.fingerprint.num_items) + " exceeds cap " +
        std::to_string(kMaxSnapshotItems));
  }
  for (const RuleGroup& g : snapshot.groups) {
    if (g.rows.size() != snapshot.num_rows) {
      return Status::InvalidArgument(
          "group row set is " + std::to_string(g.rows.size()) +
          " bits, want " + std::to_string(snapshot.num_rows));
    }
  }
  const std::string bytes = SerializeSnapshot(snapshot);
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open " + path + " for writing");
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.close();
  if (!os) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status LoadSnapshotFromBuffer(std::string_view data, const std::string& name,
                              RuleGroupSnapshot* out) {
  if (data.size() < kHeaderBytes) return Err(name, "truncated header");
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Err(name, "bad magic (not an FSNP snapshot)");
  }
  ByteReader header(data.substr(4, 12));
  std::uint32_t version = 0;
  std::uint32_t section_count = 0;
  std::uint32_t header_crc = 0;
  (void)header.ReadU32(&version);
  (void)header.ReadU32(&section_count);
  (void)header.ReadU32(&header_crc);
  if (version != kSnapshotVersion) {
    return Err(name, "unsupported snapshot version " +
                         std::to_string(version) + " (want " +
                         std::to_string(kSnapshotVersion) + ")");
  }
  if (header_crc != Crc32(data.data(), 12)) {
    return Err(name, "header checksum mismatch");
  }
  if (section_count != 2) {
    return Err(name,
               "expected 2 sections, got " + std::to_string(section_count));
  }

  RuleGroupSnapshot parsed;
  ByteReader reader(data.substr(kHeaderBytes));
  constexpr std::uint32_t kExpectedTags[2] = {kTagMeta, kTagGroups};
  for (std::uint32_t tag : kExpectedTags) {
    std::uint32_t found_tag = 0;
    std::uint64_t payload_size = 0;
    if (!reader.ReadU32(&found_tag) || !reader.ReadU64(&payload_size)) {
      return Err(name, "truncated section header");
    }
    if (found_tag != tag) {
      return Err(name, "unexpected section tag");
    }
    if (payload_size > reader.remaining() ||
        reader.remaining() - payload_size < 4) {
      return Err(name, "section payload exceeds file size");
    }
    std::string_view payload;
    std::uint32_t crc = 0;
    (void)reader.ReadView(static_cast<std::size_t>(payload_size), &payload);
    (void)reader.ReadU32(&crc);
    if (crc != Crc32(payload.data(), payload.size())) {
      return Err(name, "section checksum mismatch");
    }
    Status s = tag == kTagMeta ? ParseMeta(payload, name, &parsed)
                               : ParseGroups(payload, name, &parsed);
    if (!s.ok()) return s;
  }
  if (reader.remaining() != 0) {
    return Err(name, "trailing bytes after last section");
  }
  *out = std::move(parsed);
  return Status::Ok();
}

Status LoadSnapshot(const std::string& path, RuleGroupSnapshot* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return LoadSnapshotFromBuffer(buf.str(), path, out);
}

StatusOr<RuleGroupSnapshot> LoadSnapshot(const std::string& path) {
  RuleGroupSnapshot snapshot;
  const Status loaded = LoadSnapshot(path, &snapshot);
  if (!loaded.ok()) return loaded;
  return snapshot;
}

}  // namespace serve
}  // namespace farmer
