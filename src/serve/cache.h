#ifndef FARMER_SERVE_CACHE_H_
#define FARMER_SERVE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/sync.h"

namespace farmer {
namespace serve {

/// Thread-safe LRU cache for rendered response payloads, keyed by
/// (snapshot version, canonicalized query). The version is part of the
/// key, so a hot snapshot swap can never serve a stale payload: entries
/// rendered against an old snapshot become unreachable the moment the
/// server bumps its version, and DropVersionsBelow() reclaims their
/// bytes eagerly instead of waiting for LRU pressure.
///
/// Bounded both by entry count and by total payload bytes; inserting
/// past either bound evicts the least-recently-used entries. One mutex
/// guards everything — entries are small strings and the critical
/// sections are a few pointer moves, so contention is not a concern at
/// the server's request rates (shards copy the payload out under the
/// lock and render outside it).
class ResponseCache {
 public:
  ResponseCache(std::size_t max_entries, std::size_t max_bytes)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// Looks up (version, key); on hit copies the payload into *value,
  /// promotes the entry to most-recently-used, and returns true.
  bool Get(std::uint64_t version, const std::string& key,
           std::string* value);

  /// Inserts (or refreshes) (version, key) -> `value`, then evicts LRU
  /// entries until both bounds hold again. Values larger than the byte
  /// bound are not cached at all.
  void Put(std::uint64_t version, const std::string& key,
           std::string value);

  /// Frees every entry older than `version` — called on snapshot swap
  /// so dead payloads stop occupying byte budget. (Version-keyed
  /// lookups already make them unreachable; this is reclamation, not
  /// correctness.)
  void DropVersionsBelow(std::uint64_t version);

  /// Drops every entry (the bench's cold-cache phases).
  void Clear();

  std::size_t size() const;
  std::size_t bytes() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Entry {
    std::uint64_t version;
    std::string map_key;  // version-prefixed composite key.
    std::string payload;
  };

  /// The composite map key: "<version>\x1f<key>". \x1f cannot appear in
  /// a canonical key (they are rendered from validated fields), so the
  /// composition is injective.
  static std::string ComposeKey(std::uint64_t version,
                                const std::string& key);

  void EvictLocked() FARMER_REQUIRES(mutex_);

  const std::size_t max_entries_;
  const std::size_t max_bytes_;

  mutable Mutex mutex_;
  // Front = most recently used.
  std::list<Entry> lru_ FARMER_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Entry>::iterator> map_
      FARMER_GUARDED_BY(mutex_);
  std::size_t bytes_ FARMER_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ FARMER_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ FARMER_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ FARMER_GUARDED_BY(mutex_) = 0;
};

}  // namespace serve
}  // namespace farmer

#endif  // FARMER_SERVE_CACHE_H_
